/**
 * @file
 * msgsim-tele: run one canonical telemetry scenario with a sampler
 * attached and export the time-series views.
 *
 *     msgsim-tele --scenario=incast --substrate=cm5 \
 *         --heatmap-out=heat.txt --report-out=report.txt
 *
 * Outputs: the scenario summary table (stdout / --json-out), the
 * time-binned congestion heatmap (--heatmap-out, ASCII + JSON
 * alongside), the bottleneck attribution report (--report-out), and
 * a Perfetto/Chrome counter-track timeline (--timeline-out).  With
 * --trace-out (observability layer) the counter tracks are merged
 * onto the live span timeline instead of a counters-only file.
 * Everything derived from the sampler is bit-deterministic: same
 * scenario, same period, same bytes.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lab/reporter.hh"
#include "lab/result_table.hh"
#include "sim/obs_cli.hh"
#include "tele/heatmap.hh"
#include "tele/report.hh"
#include "tele/tele_run.hh"
#include "traffic/engine.hh"

namespace
{

using namespace msgsim;

struct Options
{
    std::string scenario = "incast";
    std::string substrate = "cm5";
    std::uint64_t period = 16;
    std::uint64_t ring = 4096;
    std::uint64_t windowTicks = 0;
    double threshold = 0.9;
    std::uint64_t maxBins = 64;
    bool quiet = false;
    std::string timelineOut;
    std::string heatmapOut;
    std::string reportOut;
    std::string jsonOut;
    std::string benchOut;
    std::string benchLabel = "tele";
};

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: msgsim-tele [options]\n"
        "\n"
        "  --scenario=<s>      incast | wire                 [incast]\n"
        "  --substrate=<s>     cm5 | cr | rdma | nicam       [cm5]\n"
        "  --period=<t>        sample period in ticks        [16]\n"
        "  --ring=<n>          retained samples per track    [4096]\n"
        "  --window-ticks=<t>  report window (0 = auto)      [0]\n"
        "  --threshold=<f>     report saturation threshold   [0.9]\n"
        "  --max-bins=<n>      heatmap bins                  [64]\n"
        "  --timeline-out=<f>  write counter tracks as a Chrome\n"
        "                      trace-event timeline (ph:\"C\")\n"
        "  --heatmap-out=<f>   write the ASCII heatmap (plus <f>.json)\n"
        "  --report-out=<f>    write the bottleneck report (plus\n"
        "                      <f>.json)\n"
        "  --json-out=<f>      write the summary table as JSON\n"
        "  --bench-out=<f>     append wall-clock entry to the perf\n"
        "                      trajectory file\n"
        "  --bench-label=<l>   trajectory entry label  [tele]\n"
        "  --quiet             suppress the stdout report\n"
        "  --trace-out=<file>, --metrics-out=<file>  (observability;\n"
        "                      counter tracks merge onto --trace-out)\n",
        to);
}

bool
eat(const std::string &arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (arg.compare(0, n, key) != 0)
        return false;
    out = arg.substr(n);
    return true;
}

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string v;
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (eat(arg, "--scenario=", opt.scenario) ||
                   eat(arg, "--substrate=", opt.substrate) ||
                   eat(arg, "--timeline-out=", opt.timelineOut) ||
                   eat(arg, "--heatmap-out=", opt.heatmapOut) ||
                   eat(arg, "--report-out=", opt.reportOut) ||
                   eat(arg, "--json-out=", opt.jsonOut) ||
                   eat(arg, "--bench-out=", opt.benchOut) ||
                   eat(arg, "--bench-label=", opt.benchLabel)) {
        } else if (eat(arg, "--period=", v)) {
            opt.period = std::stoull(v);
        } else if (eat(arg, "--ring=", v)) {
            opt.ring = std::stoull(v);
        } else if (eat(arg, "--window-ticks=", v)) {
            opt.windowTicks = std::stoull(v);
        } else if (eat(arg, "--threshold=", v)) {
            opt.threshold = std::stod(v);
        } else if (eat(arg, "--max-bins=", v)) {
            opt.maxBins = std::stoull(v);
        } else {
            std::fprintf(stderr, "msgsim-tele: unknown flag '%s'\n",
                         arg.c_str());
            usage(stderr);
            return false;
        }
    }
    if (opt.period == 0) {
        std::fprintf(stderr, "msgsim-tele: --period must be > 0\n");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    auto obsOpts = obs::parseArgs(argc, argv);

    Options opt;
    if (!parse(argc, argv, opt))
        return 2;
    if (!tele::knownScenario(opt.scenario)) {
        std::fprintf(stderr, "msgsim-tele: unknown scenario '%s'\n",
                     opt.scenario.c_str());
        return 2;
    }
    Substrate substrate;
    if (!substrateFromString(opt.substrate, substrate)) {
        std::fprintf(stderr, "msgsim-tele: unknown substrate '%s'\n",
                     opt.substrate.c_str());
        return 2;
    }

    // The sampler must outlive the obs scope: counter records written
    // into the scope's trace session point into the sampler's track
    // names, and the scope writes its file on destruction.
    tele::TeleSession sampler(
        {static_cast<Tick>(opt.period), opt.ring});
    obs::Scope scope(obsOpts);

    tele::ScenarioOptions sopt;
    sopt.scenario = opt.scenario;
    sopt.substrate = substrate;
    sopt.period = static_cast<Tick>(opt.period);
    sopt.ringCapacity = opt.ring;
    sopt.windowTicks = static_cast<Tick>(opt.windowTicks);
    sopt.threshold = opt.threshold;
    sopt.trace = scope.session();

    const auto w0 = std::chrono::steady_clock::now();
    const tele::ScenarioResult res = tele::runScenario(sopt, &sampler);
    const auto w1 = std::chrono::steady_clock::now();
    const double wallUs =
        std::chrono::duration<double, std::micro>(w1 - w0).count();

    const tele::BottleneckReport report =
        tele::buildReport(sampler, sopt.windowTicks, sopt.threshold);

    lab::ResultTable t;
    t.name = "tele";
    t.title = "Telemetry run: " + opt.scenario + " on " +
              opt.substrate;
    t.columns = {"scenario",   "substrate", "period", "ticks",
                 "completions", "backpressure", "tracks",
                 "snapshots",  "peak%",     "top bottleneck",
                 "digest",     "ok"};
    t.addRow({lab::Cell::text(opt.scenario),
              lab::Cell::text(opt.substrate),
              lab::Cell::integer(opt.period),
              lab::Cell::integer(res.elapsed),
              lab::Cell::integer(res.completions),
              lab::Cell::integer(res.backpressure),
              lab::Cell::integer(res.trackCount),
              lab::Cell::integer(res.snapshots),
              lab::Cell::real(100.0 * res.peakFraction),
              lab::Cell::text(res.topResource.empty()
                                  ? "-"
                                  : res.topResource),
              lab::Cell::text(res.digest),
              lab::Cell::text(res.ok ? "ok" : "FAIL")});
    if (!opt.quiet) {
        std::fputs(t.markdown().c_str(), stdout);
        std::fputs("\n", stdout);
        std::fputs(report.renderText().c_str(), stdout);
    }

    if (!opt.jsonOut.empty())
        lab::Reporter::writeFile(opt.jsonOut, t.jsonText());

    if (!opt.heatmapOut.empty()) {
        const tele::Heatmap hm = tele::buildHeatmap(
            sampler, static_cast<std::size_t>(opt.maxBins));
        lab::Reporter::writeFile(opt.heatmapOut, hm.renderAscii());
        lab::Reporter::writeFile(opt.heatmapOut + ".json",
                                 hm.toJson().dump(2) + "\n");
    }

    if (!opt.reportOut.empty()) {
        lab::Reporter::writeFile(opt.reportOut, report.renderText());
        lab::Reporter::writeFile(opt.reportOut + ".json",
                                 report.toJson().dump(2) + "\n");
    }

    if (!opt.timelineOut.empty()) {
        // Counters-only timeline: replay every retained sample as a
        // ph:"C" record with its explicit simulated tick.
        TraceSession ts;
        sampler.exportCounters(ts);
        if (!ts.writeChromeTrace(opt.timelineOut))
            std::fprintf(stderr,
                         "msgsim-tele: cannot write '%s'\n",
                         opt.timelineOut.c_str());
    }
    if (scope.tracing())
        sampler.exportCounters(*scope.session());

    if (!opt.benchOut.empty()) {
        lab::ResultTable bt;
        bt.name = "W-tele";
        bt.title = "Telemetry sampling throughput: samples/s "
                   "(host wall-clock)";
        bt.columns = {"scenario", "samples", "wall us", "samples/s"};
        const double sps =
            wallUs > 0 ? 1e6 * static_cast<double>(
                                   sampler.samplesObserved()) /
                             wallUs
                       : 0;
        bt.addRow({lab::Cell::text(opt.scenario + "/" +
                                   opt.substrate),
                   lab::Cell::integer(sampler.samplesObserved()),
                   lab::Cell::real(wallUs), lab::Cell::real(sps)});
        bt.notes = {"Measures this repository's simulator with the "
                    "sampler attached, not the modeled machine; "
                    "feeds the repo-root BENCH_throughput.json perf "
                    "trajectory."};
        lab::Reporter::appendBench(opt.benchOut, bt, opt.benchLabel);
    }

    if (!res.ok)
        std::fprintf(stderr,
                     "msgsim-tele: scenario FAILED verification\n");
    return res.ok ? 0 : 1;
}

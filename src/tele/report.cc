#include "tele/report.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace msgsim::tele
{

namespace
{

/**
 * Max forward-filled level of @p samples inside [begin, end].  The
 * series is a step function: a window with no samples inside it holds
 * the last sampled value before it.
 */
double
windowMax(const std::vector<Sample> &samples, Tick begin, Tick end)
{
    double level = 0.0;
    bool seeded = false;
    double peak = 0.0;
    bool inWindow = false;
    for (const Sample &s : samples) {
        if (s.tick > end)
            break;
        if (s.tick < begin) {
            level = s.value;
            seeded = true;
            continue;
        }
        if (!inWindow && seeded)
            peak = level;
        inWindow = true;
        peak = std::max(peak, s.value);
        level = s.value;
    }
    if (!inWindow)
        return seeded ? level : 0.0;
    return peak;
}

std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace

BottleneckReport
buildReport(const TeleSession &session, Tick windowTicks,
            double threshold)
{
    BottleneckReport rep;
    rep.threshold = threshold;

    const Tick period = session.config().period;
    const Tick first = session.firstSampleTick();
    const Tick last = session.lastSampleTick();
    if (session.snapshots() == 0)
        return rep;

    if (windowTicks == 0) {
        const Tick span = last >= first ? last - first + 1 : 1;
        windowTicks = (span + 15) / 16;
    }
    windowTicks = ((windowTicks + period - 1) / period) * period;
    if (windowTicks < 1)
        windowTicks = 1;
    rep.windowTicks = windowTicks;

    // Pre-fetch the capacity-bounded gauge tracks once.
    struct Candidate
    {
        std::size_t track;
        std::string label;
        std::vector<Sample> samples;
    };
    std::vector<Candidate> cands;
    for (std::size_t t = 0; t < session.tracks().size(); ++t) {
        const auto &tr = session.tracks()[t];
        if (tr.desc.kind != ProbeKind::Gauge ||
            tr.desc.capacity <= 0)
            continue;
        Candidate c;
        c.track = t;
        c.label = tr.qual;
        if (tr.desc.node != invalidNode)
            c.label += "[" + std::to_string(tr.desc.node) + "]";
        c.samples = session.samples(t);
        if (!c.samples.empty())
            cands.push_back(std::move(c));
    }

    const Tick origin = (first / windowTicks) * windowTicks;
    std::map<std::string, std::size_t> leaderCounts;
    for (Tick begin = origin; begin <= last; begin += windowTicks) {
        const Tick end = begin + windowTicks - 1;
        ++rep.windows;

        bool have = false;
        SaturatedWindow best;
        for (const Candidate &c : cands) {
            const auto &tr = session.tracks()[c.track];
            const double occ = windowMax(c.samples, begin, end);
            const double frac = occ / tr.desc.capacity;
            if (!have || frac > best.fraction) {
                have = true;
                best.begin = begin;
                best.end = end;
                best.track = c.track;
                best.label = c.label;
                best.node = tr.desc.node;
                best.occupancy = occ;
                best.capacity = tr.desc.capacity;
                best.fraction = frac;
                best.resource = tr.desc.resource.empty()
                                    ? tr.qual
                                    : tr.desc.resource;
            }
        }
        if (have && best.fraction >= threshold) {
            ++leaderCounts[best.label];
            rep.saturated.push_back(std::move(best));
        }
    }

    for (const auto &[label, count] : leaderCounts) {
        if (count > rep.topResourceWindows) {
            rep.topResourceWindows = count;
            rep.topResourceLabel = label;
        }
    }
    return rep;
}

std::string
BottleneckReport::renderText() const
{
    std::string out;
    out += "bottleneck report: window=" +
           std::to_string(static_cast<long long>(windowTicks)) +
           " ticks threshold=" + percent(threshold) + " windows=" +
           std::to_string(windows) + "\n";
    if (saturated.empty()) {
        out += "  no resource reached the saturation threshold\n";
        return out;
    }
    for (const SaturatedWindow &w : saturated) {
        out += "  ticks " +
               std::to_string(static_cast<long long>(w.begin)) + "-" +
               std::to_string(static_cast<long long>(w.end)) + ": ";
        if (w.node != invalidNode)
            out += "node " + std::to_string(w.node) + " ";
        out += w.label + " " + percent(w.fraction) + " of " +
               formatValue(w.capacity) + " — " + w.resource +
               " saturated\n";
    }
    out += "  top bottleneck: " + topResourceLabel + " (" +
           std::to_string(topResourceWindows) + "/" +
           std::to_string(windows) + " windows)\n";
    return out;
}

Json
BottleneckReport::toJson() const
{
    Json doc = Json::object();
    doc.set("window_ticks", static_cast<std::int64_t>(windowTicks));
    doc.set("threshold", threshold);
    doc.set("windows", static_cast<std::int64_t>(windows));
    Json arr = Json::array();
    for (const SaturatedWindow &w : saturated) {
        Json jw = Json::object();
        jw.set("begin", static_cast<std::int64_t>(w.begin));
        jw.set("end", static_cast<std::int64_t>(w.end));
        jw.set("track", w.label);
        if (w.node != invalidNode)
            jw.set("node", static_cast<std::int64_t>(w.node));
        jw.set("occupancy", w.occupancy);
        jw.set("capacity", w.capacity);
        jw.set("fraction", w.fraction);
        jw.set("resource", w.resource);
        arr.push(std::move(jw));
    }
    doc.set("saturated", std::move(arr));
    doc.set("top_resource", topResourceLabel);
    doc.set("top_resource_windows",
            static_cast<std::int64_t>(topResourceWindows));
    return doc;
}

} // namespace msgsim::tele

#include "tele/tele.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "sim/event.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim::tele
{

const char *
toString(ProbeKind k)
{
    switch (k) {
      case ProbeKind::Gauge:   return "gauge";
      case ProbeKind::Counter: return "counter";
      default:                 return "?";
    }
}

std::string
formatValue(double v)
{
    const std::int64_t i = static_cast<std::int64_t>(v);
    char buf[64];
    if (static_cast<double>(i) == v) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, i);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

TeleSession::TeleSession() : TeleSession(Config{}) {}

TeleSession::TeleSession(const Config &cfg) : cfg_(cfg)
{
    if (cfg_.period < 1)
        msgsim_fatal("tele sample period must be >= 1 tick");
    if (cfg_.ringCapacity < 1)
        msgsim_fatal("tele ring capacity must be >= 1");
}

TeleSession::~TeleSession()
{
    detach();
}

void
TeleSession::attach()
{
    attachHooks();
}

void
TeleSession::detach()
{
    detachHooks();
}

std::size_t
TeleSession::addProbe(const TrackDesc &desc, ReadFn read)
{
    if (!read)
        msgsim_fatal("tele probe ", desc.layer, ".", desc.name,
                     " has no reader");
    Track tr;
    tr.desc = desc;
    tr.qual = desc.layer + "." + desc.name;
    tr.read = std::move(read);
    tr.ring.reserve(cfg_.ringCapacity);
    tracks_.push_back(std::move(tr));
    return tracks_.size() - 1;
}

void
TeleSession::retireProbesFrom(std::size_t firstIndex)
{
    for (std::size_t t = firstIndex; t < tracks_.size(); ++t)
        tracks_[t].read = nullptr;
}

void
TeleSession::record(Track &tr, Tick when, double value)
{
    ++tr.observed;
    ++samplesObserved_;
    if (tr.ring.size() < cfg_.ringCapacity) {
        tr.ring.push_back(Sample{when, value});
        return;
    }
    // Ring full: overwrite the oldest retained sample.
    tr.ring[tr.head] = Sample{when, value};
    tr.head = (tr.head + 1) % cfg_.ringCapacity;
    tr.wrapped = true;
    ++tr.dropped;
    ++samplesDropped_;
}

void
TeleSession::sampleAt(Tick when)
{
    if (haveSampled_ && when <= last_)
        return;
    for (Track &tr : tracks_) {
        if (!tr.read)
            continue;
        record(tr, when, tr.read());
    }
    if (!haveSampled_)
        first_ = when;
    haveSampled_ = true;
    last_ = when;
    ++snapshots_;
}

void
TeleSession::onTickAdvance(const Simulator &sim, Tick prev, Tick next)
{
    if (clock_ != &sim)
        return;
    // First sample-period boundary in (prev, next]: the state being
    // snapshotted is constant over that whole interval, so one sample
    // at the first boundary represents every boundary the advance
    // crossed (the series is a step function).
    const Tick boundary = (prev / cfg_.period + 1) * cfg_.period;
    if (boundary <= next)
        sampleAt(boundary);
}

std::vector<Sample>
TeleSession::samples(std::size_t t) const
{
    const Track &tr = tracks_.at(t);
    std::vector<Sample> out;
    out.reserve(tr.ring.size());
    if (tr.wrapped)
        for (std::size_t i = tr.head; i < tr.ring.size(); ++i)
            out.push_back(tr.ring[i]);
    for (std::size_t i = 0; i < (tr.wrapped ? tr.head
                                            : tr.ring.size());
         ++i)
        out.push_back(tr.ring[i]);
    return out;
}

double
TeleSession::peakValue(std::size_t t) const
{
    const Track &tr = tracks_.at(t);
    double peak = 0.0;
    for (const Sample &s : tr.ring)
        peak = std::max(peak, s.value);
    return peak;
}

std::string
TeleSession::tracksText() const
{
    std::string out;
    out += "tele period=" + formatValue(
               static_cast<double>(cfg_.period)) +
           " snapshots=" + std::to_string(snapshots_) + "\n";
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        const Track &tr = tracks_[t];
        out += "# " + tr.qual;
        if (tr.desc.node != invalidNode)
            out += " node=" + std::to_string(tr.desc.node);
        out += std::string(" kind=") + toString(tr.desc.kind);
        if (tr.desc.capacity > 0)
            out += " cap=" + formatValue(tr.desc.capacity);
        out += " observed=" + std::to_string(tr.observed) +
               " dropped=" + std::to_string(tr.dropped) + "\n";
        for (const Sample &s : samples(t))
            out += formatValue(static_cast<double>(s.tick)) + ":" +
                   formatValue(s.value) + " ";
        out += "\n";
    }
    return out;
}

Json
TeleSession::tracksJson() const
{
    Json doc = Json::object();
    doc.set("period", static_cast<std::int64_t>(cfg_.period));
    doc.set("snapshots", static_cast<std::int64_t>(snapshots_));
    doc.set("first_tick", static_cast<std::int64_t>(first_));
    doc.set("last_tick", static_cast<std::int64_t>(last_));
    Json arr = Json::array();
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        const Track &tr = tracks_[t];
        Json jt = Json::object();
        jt.set("track", tr.qual);
        if (tr.desc.node != invalidNode)
            jt.set("node", static_cast<std::int64_t>(tr.desc.node));
        jt.set("kind", toString(tr.desc.kind));
        if (tr.desc.capacity > 0)
            jt.set("capacity", tr.desc.capacity);
        if (!tr.desc.resource.empty())
            jt.set("resource", tr.desc.resource);
        jt.set("observed", static_cast<std::int64_t>(tr.observed));
        jt.set("dropped", static_cast<std::int64_t>(tr.dropped));
        Json ticks = Json::array();
        Json values = Json::array();
        for (const Sample &s : samples(t)) {
            ticks.push(static_cast<std::int64_t>(s.tick));
            const std::int64_t iv =
                static_cast<std::int64_t>(s.value);
            if (static_cast<double>(iv) == s.value)
                values.push(iv);
            else
                values.push(s.value);
        }
        jt.set("ticks", std::move(ticks));
        jt.set("values", std::move(values));
        arr.push(std::move(jt));
    }
    doc.set("tracks", std::move(arr));
    return doc;
}

void
TeleSession::exportCounters(TraceSession &ts) const
{
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        const Track &tr = tracks_[t];
        for (const Sample &s : samples(t))
            ts.counterSampleAt(s.tick, tr.desc.node,
                               tr.qual.c_str(), s.value);
    }
}

std::string
TeleSession::tracksDigest() const
{
    const std::string text = tracksText();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

} // namespace msgsim::tele

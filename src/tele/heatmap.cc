#include "tele/heatmap.hh"

#include <algorithm>

namespace msgsim::tele
{

namespace
{

/**
 * Resample one track onto @p bins bins of @p binTicks starting at
 * @p origin: gauges take the max of the forward-filled step
 * function inside each bin, counters the increase across the bin.
 */
std::vector<double>
binTrack(const std::vector<Sample> &samples, ProbeKind kind,
         Tick origin, Tick binTicks, std::size_t bins)
{
    std::vector<double> out(bins, 0.0);
    if (samples.empty())
        return out;

    if (kind == ProbeKind::Gauge) {
        double level = samples.front().value;
        std::size_t next = 0;
        for (std::size_t b = 0; b < bins; ++b) {
            const Tick end = origin + static_cast<Tick>(b + 1) *
                                          binTicks;
            double peak = level;
            while (next < samples.size() &&
                   samples[next].tick < end) {
                level = samples[next].value;
                peak = std::max(peak, level);
                ++next;
            }
            out[b] = peak;
        }
        return out;
    }

    // Counter: value at end of bin minus value at end of previous
    // bin, forward-filled.
    double prevEnd = samples.front().value;
    std::size_t next = 0;
    double level = prevEnd;
    for (std::size_t b = 0; b < bins; ++b) {
        const Tick end = origin + static_cast<Tick>(b + 1) * binTicks;
        while (next < samples.size() && samples[next].tick < end) {
            level = samples[next].value;
            ++next;
        }
        out[b] = level - prevEnd;
        prevEnd = level;
    }
    return out;
}

} // namespace

Heatmap
buildHeatmap(const TeleSession &session, std::size_t maxBins)
{
    Heatmap hm;
    if (maxBins == 0)
        maxBins = 1;
    const Tick span = session.lastSampleTick() >=
                              session.firstSampleTick()
                          ? session.lastSampleTick() -
                                session.firstSampleTick() + 1
                          : 1;
    const Tick period = session.config().period;
    Tick bin = (span + static_cast<Tick>(maxBins) - 1) /
               static_cast<Tick>(maxBins);
    bin = ((bin + period - 1) / period) * period;
    if (bin < 1)
        bin = 1;
    hm.binTicks = bin;
    hm.origin = (session.firstSampleTick() / bin) * bin;
    hm.bins = static_cast<std::size_t>(
        (session.lastSampleTick() - hm.origin) / bin + 1);

    for (std::size_t t = 0; t < session.tracks().size(); ++t) {
        const auto &tr = session.tracks()[t];
        const std::vector<Sample> samples = session.samples(t);
        if (samples.empty())
            continue;
        HeatmapRow row;
        row.track = t;
        row.label = tr.qual;
        if (tr.desc.node != invalidNode)
            row.label += "[" + std::to_string(tr.desc.node) + "]";
        row.kind = tr.desc.kind;
        row.capacity = tr.desc.capacity;
        row.values = binTrack(samples, tr.desc.kind, hm.origin,
                              hm.binTicks, hm.bins);
        for (const double v : row.values)
            row.peak = std::max(row.peak, v);
        hm.rows.push_back(std::move(row));
    }
    return hm;
}

std::string
Heatmap::renderAscii() const
{
    static const char levels[] = " .:-=+*#%@";
    std::size_t width = 0;
    for (const HeatmapRow &row : rows)
        width = std::max(width, row.label.size());

    std::string out;
    out += "heatmap: " + std::to_string(bins) + " bins x " +
           std::to_string(static_cast<long long>(binTicks)) +
           " ticks from tick " +
           std::to_string(static_cast<long long>(origin)) + "\n";
    for (const HeatmapRow &row : rows) {
        out += row.label;
        out.append(width - row.label.size(), ' ');
        out += " |";
        const double denom = row.capacity > 0 ? row.capacity
                                              : row.peak;
        for (const double v : row.values) {
            std::size_t lvl = 0;
            if (denom > 0 && v > 0) {
                lvl = 1 + static_cast<std::size_t>(v / denom * 8.0);
                lvl = std::min<std::size_t>(lvl, 9);
            }
            out += levels[lvl];
        }
        out += "| peak=" + formatValue(row.peak);
        if (row.capacity > 0)
            out += "/" + formatValue(row.capacity);
        out += "\n";
    }
    return out;
}

Json
Heatmap::toJson() const
{
    Json doc = Json::object();
    doc.set("bin_ticks", static_cast<std::int64_t>(binTicks));
    doc.set("origin", static_cast<std::int64_t>(origin));
    doc.set("bins", static_cast<std::int64_t>(bins));
    Json arr = Json::array();
    for (const HeatmapRow &row : rows) {
        Json jr = Json::object();
        jr.set("track", row.label);
        jr.set("kind", toString(row.kind));
        if (row.capacity > 0)
            jr.set("capacity", row.capacity);
        jr.set("peak", row.peak);
        Json values = Json::array();
        for (const double v : row.values) {
            const std::int64_t iv = static_cast<std::int64_t>(v);
            if (static_cast<double>(iv) == v)
                values.push(iv);
            else
                values.push(v);
        }
        jr.set("values", std::move(values));
        arr.push(std::move(jr));
    }
    doc.set("rows", std::move(arr));
    return doc;
}

} // namespace msgsim::tele

/**
 * @file
 * Time-binned congestion heatmap over a TeleSession's tracks.
 *
 * Each track becomes one row; the sampled time range is split into
 * fixed-width bins.  Gauge tracks show the maximum level seen in the
 * bin (forward-filled between samples — the series is a step
 * function, so a bin with no samples holds the last sampled value);
 * counter tracks show the per-bin delta (activity rate).  Rendered
 * as ASCII (one character per bin, the histogram level alphabet) and
 * as JSON for downstream tools.
 */

#ifndef MSGSIM_TELE_HEATMAP_HH
#define MSGSIM_TELE_HEATMAP_HH

#include <string>
#include <vector>

#include "tele/tele.hh"

namespace msgsim::tele
{

/** One rendered row. */
struct HeatmapRow
{
    std::size_t track = 0;    ///< index into the session's tracks
    std::string label;        ///< "ni.recv_ring[3]"
    ProbeKind kind = ProbeKind::Gauge;
    double capacity = 0.0;    ///< gauge saturation denominator
    std::vector<double> values; ///< one per bin
    double peak = 0.0;        ///< max over values
};

/** The binned map. */
struct Heatmap
{
    Tick binTicks = 0;   ///< width of one bin
    Tick origin = 0;     ///< tick of the left edge of bin 0
    std::size_t bins = 0;
    std::vector<HeatmapRow> rows;

    /** Multi-line ASCII rendering (label column + level cells). */
    std::string renderAscii() const;

    /** JSON document (bin_ticks, origin, rows[]). */
    Json toJson() const;
};

/**
 * Build a heatmap from @p session over its sampled range, using at
 * most @p maxBins bins (bin width is rounded up to a whole multiple
 * of the sample period).  Tracks with no retained samples are
 * omitted.
 */
Heatmap buildHeatmap(const TeleSession &session,
                     std::size_t maxBins = 64);

} // namespace msgsim::tele

#endif // MSGSIM_TELE_HEATMAP_HH

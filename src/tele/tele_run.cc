#include "tele/tele_run.hh"

#include <algorithm>
#include <memory>

#include "rdmanet/rdma_stack.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/trace_session.hh"
#include "tele/probes.hh"
#include "traffic/engine.hh"
#include "wire/wire_run.hh"

namespace msgsim::tele
{

namespace
{

/** Max occupancy/capacity over every capacity-bounded gauge track. */
double
peakFractionOf(const TeleSession &s)
{
    double peak = 0;
    for (std::size_t t = 0; t < s.tracks().size(); ++t) {
        const auto &tr = s.tracks()[t];
        if (tr.desc.kind != ProbeKind::Gauge || tr.desc.capacity <= 0)
            continue;
        peak = std::max(peak, s.peakValue(t) / tr.desc.capacity);
    }
    return peak;
}

void
fillTelemetry(ScenarioResult &r, const TeleSession &s,
              const ScenarioOptions &opt)
{
    r.snapshots = s.snapshots();
    r.trackCount = s.tracks().size();
    r.digest = s.tracksDigest();
    const BottleneckReport rep =
        buildReport(s, opt.windowTicks, opt.threshold);
    r.topResource = rep.topResourceLabel;
    r.saturatedWindows = rep.saturated.size();
    r.reportWindows = rep.windows;
    r.peakFraction = peakFractionOf(s);
}

/**
 * Incast through the traffic engine on a classic substrate: 15
 * senders fan 4 four-fragment messages each into node 0, whose NI
 * receive ring holds 64 packets and drains one packet per 2 ticks —
 * each send round parks 60 fragments in the ring (93.75%) before the
 * destination's poll empties it.
 */
ScenarioResult
runTrafficIncast(const ScenarioOptions &opt, TeleSession *tele)
{
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Incast;
    spec.proto = TrafficProto::Am;
    spec.nodes = 16;
    spec.messagesPerNode = 4;
    spec.sizeWords = 8; // 4 fragments per message
    spec.seed = 7;
    spec.deliverGap = 2;

    StackConfig cfg = trafficStackConfig(spec, opt.substrate);
    cfg.recvCapacity = 64;
    Stack stack(cfg);
    TrafficEngine engine(stack);

    if (opt.trace)
        opt.trace->bindClock(&stack.sim());
    if (tele) {
        tele->bindClock(&stack.sim());
        registerSimProbes(*tele, stack.sim());
        registerStackProbes(*tele, stack);
        registerTrafficProbes(*tele, engine);
        tele->attach();
    }
    const TrafficResult res = engine.run(spec);
    if (tele) {
        tele->sampleAt(stack.sim().now());
        tele->detach();
    }

    ScenarioResult out;
    out.ok = res.ok;
    out.elapsed = res.elapsed;
    out.instrTotal = res.measuredGrandTotal();
    out.completions = res.timings.size();
    out.backpressure = res.deliveryRetries;
    const WindowedHistogram lh = res.latencyHistogram(0);
    out.latencyP50 = lh.total().percentile(50);
    out.latencyP95 = lh.total().percentile(95);
    out.latencyP99 = lh.total().percentile(99);
    if (tele)
        fillTelemetry(out, *tele, opt);
    return out;
}

/** Node 0's simulated CQ-drain loop (the verbs progress thread). */
void
pollLoop(RdmaStack &stack, std::shared_ptr<bool> stop, Tick delay,
         Tick gap)
{
    stack.sim().schedule(delay, [&stack, stop, gap] {
        if (*stop)
            return;
        Node &nd = stack.node(0);
        FeatureScope fs(nd.acct(), Feature::BaseCost);
        stack.nic(0).pollCq();
        pollLoop(stack, stop, gap, gap);
    });
}

/**
 * The same incast in verbs.  Phase one: 15 senders post 4
 * single-fragment messages each; the receiver never polls, so its
 * completion queue climbs to 60 of 64.  Phase two: one more message
 * per sender overflows the CQ — the NIC refuses the surplus
 * (cqOverflowStalls, RNR retry) and the queue sits pinned at 64/64
 * until a deliberately late simulated poll loop starts draining.
 */
ScenarioResult
runVerbsIncast(const ScenarioOptions &opt, TeleSession *tele)
{
    constexpr std::uint32_t kNodes = 16;
    constexpr std::uint32_t kPhase1 = 4; ///< messages/sender, phase 1
    constexpr std::uint32_t kPhase2 = 1; ///< messages/sender, phase 2
    constexpr Tick kFirstPoll = 400;     ///< CQ sits saturated till here
    constexpr Tick kPollGap = 50;

    RdmaStackConfig cfg;
    cfg.nodes = kNodes;
    cfg.cqCapacity = 64;
    cfg.deliverGap = 2;
    RdmaStack stack(cfg);
    if (opt.trace)
        opt.trace->bindClock(&stack.sim());
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    const std::uint32_t senders = kNodes - 1;
    const std::uint32_t perSender = kPhase1 + kPhase2;
    const std::uint32_t total = senders * perSender;

    std::vector<Word> qp(kNodes, 0);
    for (NodeId s = 1; s < kNodes; ++s)
        qp[s] = stack.connectQp(s, 0);

    // Receiver: register one arena, pre-post every receive.
    Node &recv = stack.node(0);
    const Addr rbuf = recv.mem().alloc(total * n);
    std::uint32_t recvDone = 0;
    stack.nic(0).setCompletionFn(
        [&recvDone](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++recvDone;
        });
    {
        FeatureScope fs(recv.acct(), Feature::BaseCost);
        stack.nic(0).regMr(rbuf, total * n);
        std::uint32_t slot = 0;
        for (NodeId s = 1; s < kNodes; ++s)
            for (std::uint32_t m = 0; m < perSender; ++m, ++slot)
                stack.nic(0).postRecv(qp[s], rbuf + slot * n, n,
                                      slot);
    }

    // Senders: one registered buffer each, filled uncharged.
    std::vector<Addr> sbuf(kNodes, 0);
    for (NodeId s = 1; s < kNodes; ++s) {
        Node &nd = stack.node(s);
        sbuf[s] = nd.mem().alloc(perSender * n);
        std::uint64_t seed = 0x7e1eULL ^ s;
        for (std::uint32_t i = 0; i < perSender * n; ++i)
            nd.mem().write(sbuf[s] + i,
                           static_cast<Word>(splitMix64(seed)));
        FeatureScope fs(nd.acct(), Feature::BaseCost);
        stack.nic(s).regMr(sbuf[s], perSender * n);
    }

    if (tele) {
        tele->bindClock(&stack.sim());
        registerSimProbes(*tele, stack.sim());
        registerRdmaStackProbes(*tele, stack);
        tele->attach();
    }
    const Tick t0 = stack.sim().now();

    // Phase 1: fill the receiver's CQ to the brink.
    for (std::uint32_t m = 0; m < kPhase1; ++m)
        for (NodeId s = 1; s < kNodes; ++s) {
            Node &nd = stack.node(s);
            FeatureScope fs(nd.acct(), Feature::BaseCost);
            if (!stack.nic(s).postSend(qp[s], sbuf[s] + m * n, n, m))
                msgsim_panic("tele verbs incast: sender CQ full");
        }
    stack.settle();

    // Phase 2: overflow it.  No settle here — the refused fragments
    // retry until the poll loop frees CQ slots.
    for (NodeId s = 1; s < kNodes; ++s) {
        Node &nd = stack.node(s);
        FeatureScope fs(nd.acct(), Feature::BaseCost);
        if (!stack.nic(s).postSend(qp[s], sbuf[s] + kPhase1 * n, n,
                                   kPhase1))
            msgsim_panic("tele verbs incast: sender CQ full");
    }
    auto stop = std::make_shared<bool>(false);
    pollLoop(stack, stop, kFirstPoll, kPollGap);
    stack.sim().runUntil(
        [&recvDone, total] { return recvDone == total; },
        50'000'000);
    *stop = true;
    stack.settle();

    if (tele) {
        tele->sampleAt(stack.sim().now());
        tele->detach();
    }

    ScenarioResult out;
    out.ok = recvDone == total &&
             stack.nic(0).postedRecvCount() == 0;
    out.elapsed = stack.sim().now() - t0;
    double instr = 0;
    for (NodeId id = 0; id < kNodes; ++id)
        instr += static_cast<double>(
            stack.node(id).acct().counter().paperTotal());
    out.instrTotal = instr;
    out.completions = recvDone;
    out.backpressure = stack.nic(0).cqOverflowStalls();
    if (tele)
        fillTelemetry(out, *tele, opt);
    stack.nic(0).setCompletionFn(nullptr);
    return out;
}

/**
 * The multi-stream wire workload with withheld wire acks: window 4,
 * one ack per 4 frames, 16 frames per stream — every stream's
 * sliding window saturates and refills in waves.
 */
ScenarioResult
runWireScenario(const ScenarioOptions &opt, TeleSession *tele)
{
    StackConfig cfg;
    cfg.substrate = opt.substrate;
    cfg.nodes = 4;
    Stack stack(cfg);
    if (opt.trace)
        opt.trace->bindClock(&stack.sim());

    wire::WireWorkload w;
    w.streams = 4;
    w.framesPerStream = 16;
    w.payloadWords = 6;
    w.window = 4;
    w.ackEvery = 4;
    w.groupAck = 4;

    std::size_t shortLived = 0;
    if (tele) {
        tele->bindClock(&stack.sim());
        registerSimProbes(*tele, stack.sim());
        registerStackProbes(*tele, stack);
        w.onStart = [tele, &shortLived, &stack](
                        StreamProtocol &proto, wire::StreamMux &mux,
                        const std::vector<std::uint16_t> &) {
            (void)stack;
            shortLived = tele->tracks().size();
            registerChannelProbes(*tele, proto, mux.fwdChannel(),
                                  mux.sender(), mux.receiver());
            registerMuxProbes(*tele, mux);
        };
        w.onFinish = [tele, &shortLived,
                      &stack](wire::StreamMux &) {
            // Final flush while the mux still lives, then disarm the
            // probes that read it.
            tele->sampleAt(stack.sim().now());
            tele->retireProbesFrom(shortLived);
        };
        tele->attach();
    }
    const wire::WireRunResult res = wire::runWireWorkload(stack, w);
    if (tele)
        tele->detach();

    ScenarioResult out;
    out.ok = res.run.dataOk;
    out.elapsed = res.run.elapsed;
    out.instrTotal =
        static_cast<double>(res.run.counts.paperTotal());
    out.completions = res.wire.dataDelivered;
    out.backpressure = res.wire.windowStalls;
    if (tele)
        fillTelemetry(out, *tele, opt);
    return out;
}

} // namespace

bool
knownScenario(const std::string &name)
{
    return name == "incast" || name == "wire";
}

ScenarioResult
runScenario(const ScenarioOptions &opt, TeleSession *tele)
{
    if (opt.scenario == "incast")
        return opt.substrate == Substrate::Rdma
                   ? runVerbsIncast(opt, tele)
                   : runTrafficIncast(opt, tele);
    if (opt.scenario == "wire")
        return runWireScenario(opt, tele);
    msgsim_fatal("unknown tele scenario '", opt.scenario,
                 "' (want incast | wire)");
    return {};
}

} // namespace msgsim::tele

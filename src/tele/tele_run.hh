/**
 * @file
 * Canonical telemetry scenarios, shared by the msgsim-tele CLI, the
 * lab's O1 experiment and the tests so every consumer samples the
 * same runs:
 *
 *  - "incast" on cm5 / cr / nicam: the TrafficEngine fan-in storm
 *    against a bounded NI receive ring — the destination's ring is
 *    the bottleneck the report must name;
 *  - "incast" on rdma: the same storm in verbs — phase one fills the
 *    receiver's completion queue to the brink, phase two overflows
 *    it (cqOverflowStalls, RNR retries) until a late simulated poll
 *    drains it — CQ-depth backpressure is what the report names;
 *  - "wire" on any classic substrate: the multi-stream mux workload
 *    with withheld wire acks, saturating the per-stream sliding
 *    windows.
 *
 * Every scenario runs identically with or without a TeleSession
 * attached (the determinism contract: pass nullptr and compare).
 */

#ifndef MSGSIM_TELE_TELE_RUN_HH
#define MSGSIM_TELE_TELE_RUN_HH

#include <string>

#include "protocols/stack.hh"
#include "tele/report.hh"
#include "tele/tele.hh"

namespace msgsim::tele
{

/** Scenario selection and sampling knobs. */
struct ScenarioOptions
{
    std::string scenario = "incast"; ///< "incast" | "wire"
    Substrate substrate = Substrate::Cm5;
    Tick period = 16;                ///< sample period
    std::size_t ringCapacity = 4096; ///< per-track retained samples
    Tick windowTicks = 0;            ///< report window (0 = auto)
    double threshold = 0.9;          ///< report saturation threshold
    /// When set, the runner binds this span-trace session's clock to
    /// the scenario's simulator so a live --trace-out timeline gets
    /// correct timestamps (the sampler's counters merge onto it via
    /// TeleSession::exportCounters afterwards).
    TraceSession *trace = nullptr;
};

/**
 * What a scenario run yields.  The simulation-result fields are
 * filled whether or not a sampler was attached — they must be
 * bit-identical either way.  The telemetry-derived fields are empty
 * or zero on unsampled runs.
 */
struct ScenarioResult
{
    // Simulation results (sampler-independent by contract).
    bool ok = false;
    Tick elapsed = 0;
    double instrTotal = 0;        ///< charged instructions, all nodes
    std::uint64_t completions = 0; ///< fragments / recvs / frames
    std::uint64_t backpressure = 0; ///< retries / CQ stalls / window stalls
    double latencyP50 = 0;        ///< traffic scenarios only
    double latencyP95 = 0;
    double latencyP99 = 0;

    // Telemetry-derived (zero / empty when tele == nullptr).
    std::uint64_t snapshots = 0;
    std::size_t trackCount = 0;
    std::string digest;           ///< TeleSession::tracksDigest()
    std::string topResource;      ///< report's top bottleneck label
    std::size_t saturatedWindows = 0;
    std::size_t reportWindows = 0;
    double peakFraction = 0;      ///< max occupancy/capacity anywhere
};

/** True when @p name is a known scenario. */
bool knownScenario(const std::string &name);

/**
 * Run @p opt's scenario, sampling into @p tele when non-null (the
 * session is bound, attached and detached by the runner; it must be
 * fresh).  The caller keeps the session for heatmap / report /
 * timeline export.
 */
ScenarioResult runScenario(const ScenarioOptions &opt,
                           TeleSession *tele);

} // namespace msgsim::tele

#endif // MSGSIM_TELE_TELE_RUN_HH

/**
 * @file
 * Bottleneck attribution: scan a TeleSession's capacity-bounded
 * gauge tracks window by window and name the saturated resource —
 * the dynamic complement to the static per-feature cost matrix.
 *
 * For each time window the report finds the track with the highest
 * occupancy fraction (window max / capacity); windows whose leader
 * meets the saturation threshold become report entries like
 *
 *     ticks 12288-16383: node 0 ni.recv_ring 93.8% of 64 — NI recv
 *     ring saturated
 *
 * so an incast collapse reads as the destination NI receive ring
 * pinned at capacity on cm5, and as completion-queue backpressure
 * when the same scenario runs on the verbs stack.
 */

#ifndef MSGSIM_TELE_REPORT_HH
#define MSGSIM_TELE_REPORT_HH

#include <string>
#include <vector>

#include "tele/tele.hh"

namespace msgsim::tele
{

/** One saturated window. */
struct SaturatedWindow
{
    Tick begin = 0;        ///< first tick of the window
    Tick end = 0;          ///< last tick of the window (inclusive)
    std::size_t track = 0; ///< index into the session's tracks
    std::string label;     ///< "ni.recv_ring[0]"
    NodeId node = invalidNode;
    double occupancy = 0.0; ///< window max level
    double capacity = 0.0;
    double fraction = 0.0;  ///< occupancy / capacity
    std::string resource;   ///< the TrackDesc's resource name
};

/** The report. */
struct BottleneckReport
{
    Tick windowTicks = 0;
    double threshold = 0.0;
    std::size_t windows = 0; ///< windows scanned
    std::vector<SaturatedWindow> saturated;

    /**
     * Label of the track saturated in the most windows (empty when
     * nothing saturated) and how many windows it led.
     */
    std::string topResourceLabel;
    std::size_t topResourceWindows = 0;

    /** Human-readable multi-line rendering. */
    std::string renderText() const;

    /** JSON document. */
    Json toJson() const;
};

/**
 * Scan @p session with windows of @p windowTicks (rounded up to a
 * whole multiple of the sample period; 0 = pick ~16 windows over the
 * sampled range) and saturation threshold @p threshold.
 */
BottleneckReport buildReport(const TeleSession &session,
                             Tick windowTicks = 0,
                             double threshold = 0.9);

} // namespace msgsim::tele

#endif // MSGSIM_TELE_REPORT_HH

/**
 * @file
 * Canonical probe sets: one registration helper per layer, so the
 * lower layers gain no dependency on src/tele — the helpers read
 * only public accessors (event-queue depth, per-destination link
 * occupancy, NI FIFO depths, CQ depth, stream windows) and register
 * closures with a TeleSession.
 *
 * Every helper returns the index of the first track it added, so a
 * caller probing a short-lived object (a StreamMux) can
 * retireProbesFrom() that index before the object dies while the
 * recorded tracks live on for export.
 */

#ifndef MSGSIM_TELE_PROBES_HH
#define MSGSIM_TELE_PROBES_HH

#include "tele/tele.hh"

namespace msgsim
{

class Simulator;
class Stack;
class RdmaStack;
class StreamProtocol;
class TrafficEngine;

namespace wire
{
class StreamMux;
}

namespace tele
{

/** Kernel probes: pending-event count and dispatch counter. */
std::size_t registerSimProbes(TeleSession &s, const Simulator &sim);

/**
 * Classic-stack probes (cm5 / cr / nicam): per-destination link
 * in-flight and delivered counters, per-node NI receive-ring
 * occupancy (with the ring capacity as the saturation denominator
 * when it is finite), send-stage occupancy and DMA activity; on the
 * nicam substrate also the machine-wide offload hit/miss counters.
 */
std::size_t registerStackProbes(TeleSession &s, Stack &stack);

/**
 * Verbs-stack probes: per-destination link occupancy plus per-node
 * CQ depth (capacity = cqCapacity), posted receives, doorbells rung
 * and the backpressure counters (CQ overflow, RNR, send stalls).
 */
std::size_t registerRdmaStackProbes(TeleSession &s, RdmaStack &stack);

/**
 * One persistent stream channel: unacked packets (capacity = the
 * retransmission ring), window backlog and reorder occupancy
 * (capacity = the reorder arena).  @p src / @p dst attribute the
 * tracks to the channel's endpoints.
 */
std::size_t registerChannelProbes(TeleSession &s,
                                  const StreamProtocol &proto,
                                  Word chan, NodeId src, NodeId dst);

/**
 * Wire-layer mux probes: per-open-stream window fill (capacity =
 * the sliding window) and backlog, plus the mux-wide frame and
 * window-stall counters.  Register after the streams are open;
 * retire before the mux is destroyed.
 */
std::size_t registerMuxProbes(TeleSession &s,
                              const wire::StreamMux &mux);

/**
 * Traffic-engine probes: outstanding (sent, not yet consumed)
 * fragments and the cumulative consumption counter.
 */
std::size_t registerTrafficProbes(TeleSession &s,
                                  const TrafficEngine &eng);

} // namespace tele
} // namespace msgsim

#endif // MSGSIM_TELE_PROBES_HH

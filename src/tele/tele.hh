/**
 * @file
 * Deterministic time-series telemetry.
 *
 * A TeleSession is the fourth observability pillar next to span
 * tracing (TraceSession), packet lineage (LineageHooks) and host
 * self-cost (hostprof): it answers *when* — queue depths, link
 * occupancy, window stalls and poll backlogs as functions of
 * simulated time.
 *
 * Probes are pull-based: each registered probe is a closure reading
 * one numeric value from live simulation state (an NI FIFO depth, a
 * CQ occupancy, a per-stream window fill).  The session derives its
 * sampling instants from the simulation clock alone — it hooks the
 * kernel's clock-advance notification (sim/tick_hook.hh) and
 * snapshots every probe whenever the clock crosses a sample-period
 * boundary.  Between two events the simulation state is constant, so
 * one snapshot per crossed boundary loses nothing; the series is a
 * step function and bit-deterministic, with no wall clock anywhere.
 *
 * The discipline matches TraceSession/LineageHooks: detached costs
 * one thread-local pointer test per clock advance, probes only read
 * (never charge Accounting, never schedule events), so attaching a
 * sampler cannot perturb simulation results — RunResult, NetStats
 * and every golden stay bit-identical sampler on or off (tested).
 * The current pointer is thread-local so lab sweep workers sample
 * their private simulators concurrently, byte-identical across -j.
 *
 * Samples land in fixed-capacity per-track rings (oldest evicted,
 * eviction counted).  Export paths: Perfetto counter tracks merged
 * onto a TraceSession timeline, the congestion heatmap
 * (tele/heatmap.hh) and the bottleneck attribution report
 * (tele/report.hh).
 */

#ifndef MSGSIM_TELE_TELE_HH
#define MSGSIM_TELE_TELE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/types.hh"
#include "sim/tick_hook.hh"

namespace msgsim
{

class Simulator;
class TraceSession;

namespace tele
{

/** How a probe's value stream should be interpreted. */
enum class ProbeKind : std::uint8_t
{
    Gauge,   ///< instantaneous level (queue depth, window fill)
    Counter, ///< cumulative count (consumers difference over time)
};

const char *toString(ProbeKind k);

/** Identity and interpretation of one probe / track. */
struct TrackDesc
{
    std::string layer;  ///< subsystem: "sim", "ni", "link", "rdma"...
    std::string name;   ///< value name: "recv_ring", "cq_depth"...
    NodeId node = invalidNode; ///< owning node (invalidNode = global)
    ProbeKind kind = ProbeKind::Gauge;
    /// Saturation denominator for gauges (ring capacity, window
    /// size); 0 = unbounded.  The bottleneck report only considers
    /// tracks with a capacity.
    double capacity = 0.0;
    /// Human name of the saturating resource ("NI recv ring"), used
    /// verbatim by the bottleneck report.
    std::string resource;
};

/** One retained sample. */
struct Sample
{
    Tick tick = 0;
    double value = 0.0;
};

/**
 * The sampling engine.
 */
class TeleSession : public TickHooks
{
  public:
    struct Config
    {
        Tick period = 16;       ///< sample-period boundary spacing
        std::size_t ringCapacity = 4096; ///< retained samples / track
    };

    /** Probe reader: must only observe (no charging, no scheduling). */
    using ReadFn = std::function<double()>;

    /** One track: descriptor, reader, and the sample ring. */
    struct Track
    {
        TrackDesc desc;
        std::string qual; ///< "layer.name" (stable for export)
        ReadFn read;      ///< cleared when the probe is retired
        std::vector<Sample> ring;
        std::size_t head = 0; ///< next write slot once wrapped
        bool wrapped = false;
        std::uint64_t observed = 0;
        std::uint64_t dropped = 0;
    };

    TeleSession();
    explicit TeleSession(const Config &cfg);
    ~TeleSession() override;

    TeleSession(const TeleSession &) = delete;
    TeleSession &operator=(const TeleSession &) = delete;

    // ------------------------------------------------------------
    // Attachment and clock binding.
    // ------------------------------------------------------------

    /** Start sampling on this thread (at most one session). */
    void attach();

    /** Stop sampling (no-op when not attached). */
    void detach();

    /** Sample instants come from @p sim's clock. */
    void bindClock(const Simulator *sim) { clock_ = sim; }

    // ------------------------------------------------------------
    // Probe registry.
    // ------------------------------------------------------------

    /** Register a probe; returns its track index. */
    std::size_t addProbe(const TrackDesc &desc, ReadFn read);

    /**
     * Retire every probe with index >= @p firstIndex: their tracks
     * (and recorded samples) remain, but the readers are dropped so
     * the probed objects may be destroyed.  Used when a workload's
     * short-lived objects (a StreamMux) outlive their scenario but
     * not the session.
     */
    void retireProbesFrom(std::size_t firstIndex);

    /** Retire all probes (tracks and samples remain). */
    void retireAllProbes() { retireProbesFrom(0); }

    // ------------------------------------------------------------
    // Sampling.
    // ------------------------------------------------------------

    /** TickHooks: called by Simulator::step() on clock advances. */
    void onTickAdvance(const Simulator &sim, Tick prev,
                       Tick next) override;

    /**
     * Snapshot all live probes at @p when immediately (used for the
     * initial baseline and the end-of-run flush).  No-op when a
     * sample at @p when was already taken.
     */
    void sampleAt(Tick when);

    // ------------------------------------------------------------
    // Inspection.
    // ------------------------------------------------------------

    const Config &config() const { return cfg_; }
    const std::vector<Track> &tracks() const { return tracks_; }

    /** Snapshot instants taken (each covers every live probe). */
    std::uint64_t snapshots() const { return snapshots_; }

    /** Samples recorded across all tracks (including evicted). */
    std::uint64_t samplesObserved() const { return samplesObserved_; }

    /** Samples evicted from rings across all tracks. */
    std::uint64_t samplesDropped() const { return samplesDropped_; }

    /** First / last snapshot instants (0/0 before any snapshot). */
    Tick firstSampleTick() const { return first_; }
    Tick lastSampleTick() const { return last_; }

    /** Retained samples of track @p t, oldest first. */
    std::vector<Sample> samples(std::size_t t) const;

    /** Largest retained value of track @p t (0 when empty). */
    double peakValue(std::size_t t) const;

    // ------------------------------------------------------------
    // Export.
    // ------------------------------------------------------------

    /**
     * Canonical byte-exact text serialization of every track (golden
     * material): one header line and one samples line per track.
     */
    std::string tracksText() const;

    /** The same data as a JSON document. */
    Json tracksJson() const;

    /**
     * Replay every retained sample into @p ts as counter records
     * (Chrome ph:"C" on export), merging the sampled series onto the
     * span/flow timeline.  The session must outlive @p ts's export:
     * counter names point into this session's tracks.
     */
    void exportCounters(TraceSession &ts) const;

    /** FNV-1a hash of tracksText(), as 16 hex digits (golden cell). */
    std::string tracksDigest() const;

  private:
    void record(Track &tr, Tick when, double value);

    Config cfg_;
    const Simulator *clock_ = nullptr;
    std::vector<Track> tracks_;
    bool haveSampled_ = false;
    Tick first_ = 0;
    Tick last_ = 0;
    std::uint64_t snapshots_ = 0;
    std::uint64_t samplesObserved_ = 0;
    std::uint64_t samplesDropped_ = 0;
};

/** Format @p v exactly: integers without decimals, else shortest. */
std::string formatValue(double v);

} // namespace tele
} // namespace msgsim

#endif // MSGSIM_TELE_TELE_HH

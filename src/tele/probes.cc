#include "tele/probes.hh"

#include "nicam/nicam_network.hh"
#include "protocols/stack.hh"
#include "protocols/stream.hh"
#include "rdmanet/rdma_stack.hh"
#include "sim/event.hh"
#include "traffic/engine.hh"
#include "wire/mux.hh"

namespace msgsim::tele
{

namespace
{

/** Per-destination link occupancy, identical on every substrate. */
void
addLinkProbes(TeleSession &s, Network &net, std::uint32_t nodes)
{
    for (NodeId id = 0; id < nodes; ++id) {
        s.addProbe({"link", "in_flight", id, ProbeKind::Gauge, 0.0,
                    "fabric link"},
                   [&net, id] {
                       return static_cast<double>(net.inFlightTo(id));
                   });
        s.addProbe({"link", "delivered", id, ProbeKind::Counter, 0.0,
                    ""},
                   [&net, id] {
                       return static_cast<double>(
                           net.deliveredTo(id));
                   });
    }
}

} // namespace

std::size_t
registerSimProbes(TeleSession &s, const Simulator &sim)
{
    const std::size_t first = s.addProbe(
        {"sim", "pending_events", invalidNode, ProbeKind::Gauge, 0.0,
         ""},
        [&sim] { return static_cast<double>(sim.pending()); });
    s.addProbe({"sim", "events_dispatched", invalidNode,
                ProbeKind::Counter, 0.0, ""},
               [&sim] {
                   return static_cast<double>(sim.eventsDispatched());
               });
    return first;
}

std::size_t
registerStackProbes(TeleSession &s, Stack &stack)
{
    const std::size_t first = s.tracks().size();
    const std::uint32_t n = stack.machine().nodeCount();
    addLinkProbes(s, stack.network(), n);

    const std::size_t cap = stack.config().recvCapacity;
    const bool bounded = cap != static_cast<std::size_t>(-1);
    for (NodeId id = 0; id < n; ++id) {
        NetIface &ni = stack.node(id).ni();
        s.addProbe({"ni", "recv_ring", id, ProbeKind::Gauge,
                    bounded ? static_cast<double>(cap) : 0.0,
                    "NI recv ring"},
                   [&ni] {
                       return static_cast<double>(ni.hwRecvDepth(0) +
                                                  ni.hwRecvDepth(1));
                   });
        s.addProbe({"ni", "send_staged", id, ProbeKind::Gauge, 0.0,
                    ""},
                   [&ni] { return ni.hwSendStaged() ? 1.0 : 0.0; });
        s.addProbe({"ni", "dma_transfers", id, ProbeKind::Counter,
                    0.0, ""},
                   [&ni] {
                       return static_cast<double>(ni.dmaTransfers());
                   });
    }

    if (auto *nicam =
            dynamic_cast<NicamNetwork *>(&stack.network())) {
        s.addProbe({"nicam", "offload_hits", invalidNode,
                    ProbeKind::Counter, 0.0, ""},
                   [nicam] {
                       return static_cast<double>(
                           nicam->offloadHits());
                   });
        s.addProbe({"nicam", "offload_misses", invalidNode,
                    ProbeKind::Counter, 0.0, ""},
                   [nicam] {
                       return static_cast<double>(
                           nicam->offloadMisses());
                   });
    }
    return first;
}

std::size_t
registerRdmaStackProbes(TeleSession &s, RdmaStack &stack)
{
    const std::size_t first = s.tracks().size();
    const std::uint32_t n = stack.machine().nodeCount();
    addLinkProbes(s, stack.net(), n);

    for (NodeId id = 0; id < n; ++id) {
        RdmaNic &nic = stack.nic(id);
        s.addProbe({"rdma", "cq_depth", id, ProbeKind::Gauge,
                    static_cast<double>(nic.config().cqCapacity),
                    "completion queue"},
                   [&nic] {
                       return static_cast<double>(nic.cqDepth());
                   });
        s.addProbe({"rdma", "posted_recvs", id, ProbeKind::Gauge,
                    0.0, ""},
                   [&nic] {
                       return static_cast<double>(
                           nic.postedRecvCount());
                   });
        s.addProbe({"rdma", "sends_posted", id, ProbeKind::Counter,
                    0.0, ""},
                   [&nic] {
                       return static_cast<double>(nic.sendsPosted());
                   });
        s.addProbe({"rdma", "cq_overflow_stalls", id,
                    ProbeKind::Counter, 0.0, ""},
                   [&nic] {
                       return static_cast<double>(
                           nic.cqOverflowStalls());
                   });
        s.addProbe({"rdma", "rnr_no_recv", id, ProbeKind::Counter,
                    0.0, ""},
                   [&nic] {
                       return static_cast<double>(nic.rnrNoRecv());
                   });
        s.addProbe({"rdma", "send_stalls", id, ProbeKind::Counter,
                    0.0, ""},
                   [&nic] {
                       return static_cast<double>(nic.sendStalls());
                   });
    }
    return first;
}

std::size_t
registerChannelProbes(TeleSession &s, const StreamProtocol &proto,
                      Word chan, NodeId src, NodeId dst)
{
    const std::size_t first = s.addProbe(
        {"stream", "unacked", src, ProbeKind::Gauge,
         static_cast<double>(proto.channelRetxSlots(chan)),
         "retransmission ring"},
        [&proto, chan] {
            return static_cast<double>(proto.channelUnacked(chan));
        });
    s.addProbe({"stream", "backlog", src, ProbeKind::Gauge, 0.0, ""},
               [&proto, chan] {
                   return static_cast<double>(
                       proto.channelBacklog(chan));
               });
    s.addProbe({"stream", "reorder_pending", dst, ProbeKind::Gauge,
                static_cast<double>(proto.channelArenaSlots(chan)),
                "reorder arena"},
               [&proto, chan] {
                   return static_cast<double>(
                       proto.channelPending(chan));
               });
    return first;
}

std::size_t
registerMuxProbes(TeleSession &s, const wire::StreamMux &mux)
{
    const std::size_t first = s.tracks().size();
    for (const std::uint16_t sid : mux.sendSids()) {
        TrackDesc d;
        d.layer = "wire";
        d.name = "window_s" + std::to_string(sid);
        d.node = mux.sender();
        d.kind = ProbeKind::Gauge;
        d.capacity = static_cast<double>(mux.window());
        d.resource = "stream send window";
        s.addProbe(d, [&mux, sid] {
            return static_cast<double>(mux.unacked(sid));
        });
        TrackDesc b;
        b.layer = "wire";
        b.name = "backlog_s" + std::to_string(sid);
        b.node = mux.sender();
        b.kind = ProbeKind::Gauge;
        s.addProbe(b, [&mux, sid] {
            return static_cast<double>(mux.backlog(sid));
        });
    }
    s.addProbe({"wire", "window_stalls", mux.sender(),
                ProbeKind::Counter, 0.0, ""},
               [&mux] {
                   return static_cast<double>(
                       mux.stats().windowStalls);
               });
    s.addProbe({"wire", "frames_sent", mux.sender(),
                ProbeKind::Counter, 0.0, ""},
               [&mux] {
                   return static_cast<double>(mux.stats().framesSent);
               });
    return first;
}

std::size_t
registerTrafficProbes(TeleSession &s, const TrafficEngine &eng)
{
    const std::size_t first = s.addProbe(
        {"traffic", "outstanding", invalidNode, ProbeKind::Gauge,
         0.0, ""},
        [&eng] {
            const std::uint64_t sent = eng.fragmentsSent();
            const std::uint64_t got = eng.fragmentsConsumed();
            return static_cast<double>(sent > got ? sent - got : 0);
        });
    s.addProbe({"traffic", "consumed", invalidNode,
                ProbeKind::Counter, 0.0, ""},
               [&eng] {
                   return static_cast<double>(
                       eng.fragmentsConsumed());
               });
    return first;
}

} // namespace msgsim::tele

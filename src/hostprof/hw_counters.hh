/**
 * @file
 * Optional hardware counters for the host self-profiler, layered on
 * perf_event_open: instructions retired, cache misses, branch misses
 * over a profiled window.
 *
 * Containers routinely deny perf access (EPERM / EACCES via
 * perf_event_paranoid, or ENOENT / ENOSYS when the syscall or PMU is
 * absent), so everything degrades gracefully: probe() reports
 * availability with an errno-derived reason, start() simply returns
 * false, and the profiler's TSC timing is unaffected either way.  The
 * CLI publishes the probe result as the `hostprof.counters_available`
 * metric.
 */

#ifndef MSGSIM_HOSTPROF_HW_COUNTERS_HH
#define MSGSIM_HOSTPROF_HW_COUNTERS_HH

#include <cstdint>
#include <string>

namespace msgsim
{

class MetricsRegistry;

namespace hostprof
{

/** A window of hardware-counter readings (valid only when ok). */
struct HwSample
{
    bool ok = false;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
};

/**
 * Three calling-thread hardware counters over a start()/stop()
 * window.  Unavailable counters make start() return false and
 * sample() return {ok = false}; nothing crashes.
 */
class HwCounters
{
  public:
    HwCounters() = default;
    ~HwCounters();

    HwCounters(const HwCounters &) = delete;
    HwCounters &operator=(const HwCounters &) = delete;

    /**
     * One-shot capability probe: can this process open a hardware
     * instruction counter?  Fills @p reason with "ok" or an
     * errno-derived explanation ("EPERM (perf_event_paranoid?)",
     * "ENOENT (no PMU)", ...).
     */
    static bool probe(std::string *reason = nullptr);

    /** Open + enable the counters; false when unavailable. */
    bool start();

    /** Disable the counters (readable until destruction). */
    void stop();

    /** Current readings; {ok=false} when start() failed. */
    HwSample sample() const;

    /** True between a successful start() and destruction. */
    bool running() const { return running_; }

    /** The reason start()/probe() failed ("ok" when it worked). */
    const std::string &reason() const { return reason_; }

  private:
    void closeAll();

    static constexpr int kNumEvents = 3;
    int fds_[kNumEvents] = {-1, -1, -1};
    bool running_ = false;
    std::string reason_ = "not started";
};

/**
 * Publish the probe result: `<prefix>.counters_available` = 0/1.
 */
void publishHwAvailability(MetricsRegistry &reg,
                           const std::string &prefix = "hostprof");

} // namespace hostprof
} // namespace msgsim

#endif // MSGSIM_HOSTPROF_HW_COUNTERS_HH

/**
 * @file
 * msgsim-selfprof: profile the *simulator itself* and report where
 * its host time goes, per subsystem.
 *
 *     msgsim-selfprof --workload=p1 --flame-out=self.folded
 *
 * runs the P1 throughput workloads (cm5 pump, cr pump, cmam am4
 * round) with the host self-profiler attached and prints the
 * per-subsystem breakdown: self TSC cycles, share of the total
 * (sums to 100% by construction), scope entries, and heap allocation
 * traffic.  Optional perf_event_open hardware counters (--hw) layer
 * instructions / cache misses / branch misses on top, falling back
 * to TSC-only cleanly when the container denies perf access.
 *
 * Composes with --trace-out / --metrics-out; the metrics dump gains
 * the hostprof.* gauges including hostprof.counters_available.
 * --bench-append records the profiled wall-clock rows as a labelled
 * entry in the BENCH_throughput.json trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cm5net/cm5_network.hh"
#include "crnet/cr_network.hh"
#include "nicam/nicam_network.hh"
#include "rdmanet/rdma_network.hh"
#include "hostprof/hostprof.hh"
#include "hostprof/hw_counters.hh"
#include "lab/reporter.hh"
#include "lab/result_table.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stack.hh"
#include "protocols/stream.hh"
#include "sim/metrics.hh"
#include "sim/obs_cli.hh"
#include "traffic/engine.hh"

namespace
{

using namespace msgsim;

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: msgsim-selfprof [options]\n"
        "\n"
        "  --workload=W       p1 (default: cm5 + cr + am4), or one of\n"
        "                     cm5 | cr | rdma | nicam | am4 | xfer | "
        "stream | incast\n"
        "  --packets=N        packets per network workload "
        "(default 200000)\n"
        "  --words=N          transfer volume for xfer/stream "
        "(default 64)\n"
        "  --hw               enable perf_event_open hardware "
        "counters\n"
        "  --flame-out=F      write folded flamegraph stacks "
        "(self cycles)\n"
        "  --json-out=F       write the full profile report\n"
        "  --bench-append=F   append a labelled wall-clock entry to "
        "the\n"
        "                     BENCH_throughput.json trajectory\n"
        "  --bench-label=L    entry label (default: selfprof)\n"
        "  --smoke            small run + internal self-checks "
        "(CTest)\n"
        "  --trace-out=F / --metrics-out=F   PR 1 observability\n",
        out);
}

struct Options
{
    std::string workload = "p1";
    std::uint64_t packets = 200'000;
    std::uint32_t words = 64;
    bool hw = false;
    bool smoke = false;
    std::string flameOut;
    std::string jsonOut;
    std::string benchAppend;
    std::string benchLabel = "selfprof";
};

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg.rfind("--workload=", 0) == 0) {
            opt.workload = valueOf("--workload=");
        } else if (arg.rfind("--packets=", 0) == 0) {
            opt.packets = std::strtoull(
                valueOf("--packets=").c_str(), nullptr, 10);
        } else if (arg.rfind("--words=", 0) == 0) {
            opt.words = static_cast<std::uint32_t>(std::strtoul(
                valueOf("--words=").c_str(), nullptr, 10));
        } else if (arg == "--hw") {
            opt.hw = true;
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg.rfind("--flame-out=", 0) == 0) {
            opt.flameOut = valueOf("--flame-out=");
        } else if (arg.rfind("--json-out=", 0) == 0) {
            opt.jsonOut = valueOf("--json-out=");
        } else if (arg.rfind("--bench-append=", 0) == 0) {
            opt.benchAppend = valueOf("--bench-append=");
        } else if (arg.rfind("--bench-label=", 0) == 0) {
            opt.benchLabel = valueOf("--bench-label=");
        } else {
            std::fprintf(stderr,
                         "msgsim-selfprof: unknown argument '%s'\n",
                         arg.c_str());
            usage(stderr);
            return false;
        }
    }
    return true;
}

/** One profiled workload's wall-clock result. */
struct WorkloadRun
{
    std::string label;
    std::uint64_t packets = 0;
    double wallUs = 0.0;
};

double
usSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

WorkloadRun
pumpNetwork(bool cm5, std::uint64_t packets)
{
    WorkloadRun run;
    run.label = cm5 ? "cm5 network" : "cr network";
    Simulator sim;
    std::unique_ptr<Network> net;
    if (cm5) {
        Cm5Network::Config cfg;
        cfg.nodes = 16;
        net = std::make_unique<Cm5Network>(sim, cfg);
    } else {
        CrNetwork::Config cfg;
        cfg.nodes = 16;
        net = std::make_unique<CrNetwork>(sim, cfg);
    }
    std::uint64_t delivered = 0;
    net->attach(1, [&delivered](Packet &&) {
        ++delivered;
        return true;
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < packets; ++i) {
        net->inject(Packet(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4}));
        sim.run();
    }
    run.wallUs = usSince(t0);
    run.packets = delivered;
    return run;
}

WorkloadRun
pumpRdma(std::uint64_t packets)
{
    WorkloadRun run;
    run.label = "rdma network";
    Simulator sim;
    RdmaNetwork::Config cfg;
    cfg.nodes = 16;
    RdmaNetwork net(sim, cfg);
    std::uint64_t delivered = 0;
    net.attach(1, [&delivered](Packet &&) {
        ++delivered;
        return true;
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < packets; ++i) {
        net.inject(Packet(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4}));
        sim.run();
    }
    run.wallUs = usSince(t0);
    run.packets = delivered;
    return run;
}

WorkloadRun
pumpNicam(std::uint64_t packets)
{
    WorkloadRun run;
    run.label = "nicam network";
    Simulator sim;
    NicamNetwork::Config cfg;
    cfg.nodes = 16;
    NicamNetwork net(sim, cfg);
    std::uint64_t delivered = 0;
    // Every packet hits the on-NIC handler table: the pump measures
    // the offload dispatch path, not the host fallback.
    net.offloadHandler(1, HwTag::UserAm, 0,
                       [&delivered](const Packet &) { ++delivered; });
    net.attach(1, [](Packet &&) { return true; });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < packets; ++i) {
        net.inject(Packet(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4}));
        sim.run();
    }
    run.wallUs = usSince(t0);
    run.packets = delivered;
    return run;
}

WorkloadRun
pumpAm4(std::uint64_t rounds)
{
    WorkloadRun run;
    run.label = "cmam am4 round";
    StackConfig cfg;
    cfg.nodes = 2;
    Stack stack(cfg);
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < rounds; ++i) {
        stack.cmam(0).am4(1, h, {1, 2, 3, 4});
        stack.settle();
        stack.cmam(1).poll();
        ++run.packets;
    }
    run.wallUs = usSince(t0);
    return run;
}

WorkloadRun
runIncast(std::uint64_t packets)
{
    WorkloadRun run;
    run.label = "incast traffic";
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Incast;
    spec.nodes = 16;
    // Size the run by fragment count: packets / (nodes * frags).
    spec.sizeWords = 4; // 2 fragments per message
    spec.messagesPerNode = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, packets / (16 * 2)));
    Stack stack(trafficStackConfig(spec, Substrate::Cm5));
    TrafficEngine engine(stack);
    const auto t0 = std::chrono::steady_clock::now();
    const TrafficResult res = engine.run(spec);
    run.wallUs = usSince(t0);
    run.packets = res.shape.fragmentsSent;
    if (!res.ok)
        run.packets = 0; // surface the failure in the report
    return run;
}

WorkloadRun
runProtocol(bool stream, Substrate sub, std::uint32_t words)
{
    WorkloadRun run;
    StackConfig cfg;
    cfg.substrate = sub;
    cfg.nodes = 4;
    Stack stack(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    if (stream) {
        run.label = "stream protocol";
        StreamProtocol proto(stack);
        StreamParams params;
        params.words = words;
        const RunResult res = proto.run(params);
        run.packets = res.packets;
    } else {
        run.label = "finite xfer";
        FiniteXfer proto(stack);
        FiniteXferParams params;
        params.words = words;
        const RunResult res = proto.run(params);
        run.packets = res.packets;
    }
    run.wallUs = usSince(t0);
    return run;
}

std::vector<WorkloadRun>
runWorkloads(const Options &opt)
{
    std::vector<WorkloadRun> runs;
    const std::uint64_t n = opt.packets;
    if (opt.workload == "p1") {
        runs.push_back(pumpNetwork(true, n));
        runs.push_back(pumpNetwork(false, n));
        runs.push_back(pumpAm4(n / 4));
    } else if (opt.workload == "cm5") {
        runs.push_back(pumpNetwork(true, n));
    } else if (opt.workload == "cr") {
        runs.push_back(pumpNetwork(false, n));
    } else if (opt.workload == "rdma") {
        runs.push_back(pumpRdma(n));
    } else if (opt.workload == "nicam") {
        runs.push_back(pumpNicam(n));
    } else if (opt.workload == "am4") {
        runs.push_back(pumpAm4(n / 4));
    } else if (opt.workload == "xfer") {
        runs.push_back(
            runProtocol(false, Substrate::Cm5, opt.words));
    } else if (opt.workload == "stream") {
        runs.push_back(
            runProtocol(true, Substrate::Cm5, opt.words));
    } else if (opt.workload == "incast") {
        runs.push_back(runIncast(n));
    }
    return runs;
}

bool
writeFile(const std::string &path, const std::string &text,
          const char *what)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "msgsim-selfprof: cannot write %s to %s\n",
                     what, path.c_str());
        return false;
    }
    out << text;
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
}

/** Check the folded-stack grammar: space-free ';' frames + count. */
bool
foldedGrammarOk(const std::string &folded)
{
    std::size_t pos = 0;
    while (pos < folded.size()) {
        std::size_t eol = folded.find('\n', pos);
        if (eol == std::string::npos)
            return false; // every line is newline-terminated
        const std::string line = folded.substr(pos, eol - pos);
        pos = eol + 1;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos || space == 0)
            return false;
        const std::string frames = line.substr(0, space);
        const std::string count = line.substr(space + 1);
        if (count.empty() ||
            count.find_first_not_of("0123456789") !=
                std::string::npos)
            return false;
        if (frames.find(' ') != std::string::npos)
            return false;
        if (frames.front() == ';' || frames.back() == ';' ||
            frames.find(";;") != std::string::npos)
            return false;
    }
    return true;
}

int
smokeChecks(const hostprof::HostProfiler &hp, double shareSum)
{
    int failures = 0;
    auto expect = [&failures](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "selfprof smoke FAILED: %s\n", what);
            ++failures;
        }
    };
    expect(hp.balanced(), "scopes balanced");
    expect(hp.totalEnters() > 0, "scopes entered");
    expect(hp.totalEnters() == hp.totalExits(),
           "enters == exits");
    expect(hp.rootCycles() > 0, "nonzero root cycles");
    expect(shareSum > 0.99 && shareSum < 1.01,
           "subsystem shares sum to 100% +/- 1%");
    expect(hp.scopedAllocs() > 0, "scoped allocations attributed");
    expect(foldedGrammarOk(hp.foldedStacks()),
           "folded-stack grammar");
    std::string reason;
    const bool avail = hostprof::HwCounters::probe(&reason);
    std::printf("hw counter probe: %s (%s)\n",
                avail ? "available" : "unavailable",
                reason.c_str());
    if (failures == 0)
        std::printf("selfprof smoke ok\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::Options obsOpts = obs::parseArgs(argc, argv);

    Options opt;
    if (!parse(argc, argv, opt))
        return 2;
    if (opt.smoke && opt.packets == 200'000)
        opt.packets = 2'000;
    const bool known =
        opt.workload == "p1" || opt.workload == "cm5" ||
        opt.workload == "cr" || opt.workload == "rdma" ||
        opt.workload == "nicam" || opt.workload == "am4" ||
        opt.workload == "xfer" || opt.workload == "stream" ||
        opt.workload == "incast";
    if (!known) {
        std::fprintf(stderr,
                     "msgsim-selfprof: unknown workload '%s'\n",
                     opt.workload.c_str());
        usage(stderr);
        return 2;
    }

    obs::Scope scope(obsOpts);
    auto &metrics = MetricsRegistry::global();
    hostprof::publishHwAvailability(metrics);

    hostprof::HostProfiler hp;
    hostprof::HwCounters hw;
    std::string hwReason = "not requested";
    bool hwRunning = false;
    if (opt.hw) {
        hwRunning = hw.start();
        hwReason = hw.reason();
        if (!hwRunning)
            std::fprintf(stderr,
                         "msgsim-selfprof: hardware counters "
                         "unavailable, TSC only: %s\n",
                         hwReason.c_str());
    }

    hp.attach();
    const std::vector<WorkloadRun> runs = runWorkloads(opt);
    hp.detach();
    hw.stop();
    const hostprof::HwSample hwSample = hw.sample();

    hp.publishMetrics(metrics);

    // ---------------- report ----------------

    std::printf("host self-profile (%s workload)\n\n",
                opt.workload.c_str());
    for (const WorkloadRun &run : runs)
        std::printf("  %-16s %9llu packets  %12.0f us\n",
                    run.label.c_str(),
                    static_cast<unsigned long long>(run.packets),
                    run.wallUs);

    std::printf("\n| subsystem | self cycles | share %% | enters | "
                "allocs | alloc KiB |\n");
    std::printf("|-----------|-------------|---------|--------|"
                "--------|-----------|\n");
    const auto subs = hp.subsystems();
    double shareSum = 0.0;
    for (const auto &s : subs) {
        shareSum += s.share;
        std::printf(
            "| %-9s | %11llu | %7.2f | %6llu | %6llu | %9.1f |\n",
            s.name.c_str(),
            static_cast<unsigned long long>(s.selfCycles),
            100.0 * s.share,
            static_cast<unsigned long long>(s.enters),
            static_cast<unsigned long long>(s.allocs),
            static_cast<double>(s.allocBytes) / 1024.0);
    }

    auto ranked = subs;
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.selfCycles > b.selfCycles;
              });
    std::printf("\ntop cost centers:");
    int shown = 0;
    for (const auto &s : ranked) {
        if (shown == 3 || s.selfCycles == 0)
            break;
        std::printf(" %d) %s (%.1f%%)", ++shown, s.name.c_str(),
                    100.0 * s.share);
    }
    std::printf("\nshares sum: %.1f%%   scopes: %llu enter / %llu "
                "exit   allocs: %llu scoped + %llu unscoped\n",
                100.0 * shareSum,
                static_cast<unsigned long long>(hp.totalEnters()),
                static_cast<unsigned long long>(hp.totalExits()),
                static_cast<unsigned long long>(hp.scopedAllocs()),
                static_cast<unsigned long long>(hp.unscopedAllocs()));
    if (opt.hw) {
        if (hwSample.ok)
            std::printf("hw counters: %llu instructions, %llu cache "
                        "misses, %llu branch misses\n",
                        static_cast<unsigned long long>(
                            hwSample.instructions),
                        static_cast<unsigned long long>(
                            hwSample.cacheMisses),
                        static_cast<unsigned long long>(
                            hwSample.branchMisses));
        else
            std::printf("hw counters: unavailable (%s)\n",
                        hwReason.c_str());
    }

    bool ok = true;
    if (!opt.flameOut.empty())
        ok = writeFile(opt.flameOut, hp.foldedStacks(),
                       "folded stacks") &&
             ok;
    if (!opt.jsonOut.empty()) {
        Json doc = Json::object();
        Json wl = Json::array();
        for (const WorkloadRun &run : runs) {
            Json j = Json::object();
            j.set("label", run.label);
            j.set("packets", run.packets);
            j.set("wall_us", run.wallUs);
            wl.push(std::move(j));
        }
        doc.set("workload", opt.workload);
        doc.set("runs", std::move(wl));
        Json hwj = Json::object();
        hwj.set("requested", opt.hw);
        hwj.set("available", hwSample.ok);
        hwj.set("reason", opt.hw ? hwReason : "not requested");
        if (hwSample.ok) {
            hwj.set("instructions", hwSample.instructions);
            hwj.set("cache_misses", hwSample.cacheMisses);
            hwj.set("branch_misses", hwSample.branchMisses);
        }
        doc.set("hw", std::move(hwj));
        doc.set("profile", hp.toJson());
        ok = writeFile(opt.jsonOut, doc.dump(2) + "\n", "report") &&
             ok;
    }
    if (!opt.benchAppend.empty()) {
        lab::ResultTable t;
        t.name = "H1-wall";
        t.title = "Profiled simulator throughput (hostprof "
                  "attached, host wall-clock)";
        t.columns = {"workload", "packets", "wall us", "packets/s"};
        for (const WorkloadRun &run : runs) {
            const double perSec =
                run.wallUs > 0
                    ? 1e6 * static_cast<double>(run.packets) /
                          run.wallUs
                    : 0.0;
            t.addRow({lab::Cell::text(run.label),
                      lab::Cell::integer(run.packets),
                      lab::Cell::real(run.wallUs),
                      lab::Cell::real(perSec)});
        }
        lab::Reporter::appendBench(opt.benchAppend, t,
                                   opt.benchLabel);
        std::printf("bench entry '%s' appended to %s\n",
                    opt.benchLabel.c_str(),
                    opt.benchAppend.c_str());
    }

    if (opt.smoke)
        return smokeChecks(hp, shareSum);
    return ok ? 0 : 1;
}

#include "hostprof/hw_counters.hh"

#include <cerrno>
#include <cstring>

#include "sim/metrics.hh"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MSGSIM_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define MSGSIM_HAVE_PERF_EVENT 0
#endif

namespace msgsim::hostprof
{

#if MSGSIM_HAVE_PERF_EVENT

namespace
{

constexpr std::uint64_t kConfigs[3] = {
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int
openCounter(std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0,
                                    -1, -1, 0));
}

std::string
errnoReason(int err)
{
    switch (err) {
      case EPERM:
      case EACCES:
        return "EPERM (perf_event_paranoid or container policy "
               "denies perf access)";
      case ENOENT:
        return "ENOENT (event not supported by this PMU)";
      case ENOSYS:
        return "ENOSYS (perf_event_open not implemented)";
      case ENODEV:
        return "ENODEV (no PMU device)";
      default:
        return std::string("errno ") + std::to_string(err) + " (" +
               std::strerror(err) + ")";
    }
}

} // namespace

bool
HwCounters::probe(std::string *reason)
{
    errno = 0;
    const int fd = openCounter(PERF_COUNT_HW_INSTRUCTIONS);
    if (fd < 0) {
        if (reason != nullptr)
            *reason = errnoReason(errno);
        return false;
    }
    close(fd);
    if (reason != nullptr)
        *reason = "ok";
    return true;
}

bool
HwCounters::start()
{
    closeAll();
    for (int i = 0; i < kNumEvents; ++i) {
        errno = 0;
        fds_[i] = openCounter(kConfigs[i]);
        if (fds_[i] < 0) {
            reason_ = errnoReason(errno);
            closeAll();
            return false;
        }
    }
    for (int i = 0; i < kNumEvents; ++i) {
        ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
        ioctl(fds_[i], PERF_EVENT_IOC_ENABLE, 0);
    }
    running_ = true;
    reason_ = "ok";
    return true;
}

void
HwCounters::stop()
{
    if (!running_)
        return;
    for (int i = 0; i < kNumEvents; ++i)
        if (fds_[i] >= 0)
            ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
}

HwSample
HwCounters::sample() const
{
    HwSample s;
    if (fds_[0] < 0)
        return s;
    std::uint64_t values[kNumEvents] = {0, 0, 0};
    for (int i = 0; i < kNumEvents; ++i) {
        if (read(fds_[i], &values[i], sizeof(values[i])) !=
            static_cast<ssize_t>(sizeof(values[i])))
            return s; // short read: report unavailable
    }
    s.ok = true;
    s.instructions = values[0];
    s.cacheMisses = values[1];
    s.branchMisses = values[2];
    return s;
}

void
HwCounters::closeAll()
{
    for (int i = 0; i < kNumEvents; ++i) {
        if (fds_[i] >= 0)
            close(fds_[i]);
        fds_[i] = -1;
    }
    running_ = false;
}

HwCounters::~HwCounters()
{
    closeAll();
}

#else // !MSGSIM_HAVE_PERF_EVENT

bool
HwCounters::probe(std::string *reason)
{
    if (reason != nullptr)
        *reason = "perf_event_open unavailable on this platform";
    return false;
}

bool
HwCounters::start()
{
    reason_ = "perf_event_open unavailable on this platform";
    return false;
}

void
HwCounters::stop()
{
}

HwSample
HwCounters::sample() const
{
    return HwSample{};
}

void
HwCounters::closeAll()
{
}

HwCounters::~HwCounters() = default;

#endif // MSGSIM_HAVE_PERF_EVENT

void
publishHwAvailability(MetricsRegistry &reg, const std::string &prefix)
{
    reg.gauge(prefix + ".counters_available") =
        HwCounters::probe() ? 1.0 : 0.0;
}

} // namespace msgsim::hostprof

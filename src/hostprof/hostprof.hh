/**
 * @file
 * Host-side self-profiler: where does the *simulator's* time go?
 *
 * The paper asks where message time goes in the modeled machine; this
 * subsystem turns the same methodology inward and attributes the
 * simulator's real TSC-cycle cost (plus heap allocation traffic) to
 * the subsystem that spent it — the event loop's heap pop / dispatch
 * / handler phases, both substrates' route/deliver paths, the NI ring
 * operations, the CMAM/HLAM layers, and the protocol drivers.
 *
 * Design rules, identical to TraceSession / LineageHooks:
 *
 *  - disabled cost is one thread-local pointer test per scope
 *    (HostScope's constructor), nothing else;
 *  - the profiler NEVER touches Accounting — simulation results are
 *    bit-identical with the profiler attached or not (tested);
 *  - attachment is *thread-local*, so the lab's concurrent sweeps
 *    stay byte-deterministic: a profiler attached on one worker
 *    thread is invisible to every other thread.
 *
 * Scopes nest into a calling-context tree; a node's *self* cost is
 * its total minus its children's totals, so self costs sum exactly to
 * the root total and the per-subsystem shares sum to 100% by
 * construction.  Heap traffic is captured by interposing the global
 * operator new/delete (see hostprof.cc): a process-wide relaxed
 * atomic count is always maintained (two increments per allocation),
 * and when a profiler is attached on the allocating thread the
 * allocation is also attributed to the innermost open scope.
 *
 * Results export as folded flamegraph stacks (the PR 5 grammar:
 * ';'-joined space-free frames, one space, a count), a core/json
 * document, and MetricsRegistry gauges.
 */

#ifndef MSGSIM_HOSTPROF_HOSTPROF_HH
#define MSGSIM_HOSTPROF_HOSTPROF_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

#include "core/json.hh"

namespace msgsim
{

class MetricsRegistry;

namespace hostprof
{

/** One instrumented code region.  Names are "<subsystem>.<what>". */
enum class Site : std::uint8_t
{
    SimStep,     ///< one event-loop iteration (self = dispatch cost)
    SimHeapPop,  ///< priority-queue pop
    SimHandler,  ///< scheduled closure execution
    NetInject,   ///< Network::inject (stamp, seal, gate/substrate)
    NetDeliver,  ///< Network::presentToSink
    Cm5Route,    ///< CM-5 latency calc + packet carry into the heap
    Cm5Deliver,  ///< CM-5 edge arrival: order policy + delivery
    CrRoute,     ///< CR inject: hw retry probe, flow ordering
    CrDeliver,   ///< CR edge arrival: flow queue drain
    NiSend,      ///< NI send-side ring ops (ctl/word/double writes)
    NiRecv,      ///< NI recv-side ring ops (status/header/data reads)
    NiHwDeliver, ///< NI hardware delivery (CRC check, FIFO push)
    NiDma,       ///< NI DMA gather/scatter
    CmamSend,    ///< CMAM send paths (single packet, xfer loops)
    CmamPoll,    ///< CMAM poll / interrupt entry + drain loop
    CmamHandler, ///< one CMAM handler dispatch
    HlSend,      ///< HLAM send paths (xfer_send, stream_send)
    HlPoll,      ///< HLAM poll
    ProtoSingle, ///< single-packet protocol driver
    ProtoXfer,   ///< finite-xfer protocol driver
    ProtoStream, ///< stream protocol driver
    ProtoSocket, ///< socket protocol driver
    RdmaRoute,   ///< RDMA inject: fault absorption, QP ordering
    RdmaDeliver, ///< RDMA edge arrival: QP queue drain, CQ push
    RdmaPost,    ///< RDMA host layer: WQE build + doorbell
    RdmaPoll,    ///< RDMA host layer: CQ poll / completion harvest
    NicamRoute,  ///< nicam inject: fault switch + latency model
    NicamDeliver,///< nicam edge arrival: handler table / fallback
    NicamSend,   ///< nicam host layer: send paths
    TrafficSend, ///< traffic engine: one injection round
    TrafficDrain,///< traffic engine: settle + poll sweep
    CollSend,    ///< collectives: one active-message send
    CollProgress,///< collectives: the settle/poll progress loop
    WireEncode,  ///< wire layer: marshal + COBS + CRC on send
    WireDecode,  ///< wire layer: delimiter scan + CRC + parse on recv
    WireMux,     ///< wire layer: stream demux / window state machine
};

constexpr int numSites = static_cast<int>(Site::WireMux) + 1;

/** "sim.step", "ni.send", ... (space- and semicolon-free). */
const char *siteName(Site s);

/** Subsystem names, aggregation targets for the share table. */
constexpr int numSubsystems = 13;
const char *subsystemName(int idx);

/** Which subsystem a site belongs to (index into subsystemName). */
int siteSubsystem(Site s);

/** Monotonic cycle counter: TSC on x86, steady_clock ns elsewhere. */
inline std::uint64_t
tscNow()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

// Process-wide allocation counters, maintained by the interposed
// operator new whether or not any profiler is attached (two relaxed
// atomic increments per allocation).  Monotonic; diff two snapshots
// to meter a region.
std::uint64_t globalAllocCount();
std::uint64_t globalAllocBytes();

/**
 * The per-thread self-profiler: a calling-context tree of Sites.
 *
 * Typical use brackets a workload at top level:
 *
 *     hostprof::HostProfiler hp;
 *     hp.attach();
 *     ... run the simulation ...
 *     hp.detach();
 *     std::string folded = hp.foldedStacks();
 *
 * attach()/detach() bind to the *calling thread* only.  All scopes
 * opened while attached must close before the profiler is destroyed.
 */
class HostProfiler
{
  public:
    HostProfiler();
    ~HostProfiler();

    HostProfiler(const HostProfiler &) = delete;
    HostProfiler &operator=(const HostProfiler &) = delete;

    /** Bind to the calling thread (replacing any previous binding). */
    void attach();

    /** Unbind; recorded data stays readable. */
    void detach();

    /** The calling thread's attached profiler (nullptr = disabled). */
    static HostProfiler *current();

    // ---------------- hot path (via HostScope) ----------------

    void enterSite(Site s);
    void exitSite();

    /** Attribute one allocation to the innermost open scope. */
    void noteAlloc(std::size_t bytes);

    // ---------------- results ----------------

    /** One calling-context-tree node, path = ';'-joined site names. */
    struct Row
    {
        std::string path;
        Site site = Site::SimStep;
        int depth = 0;
        std::uint64_t enters = 0;
        std::uint64_t totalCycles = 0;
        std::uint64_t selfCycles = 0; ///< total minus children
        std::uint64_t allocs = 0;
        std::uint64_t allocBytes = 0;
    };

    /** Aggregated per-subsystem costs; shares sum to 1 exactly. */
    struct SubsystemRow
    {
        std::string name;
        std::uint64_t enters = 0;
        std::uint64_t selfCycles = 0;
        std::uint64_t allocs = 0;
        std::uint64_t allocBytes = 0;
        double share = 0.0; ///< selfCycles / root total
    };

    /** All tree nodes, sorted by path. */
    std::vector<Row> rows() const;

    /** Per-subsystem aggregation (every subsystem, active or not). */
    std::vector<SubsystemRow> subsystems() const;

    /** Scope entries / exits over the profiler's lifetime. */
    std::uint64_t totalEnters() const { return enters_; }
    std::uint64_t totalExits() const { return exits_; }

    /** True when every opened scope has closed. */
    bool balanced() const { return stack_.empty(); }

    /** Sum of top-level scope costs (== sum of all self costs). */
    std::uint64_t rootCycles() const;

    /** Allocations attributed to some open scope. */
    std::uint64_t scopedAllocs() const { return scopedAllocs_; }
    std::uint64_t scopedAllocBytes() const { return scopedAllocBytes_; }

    /** Allocations while attached but outside any scope. */
    std::uint64_t unscopedAllocs() const { return unscopedAllocs_; }
    std::uint64_t unscopedAllocBytes() const
    {
        return unscopedAllocBytes_;
    }

    /** The profiler's own bookkeeping allocations (tree growth). */
    std::uint64_t overheadAllocs() const { return overheadAllocs_; }

    /**
     * Folded flamegraph stacks (counts = self cycles):
     *
     *     <prefix>;sim.step;sim.handler;cmam.poll 12345
     */
    std::string foldedStacks(const std::string &prefix = "host") const;

    /** Full machine-readable report. */
    Json toJson() const;

    /**
     * Publish per-subsystem counters/gauges under "<prefix>.":
     * enters, self_cycles, allocs, alloc_bytes per subsystem plus
     * scope/alloc totals.
     */
    void publishMetrics(MetricsRegistry &reg,
                        const std::string &prefix = "hostprof") const;

  private:
    struct Node
    {
        Site site = Site::SimStep;
        int parent = -1;
        std::vector<int> children;
        std::uint64_t enters = 0;
        std::uint64_t cycles = 0;
        std::uint64_t allocs = 0;
        std::uint64_t allocBytes = 0;
    };

    struct Frame
    {
        int node = 0;
        std::uint64_t start = 0;
    };

    int findOrAddChild(int parent, Site s);
    void buildRow(int node, std::string path, int depth,
                  std::vector<Row> &out) const;

    std::vector<Node> nodes_; ///< [0] is the root (no site, no timer)
    std::vector<Frame> stack_;
    int cur_ = 0;
    bool inProfiler_ = false; ///< route bookkeeping allocs to overhead
    bool attached_ = false;
    std::uint64_t enters_ = 0;
    std::uint64_t exits_ = 0;
    std::uint64_t scopedAllocs_ = 0;
    std::uint64_t scopedAllocBytes_ = 0;
    std::uint64_t unscopedAllocs_ = 0;
    std::uint64_t unscopedAllocBytes_ = 0;
    std::uint64_t overheadAllocs_ = 0;
    std::uint64_t overheadAllocBytes_ = 0;
};

/**
 * RAII scope: one thread-local pointer test when no profiler is
 * attached — the same discipline as ScopedSpan / LineageHooks.
 */
class HostScope
{
  public:
    explicit HostScope(Site s)
    {
        if (HostProfiler *hp = HostProfiler::current()) {
            hp_ = hp;
            hp->enterSite(s);
        }
    }

    ~HostScope()
    {
        if (hp_ != nullptr)
            hp_->exitSite();
    }

    HostScope(const HostScope &) = delete;
    HostScope &operator=(const HostScope &) = delete;

  private:
    HostProfiler *hp_ = nullptr;
};

} // namespace hostprof
} // namespace msgsim

#endif // MSGSIM_HOSTPROF_HOSTPROF_HH

#include "hostprof/hostprof.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/metrics.hh"

namespace msgsim::hostprof
{

namespace
{

// The thread-local binding.  A plain pointer with trivial
// initialization: reading it from the interposed operator new is safe
// at any point of the process lifetime (zero before any attach).
thread_local HostProfiler *t_profiler = nullptr;

// Process-wide allocation meters, maintained whether or not any
// profiler is attached (the disabled-mode zero-allocation test and
// the CLI's totals both read these).
std::atomic<std::uint64_t> g_allocCount{0};
std::atomic<std::uint64_t> g_allocBytes{0};

struct SiteInfo
{
    const char *name;
    int subsystem;
};

constexpr const char *kSubsystems[numSubsystems] = {
    "sim", "net", "cm5", "cr", "ni", "cmam", "hl", "proto",
    "rdma", "nicam", "traffic", "coll", "wire",
};

constexpr SiteInfo kSites[numSites] = {
    {"sim.step", 0},
    {"sim.heap_pop", 0},
    {"sim.handler", 0},
    {"net.inject", 1},
    {"net.deliver", 1},
    {"cm5.route", 2},
    {"cm5.deliver", 2},
    {"cr.route", 3},
    {"cr.deliver", 3},
    {"ni.send", 4},
    {"ni.recv", 4},
    {"ni.hw_deliver", 4},
    {"ni.dma", 4},
    {"cmam.send", 5},
    {"cmam.poll", 5},
    {"cmam.handler", 5},
    {"hl.send", 6},
    {"hl.poll", 6},
    {"proto.single_packet", 7},
    {"proto.finite_xfer", 7},
    {"proto.stream", 7},
    {"proto.socket", 7},
    {"rdma.route", 8},
    {"rdma.deliver", 8},
    {"rdma.post", 8},
    {"rdma.poll", 8},
    {"nicam.route", 9},
    {"nicam.deliver", 9},
    {"nicam.send", 9},
    {"traffic.send", 10},
    {"traffic.drain", 10},
    {"coll.send", 11},
    {"coll.progress", 11},
    {"wire.encode", 12},
    {"wire.decode", 12},
    {"wire.mux", 12},
};

} // namespace

const char *
siteName(Site s)
{
    return kSites[static_cast<int>(s)].name;
}

const char *
subsystemName(int idx)
{
    return kSubsystems[idx];
}

int
siteSubsystem(Site s)
{
    return kSites[static_cast<int>(s)].subsystem;
}

std::uint64_t
globalAllocCount()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

std::uint64_t
globalAllocBytes()
{
    return g_allocBytes.load(std::memory_order_relaxed);
}

HostProfiler::HostProfiler()
{
    inProfiler_ = true;
    nodes_.reserve(256);
    stack_.reserve(64);
    nodes_.push_back(Node{}); // the root
    inProfiler_ = false;
}

HostProfiler::~HostProfiler()
{
    if (t_profiler == this)
        t_profiler = nullptr;
}

void
HostProfiler::attach()
{
    t_profiler = this;
    attached_ = true;
}

void
HostProfiler::detach()
{
    if (t_profiler == this)
        t_profiler = nullptr;
    attached_ = false;
}

HostProfiler *
HostProfiler::current()
{
    return t_profiler;
}

int
HostProfiler::findOrAddChild(int parent, Site s)
{
    for (int c : nodes_[static_cast<std::size_t>(parent)].children)
        if (nodes_[static_cast<std::size_t>(c)].site == s)
            return c;
    const int child = static_cast<int>(nodes_.size());
    Node n;
    n.site = s;
    n.parent = parent;
    nodes_.push_back(std::move(n));
    nodes_[static_cast<std::size_t>(parent)].children.push_back(child);
    return child;
}

void
HostProfiler::enterSite(Site s)
{
    // Tree/stack growth must not count as workload heap traffic:
    // route it to the overhead bucket via the reentrancy flag.
    inProfiler_ = true;
    const int child = findOrAddChild(cur_, s);
    ++nodes_[static_cast<std::size_t>(child)].enters;
    ++enters_;
    cur_ = child;
    stack_.push_back(Frame{child, 0});
    inProfiler_ = false;
    // Timestamp last so our own bookkeeping lands in the parent's
    // self cost, not the child's.
    stack_.back().start = tscNow();
}

void
HostProfiler::exitSite()
{
    const std::uint64_t end = tscNow();
    if (stack_.empty())
        return; // unbalanced exit; tolerate rather than crash
    inProfiler_ = true;
    const Frame f = stack_.back();
    stack_.pop_back();
    nodes_[static_cast<std::size_t>(f.node)].cycles += end - f.start;
    ++exits_;
    cur_ = stack_.empty() ? 0 : stack_.back().node;
    inProfiler_ = false;
}

void
HostProfiler::noteAlloc(std::size_t bytes)
{
    if (inProfiler_) {
        ++overheadAllocs_;
        overheadAllocBytes_ += bytes;
        return;
    }
    if (cur_ == 0) {
        ++unscopedAllocs_;
        unscopedAllocBytes_ += bytes;
        return;
    }
    Node &n = nodes_[static_cast<std::size_t>(cur_)];
    ++n.allocs;
    n.allocBytes += bytes;
    ++scopedAllocs_;
    scopedAllocBytes_ += bytes;
}

std::uint64_t
HostProfiler::rootCycles() const
{
    std::uint64_t total = 0;
    for (int c : nodes_[0].children)
        total += nodes_[static_cast<std::size_t>(c)].cycles;
    return total;
}

void
HostProfiler::buildRow(int node, std::string path, int depth,
                       std::vector<Row> &out) const
{
    const Node &n = nodes_[static_cast<std::size_t>(node)];
    std::uint64_t childCycles = 0;
    for (int c : n.children)
        childCycles += nodes_[static_cast<std::size_t>(c)].cycles;

    Row row;
    row.path = path;
    row.site = n.site;
    row.depth = depth;
    row.enters = n.enters;
    row.totalCycles = n.cycles;
    row.selfCycles = n.cycles >= childCycles ? n.cycles - childCycles
                                             : 0;
    row.allocs = n.allocs;
    row.allocBytes = n.allocBytes;
    out.push_back(std::move(row));

    for (int c : n.children) {
        const Node &cn = nodes_[static_cast<std::size_t>(c)];
        buildRow(c, path + ";" + siteName(cn.site), depth + 1, out);
    }
}

std::vector<HostProfiler::Row>
HostProfiler::rows() const
{
    std::vector<Row> out;
    out.reserve(nodes_.size());
    for (int c : nodes_[0].children) {
        const Node &cn = nodes_[static_cast<std::size_t>(c)];
        buildRow(c, siteName(cn.site), 1, out);
    }
    std::sort(out.begin(), out.end(),
              [](const Row &a, const Row &b) { return a.path < b.path; });
    return out;
}

std::vector<HostProfiler::SubsystemRow>
HostProfiler::subsystems() const
{
    std::vector<SubsystemRow> out(numSubsystems);
    for (int i = 0; i < numSubsystems; ++i)
        out[static_cast<std::size_t>(i)].name = kSubsystems[i];

    const std::vector<Row> all = rows();
    std::uint64_t total = 0;
    for (const Row &r : all) {
        auto &sub =
            out[static_cast<std::size_t>(siteSubsystem(r.site))];
        sub.enters += r.enters;
        sub.selfCycles += r.selfCycles;
        sub.allocs += r.allocs;
        sub.allocBytes += r.allocBytes;
        total += r.selfCycles;
    }
    if (total > 0)
        for (auto &sub : out)
            sub.share = static_cast<double>(sub.selfCycles) /
                        static_cast<double>(total);
    return out;
}

std::string
HostProfiler::foldedStacks(const std::string &prefix) const
{
    std::string out;
    for (const Row &r : rows()) {
        if (r.selfCycles == 0)
            continue;
        out += prefix;
        out += ";";
        out += r.path;
        out += " ";
        out += std::to_string(r.selfCycles);
        out += "\n";
    }
    return out;
}

Json
HostProfiler::toJson() const
{
    Json doc = Json::object();

    Json scopes = Json::object();
    scopes.set("enters", enters_);
    scopes.set("exits", exits_);
    scopes.set("balanced", balanced());
    scopes.set("root_cycles", rootCycles());
    doc.set("scopes", std::move(scopes));

    Json alloc = Json::object();
    alloc.set("scoped_count", scopedAllocs_);
    alloc.set("scoped_bytes", scopedAllocBytes_);
    alloc.set("unscoped_count", unscopedAllocs_);
    alloc.set("unscoped_bytes", unscopedAllocBytes_);
    alloc.set("profiler_overhead_count", overheadAllocs_);
    alloc.set("profiler_overhead_bytes", overheadAllocBytes_);
    alloc.set("process_total_count", globalAllocCount());
    alloc.set("process_total_bytes", globalAllocBytes());
    doc.set("alloc", std::move(alloc));

    Json subs = Json::array();
    for (const SubsystemRow &s : subsystems()) {
        Json j = Json::object();
        j.set("subsystem", s.name);
        j.set("enters", s.enters);
        j.set("self_cycles", s.selfCycles);
        j.set("share", s.share);
        j.set("allocs", s.allocs);
        j.set("alloc_bytes", s.allocBytes);
        subs.push(std::move(j));
    }
    doc.set("subsystems", std::move(subs));

    Json rws = Json::array();
    for (const Row &r : rows()) {
        Json j = Json::object();
        j.set("path", r.path);
        j.set("site", siteName(r.site));
        j.set("depth", r.depth);
        j.set("enters", r.enters);
        j.set("total_cycles", r.totalCycles);
        j.set("self_cycles", r.selfCycles);
        j.set("allocs", r.allocs);
        j.set("alloc_bytes", r.allocBytes);
        rws.push(std::move(j));
    }
    doc.set("rows", std::move(rws));
    return doc;
}

void
HostProfiler::publishMetrics(MetricsRegistry &reg,
                             const std::string &prefix) const
{
    for (const SubsystemRow &s : subsystems()) {
        const MetricsRegistry::Labels labels = {
            {"subsystem", s.name}};
        reg.counter(prefix + ".enters", labels) = s.enters;
        reg.counter(prefix + ".self_cycles", labels) = s.selfCycles;
        reg.counter(prefix + ".allocs", labels) = s.allocs;
        reg.counter(prefix + ".alloc_bytes", labels) = s.allocBytes;
        reg.gauge(prefix + ".share", labels) = s.share;
    }
    reg.counter(prefix + ".scope_enters") = enters_;
    reg.counter(prefix + ".scope_exits") = exits_;
    reg.counter(prefix + ".root_cycles") = rootCycles();
    reg.counter(prefix + ".unscoped_allocs") = unscopedAllocs_;
    reg.counter(prefix + ".overhead_allocs") = overheadAllocs_;
}

} // namespace msgsim::hostprof

// ------------------------------------------------------------------
// Global operator new/delete interposition.
//
// Lives in this translation unit on purpose: every instrumented site
// references the profiler's symbols, so this object file is pulled
// into every executable and the replacement operators always win over
// the toolchain defaults.  All forms route through malloc/free (ASan
// intercepts at that layer, so leak/overflow checking still works),
// count into the process-wide meters, and attribute to the calling
// thread's attached profiler when there is one.
// ------------------------------------------------------------------

namespace
{

inline void
noteAllocGlobal(std::size_t n)
{
    using namespace msgsim::hostprof;
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(n, std::memory_order_relaxed);
    if (HostProfiler *hp = t_profiler)
        hp->noteAlloc(n);
}

void *
allocOrThrow(std::size_t n)
{
    for (;;) {
        if (void *p = std::malloc(n ? n : 1))
            return p;
        std::new_handler h = std::get_new_handler();
        if (h == nullptr)
            throw std::bad_alloc();
        h();
    }
}

void *
allocAligned(std::size_t n, std::size_t align)
{
    // C11 aligned_alloc wants the size rounded to the alignment.
    const std::size_t rounded = (n + align - 1) / align * align;
    return std::aligned_alloc(align, rounded ? rounded : align);
}

void *
allocAlignedOrThrow(std::size_t n, std::size_t align)
{
    for (;;) {
        if (void *p = allocAligned(n, align))
            return p;
        std::new_handler h = std::get_new_handler();
        if (h == nullptr)
            throw std::bad_alloc();
        h();
    }
}

} // namespace

void *
operator new(std::size_t n)
{
    noteAllocGlobal(n);
    return allocOrThrow(n);
}

void *
operator new[](std::size_t n)
{
    noteAllocGlobal(n);
    return allocOrThrow(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    noteAllocGlobal(n);
    return std::malloc(n ? n : 1);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    noteAllocGlobal(n);
    return std::malloc(n ? n : 1);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    noteAllocGlobal(n);
    return allocAlignedOrThrow(n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    noteAllocGlobal(n);
    return allocAlignedOrThrow(n, static_cast<std::size_t>(align));
}

void *
operator new(std::size_t n, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    noteAllocGlobal(n);
    return allocAligned(n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    noteAllocGlobal(n);
    return allocAligned(n, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t,
                const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(p);
}

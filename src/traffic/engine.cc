#include "traffic/engine.hh"

#include <algorithm>

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim
{

namespace
{

constexpr Word kMagic = 0x5a5a5a5au;
constexpr std::uint32_t kSeqBits = 20;
constexpr std::uint32_t kSeqMask = (1u << kSeqBits) - 1;

/** Data fragment meta: (source node << 20) | fragment sequence. */
Word
packMeta(NodeId src, std::uint32_t fragSeq)
{
    return (static_cast<Word>(src) << kSeqBits) | (fragSeq & kSeqMask);
}

NodeId metaNode(Word m) { return m >> kSeqBits; }
std::uint32_t metaSeq(Word m) { return m & kSeqMask; }

Word
checksum(Word meta, Word pay)
{
    return meta ^ pay ^ kMagic;
}

/** One feature's (reg, mem, dev) slice of an instruction counter. */
CatCost
catOf(const InstrCounter &c, Feature f)
{
    return {static_cast<double>(c.get(f, OpClass::Reg)),
            static_cast<double>(c.get(f, OpClass::MemLoad) +
                                c.get(f, OpClass::MemStore)),
            static_cast<double>(c.get(f, OpClass::DevLoad) +
                                c.get(f, OpClass::DevStore))};
}

} // namespace

const char *
toString(TrafficProto p)
{
    switch (p) {
      case TrafficProto::Am:    return "am";
      case TrafficProto::Seq:   return "seq";
      case TrafficProto::Acked: return "acked";
      default:                  return "?";
    }
}

bool
protoFromString(const std::string &name, TrafficProto &out)
{
    if (name == "am")
        out = TrafficProto::Am;
    else if (name == "seq")
        out = TrafficProto::Seq;
    else if (name == "acked")
        out = TrafficProto::Acked;
    else
        return false;
    return true;
}

bool
substrateFromString(const std::string &name, Substrate &out)
{
    if (name == "cm5")
        out = Substrate::Cm5;
    else if (name == "cr")
        out = Substrate::Cr;
    else if (name == "rdma")
        out = Substrate::Rdma;
    else if (name == "nicam")
        out = Substrate::Nicam;
    else
        return false;
    return true;
}

StackConfig
trafficStackConfig(const TrafficSpec &spec, Substrate substrate)
{
    StackConfig cfg;
    cfg.substrate = substrate;
    cfg.nodes = spec.nodes;
    cfg.maxJitter = spec.maxJitter;
    cfg.injectGap = spec.injectGap;
    cfg.deliverGap = spec.deliverGap;
    cfg.seed = spec.seed ^ 0xc0ffeeULL;
    return cfg;
}

CatCost
TrafficResult::measuredTotal() const
{
    CatCost t;
    for (const auto &f : measured)
        t += f;
    return t;
}

double
TrafficResult::measuredGrandTotal() const
{
    return measuredTotal().total();
}

WindowedHistogram
TrafficResult::latencyHistogram(std::uint64_t windowTicks,
                                std::size_t bins) const
{
    double hi = 1.0;
    for (const MsgTiming &t : timings)
        hi = std::max(hi, static_cast<double>(t.latency()) + 1.0);
    WindowedHistogram wh(windowTicks, 0.0, hi, bins);
    for (const MsgTiming &t : timings)
        wh.sample(t.birth, static_cast<double>(t.latency()));
    return wh;
}

TrafficEngine::TrafficEngine(Stack &stack) : stack_(stack)
{
    const std::uint32_t n = stack_.machine().nodeCount();
    dataHandler_.resize(n);
    ackHandler_.resize(n);
    scratchAddr_.resize(n);
    for (NodeId id = 0; id < n; ++id) {
        dataHandler_[id] = stack_.cmam(id).registerHandler(
            [this, id](NodeId src, const std::vector<Word> &args) {
                onData(id, src, args);
            });
        ackHandler_[id] = stack_.cmam(id).registerHandler(
            [this, id](NodeId src, const std::vector<Word> &args) {
                onAck(id, src, args);
            });
        // Uncharged boot-time allocation: the word the protocol
        // bookkeeping loads/stores against.
        scratchAddr_[id] = stack_.node(id).mem().alloc(1);
    }
}

void
TrafficEngine::consume(NodeId self, NodeId src, Word meta, Word pay)
{
    // Uncharged host-side verification bookkeeping (the charged
    // verify happened at arrival, under handlerBaseReg).  Completion
    // timing writes into preallocated arrays only — this path runs
    // inside hostprof scopes and must not allocate.
    (void)pay;
    ++consumed_;
    if (spec_->proto == TrafficProto::Acked)
        return; // the loop closes at ack consumption instead
    const std::size_t idx =
        msgIndex(src, self, metaSeq(meta) / latFrags_);
    if (++msgFrags_[idx] == latFrags_)
        msgDone_[idx] = stack_.sim().now();
}

void
TrafficEngine::sendAck(NodeId self, NodeId src, std::uint32_t ackIdx)
{
    Node &node = stack_.node(self);
    const Word meta = packMeta(self, ackIdx);
    FeatureScope ft(node.acct(), Feature::FaultTolerance);
    stack_.cmam(self).am4Reply(src, ackHandler_[src],
                               {meta, 0, checksum(meta, 0)});
    ++shape_.acksSent;
}

void
TrafficEngine::onData(NodeId self, NodeId src,
                      const std::vector<Word> &args)
{
    Node &node = stack_.node(self);
    Processor &p = node.proc();
    Accounting &a = node.acct();
    namespace tc = traffic_cost;

    // Unpack meta and verify the checksum (charged base cost: this
    // runs under the poll scope).
    p.regOps(tc::handlerBaseReg);
    const Word meta = args.at(0);
    const Word pay = args.at(1);
    ++shape_.fragmentsDelivered;
    if (args.at(2) != checksum(meta, pay) || metaNode(meta) != src) {
        ++badPayloads_;
        return;
    }

    switch (spec_->proto) {
      case TrafficProto::Am:
        consume(self, src, meta, pay);
        break;

      case TrafficProto::Seq: {
        const std::uint32_t fragSeq = metaSeq(meta);
        std::uint32_t &expect = expect_[self][src];
        auto &stash = stash_[self][src];
        FeatureScope io(a, Feature::InOrderDelivery);
        p.regOps(tc::seqCheckReg);
        if (fragSeq == expect) {
            p.regOps(tc::seqAdvanceReg);
            ++expect;
            consume(self, src, meta, pay);
            // Drain every stashed fragment whose turn has come.
            for (auto it = stash.find(expect); it != stash.end();
                 it = stash.find(expect)) {
                p.regOps(tc::seqDrainReg);
                (void)p.loadWord(scratchAddr_[self]);
                consume(self, src, packMeta(src, expect),
                        it->second);
                stash.erase(it);
                ++expect;
            }
        } else if (fragSeq > expect) {
            p.regOps(tc::seqStashReg);
            p.storeWord(scratchAddr_[self], pay);
            stash.emplace(fragSeq, pay);
            ++shape_.ooo;
        } else {
            ++badPayloads_; // duplicate: impossible fault-free
        }
        break;
      }

      case TrafficProto::Acked: {
        consume(self, src, meta, pay);
        FeatureScope ft(a, Feature::FaultTolerance);
        p.regOps(tc::ackTrackReg);
        const std::uint32_t got = ++fragsGot_[self][src];
        const std::uint32_t k = spec_->fragmentsPerMessage();
        if (got % k == 0)
            sendAck(self, src, got / k - 1);
        break;
      }
    }
}

void
TrafficEngine::onAck(NodeId self, NodeId src,
                     const std::vector<Word> &args)
{
    Node &node = stack_.node(self);
    Processor &p = node.proc();
    namespace tc = traffic_cost;

    ++shape_.acksDelivered;
    const Word meta = args.at(0);
    if (args.at(2) != checksum(meta, args.at(1)) ||
        metaNode(meta) != src) {
        ++badPayloads_;
        return;
    }
    // Release the retransmit hold for the acked message.
    FeatureScope ft(node.acct(), Feature::FaultTolerance);
    p.regOps(tc::ackConsumeReg);
    (void)p.loadWord(scratchAddr_[self]);
    ++acksGot_[self];

    // Ack consumption closes the message's loop at its source.
    const std::size_t idx = msgIndex(self, src, metaSeq(meta));
    msgFrags_[idx] = latFrags_;
    msgDone_[idx] = stack_.sim().now();
}

TrafficResult
TrafficEngine::run(const TrafficSpec &spec)
{
    TrafficResult res;
    const std::uint32_t n = stack_.machine().nodeCount();
    if (spec.nodes != n)
        msgsim_fatal("traffic spec wants ", spec.nodes,
                     " nodes but the stack has ", n);
    if (n >= (1u << (32 - kSeqBits)))
        msgsim_fatal("traffic: too many nodes for the meta format");
    const std::uint32_t frags = spec.fragmentsPerMessage();
    const std::uint64_t totalFrags =
        static_cast<std::uint64_t>(spec.messagesPerNode) * frags;
    if (totalFrags >= kSeqMask)
        msgsim_fatal("traffic: fragment sequence space exhausted");
    if (spec.messagesPerNode == 0)
        msgsim_fatal("traffic: need at least one message per node");

    spec_ = &spec;
    shape_ = TrafficShape{};
    shape_.seq = spec.proto == TrafficProto::Seq;
    shape_.acked = spec.proto == TrafficProto::Acked;
    badPayloads_ = 0;
    consumed_ = 0;
    expect_.assign(n, std::vector<std::uint32_t>(n, 0));
    stash_.assign(
        n, std::vector<std::map<std::uint32_t, Word>>(n));
    fragsGot_.assign(n, std::vector<std::uint32_t>(n, 0));
    acksGot_.assign(n, 0);

    // Latency bookkeeping: a flow (src, dst) carries at most
    // messagesPerNode messages, so [src][dst][msg] flat arrays cover
    // every message.  Sized here, before any hostprof scope opens.
    latFrags_ = frags;
    latMsgs_ = spec.messagesPerNode;
    latNodes_ = n;
    const std::size_t latSlots = static_cast<std::size_t>(n) * n *
                                 spec.messagesPerNode;
    msgBirth_.assign(latSlots, 0);
    msgDone_.assign(latSlots, 0);
    msgFrags_.assign(latSlots, 0);

    std::vector<InstrCounter> before(n);
    for (NodeId id = 0; id < n; ++id)
        before[id] = stack_.node(id).acct().counter();
    const auto statsBefore = stack_.network().stats();
    const Tick t0 = stack_.sim().now();

    TrafficGen gen(n, spec.pattern, spec.seed, spec.hotFraction);
    Rng payRng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
    namespace tc = traffic_cost;

    // Fragment sequences are per (src, dst) *flow* — that is what the
    // receiver's in-order machinery orders against, so a source whose
    // pattern spreads messages over many destinations must not leave
    // sequence gaps in any one flow.
    std::vector<std::vector<std::uint32_t>> flowSeq(
        n, std::vector<std::uint32_t>(n, 0));

    const auto drainOnce = [&]() -> bool {
        hostprof::HostScope hs(hostprof::Site::TrafficDrain);
        stack_.settle();
        bool any = false;
        for (NodeId id = 0; id < n; ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            any = true;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
            ++shape_.polls;
        }
        return any;
    };

    for (std::uint32_t k = 0; k < spec.messagesPerNode; ++k) {
        {
            hostprof::HostScope hs(hostprof::Site::TrafficSend);
            for (NodeId src = 0; src < n; ++src) {
                const NodeId dst = gen.destFor(src);
                Node &node = stack_.node(src);
                for (std::uint32_t f = 0; f < frags; ++f) {
                    const std::uint32_t fragSeq = flowSeq[src][dst]++;
                    if (f == 0)
                        msgBirth_[msgIndex(src, dst,
                                           fragSeq / frags)] =
                            stack_.sim().now();
                    const Word meta = packMeta(src, fragSeq);
                    const Word pay =
                        static_cast<Word>(payRng.next());
                    {
                        FeatureScope fs(node.acct(),
                                        Feature::BaseCost);
                        stack_.cmam(src).am4(
                            dst, dataHandler_[dst],
                            {meta, pay, checksum(meta, pay)});
                    }
                    ++shape_.fragmentsSent;
                    if (spec.proto == TrafficProto::Acked) {
                        // Hold the fragment for retransmission.
                        FeatureScope ft(node.acct(),
                                        Feature::FaultTolerance);
                        node.proc().regOps(tc::ackHoldReg);
                        node.proc().storeWord(scratchAddr_[src],
                                              pay);
                    }
                }
            }
        }
        // Drain as we go so receive FIFOs stay shallow.
        drainOnce();
    }

    const std::uint64_t wantConsumed =
        static_cast<std::uint64_t>(n) * totalFrags;
    const std::uint64_t wantAcks =
        spec.proto == TrafficProto::Acked
            ? static_cast<std::uint64_t>(n) * spec.messagesPerNode
            : 0;
    const auto done = [&] {
        if (consumed_ < wantConsumed)
            return false;
        if (shape_.acksDelivered < wantAcks)
            return false;
        return true;
    };
    for (int round = 0; round < 1024 && !done(); ++round)
        if (!drainOnce() && !done())
            break;

    bool stashesEmpty = true;
    for (const auto &row : stash_)
        for (const auto &s : row)
            if (!s.empty())
                stashesEmpty = false;

    // Collect the completed-message timings in flow order (no
    // hostprof scope is open here, so growing the vector is fine).
    res.timings.reserve(static_cast<std::size_t>(n) *
                        spec.messagesPerNode);
    for (std::size_t i = 0; i < msgFrags_.size(); ++i)
        if (msgFrags_[i] == latFrags_)
            res.timings.push_back(MsgTiming{msgBirth_[i], msgDone_[i]});

    double maxInstr = 0;
    for (NodeId id = 0; id < n; ++id) {
        const InstrCounter diff =
            stack_.node(id).acct().counter().diff(before[id]);
        for (int f = 0; f < numPaperFeatures; ++f)
            res.measured[f] +=
                catOf(diff, static_cast<Feature>(f));
        const double instr = static_cast<double>(diff.paperTotal());
        res.perNodeInstr.sample(instr);
        maxInstr = std::max(maxInstr, instr);
    }
    const auto statsAfter = stack_.network().stats();
    res.hwRetries = statsAfter.hwRetries - statsBefore.hwRetries;
    res.deliveryRetries =
        statsAfter.deliveryRetries - statsBefore.deliveryRetries;
    res.elapsed = stack_.sim().now() - t0;
    res.shape = shape_;
    res.ok = done() && badPayloads_ == 0 && stashesEmpty &&
             shape_.fragmentsDelivered == shape_.fragmentsSent &&
             shape_.acksDelivered == shape_.acksSent;
    res.maxOverMean = res.perNodeInstr.mean() > 0
                          ? maxInstr / res.perNodeInstr.mean()
                          : 0;
    spec_ = nullptr;
    return res;
}

} // namespace msgsim

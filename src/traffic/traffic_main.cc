/**
 * @file
 * msgsim-traffic: run one declarative traffic scenario on any
 * substrate and (optionally) gate the run against the compositional
 * analytic predictor.
 *
 *     msgsim-traffic --pattern=incast --substrate=rdma --predict
 *
 * With --predict the tool prints the predicted-vs-measured
 * per-feature bill and exits 1 on any disagreement — the same
 * golden-free gate lab experiment W1 applies across the full grid.
 * --bench-out appends a wall-clock throughput entry to the perf
 * trajectory file (BENCH_throughput.json), labelled --bench-label.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lab/reporter.hh"
#include "lab/result_table.hh"
#include "model/traffic_model.hh"
#include "sim/obs_cli.hh"
#include "traffic/engine.hh"

namespace
{

using namespace msgsim;

struct Options
{
    std::string pattern = "incast";
    std::string proto = "am";
    std::string substrate = "cm5";
    std::uint32_t nodes = 16;
    std::uint32_t msgs = 8;
    std::uint32_t size = 2;
    double hot = 0.5;
    std::uint64_t seed = 1;
    std::uint64_t jitter = 0;
    std::uint64_t injectGap = 0;
    std::uint64_t deliverGap = 0;
    bool predict = false;
    bool quiet = false;
    std::string jsonOut;
    std::string benchOut;
    std::string benchLabel = "traffic";
};

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: msgsim-traffic [options]\n"
        "\n"
        "  --pattern=<p>      uniform | permutation | hotspot | ring |\n"
        "                     transpose | incast | alltoall  [incast]\n"
        "  --protocol=<p>     am | seq | acked               [am]\n"
        "  --substrate=<s>    cm5 | cr | rdma | nicam        [cm5]\n"
        "  --nodes=<n>        machine size                   [16]\n"
        "  --msgs=<n>         messages per node              [8]\n"
        "  --size=<w>         payload words per message      [2]\n"
        "  --hot=<f>          hotspot fraction               [0.5]\n"
        "  --seed=<n>         pattern / payload seed         [1]\n"
        "  --jitter=<t>       cm5/nicam routing jitter       [0]\n"
        "  --inject-gap=<t>   ticks between injections       [0]\n"
        "  --deliver-gap=<t>  delivery pacing at the sink    [0]\n"
        "  --predict          gate measured against the analytic\n"
        "                     predictor; exit 1 on drift\n"
        "  --quiet            suppress the stdout tables\n"
        "  --json-out=<file>  write the run table as JSON\n"
        "  --bench-out=<file> append wall-clock entry to the perf\n"
        "                     trajectory file\n"
        "  --bench-label=<l>  trajectory entry label  [traffic]\n"
        "  --trace-out=<file>, --metrics-out=<file>  (observability)\n",
        to);
}

bool
eat(const std::string &arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (arg.compare(0, n, key) != 0)
        return false;
    out = arg.substr(n);
    return true;
}

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string v;
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--predict") {
            opt.predict = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (eat(arg, "--pattern=", opt.pattern) ||
                   eat(arg, "--protocol=", opt.proto) ||
                   eat(arg, "--substrate=", opt.substrate) ||
                   eat(arg, "--json-out=", opt.jsonOut) ||
                   eat(arg, "--bench-out=", opt.benchOut) ||
                   eat(arg, "--bench-label=", opt.benchLabel)) {
        } else if (eat(arg, "--nodes=", v)) {
            opt.nodes = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--msgs=", v)) {
            opt.msgs = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--size=", v)) {
            opt.size = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--hot=", v)) {
            opt.hot = std::stod(v);
        } else if (eat(arg, "--seed=", v)) {
            opt.seed = std::stoull(v);
        } else if (eat(arg, "--jitter=", v)) {
            opt.jitter = std::stoull(v);
        } else if (eat(arg, "--inject-gap=", v)) {
            opt.injectGap = std::stoull(v);
        } else if (eat(arg, "--deliver-gap=", v)) {
            opt.deliverGap = std::stoull(v);
        } else {
            std::fprintf(stderr, "msgsim-traffic: unknown flag '%s'\n",
                         arg.c_str());
            usage(stderr);
            return false;
        }
    }
    return true;
}

/** Predicted-vs-measured comparison with an exact-intent tolerance. */
bool
agree(double predicted, double measured)
{
    const double diff = std::fabs(predicted - measured);
    const double scale =
        std::max(1.0, std::max(std::fabs(predicted),
                               std::fabs(measured)));
    return diff <= 1e-9 * scale;
}

} // namespace

int
main(int argc, char **argv)
{
    auto obsOpts = obs::parseArgs(argc, argv);
    obs::Scope scope(obsOpts);

    Options opt;
    if (!parse(argc, argv, opt))
        return 2;

    TrafficSpec spec;
    if (!patternFromString(opt.pattern, spec.pattern)) {
        std::fprintf(stderr, "msgsim-traffic: unknown pattern '%s'\n",
                     opt.pattern.c_str());
        return 2;
    }
    if (!protoFromString(opt.proto, spec.proto)) {
        std::fprintf(stderr, "msgsim-traffic: unknown protocol '%s'\n",
                     opt.proto.c_str());
        return 2;
    }
    Substrate substrate;
    if (!substrateFromString(opt.substrate, substrate)) {
        std::fprintf(stderr,
                     "msgsim-traffic: unknown substrate '%s'\n",
                     opt.substrate.c_str());
        return 2;
    }
    spec.nodes = opt.nodes;
    spec.messagesPerNode = opt.msgs;
    spec.sizeWords = opt.size;
    spec.hotFraction = opt.hot;
    spec.seed = opt.seed;
    spec.maxJitter = opt.jitter;
    spec.injectGap = opt.injectGap;
    spec.deliverGap = opt.deliverGap;

    Stack stack(trafficStackConfig(spec, substrate));
    scope.bindClock(stack.sim());
    TrafficEngine engine(stack);

    const auto w0 = std::chrono::steady_clock::now();
    const TrafficResult res = engine.run(spec);
    const auto w1 = std::chrono::steady_clock::now();
    const double wallUs =
        std::chrono::duration<double, std::micro>(w1 - w0).count();
    scope.collect(stack.sim(), "sim");

    lab::ResultTable t;
    t.name = "traffic";
    t.title = "Traffic run: " + opt.pattern + " / " + opt.proto +
              " on " + opt.substrate;
    t.columns = {"substrate", "pattern",  "protocol", "nodes",
                 "msgs/node", "frags",    "polls",    "ooo",
                 "acks",      "ticks",    "instr/node", "max/mean",
                 "hw retries", "lat p50",  "lat p95",  "lat p99",
                 "ok"};
    const Histogram lat = res.latencyHistogram(0).total();
    t.addRow({lab::Cell::text(opt.substrate),
              lab::Cell::text(opt.pattern),
              lab::Cell::text(opt.proto),
              lab::Cell::integer(spec.nodes),
              lab::Cell::integer(spec.messagesPerNode),
              lab::Cell::integer(res.shape.fragmentsSent),
              lab::Cell::integer(res.shape.polls),
              lab::Cell::integer(res.shape.ooo),
              lab::Cell::integer(res.shape.acksSent),
              lab::Cell::integer(res.elapsed),
              lab::Cell::real(res.perNodeInstr.mean()),
              lab::Cell::real(res.maxOverMean),
              lab::Cell::integer(res.hwRetries),
              lab::Cell::real(lat.percentile(50)),
              lab::Cell::real(lat.percentile(95)),
              lab::Cell::real(lat.percentile(99)),
              lab::Cell::text(res.ok ? "ok" : "FAIL")});
    if (!opt.quiet)
        std::fputs(t.markdown().c_str(), stdout);

    bool gateOk = res.ok;
    if (opt.predict) {
        const TrafficPrediction pred = predictTraffic(res.shape);
        lab::ResultTable pt;
        pt.name = "traffic-predict";
        pt.title = "Predicted vs measured per-feature bill "
                   "(reg/mem/dev)";
        pt.columns = {"feature", "category", "predicted", "measured",
                      "status"};
        for (int f = 0; f < numPaperFeatures; ++f) {
            const CatCost &p = pred.feature[f];
            const CatCost &m = res.measured[f];
            const double pv[3] = {p.reg, p.mem, p.dev};
            const double mv[3] = {m.reg, m.mem, m.dev};
            static const char *kCat[3] = {"reg", "mem", "dev"};
            for (int c = 0; c < 3; ++c) {
                const bool ok = agree(pv[c], mv[c]);
                gateOk = gateOk && ok;
                pt.addRow({lab::Cell::text(toString(
                               static_cast<Feature>(f))),
                           lab::Cell::text(kCat[c]),
                           lab::Cell::real(pv[c]),
                           lab::Cell::real(mv[c]),
                           lab::Cell::text(ok ? "ok" : "DRIFT")});
            }
        }
        if (!opt.quiet) {
            std::fputs("\n", stdout);
            std::fputs(pt.markdown().c_str(), stdout);
            std::printf("\npredicted total %.0f, measured total "
                        "%.0f\n",
                        pred.grandTotal(),
                        res.measuredGrandTotal());
        }
    }

    if (!opt.jsonOut.empty())
        lab::Reporter::writeFile(opt.jsonOut, t.jsonText());

    if (!opt.benchOut.empty()) {
        lab::ResultTable bt;
        bt.name = "W-traffic";
        bt.title = "Traffic-engine throughput: fragments/s "
                   "(host wall-clock)";
        bt.columns = {"scenario", "fragments", "wall us",
                      "fragments/s"};
        const double fps =
            wallUs > 0 ? 1e6 * static_cast<double>(
                                   res.shape.fragmentsSent) /
                             wallUs
                       : 0;
        bt.addRow({lab::Cell::text(opt.pattern + "/" + opt.proto +
                                   "/" + opt.substrate),
                   lab::Cell::integer(res.shape.fragmentsSent),
                   lab::Cell::real(wallUs), lab::Cell::real(fps)});
        bt.notes = {"Measures this repository's simulator, not the "
                    "modeled machine; feeds the repo-root "
                    "BENCH_throughput.json perf trajectory."};
        lab::Reporter::appendBench(opt.benchOut, bt, opt.benchLabel);
    }

    if (!res.ok)
        std::fprintf(stderr, "msgsim-traffic: run FAILED "
                             "(delivery/verification)\n");
    else if (!gateOk)
        std::fprintf(stderr, "msgsim-traffic: predicted-vs-measured "
                             "DRIFT\n");
    return gateOk ? 0 : 1;
}

/**
 * @file
 * The declarative traffic engine: a TrafficSpec names a destination
 * pattern, a per-message protocol, and the scale knobs (nodes,
 * message size, injection rate); the engine runs it on any Stack —
 * cm5, cr, rdma or nicam — through the normal CMAM/Accounting path
 * and reports both the cost statistics and the *structural event
 * counts* the analytic predictor (model/traffic_model.hh) consumes.
 *
 * Message protocols, layered on am4 fragments:
 *
 *  - am    : fire-and-forget.  Each message is ceil(size/2) 4-word
 *            fragments; the handler verifies a checksum.  Pure base
 *            cost — the Table 1 coin, machine-wide.
 *  - seq   : fragments of one (src, dst) flow must be consumed in
 *            order.  The receiver keeps an expected counter and a
 *            reorder stash; arrivals the fabric reordered pay the
 *            insert/drain bill under Feature::InOrderDelivery.  On
 *            an in-order fabric (cr, rdma) the machinery never
 *            fires beyond the per-arrival compare — the paper's
 *            "overheads vanish" argument at traffic scale.
 *  - acked : the receiver acknowledges each completed message; the
 *            source holds fragments for retransmission until acked.
 *            All bookkeeping is charged under
 *            Feature::FaultTolerance — paid even on a reliable
 *            fabric, exactly as the paper measures.
 *
 * Every per-event charge is a constant from traffic_cost
 * (model/traffic_model.hh), so predicted-vs-measured agreement is
 * exact by construction and any charged-path drift fails the W1
 * gate.
 */

#ifndef MSGSIM_TRAFFIC_ENGINE_HH
#define MSGSIM_TRAFFIC_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/traffic_model.hh"
#include "traffic/traffic.hh"

namespace msgsim
{

/** Per-message protocol the traffic rides on. */
enum class TrafficProto : std::uint8_t
{
    Am,    ///< fire-and-forget fragments
    Seq,   ///< per-flow in-order consumption (reorder stash)
    Acked, ///< per-message acks + source retransmit hold
};

const char *toString(TrafficProto p);

/** Parse "am" / "seq" / "acked"; false = unknown. */
bool protoFromString(const std::string &name, TrafficProto &out);

/** Parse "cm5" / "cr" / "rdma" / "nicam"; false = unknown. */
bool substrateFromString(const std::string &name, Substrate &out);

/**
 * One declarative traffic scenario.
 */
struct TrafficSpec
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    TrafficProto proto = TrafficProto::Am;
    std::uint32_t nodes = 16;
    std::uint32_t messagesPerNode = 8;
    std::uint32_t sizeWords = 2;  ///< payload words per message
    double hotFraction = 0.5;     ///< Hotspot knob
    std::uint64_t seed = 1;

    // Fabric knobs forwarded into the StackConfig by
    // trafficStackConfig(): time-shaping only, never instructions.
    Tick injectGap = 0;  ///< injection rate: ticks between packets
    Tick deliverGap = 0; ///< delivery rate at the destination edge
    Tick maxJitter = 0;  ///< cm5/nicam: reordering source

    /** Fragments per message: 2 payload words ride each am4. */
    std::uint32_t
    fragmentsPerMessage() const
    {
        return sizeWords <= 2 ? 1 : (sizeWords + 1) / 2;
    }
};

/** StackConfig for running @p spec on @p substrate. */
StackConfig trafficStackConfig(const TrafficSpec &spec,
                               Substrate substrate);

/**
 * One message's closed-loop timing: @p birth is the tick its first
 * fragment was sent; @p done is the tick the loop closed — the
 * receiver consuming the last fragment (am/seq) or the source
 * consuming the message's ack (acked).
 */
struct MsgTiming
{
    Tick birth = 0;
    Tick done = 0;

    Tick latency() const { return done - birth; }
};

/**
 * Outcome of one engine run: correctness, structural counts (the
 * model inputs), the measured per-feature bill, and the usual
 * per-node statistics.
 */
struct TrafficResult
{
    bool ok = false;
    TrafficShape shape;     ///< realized structural event counts
    Tick elapsed = 0;
    std::uint64_t hwRetries = 0;       ///< fabric retransmissions
    std::uint64_t deliveryRetries = 0; ///< sink-full redeliveries
    RunningStat perNodeInstr;
    double maxOverMean = 0;

    /**
     * Per-message closed-loop timings, ordered by (source,
     * destination, message index) — the latency-percentile input.
     */
    std::vector<MsgTiming> timings;

    /** Measured machine-wide per-feature bill (category-resolved). */
    CatCost measured[numPaperFeatures];

    CatCost measuredTotal() const;
    double measuredGrandTotal() const;

    /**
     * The timings as a birth-tick-windowed latency histogram
     * (window width @p windowTicks; 0 = one window).  Range is
     * [0, max latency + 1), so percentiles come straight from
     * Histogram::percentile on total() or any mergeRange().
     */
    WindowedHistogram latencyHistogram(std::uint64_t windowTicks,
                                       std::size_t bins = 64) const;
};

/**
 * The engine.  Registers its handlers on construction; run() may be
 * called repeatedly (fresh state per call, counters accumulate per
 * stack as usual).
 */
class TrafficEngine
{
  public:
    explicit TrafficEngine(Stack &stack);

    TrafficEngine(const TrafficEngine &) = delete;
    TrafficEngine &operator=(const TrafficEngine &) = delete;

    /** Run @p spec; fatal if spec.nodes != the stack's node count. */
    TrafficResult run(const TrafficSpec &spec);

    // ------------------------------------------------------------
    // Live run state (telemetry probes; never charged).
    // ------------------------------------------------------------

    /** Fragments injected so far in the current run. */
    std::uint64_t fragmentsSent() const { return shape_.fragmentsSent; }

    /** Fragments consumed by receivers so far in the current run. */
    std::uint64_t fragmentsConsumed() const { return consumed_; }

  private:
    void onData(NodeId self, NodeId src,
                const std::vector<Word> &args);
    void onAck(NodeId self, NodeId src,
               const std::vector<Word> &args);
    void consume(NodeId self, NodeId src, Word meta, Word pay);
    void sendAck(NodeId self, NodeId src, std::uint32_t ackIdx);

    Stack &stack_;
    std::vector<int> dataHandler_;
    std::vector<int> ackHandler_;

    // Per-run state.
    const TrafficSpec *spec_ = nullptr;
    TrafficShape shape_;
    std::uint64_t badPayloads_ = 0;
    /// Per-node charge target for the protocols' memory operations.
    std::vector<Addr> scratchAddr_;
    /// seq proto: [dst][src] expected fragment sequence.
    std::vector<std::vector<std::uint32_t>> expect_;
    /// seq proto: [dst][src] reorder stash (fragSeq -> payload).
    std::vector<std::vector<std::map<std::uint32_t, Word>>> stash_;
    /// acked proto: [dst][src] fragments seen (ack every k-th).
    std::vector<std::vector<std::uint32_t>> fragsGot_;
    /// acked proto: [src] acks consumed.
    std::vector<std::uint32_t> acksGot_;
    std::uint64_t consumed_ = 0;

    // Closed-loop latency bookkeeping.  Flat [src][dst][msg] arrays,
    // preallocated in run() so the charged send/consume paths only
    // index — no allocation inside hostprof scopes.
    std::uint32_t latFrags_ = 1;  ///< fragments per message
    std::uint32_t latMsgs_ = 0;   ///< messages per node
    std::uint32_t latNodes_ = 0;
    std::vector<Tick> msgBirth_;
    std::vector<Tick> msgDone_;
    std::vector<std::uint32_t> msgFrags_;

    std::size_t
    msgIndex(NodeId src, NodeId dst, std::uint32_t m) const
    {
        return (static_cast<std::size_t>(src) * latNodes_ + dst) *
                   latMsgs_ +
               m;
    }
};

} // namespace msgsim

#endif // MSGSIM_TRAFFIC_ENGINE_HH

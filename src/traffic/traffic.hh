/**
 * @file
 * Synthetic traffic patterns for machine-wide experiments — the
 * standard destination distributions of the interconnection-network
 * literature the paper draws on (uniform random, permutation,
 * hotspot, nearest-neighbor ring, transpose), extended with the two
 * datacenter staples (incast fan-in, all-to-all rotation), plus the
 * classic runner that drives active-message traffic across a whole
 * stack and reports per-node software cost statistics.
 *
 * The declarative, protocol-layered traffic engine lives in
 * traffic/engine.hh; this header is the pattern vocabulary both
 * share.
 */

#ifndef MSGSIM_TRAFFIC_TRAFFIC_HH
#define MSGSIM_TRAFFIC_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "protocols/stack.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace msgsim
{

/** Classic destination patterns. */
enum class TrafficPattern : std::uint8_t
{
    UniformRandom, ///< fresh uniform destination per message
    Permutation,   ///< fixed random bijection, drawn once per seed
    Hotspot,       ///< a fraction of traffic targets node 0
    Ring,          ///< nearest neighbor: (i + 1) mod N
    Transpose,     ///< bit-reversal-ish: (i + N/2) mod N
    Incast,        ///< every node targets node 0 (fan-in storm)
    AllToAll,      ///< per-source rotation over every other node
};

/** Printable name of a pattern. */
const char *toString(TrafficPattern p);

/** Parse a pattern name ("uniform", "incast", ...); false = unknown. */
bool patternFromString(const std::string &name, TrafficPattern &out);

/**
 * Destination generator for one pattern instance.
 */
class TrafficGen
{
  public:
    /**
     * @param nodes        machine size
     * @param pattern      destination pattern
     * @param seed         randomness for the stochastic patterns
     * @param hotFraction  Hotspot: probability a message hits node 0
     */
    TrafficGen(std::uint32_t nodes, TrafficPattern pattern,
               std::uint64_t seed = 1, double hotFraction = 0.5);

    /** Destination of @p src's next message (never src itself). */
    NodeId destFor(NodeId src);

    TrafficPattern pattern() const { return pattern_; }

    /** The fixed mapping (Permutation/Ring/Transpose/Incast). */
    const std::vector<NodeId> &mapping() const { return mapping_; }

  private:
    std::uint32_t nodes_;
    TrafficPattern pattern_;
    Rng rng_;
    double hotFraction_;
    std::vector<NodeId> mapping_;
    std::vector<std::uint32_t> rotation_; ///< AllToAll per-src cursor
};

/**
 * Drives @p messagesPerNode active messages from every node under a
 * pattern and reports delivery/cost statistics.
 */
class TrafficRunner
{
  public:
    struct Result
    {
        bool ok = false;             ///< every payload checksum held
        std::uint64_t messages = 0;  ///< messages sent
        std::uint64_t delivered = 0; ///< handler invocations
        Tick elapsed = 0;
        RunningStat perNodeInstr;    ///< instruction bill per node
        double maxOverMean = 0;      ///< load imbalance indicator
    };

    explicit TrafficRunner(Stack &stack);

    Result run(TrafficGen &gen, std::uint32_t messagesPerNode,
               std::uint64_t payloadSeed = 99);

  private:
    Stack &stack_;
    std::vector<int> handlerIds_;
    std::uint64_t delivered_ = 0;
    std::uint64_t badPayloads_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_TRAFFIC_TRAFFIC_HH

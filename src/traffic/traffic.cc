#include "traffic/traffic.hh"

#include "sim/log.hh"

namespace msgsim
{

const char *
toString(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::UniformRandom: return "uniform-random";
      case TrafficPattern::Permutation:   return "permutation";
      case TrafficPattern::Hotspot:       return "hotspot";
      case TrafficPattern::Ring:          return "ring";
      case TrafficPattern::Transpose:     return "transpose";
      case TrafficPattern::Incast:        return "incast";
      case TrafficPattern::AllToAll:      return "alltoall";
      default:                            return "?";
    }
}

bool
patternFromString(const std::string &name, TrafficPattern &out)
{
    if (name == "uniform" || name == "uniform-random")
        out = TrafficPattern::UniformRandom;
    else if (name == "permutation")
        out = TrafficPattern::Permutation;
    else if (name == "hotspot")
        out = TrafficPattern::Hotspot;
    else if (name == "ring")
        out = TrafficPattern::Ring;
    else if (name == "transpose")
        out = TrafficPattern::Transpose;
    else if (name == "incast")
        out = TrafficPattern::Incast;
    else if (name == "alltoall" || name == "all-to-all")
        out = TrafficPattern::AllToAll;
    else
        return false;
    return true;
}

TrafficGen::TrafficGen(std::uint32_t nodes, TrafficPattern pattern,
                       std::uint64_t seed, double hotFraction)
    : nodes_(nodes), pattern_(pattern), rng_(seed),
      hotFraction_(hotFraction)
{
    if (nodes_ < 2)
        msgsim_fatal("traffic needs at least 2 nodes");
    switch (pattern_) {
      case TrafficPattern::Permutation: {
        // A fixed derangement-ish bijection: shuffle, then patch any
        // fixed points by swapping with a neighbor.
        mapping_.resize(nodes_);
        for (std::uint32_t i = 0; i < nodes_; ++i)
            mapping_[i] = i;
        rng_.shuffle(mapping_);
        for (std::uint32_t i = 0; i < nodes_; ++i)
            if (mapping_[i] == i)
                std::swap(mapping_[i],
                          mapping_[(i + 1) % nodes_]);
        break;
      }
      case TrafficPattern::Ring: {
        mapping_.resize(nodes_);
        for (std::uint32_t i = 0; i < nodes_; ++i)
            mapping_[i] = (i + 1) % nodes_;
        break;
      }
      case TrafficPattern::Transpose: {
        mapping_.resize(nodes_);
        for (std::uint32_t i = 0; i < nodes_; ++i) {
            NodeId d = (i + nodes_ / 2) % nodes_;
            if (d == i)
                d = (d + 1) % nodes_;
            mapping_[i] = d;
        }
        break;
      }
      case TrafficPattern::Incast: {
        // The fan-in storm: everyone hammers node 0 (which, unable
        // to send to itself, returns the favor to node 1).
        mapping_.resize(nodes_);
        for (std::uint32_t i = 0; i < nodes_; ++i)
            mapping_[i] = i == 0 ? 1 : 0;
        break;
      }
      case TrafficPattern::AllToAll: {
        rotation_.assign(nodes_, 0);
        break;
      }
      default:
        break;
    }
}

NodeId
TrafficGen::destFor(NodeId src)
{
    switch (pattern_) {
      case TrafficPattern::UniformRandom: {
        NodeId d = static_cast<NodeId>(rng_.below(nodes_));
        if (d == src)
            d = (d + 1) % nodes_;
        return d;
      }
      case TrafficPattern::Hotspot: {
        if (src != 0 && rng_.chance(hotFraction_))
            return 0;
        NodeId d = static_cast<NodeId>(rng_.below(nodes_));
        if (d == src)
            d = (d + 1) % nodes_;
        return d;
      }
      case TrafficPattern::Permutation:
      case TrafficPattern::Ring:
      case TrafficPattern::Transpose:
      case TrafficPattern::Incast:
        return mapping_[src];
      case TrafficPattern::AllToAll: {
        // Round-robin over every other node, per-source cursor: the
        // k-th message from src goes to (src + 1 + k mod (N-1)).
        const std::uint32_t k = rotation_[src]++;
        return static_cast<NodeId>(
            (src + 1 + k % (nodes_ - 1)) % nodes_);
      }
      default:
        msgsim_panic("bad traffic pattern");
    }
}

TrafficRunner::TrafficRunner(Stack &stack) : stack_(stack)
{
    const std::uint32_t n = stack_.machine().nodeCount();
    handlerIds_.resize(n);
    for (NodeId id = 0; id < n; ++id)
        handlerIds_[id] = stack_.cmam(id).registerHandler(
            [this](NodeId src, const std::vector<Word> &args) {
                // Payload self-check: [src, seq, src ^ seq ^ magic].
                ++delivered_;
                if (args.at(2) !=
                    (args.at(0) ^ args.at(1) ^ 0x5a5a5a5au) ||
                    args.at(0) != src)
                    ++badPayloads_;
            });
}

TrafficRunner::Result
TrafficRunner::run(TrafficGen &gen, std::uint32_t messagesPerNode,
                   std::uint64_t payloadSeed)
{
    Result res;
    const std::uint32_t n = stack_.machine().nodeCount();
    delivered_ = 0;
    badPayloads_ = 0;

    std::vector<std::uint64_t> before(n);
    for (NodeId id = 0; id < n; ++id)
        before[id] = stack_.node(id).acct().counter().paperTotal();
    const Tick t0 = stack_.sim().now();

    Rng seq_rng(payloadSeed);
    for (std::uint32_t k = 0; k < messagesPerNode; ++k) {
        for (NodeId src = 0; src < n; ++src) {
            const NodeId dst = gen.destFor(src);
            const Word seq = static_cast<Word>(seq_rng.next());
            Node &node = stack_.node(src);
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(src).am4(
                dst, handlerIds_[dst],
                {src, seq, src ^ seq ^ 0x5a5a5a5au});
            ++res.messages;
        }
        // Drain as we go so receive FIFOs stay shallow.
        stack_.settle();
        for (NodeId id = 0; id < n; ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
        }
    }
    stack_.settle();
    for (NodeId id = 0; id < n; ++id) {
        Node &node = stack_.node(id);
        if (node.ni().hwRecvPending()) {
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
        }
    }

    double max_instr = 0;
    for (NodeId id = 0; id < n; ++id) {
        const double instr = static_cast<double>(
            stack_.node(id).acct().counter().paperTotal() -
            before[id]);
        res.perNodeInstr.sample(instr);
        max_instr = std::max(max_instr, instr);
    }
    res.elapsed = stack_.sim().now() - t0;
    res.delivered = delivered_;
    res.ok = badPayloads_ == 0 && delivered_ == res.messages;
    res.maxOverMean = res.perNodeInstr.mean() > 0
                          ? max_instr / res.perNodeInstr.mean()
                          : 0;
    return res;
}

} // namespace msgsim

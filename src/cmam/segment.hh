/**
 * @file
 * Communication segments (the CMAM xfer receive-side abstraction).
 *
 * A segment associates a small integer id — carried in every data
 * packet's header — with a destination buffer and a countdown of
 * expected packets.  The finite-sequence protocol preallocates a
 * segment during its buffer-management handshake (paper Figure 3,
 * steps 1-3) and frees it at completion (step 5).
 *
 * Allocation and deallocation charge the instruction counts implied
 * by the paper's Table 3 (destination buffer-management = one packet
 * receive + alloc + one packet send + free):
 *
 *     alloc: 25 reg + 8 mem        free: 18 reg + 3 mem
 *
 * The table itself lives in modeled node memory (free list plus
 * 4-word records), and the charged loads/stores really touch it.
 * The free-list head is modeled as register-cached across calls, so
 * some bookkeeping reads use uncharged backing-store access — each
 * such site is commented.
 */

#ifndef MSGSIM_CMAM_SEGMENT_HH
#define MSGSIM_CMAM_SEGMENT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hh"
#include "machine/processor.hh"

namespace msgsim
{

/** Sentinel id meaning "no segment". */
constexpr Word invalidSegment = 0xffu;

/**
 * The per-node table of communication segments.
 */
class SegmentTable
{
  public:
    /** Invoked (not charged here) when a segment's count reaches 0. */
    using CompletionFn = std::function<void(Word segId)>;

    /**
     * Carve the table out of @p mem and build the free list.
     * Initialization models boot-time setup and is not charged.
     */
    SegmentTable(Memory &mem, int maxSegments = 64);

    int maxSegments() const { return maxSegments_; }

    /** Segments currently allocated. */
    int allocatedCount() const { return allocated_; }

    /** True when @p segId names a live segment (uncharged). */
    bool isActive(Word segId) const;

    /** True when at least one segment is free (uncharged; used by
     *  the CR NI's hardware acceptance check). */
    bool hasFree() const { return allocated_ < maxSegments_; }

    /**
     * Allocate a segment for @p expectedPackets packets landing at
     * @p bufBase.  Returns the segment id, or invalidSegment when
     * the table is full.  Charges 25 reg + 8 mem.
     */
    Word alloc(Processor &proc, Addr bufBase, Word expectedPackets);

    /** Free a segment.  Charges 18 reg + 3 mem. */
    void free(Processor &proc, Word segId);

    /**
     * Account one arrived data packet: decrement the remaining count
     * (1 reg, per the paper's in-order accounting — the count is
     * modeled register-cached) and report whether the transfer is
     * complete.
     */
    bool packetArrived(Processor &proc, Word segId);

    /**
     * Charge the completion-path reload of a segment record's three
     * live fields (buffer base, count, aux): 3 mem loads.
     */
    void reloadRecord(Processor &proc, Word segId) const;

    /** Buffer base of an active segment (uncharged helper). */
    Addr bufBase(Word segId) const;

    /** Remaining packet count of an active segment (uncharged). */
    Word remaining(Word segId) const;

    /** Set the completion callback (driver-level, uncharged). */
    void setCompletion(Word segId, CompletionFn fn);

    /** Take (and clear) the completion callback of a segment. */
    CompletionFn takeCompletion(Word segId);

  private:
    // Record layout: +0 bufBase, +1 remaining, +2 flags, +3 aux.
    static constexpr Addr recordWords = 4;

    Addr recordAddr(Word segId) const;
    void checkActive(Word segId, const char *what) const;

    Memory &mem_;
    int maxSegments_;
    int allocated_ = 0;

    Addr freeHeadAddr_; ///< memory word holding the free-list head
    Addr allocCountAddr_ = 0; ///< memory word holding the live count
    Word freeTail_ = 0; ///< free-list tail (modeled register-cached)
    Addr freeListBase_; ///< maxSegments words of next-links
    Addr recordsBase_;  ///< maxSegments * recordWords of records

    std::vector<CompletionFn> completions_;
};

} // namespace msgsim

#endif // MSGSIM_CMAM_SEGMENT_HH

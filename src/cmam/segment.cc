#include "cmam/segment.hh"

#include "sim/log.hh"

namespace msgsim
{

namespace
{
constexpr Word flagActive = 1u;
constexpr Word nilLink = ~Word(0);
} // namespace

SegmentTable::SegmentTable(Memory &mem, int maxSegments)
    : mem_(mem), maxSegments_(maxSegments),
      completions_(static_cast<std::size_t>(maxSegments))
{
    if (maxSegments_ < 1 ||
        maxSegments_ > static_cast<int>(invalidSegment))
        msgsim_fatal("segment table size must be in [1, ",
                     invalidSegment - 1, "], got ", maxSegments_);

    // Boot-time carving and free-list threading: uncharged.
    freeHeadAddr_ = mem_.alloc(1);
    allocCountAddr_ = mem_.alloc(1);
    freeListBase_ = mem_.alloc(static_cast<std::size_t>(maxSegments_));
    recordsBase_ =
        mem_.alloc(static_cast<std::size_t>(maxSegments_) * recordWords);

    mem_.write(freeHeadAddr_, 0);
    for (int i = 0; i < maxSegments_; ++i) {
        const Word next =
            (i + 1 < maxSegments_) ? static_cast<Word>(i + 1) : nilLink;
        mem_.write(freeListBase_ + static_cast<Addr>(i), next);
    }
    freeTail_ = static_cast<Word>(maxSegments_ - 1);
}

Addr
SegmentTable::recordAddr(Word segId) const
{
    return recordsBase_ + static_cast<Addr>(segId) * recordWords;
}

void
SegmentTable::checkActive(Word segId, const char *what) const
{
    if (segId >= static_cast<Word>(maxSegments_))
        msgsim_panic("segment ", what, ": bad id ", segId);
    if (!(mem_.read(recordAddr(segId) + 2) & flagActive))
        msgsim_panic("segment ", what, ": segment ", segId,
                     " not active");
}

Word
SegmentTable::alloc(Processor &proc, Addr bufBase, Word expectedPackets)
{
    // Modeled assembly (25 reg + 8 mem): locate the free-list head,
    // unlink the record, initialize its four fields, and bump the
    // allocation count.
    proc.regOps(4);                              // entry, head address
    const Word head = proc.loadWord(freeHeadAddr_);        // mem 1
    proc.regOps(3);                              // nil test + branch
    if (head == nilLink) {
        // Table full; caller must back off.  The failure path is not
        // part of the calibrated minimum path.
        return invalidSegment;
    }
    const Word next =
        proc.loadWord(freeListBase_ + static_cast<Addr>(head)); // mem 2
    proc.storeWord(freeHeadAddr_, next);                        // mem 3
    if (next == nilLink)
        freeTail_ = nilLink;
    proc.regOps(6);                              // record addr, packing
    const Addr rec = recordAddr(head);
    proc.storeWord(rec + 0, bufBase);                           // mem 4
    proc.storeWord(rec + 1, expectedPackets);                   // mem 5
    proc.storeWord(rec + 2, flagActive);                        // mem 6
    proc.storeWord(rec + 3, 0);                                 // mem 7
    // Allocation count kept register-cached in the modeled assembly;
    // only the store is charged.
    proc.storeWord(allocCountAddr_, static_cast<Word>(allocated_ + 1)); // 8
    proc.regOps(12);                             // id pack, bounds, ret val
    ++allocated_;
    return head;
}

void
SegmentTable::free(Processor &proc, Word segId)
{
    checkActive(segId, "free");
    // Modeled assembly (18 reg + 3 mem): append the record to the
    // free list (FIFO reuse maximizes the id-reuse distance so stale
    // in-flight packets cannot alias a fresh allocation) and clear
    // the active flag.  The tail pointer is register-cached, so only
    // the three stores are charged.
    proc.regOps(10);                             // id unpack, addresses
    proc.storeWord(freeListBase_ + static_cast<Addr>(segId), nilLink); // 1
    if (freeTail_ == nilLink) {
        proc.storeWord(freeHeadAddr_, segId);                          // 2
    } else {
        proc.storeWord(freeListBase_ + static_cast<Addr>(freeTail_),
                       segId);                                         // 2
    }
    freeTail_ = segId;
    proc.storeWord(recordAddr(segId) + 2, 0);                          // 3
    proc.regOps(8);                              // flag masking, return
    completions_[segId] = nullptr;
    --allocated_;
}

bool
SegmentTable::packetArrived(Processor &proc, Word segId)
{
    checkActive(segId, "packet update");
    // The paper accounts the per-packet count decrement as a single
    // register operation (the count is modeled register-cached); the
    // backing store is updated without further charge.
    proc.regOps(1);
    const Addr addr = recordAddr(segId) + 1;
    const Word remaining = mem_.read(addr);
    if (remaining == 0)
        msgsim_panic("segment ", segId, " received more packets than "
                     "expected");
    mem_.write(addr, remaining - 1);
    return remaining - 1 == 0;
}

bool
SegmentTable::isActive(Word segId) const
{
    if (segId >= static_cast<Word>(maxSegments_))
        return false;
    return (mem_.read(recordAddr(segId) + 2) & flagActive) != 0;
}

void
SegmentTable::reloadRecord(Processor &proc, Word segId) const
{
    checkActive(segId, "reloadRecord");
    const Addr rec = recordAddr(segId);
    (void)proc.loadWord(rec + 0);
    (void)proc.loadWord(rec + 1);
    (void)proc.loadWord(rec + 3);
}

Addr
SegmentTable::bufBase(Word segId) const
{
    checkActive(segId, "bufBase");
    return mem_.read(recordAddr(segId) + 0);
}

Word
SegmentTable::remaining(Word segId) const
{
    checkActive(segId, "remaining");
    return mem_.read(recordAddr(segId) + 1);
}

void
SegmentTable::setCompletion(Word segId, CompletionFn fn)
{
    checkActive(segId, "setCompletion");
    completions_[segId] = std::move(fn);
}

SegmentTable::CompletionFn
SegmentTable::takeCompletion(Word segId)
{
    checkActive(segId, "takeCompletion");
    auto fn = std::move(completions_[segId]);
    completions_[segId] = nullptr;
    return fn;
}

} // namespace msgsim

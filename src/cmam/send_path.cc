#include "cmam/send_path.hh"

#include "hostprof/hostprof.hh"

#include "core/row.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

void
singlePacketSend(Node &node, Addr niBaseAddr, HwTag tag, NodeId dst,
                 Word header, const std::vector<Word> &args,
                 int lenWords, int vnet)
{
    Processor &p = node.proc();
    Accounting &a = p.acct();
    NetIface &ni = node.ni();
    const int n = lenWords;
    ScopedSpan span(node.id(), "cmam", "send_packet");
    hostprof::HostScope hps(hostprof::Site::CmamSend);

    if (n > ni.dataWords())
        msgsim_fatal("packet length ", n, " exceeds hardware packet "
                     "size ", ni.dataWords());
    if (static_cast<int>(args.size()) > n)
        msgsim_fatal("single-packet payload of ", args.size(),
                     " words exceeds packet length ", n);

    // Table 1, source column.  Call/Return = 3: call, window save,
    // restore+ret.
    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(3);
    }

    for (int attempt = 0;; ++attempt) {
        if (attempt > 1000)
            msgsim_panic("send retry livelock toward node ", dst);
        {
            // NI setup = 5: reg 3 (pack dst|tag, compute register
            // offsets), mem 1 (load the NI base pointer), dev 1
            // (store the control word).
            RowScope r(a, CostRow::NiSetup);
            p.regOps(3);
            (void)p.loadWord(niBaseAddr);
            ni.writeSendCtl(a, dst, tag, header, n, vnet);
        }
        {
            // First status check: send-FIFO space available?
            // dev 1 + reg 2 (mask, test).
            RowScope r(a, CostRow::CheckStatus);
            (void)ni.readStatus(a);
            p.regOps(2);
        }
        {
            // Write to NI = n/2 double-word stores of the payload
            // (2 at n = 4), zero-padded to the packet size.
            RowScope r(a, CostRow::WriteNi);
            for (int i = 0; i < n; i += 2) {
                const Word w0 = i < static_cast<int>(args.size())
                                    ? args[static_cast<std::size_t>(i)]
                                    : 0;
                const Word w1 =
                    i + 1 < static_cast<int>(args.size())
                        ? args[static_cast<std::size_t>(i + 1)]
                        : 0;
                ni.writeSendDouble(a, w0, w1);
            }
        }
        Word status;
        {
            // Second status check: send_ok confirmation plus the
            // incoming-packet test CMAM folds into the same read.
            // dev 1 + reg 3 (send_ok mask, recv mask, combine).
            RowScope r(a, CostRow::CheckStatus);
            status = ni.readStatus(a);
            p.regOps(3);
        }
        {
            // Control flow = 3: success branch, recv-pending branch,
            // loop exit.
            RowScope r(a, CostRow::ControlFlow);
            p.branches(3);
        }
        if (status & ni_status::sendOk)
            break;
        // Injection refused (network busy): software re-pushes the
        // whole packet.  Off the calibrated minimum path.
        if (TraceSession *ts = TraceSession::current())
            ts->instant(node.id(), "cmam", "send_busy");
    }
}

Word
pollIterationStatus(Node &node)
{
    Processor &p = node.proc();
    Accounting &a = p.acct();
    Word status;
    {
        RowScope r(a, CostRow::CheckStatus);
        status = node.ni().readStatus(a);
        p.regOps(1);
    }
    {
        RowScope r(a, CostRow::ControlFlow);
        p.branches(2);
    }
    return status;
}

} // namespace msgsim

/**
 * @file
 * The CMAM-style active messages layer.
 *
 * A from-scratch reimplementation of the interface shape of the CM-5
 * active message layer the paper instruments:
 *
 *  - am4()        == CMAM_4: a single-packet active message carrying
 *                   n words of user data (n = 4 on the CM-5);
 *  - poll()       == CMAM_request_poll + CMAM_handle_left +
 *                   CMAM_got_left: drain the NI and dispatch;
 *  - xferSend()   == CMAM_xfer_N: source side of the finite-sequence
 *                   bulk transfer;
 *  - the XferData receive path == CMAM_handle_left_xfer, storing
 *                   packet data into a preallocated segment.
 *
 * Every routine is written against the charged Processor/NetIface
 * primitives as a modeled SPARC instruction sequence; the counts it
 * produces are calibrated cell-by-cell to the paper's Tables 1-3
 * (see DESIGN.md section 2.1).  Comments of the form "reg k: ..."
 * document what the charged register instructions stand for.
 */

#ifndef MSGSIM_CMAM_CMAM_HH
#define MSGSIM_CMAM_CMAM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "cmam/segment.hh"
#include "machine/node.hh"
#include "net/packet.hh"

namespace msgsim
{

/** Messaging-layer control operations (header field A of Control). */
enum class CtrlOp : std::uint8_t
{
    XferAllocReq = 1, ///< finite-sequence step 1: request a segment
    XferAllocReply,   ///< step 3: segment id (or failure) back
    XferAck,          ///< step 6: end-to-end completion ack
    GenericA,         ///< free for tests / applications
    GenericB,         ///< free for tests / applications
    NumOps
};

/**
 * Per-node active message layer.
 */
class Cmam
{
  public:
    /** User active-message handler: src node + n words of arguments. */
    using AmHandler =
        std::function<void(NodeId src, const std::vector<Word> &args)>;

    /** Messaging-layer control sink. */
    using ControlSink = std::function<void(
        NodeId src, Word hdrArg, const std::vector<Word> &args)>;

    /**
     * Raw packet sink: the sink reads the packet from the NI itself,
     * charging its own costs (used by the indefinite-sequence
     * protocol's data and ack paths).
     */
    using RawSink = std::function<void(NodeId src)>;

    struct Config
    {
        int maxSegments = 64;
        int maxHandlers = 64;
        /// Interrupt-driven reception (paper footnote 2): trap entry/
        /// exit cost on a SPARC-class processor — full register
        /// window spill/fill, PSR save/restore, vectoring.  "The cost
        /// for interrupts is very high for the SPARC processor."
        int trapRegOps = 96;
        int trapDevOps = 2; ///< interrupt acknowledge + cause read
        /// §5 extension: bulk-transfer payload moved by a DMA engine
        /// instead of per-word loads/stores.  Affects the xfer data
        /// path on both sides (the node's layer must match its
        /// peers').
        bool dmaXfer = false;
        /// §5's deferred issue, made measurable: when the NI is NOT
        /// user-accessible, every messaging call (send, poll entry,
        /// xfer) crosses into the kernel.  The paper's premise is
        /// that "user-level access to the CM-5 network interface is
        /// essential for low-cost communication" — this knob shows
        /// why.
        bool kernelMediated = false;
        int syscallRegOps = 120; ///< trap + dispatch + copyin/out glue
    };

    explicit Cmam(Node &node) : Cmam(node, Config()) {}
    Cmam(Node &node, const Config &cfg);

    Cmam(const Cmam &) = delete;
    Cmam &operator=(const Cmam &) = delete;

    Node &node() { return node_; }
    int dataWords() const { return node_.ni().dataWords(); }
    SegmentTable &segments() { return segs_; }

    /** Register a user AM handler; returns its index. */
    int registerHandler(AmHandler fn);

    /** Install a control-operation sink. */
    void setControlSink(CtrlOp op, ControlSink fn);

    /** Install the indefinite-sequence data-packet sink. */
    void setStreamDataSink(RawSink fn) { streamDataSink_ = std::move(fn); }

    /** Install the indefinite-sequence ack sink. */
    void setStreamAckSink(RawSink fn) { streamAckSink_ = std::move(fn); }

    // ------------------------------------------------------------
    // Send paths.  The caller scopes the feature; rows are set here.
    // ------------------------------------------------------------

    /**
     * CMAM_4: send one active message with up to n words of payload
     * (zero-padded to the hardware packet size).  Source cost at
     * n = 4: 20 instructions (Table 1).
     */
    void am4(NodeId dst, int handler, const std::vector<Word> &args);

    /**
     * CMAM_reply_4: the reply-class active message, identical in cost
     * but carried on the second data network so it can always drain
     * past backed-up requests (footnote 6).  Use inside handlers that
     * answer a request.
     */
    void am4Reply(NodeId dst, int handler,
                  const std::vector<Word> &args);

    /**
     * Send a messaging-layer control packet (same cost as am4).
     * Replies and acknowledgements travel the reply network
     * (@p vnet = 1) so they can always drain past backed-up
     * requests (paper footnote 6).
     */
    void sendControl(NodeId dst, CtrlOp op, Word hdrArg,
                     const std::vector<Word> &args, int vnet = 0);

    /**
     * The shared single-packet injection sequence: control-word
     * store, space check, len/2 double-word data pushes, send_ok
     * confirmation: 14 reg + 1 mem + (len/2 + 3) dev.  @p lenWords
     * defaults to the 4-word CMAM_4 format; bulk-data senders (the
     * stream protocol) pass 0 for a full hardware packet.
     */
    void sendTagged(HwTag tag, NodeId dst, Word header,
                    const std::vector<Word> &args, int lenWords = 4,
                    int vnet = 0);

    /**
     * CMAM_xfer_N: stream @p words words starting at @p srcBuf into
     * segment @p segId on @p dst.  @p words must be a multiple of
     * the packet size.  Charges BaseCost (3 + p*(16 + 1.5n) style)
     * plus 2 reg per packet under InOrderDelivery (offset
     * maintenance).
     */
    void xferSend(NodeId dst, Word segId, Addr srcBuf,
                  std::uint32_t words);

    /**
     * DMA variant of the xfer source loop (requires Config::dmaXfer
     * on the receiving node too): one descriptor store per packet
     * replaces the per-word ldd/std traffic — base cost becomes
     * 3 + p*(15 reg + 4 dev) regardless of packet size.
     */
    void xferSendDma(NodeId dst, Word segId, Addr srcBuf,
                     std::uint32_t words);

    // ------------------------------------------------------------
    // Receive path.
    // ------------------------------------------------------------

    /**
     * CMAM_request_poll: drain the NI receive FIFO, dispatching each
     * packet by hardware tag.  Returns the number of packets
     * handled.  Fixed cost 12 reg + 1 dev plus per-packet costs by
     * tag (Table 1 destination column for user AMs).
     */
    int poll();

    /**
     * Interrupt-driven reception: the NI raised an interrupt; take
     * the trap (Config::trapRegOps + trapDevOps — far more than a
     * poll entry), then drain the FIFO with the same per-packet
     * dispatch as poll().  Returns packets handled.
     */
    int interruptService();

    /** Interrupts taken via interruptService() so far. */
    std::uint64_t interruptsTaken() const { return interruptsTaken_; }

    /** Packets handled by poll() so far (diagnostic). */
    std::uint64_t pollsHandled() const { return pollsHandled_; }

    /** Stale xfer data packets discarded (restart recovery). */
    std::uint64_t staleXferDrops() const { return staleXferDrops_; }

    /**
     * Instructions spent on host handler dispatch so far: poll/trap
     * linkage, NI status polling, tag-vector decode, and handler
     * call/return glue — the overhead a NIC-offloaded AM substrate
     * eliminates.  A plain diagnostic mirror of charges that stay
     * inside the paper's Base Cost feature (the golden-pinned
     * attribution is untouched); the differential profiler diffs it
     * as its own row for the modern-substrate comparison.
     */
    std::uint64_t dispatchOps() const { return dispatchOps_; }

  private:
    void chargeSyscall();
    int drainLoop(bool entry_decode);
    void genericReceive(const Packet &head);
    void handleXferData(const Packet &head);
    void completeXfer(Word segId);

    Node &node_;
    Config cfg_;
    SegmentTable segs_;
    Addr niBaseAddr_; ///< memory word caching the NI base address

    std::vector<AmHandler> handlers_;
    std::array<ControlSink, static_cast<std::size_t>(CtrlOp::NumOps)>
        ctrlSinks_;
    RawSink streamDataSink_;
    RawSink streamAckSink_;
    std::uint64_t pollsHandled_ = 0;
    std::uint64_t staleXferDrops_ = 0;
    std::uint64_t interruptsTaken_ = 0;
    std::uint64_t dispatchOps_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_CMAM_CMAM_HH

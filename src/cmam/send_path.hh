/**
 * @file
 * The shared single-packet injection sequence.
 *
 * Section 4.1 of the paper: "The costs for sending and receiving a
 * single packet are identical to the CMAM case ... fixed by the
 * network interface, which is identical in the two cases."  Both the
 * CMAM layer and the high-level-features layer therefore share this
 * code: control-word store, send-space check, n/2 double-word data
 * pushes, send_ok confirmation — 14 reg + 1 mem + (n/2 + 3) dev.
 */

#ifndef MSGSIM_CMAM_SEND_PATH_HH
#define MSGSIM_CMAM_SEND_PATH_HH

#include <vector>

#include "machine/node.hh"
#include "net/packet.hh"

namespace msgsim
{

/** The CMAM_4 single-packet payload format: four data words. */
constexpr int amPacketWords = 4;

/**
 * Inject one packet from @p node, charging the Table 1 source
 * sequence.  @p niBaseAddr is the memory word caching the NI base
 * address (one charged load per call).  Payload is zero-padded to
 * @p lenWords (default: the 4-word CMAM_4 format — active messages
 * and protocol control packets stay small even when the hardware
 * supports bigger packets; bulk-data senders pass the full packet
 * size).  Retries the push until send_ok.
 */
void singlePacketSend(Node &node, Addr niBaseAddr, HwTag tag, NodeId dst,
                      Word header, const std::vector<Word> &args,
                      int lenWords = amPacketWords, int vnet = 0);

/**
 * Charge one poll-loop status iteration: 1 dev (status read) +
 * 1 reg (ready test) + 2 reg (dispatch/loop branches).  Returns the
 * status word.  Used where ack or data consumption is folded into a
 * running loop rather than a fresh poll entry.
 */
Word pollIterationStatus(Node &node);

} // namespace msgsim

#endif // MSGSIM_CMAM_SEND_PATH_HH

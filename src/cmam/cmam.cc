#include "cmam/cmam.hh"

#include "cmam/send_path.hh"
#include "hostprof/hostprof.hh"
#include "net/lineage_hook.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

Cmam::Cmam(Node &node, const Config &cfg)
    : node_(node), cfg_(cfg), segs_(node.mem(), cfg.maxSegments)
{
    // Boot-time setup (uncharged): a memory word caching the NI base
    // address, loaded once per send call in the modeled assembly.
    niBaseAddr_ = node_.mem().alloc(1);
    node_.mem().write(niBaseAddr_, 0x001ba5e0u);
}

int
Cmam::registerHandler(AmHandler fn)
{
    if (static_cast<int>(handlers_.size()) >= cfg_.maxHandlers)
        msgsim_fatal("handler table full (", cfg_.maxHandlers, ")");
    handlers_.push_back(std::move(fn));
    return static_cast<int>(handlers_.size()) - 1;
}

void
Cmam::setControlSink(CtrlOp op, ControlSink fn)
{
    ctrlSinks_[static_cast<std::size_t>(op)] = std::move(fn);
}

void
Cmam::am4(NodeId dst, int handler, const std::vector<Word> &args)
{
    // Handler indices name a slot in the *destination's* table; only
    // range-check against the (machine-wide) table size here.
    if (handler < 0 || handler >= cfg_.maxHandlers)
        msgsim_fatal("am4: handler index ", handler, " out of range");
    sendTagged(HwTag::UserAm, dst,
               hdr::pack(static_cast<std::uint32_t>(handler), 0), args);
}

void
Cmam::am4Reply(NodeId dst, int handler, const std::vector<Word> &args)
{
    if (handler < 0 || handler >= cfg_.maxHandlers)
        msgsim_fatal("am4Reply: handler index ", handler,
                     " out of range");
    sendTagged(HwTag::UserAm, dst,
               hdr::pack(static_cast<std::uint32_t>(handler), 0), args,
               4, /*vnet=*/1);
}

void
Cmam::sendControl(NodeId dst, CtrlOp op, Word hdrArg,
                  const std::vector<Word> &args, int vnet)
{
    sendTagged(HwTag::Control, dst,
               hdr::pack(static_cast<std::uint32_t>(op), hdrArg), args,
               4, vnet);
}

void
Cmam::chargeSyscall()
{
    if (!cfg_.kernelMediated)
        return;
    // Kernel crossing: trap, dispatch, permission check, return.
    Accounting &a = node_.proc().acct();
    RowScope r(a, CostRow::Other);
    node_.proc().regOps(static_cast<std::uint64_t>(cfg_.syscallRegOps));
}

void
Cmam::sendTagged(HwTag tag, NodeId dst, Word header,
                 const std::vector<Word> &args, int lenWords, int vnet)
{
    chargeSyscall();
    if (lenWords == 0)
        lenWords = dataWords();
    singlePacketSend(node_, niBaseAddr_, tag, dst, header, args,
                     lenWords, vnet);
}

void
Cmam::xferSend(NodeId dst, Word segId, Addr srcBuf, std::uint32_t words)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();
    ScopedSpan span(node_.id(), "cmam", "xfer_send");
    hostprof::HostScope hps(hostprof::Site::CmamSend);

    chargeSyscall();
    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("xferSend: ", words, " words not a multiple of the "
                     "packet size ", n);

    // Fixed entry (2 reg + 1 mem): loop setup; the NI base pointer is
    // loaded once and stays register-cached across the whole burst
    // (unlike per-call am4 sends).
    p.regOps(2);
    (void)p.loadWord(niBaseAddr_);

    std::uint32_t offset = 0;
    while (offset < words) {
        Word header;
        {
            // In-order delivery, source side (2 reg per packet):
            // advance the running offset and pack it into the header
            // so the destination can place data without sequencing.
            FeatureScope io(a, Feature::InOrderDelivery);
            p.regOps(2);
            header = hdr::pack(segId, offset);
        }

        for (int attempt = 0;; ++attempt) {
            if (attempt > 1000)
                msgsim_panic("xfer send retry livelock");
            {
                // reg 4: destination/control-word assembly; dev 1:
                // control-word store.
                RowScope r(a, CostRow::NiSetup);
                p.regOps(4);
                ni.writeSendCtl(a, dst, HwTag::XferData, header);
            }
            {
                // dev 1 + reg 2: send-space check.
                RowScope r(a, CostRow::CheckStatus);
                (void)ni.readStatus(a);
                p.regOps(2);
            }
            // Data movement: n/2 ldd from the user buffer, n/2 std
            // to the NI FIFO.
            for (int i = 0; i < n; i += 2) {
                const auto [w0, w1] = p.loadDouble(
                    srcBuf + offset + static_cast<Addr>(i));
                RowScope r(a, CostRow::WriteNi);
                ni.writeSendDouble(a, w0, w1);
            }
            Word status;
            {
                // dev 1 + reg 3: send_ok confirm + incoming test.
                RowScope r(a, CostRow::CheckStatus);
                status = ni.readStatus(a);
                p.regOps(3);
            }
            {
                RowScope r(a, CostRow::ControlFlow);
                p.branches(3);
            }
            if (status & ni_status::sendOk)
                break;
        }
        // reg 3: buffer-pointer advance, remaining-count decrement,
        // compare for loop exit.
        p.regOps(3);
        offset += static_cast<std::uint32_t>(n);
    }
}

void
Cmam::xferSendDma(NodeId dst, Word segId, Addr srcBuf,
                  std::uint32_t words)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();
    ScopedSpan span(node_.id(), "cmam", "xfer_send_dma");
    hostprof::HostScope hps(hostprof::Site::CmamSend);

    chargeSyscall();
    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("xferSendDma: ", words, " words not a multiple "
                     "of the packet size ", n);

    // Fixed entry as in the programmed-I/O loop.
    p.regOps(2);
    (void)p.loadWord(niBaseAddr_);

    std::uint32_t offset = 0;
    while (offset < words) {
        Word header;
        {
            FeatureScope io(a, Feature::InOrderDelivery);
            p.regOps(2);
            header = hdr::pack(segId, offset);
        }
        for (int attempt = 0;; ++attempt) {
            if (attempt > 1000)
                msgsim_panic("dma xfer send retry livelock");
            {
                RowScope r(a, CostRow::NiSetup);
                p.regOps(4);
                ni.writeSendCtl(a, dst, HwTag::XferData, header);
            }
            {
                RowScope r(a, CostRow::CheckStatus);
                (void)ni.readStatus(a);
                p.regOps(2);
            }
            {
                // One descriptor store; the engine gathers the
                // payload from memory and launches the packet.
                RowScope r(a, CostRow::WriteNi);
                ni.writeSendDma(a, srcBuf + offset, n);
            }
            Word status;
            {
                RowScope r(a, CostRow::CheckStatus);
                status = ni.readStatus(a);
                p.regOps(3);
            }
            {
                RowScope r(a, CostRow::ControlFlow);
                p.branches(3);
            }
            if (status & ni_status::sendOk)
                break;
        }
        p.regOps(3);
        offset += static_cast<std::uint32_t>(n);
    }
}

int
Cmam::poll()
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "cmam", "poll");
    hostprof::HostScope hps(hostprof::Site::CmamPoll);

    chargeSyscall();
    // CMAM_request_poll linkage: call, save, ret.
    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(3);
    }
    dispatchOps_ += 3;
    return drainLoop(/*entry_decode=*/true);
}

int
Cmam::interruptService()
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "cmam", "interrupt");
    hostprof::HostScope hps(hostprof::Site::CmamPoll);

    // Trap entry/exit: register-window spill and fill, PSR/PC save
    // and restore, trap-table vectoring — plus the interrupt
    // acknowledge and cause-register accesses on the NI.
    {
        RowScope r(a, CostRow::Other);
        p.regOps(static_cast<std::uint64_t>(cfg_.trapRegOps));
        a.charge(OpClass::DevLoad,
                 static_cast<std::uint64_t>(cfg_.trapDevOps));
    }
    ++interruptsTaken_;
    dispatchOps_ += static_cast<std::uint64_t>(cfg_.trapRegOps) +
                    static_cast<std::uint64_t>(cfg_.trapDevOps);
    // The handler's mask/shift constants are set up by the trap
    // vector, so the drain loop skips the poll-entry decode.
    return drainLoop(/*entry_decode=*/false);
}

int
Cmam::drainLoop(bool entry_decode)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();

    int handled = 0;
    bool first = entry_decode;
    for (;;) {
        Word status;
        {
            // One status read per iteration; the entry iteration also
            // charges the mask/shift constant setup (reg 9), later
            // ones just the ready test (reg 1).
            RowScope r(a, CostRow::CheckStatus);
            status = ni.readStatus(a);
            p.regOps(first ? 9 : 1);
            dispatchOps_ += first ? 10 : 2; // status read + decode
            first = false;
        }
        if (!(status & ni_status::recvReady))
            break;

        const Packet *head = ni.hwPeekRecv();
        if (head == nullptr)
            msgsim_panic("recvReady set with empty FIFO");
        const auto tag = static_cast<HwTag>(
            (status >> ni_status::tagShift) & ni_status::tagMask);

        // Lineage: the dispatch below is this packet's handler; any
        // packet sent from inside it (replies, acks) inherits its
        // lineage as causal parent.  Single pointer test when off.
        LineageHooks *lh = LineageHooks::current();
        if (lh)
            lh->handlerBegin(node_.id(), *head, ni.sim().now());

        hostprof::HostScope hdl(hostprof::Site::CmamHandler);
        switch (tag) {
          case HwTag::UserAm:
          case HwTag::Control:
            genericReceive(*head);
            break;
          case HwTag::XferData:
            handleXferData(*head);
            break;
          case HwTag::StreamData:
            if (!streamDataSink_)
                msgsim_panic("stream data with no sink installed");
            streamDataSink_(head->src);
            break;
          case HwTag::StreamAck:
            if (!streamAckSink_)
                msgsim_panic("stream ack with no sink installed");
            streamAckSink_(head->src);
            break;
          default:
            msgsim_panic("unknown hardware tag ",
                         static_cast<int>(tag));
        }
        if (lh)
            lh->handlerEnd(node_.id(), ni.sim().now());
        ++handled;
        ++pollsHandled_;
        {
            // Loop back-edge + dispatch-table branch.
            RowScope r(a, CostRow::ControlFlow);
            p.branches(2);
        }
        dispatchOps_ += 2;
    }
    return handled;
}

void
Cmam::genericReceive(const Packet &head)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    // Packet length comes from the status/length register the poll
    // loop already read (4 for AMs and control packets).  Copy the
    // dispatch fields now: draining the payload below pops the packet
    // out of the NI's receive FIFO, after which @p head is dangling.
    const int n = static_cast<int>(head.data.size());
    const NodeId src = head.src;
    const HwTag tag = head.tag;

    // CMAM_handle_left linkage.
    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(3);
    }
    dispatchOps_ += 3;
    Word header;
    {
        RowScope r(a, CostRow::ReadNi);
        header = ni.readRecvHeader(a);
    }
    std::vector<Word> args(static_cast<std::size_t>(n));
    {
        RowScope r(a, CostRow::ReadNi);
        for (int i = 0; i < n; i += 2) {
            const auto [w0, w1] = ni.readRecvDouble(a);
            args[static_cast<std::size_t>(i)] = w0;
            args[static_cast<std::size_t>(i + 1)] = w1;
        }
    }
    {
        // User-handler (or sink) linkage: CMAM_got_left vectoring +
        // call/save/restore/ret of the handler.
        RowScope r(a, CostRow::CallReturn);
        p.callRet(4);
    }
    dispatchOps_ += 4;

    const std::uint32_t sel = hdr::fieldA(header);
    if (tag == HwTag::UserAm) {
        if (sel >= handlers_.size() || !handlers_[sel])
            msgsim_panic("AM to unregistered handler ", sel);
        handlers_[sel](src, args);
    } else {
        if (sel == 0 || sel >= static_cast<std::uint32_t>(CtrlOp::NumOps)
            || !ctrlSinks_[sel])
            msgsim_panic("control packet with no sink, op ", sel);
        ctrlSinks_[sel](src, hdr::fieldB(header), args);
    }
}

void
Cmam::handleXferData(const Packet &head)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();
    (void)head;

    Word header;
    {
        RowScope r(a, CostRow::ReadNi);
        header = ni.readRecvHeader(a);
    }
    Word segId, offset;
    {
        // In-order delivery, destination side: extract the placement
        // offset the source packed into the header (shift + mask).
        FeatureScope io(a, Feature::InOrderDelivery);
        p.regOps(2);
        segId = hdr::fieldA(header);
        offset = hdr::fieldB(header);
    }
    // reg 3: tag-vector dispatch into the specialized xfer path
    // (no full handler linkage: CMAM_handle_left_xfer is inlined).
    p.regOps(3);
    if (!segs_.isActive(segId)) {
        // A stale packet from a transfer that was restarted: drain
        // the data words from the FIFO and discard.  Off the
        // calibrated minimum path (only reachable under faults).
        p.regOps(2);
        for (int i = 0; i < n; i += 2) {
            RowScope r(a, CostRow::ReadNi);
            (void)ni.readRecvDouble(a);
        }
        ++staleXferDrops_;
        return;
    }
    const Addr bufBase = segs_.bufBase(segId);
    // reg 2: effective store address (segment base + offset);
    // reg 2: segment record address computation.
    p.regOps(4);
    const Addr dst = bufBase + offset;
    if (cfg_.dmaXfer) {
        // One scatter descriptor; the engine deposits the payload.
        RowScope r(a, CostRow::ReadNi);
        ni.dmaScatterRecv(a, dst);
    } else {
        for (int i = 0; i < n; i += 2) {
            std::pair<Word, Word> words;
            {
                RowScope r(a, CostRow::ReadNi);
                words = ni.readRecvDouble(a);
            }
            p.storeDouble(dst + static_cast<Addr>(i), words.first,
                          words.second);
        }
    }
    // reg 2: read-loop induction (FIFO pointer / word count).
    p.regOps(2);

    bool done;
    {
        // In-order delivery: expected-count decrement (1 reg).
        FeatureScope io(a, Feature::InOrderDelivery);
        done = segs_.packetArrived(p, segId);
    }
    if (done)
        completeXfer(segId);
}

void
Cmam::completeXfer(Word segId)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();

    {
        // Final count-zero confirmation (the paper's +1 in the
        // destination in-order total).
        FeatureScope io(a, Feature::InOrderDelivery);
        p.regOps(1);
    }
    // Completion fast path (2 reg + 3 mem): reload the segment record
    // fields (buffer base, count, aux/continuation) and branch to the
    // completion continuation.
    p.regOps(2);
    {
        RowScope r(a, CostRow::Other);
        segs_.reloadRecord(p, segId);
    }

    auto fn = segs_.takeCompletion(segId);
    if (fn)
        fn(segId);
}

} // namespace msgsim

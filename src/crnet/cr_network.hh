/**
 * @file
 * Compressionless-Routing-style network.
 *
 * Models the three high-level hardware services of Section 4 (after
 * Kim, Liu & Chien's Compressionless Routing):
 *
 *  1. *Order-preserving transmission* — packets of a (src, dst) flow
 *     are delivered strictly in injection order, across faults and
 *     rejections (a retried packet blocks its flow, like the teardown
 *     and retransmission of a message path).
 *  2. *Deadlock freedom independent of acceptance* — a destination may
 *     refuse a packet (header rejection when it has no resources);
 *     the hardware tears the path down and retransmits later, so
 *     software needs no preallocation handshake.
 *  3. *Packet-level fault tolerance* — acceptance of the last flit
 *     acts as an end-to-end acknowledgement; injected faults trigger
 *     hardware retransmission and never become visible to software.
 */

#ifndef MSGSIM_CRNET_CR_NETWORK_HH
#define MSGSIM_CRNET_CR_NETWORK_HH

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <utility>

#include "net/fault.hh"
#include "net/network.hh"
#include "net/topology.hh"

namespace msgsim
{

/**
 * In-order, reliable, acceptance-independent network substrate.
 */
class CrNetwork : public Network
{
  public:
    struct Config
    {
        std::uint32_t nodes = 4;   ///< leaf node count
        std::uint32_t arity = 4;   ///< fat-tree arity
        Tick baseLatency = 10;     ///< fixed injection-to-edge time
        Tick hopLatency = 2;       ///< per switch-to-switch hop
        Tick hwRetryDelay = 6;     ///< path teardown + retransmit time
        Tick rejectRetryDelay = 12;///< retry period after header reject
        Tick injectGap = 0;        ///< link-bandwidth: per-source spacing
        Tick deliverGap = 0;       ///< link-bandwidth: per-dest spacing
        FaultInjector::Config faults; ///< faults corrected in hardware
    };

    CrNetwork(Simulator &sim, const Config &cfg);

    NetFeatures
    features() const override
    {
        return {/*inOrder=*/true, /*reliable=*/true,
                /*acceptanceIndependent=*/true};
    }

    const FatTree &topology() const { return tree_; }
    FaultInjector &faults() { return faults_; }

  protected:
    bool injectImpl(Packet &&pkt) override;

  private:
    using FlowKey = std::tuple<NodeId, NodeId, int>;

    struct FlowState
    {
        std::deque<Packet> queue; ///< arrived, not yet accepted
        bool drainScheduled = false;
    };

    /** Enqueue an arrived packet and try to drain its flow. */
    void arrive(FlowKey flow, Packet &&pkt);

    /** Deliver queued packets of @p flow in order until one rejects. */
    void drain(FlowKey flow);

    Config cfg_;
    FatTree tree_;
    FaultInjector faults_;
    std::map<FlowKey, FlowState> flows_;
    std::map<FlowKey, Tick> lastArrival_;
    std::map<NodeId, Tick> lastDeparture_; ///< injection serialization
    std::map<NodeId, Tick> lastAtDest_;    ///< delivery serialization
};

} // namespace msgsim

#endif // MSGSIM_CRNET_CR_NETWORK_HH

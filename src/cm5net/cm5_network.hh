/**
 * @file
 * The CM-5-like data network.
 *
 * Models the three properties of the CM-5 network the paper charges
 * software for (Section 2.2):
 *
 *  1. *Arbitrary delivery order* — packets ascend a k-ary fat tree on
 *     randomized up-paths; we model the resulting scrambling with a
 *     pluggable per-flow OrderPolicy (deterministic for calibration,
 *     seeded-random for experiments) plus optional per-packet latency
 *     jitter.
 *  2. *Finite buffering* — the destination sink can refuse a packet
 *     (receive FIFO full); the network then holds it and retries,
 *     which is how backpressure propagates toward the sender.
 *  3. *Fault detection but not fault tolerance* — injected faults drop
 *     packets silently or corrupt them; corrupted packets reach the NI
 *     where the CRC check discards them.  Nothing is retransmitted in
 *     hardware: recovery is the software's problem.
 */

#ifndef MSGSIM_CM5NET_CM5_NETWORK_HH
#define MSGSIM_CM5NET_CM5_NETWORK_HH

#include <cstdint>
#include <map>
#include <tuple>
#include <memory>
#include <utility>

#include "net/fault.hh"
#include "net/network.hh"
#include "net/order.hh"
#include "net/topology.hh"
#include "sim/rng.hh"

namespace msgsim
{

/**
 * CM-5-style fat-tree network: out-of-order, finite-buffered,
 * detection-only.
 */
class Cm5Network : public Network
{
  public:
    struct Config
    {
        std::uint32_t nodes = 4;     ///< leaf node count
        std::uint32_t arity = 4;     ///< fat-tree arity (CM-5: 4)
        Tick baseLatency = 10;       ///< fixed injection-to-edge time
        Tick hopLatency = 2;         ///< per switch-to-switch hop
        Tick maxJitter = 0;          ///< random extra latency (OOO source)
        Tick retryDelay = 8;         ///< redelivery period when sink full
        /// Link-bandwidth model: minimum spacing between packets
        /// leaving one node (0 = infinite injection bandwidth).
        Tick injectGap = 0;
        /// Minimum spacing between packets arriving at one node.
        Tick deliverGap = 0;
        double injectBusyRate = 0.0; ///< P(injection port busy) per try
        std::uint64_t seed = 0xc0ffeeULL;
        FaultInjector::Config faults;
        OrderPolicyFactory orderFactory; ///< default: FIFO
    };

    Cm5Network(Simulator &sim, const Config &cfg);

    NetFeatures
    features() const override
    {
        return {/*inOrder=*/false, /*reliable=*/false,
                /*acceptanceIndependent=*/false};
    }

    void flushHeldPackets() override;

    /** The underlying topology (for experiment reporting). */
    const FatTree &topology() const { return tree_; }

    /** The fault injector (for scripting directed faults). */
    FaultInjector &faults() { return faults_; }

  protected:
    bool injectImpl(Packet &&pkt) override;

  private:
    using FlowKey = std::tuple<NodeId, NodeId, int>;

    /** The per-flow order-scrambling stage at the destination edge. */
    OrderPolicy &policyFor(const FlowKey &flow);

    /** Route one packet to the destination edge (latency model). */
    void routeToEdge(Packet &&pkt);

    /** A packet reached the destination edge. */
    void arriveAtEdge(Packet &&pkt);

    /** Try to hand a released packet to the sink; retry while full. */
    void tryDeliver(Packet &&pkt);

    Config cfg_;
    FatTree tree_;
    FaultInjector faults_;
    Rng rng_;
    std::map<FlowKey, std::unique_ptr<OrderPolicy>> policies_;
    std::map<NodeId, Tick> lastDeparture_; ///< injection serialization
    std::map<NodeId, Tick> lastArrival_;   ///< delivery serialization
};

} // namespace msgsim

#endif // MSGSIM_CM5NET_CM5_NETWORK_HH

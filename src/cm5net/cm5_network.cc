#include "cm5net/cm5_network.hh"

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim
{

Cm5Network::Cm5Network(Simulator &sim, const Config &cfg)
    : Network(sim), cfg_(cfg), tree_(cfg.nodes, cfg.arity),
      faults_(cfg.faults), rng_(cfg.seed)
{
    if (!cfg_.orderFactory)
        cfg_.orderFactory = fifoOrderFactory();
}

OrderPolicy &
Cm5Network::policyFor(const FlowKey &flow)
{
    auto it = policies_.find(flow);
    if (it == policies_.end())
        it = policies_.emplace(flow, cfg_.orderFactory()).first;
    return *it->second;
}

bool
Cm5Network::injectImpl(Packet &&pkt)
{
    if (cfg_.injectBusyRate > 0.0 && rng_.chance(cfg_.injectBusyRate))
        return false; // send_ok will read 0; software retries the push

    switch (faults_.apply(pkt)) {
      case FaultAction::Drop:
        ++stats_.dropped;
        noteAbsorbed(pkt.dst);
        trace(TraceEvent::Drop, pkt);
        return true; // accepted by the network, silently lost inside
      case FaultAction::Corrupt:
        ++stats_.corrupted;
        trace(TraceEvent::Corrupt, pkt);
        break; // travels on; the NI's CRC check will reject it
      case FaultAction::Duplicate:
        // A ghost copy rides the network alongside the original
        // (speculative adaptive retry): route a clone independently,
        // so it takes its own jitter and arrives whenever.  The
        // sequence-number machinery upstairs must suppress it.
        ++stats_.duplicated;
        trace(TraceEvent::Duplicate, pkt);
        routeToEdge(Packet(pkt));
        break;
      case FaultAction::None:
        break;
    }

    routeToEdge(std::move(pkt));
    return true;
}

void
Cm5Network::routeToEdge(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::Cm5Route);
    Tick latency = cfg_.baseLatency +
                   cfg_.hopLatency * tree_.hops(pkt.src, pkt.dst);
    if (cfg_.maxJitter > 0)
        latency += rng_.below(cfg_.maxJitter + 1);

    // Link-bandwidth serialization: packets leave a node no faster
    // than the injection port drains, and arrive at a node no faster
    // than its input port fills.
    Tick departure = sim_.now();
    if (cfg_.injectGap > 0) {
        auto it = lastDeparture_.find(pkt.src);
        if (it != lastDeparture_.end())
            departure = std::max(departure,
                                 it->second + cfg_.injectGap);
        lastDeparture_[pkt.src] = departure;
    }
    Tick arrival = departure + latency;
    if (cfg_.deliverGap > 0) {
        auto it = lastArrival_.find(pkt.dst);
        if (it != lastArrival_.end())
            arrival = std::max(arrival, it->second + cfg_.deliverGap);
        lastArrival_[pkt.dst] = arrival;
    }

    // Move the packet into the scheduled closure.
    auto carried = std::make_shared<Packet>(std::move(pkt));
    sim_.scheduleAt(arrival, [this, carried]() mutable {
        arriveAtEdge(std::move(*carried));
    });
}

void
Cm5Network::arriveAtEdge(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::Cm5Deliver);
    auto &policy =
        policyFor({pkt.src, pkt.dst, static_cast<int>(pkt.vnet)});
    std::vector<Packet> release;
    policy.arrive(std::move(pkt), release);
    for (auto &p : release)
        tryDeliver(std::move(p));
}

void
Cm5Network::tryDeliver(Packet &&pkt)
{
    // Retry closures re-enter here outside arriveAtEdge, so the
    // delivery scope opens here too (same-site nesting is fine).
    hostprof::HostScope hs(hostprof::Site::Cm5Deliver);
    if (presentToSink(std::move(pkt)))
        return;
    // Sink full: the packet occupies network buffers and is offered
    // again later — backpressure.
    ++stats_.deliveryRetries;
    auto carried = std::make_shared<Packet>(std::move(pkt));
    sim_.schedule(cfg_.retryDelay, [this, carried]() mutable {
        tryDeliver(std::move(*carried));
    });
}

void
Cm5Network::flushHeldPackets()
{
    for (auto &[flow, policy] : policies_) {
        std::vector<Packet> release;
        policy->flush(release);
        for (auto &p : release)
            tryDeliver(std::move(p));
    }
}

} // namespace msgsim

/**
 * @file
 * Compositional analytic cost model for the traffic library — the
 * CAMP-style "per-hop / per-message cost terms" predictor behind lab
 * experiment W1.
 *
 * The classic models in model/analytic.hh are closed forms for one
 * point-to-point protocol run.  Machine-wide traffic composes the
 * same building blocks (sendCost, pollFixedCost, recvPacketCost)
 * with *structural event counts*: fragments sent, packets delivered,
 * poll entries, out-of-order arrivals, acknowledgements.  The counts
 * that are pure protocol structure (fragments = messages x
 * ceil(size/2), acks = messages) are predicted from the traffic
 * spec; the counts that depend on the interleaving the fabric chose
 * (poll entries, out-of-order arrivals) are taken from the run —
 * exactly as X1 evaluates the stream model at the realized OOO
 * fraction.  Every per-event *cost* term is a constant below, and
 * the traffic engine charges those same constants, so any drift in
 * the charged protocol paths makes predicted != measured and fails
 * the W1 gate without a golden file.
 */

#ifndef MSGSIM_MODEL_TRAFFIC_MODEL_HH
#define MSGSIM_MODEL_TRAFFIC_MODEL_HH

#include <cstdint>
#include <string>

#include "model/analytic.hh"

namespace msgsim
{

/**
 * Per-event instruction charges of the traffic engine's message
 * protocols (traffic/engine.cc charges exactly these; the predictor
 * composes them).  All register-class unless noted.
 */
namespace traffic_cost
{
/// Data-fragment handler: unpack meta, verify checksum (all protos).
inline constexpr int handlerBaseReg = 4;
/// seq proto, every arrival: sequence compare against expected.
inline constexpr int seqCheckReg = 2;
/// seq proto, in-order arrival: advance the expected counter.
inline constexpr int seqAdvanceReg = 1;
/// seq proto, OOO arrival: reorder-list insert (+ 1 memory store).
inline constexpr int seqStashReg = 5;
/// seq proto, draining one stashed fragment (+ 1 memory load).
inline constexpr int seqDrainReg = 3;
/// acked proto, per fragment at the source: retransmit-buffer hold
/// (+ 1 memory store).
inline constexpr int ackHoldReg = 4;
/// acked proto, per fragment at the destination: message counting.
inline constexpr int ackTrackReg = 2;
/// acked proto, per ack consumed at the source: buffer release
/// (+ 1 memory load).
inline constexpr int ackConsumeReg = 3;
/// Collectives handler: prologue (4) + per-kind bookkeeping (2).
inline constexpr int collHandlerReg = 6;
} // namespace traffic_cost

/**
 * Structural event counts of one traffic run — the predictor's
 * inputs.  fragmentsSent/acksSent are also *predicted* analytically
 * (expectedTrafficShape); polls and ooo are realized quantities.
 */
struct TrafficShape
{
    std::uint64_t fragmentsSent = 0;
    std::uint64_t fragmentsDelivered = 0;
    std::uint64_t acksSent = 0;
    std::uint64_t acksDelivered = 0;
    std::uint64_t polls = 0; ///< cmam poll entries (realized)
    std::uint64_t ooo = 0;   ///< seq proto: out-of-order arrivals
    bool seq = false;        ///< in-order-delivery machinery active
    bool acked = false;      ///< fault-tolerance machinery active
};

/**
 * Machine-wide aggregate prediction: per-paper-feature instruction
 * cost in the three categories.
 */
struct TrafficPrediction
{
    CatCost feature[numPaperFeatures];

    CatCost &
    at(Feature f)
    {
        return feature[static_cast<int>(f)];
    }

    const CatCost &
    at(Feature f) const
    {
        return feature[static_cast<int>(f)];
    }

    /** Category totals summed over all features. */
    CatCost total() const;

    /** Total predicted instructions (all features, all categories). */
    double grandTotal() const;
};

/**
 * Expected per-feature instruction bill of one traffic run, composed
 * from the Table 1 building blocks and the traffic_cost terms.
 */
TrafficPrediction predictTraffic(const TrafficShape &s);

/** Structural counts of one collective operation. */
struct CollShape
{
    std::uint64_t messages = 0;  ///< active messages the algorithm sends
    std::uint64_t delivered = 0; ///< handler invocations (== messages)
    std::uint64_t polls = 0;     ///< cmam poll entries (realized)
};

/**
 * Expected instruction bill of one collective: all BaseCost (the
 * algorithms ride plain am4), M x (send + receive + handler) plus
 * the realized poll entries.
 */
TrafficPrediction predictCollective(const CollShape &s);

/**
 * Analytic message count of a collective algorithm on @p nodes:
 *  - "barrier"       : N x ceil(log2 N)   (dissemination)
 *  - "tree"          : 2 (N - 1)          (binomial reduce + bcast)
 *  - "ring"          : 2 (N - 1)          (accumulate + forward chains)
 *  - "rd"            : N x log2 N         (butterfly exchange)
 * Fatal on an unknown name.
 */
std::uint64_t expectedCollMessages(const std::string &algo,
                                   std::uint32_t nodes);

} // namespace msgsim

#endif // MSGSIM_MODEL_TRAFFIC_MODEL_HH

#include "model/analytic.hh"

#include <cmath>

#include "sim/log.hh"

namespace msgsim
{

namespace
{

constexpr auto src = Direction::Source;
constexpr auto dst = Direction::Destination;

void
validate(const ProtoParams &p)
{
    if (p.n < 2 || p.n % 2 != 0)
        msgsim_fatal("model: packet size must be even and >= 2, got ",
                     p.n);
    if (p.words == 0 || p.words % static_cast<std::uint32_t>(p.n) != 0)
        msgsim_fatal("model: ", p.words, " words not a multiple of ",
                     p.n);
    if (p.oooFraction < 0.0 || p.oooFraction > 1.0)
        msgsim_fatal("model: ooo fraction out of [0,1]");
}

} // namespace

double
FeatureBreakdown::roleTotal(Direction d) const
{
    double sum = 0;
    for (int f = 0; f < numPaperFeatures; ++f)
        sum += cost[f][static_cast<int>(d)].total();
    return sum;
}

double
FeatureBreakdown::featureTotal(Feature f) const
{
    double sum = 0;
    for (int d = 0; d < numDirections; ++d)
        sum += cost[static_cast<int>(f)][d].total();
    return sum;
}

double
FeatureBreakdown::grandTotal() const
{
    return roleTotal(src) + roleTotal(dst);
}

double
FeatureBreakdown::overheadFraction() const
{
    const double total = grandTotal();
    if (total == 0)
        return 0;
    return (total - featureTotal(Feature::BaseCost)) / total;
}

double
FeatureBreakdown::weightedTotal(const CostModel &m) const
{
    double sum = 0;
    for (int f = 0; f < numPaperFeatures; ++f)
        for (int d = 0; d < numDirections; ++d)
            sum += cost[f][d].weighted(m);
    return sum;
}

FeatureBreakdown &
FeatureBreakdown::operator+=(const FeatureBreakdown &o)
{
    for (int f = 0; f < numPaperFeatures; ++f)
        for (int d = 0; d < numDirections; ++d)
            cost[f][d] += o.cost[f][d];
    return *this;
}

CatCost
sendCost()
{
    return {14, 1, 5};
}

CatCost
sendBulkCost(int n)
{
    const double h = n / 2.0;
    return {14, 1, h + 3};
}

CatCost
pollFixedCost()
{
    return {12, 0, 1};
}

CatCost
recvPacketCost()
{
    return {10, 0, 4};
}

CatCost
recvBulkPacketCost(int n)
{
    const double h = n / 2.0;
    return {10, 0, h + 2};
}

CatCost
recvSingleCost()
{
    return pollFixedCost() + recvPacketCost();
}

FeatureBreakdown
singlePacketModel(int n)
{
    // CMAM_4 is always the 4-word format; its cost does not depend
    // on the hardware packet maximum.
    (void)n;
    FeatureBreakdown b;
    b.at(Feature::BaseCost, src) = sendCost();
    b.at(Feature::BaseCost, dst) = recvSingleCost();
    return b;
}

FeatureBreakdown
cmamFiniteModel(const ProtoParams &pp)
{
    validate(pp);
    const double p = pp.packets();
    const double h = pp.n / 2.0;
    FeatureBreakdown b;

    // Base: the data packets.  Source: loop entry (2 reg + 1 mem)
    // plus per packet 15 reg + h mem (ldd from the user buffer) +
    // (h+3) dev.  Destination: poll entry + completion fast path
    // (2 reg + 3 mem) plus per packet 12 reg + h mem + (h+2) dev.
    // With DMA (§5 extension) the per-word traffic collapses to one
    // descriptor store per packet on each side.
    if (pp.dma) {
        b.at(Feature::BaseCost, src) =
            CatCost{2, 1, 0} + p * CatCost{15, 0, 4};
        b.at(Feature::BaseCost, dst) = pollFixedCost() +
                                       CatCost{2, 3, 0} +
                                       p * CatCost{12, 0, 3};
    } else {
        b.at(Feature::BaseCost, src) =
            CatCost{2, 1, 0} + p * CatCost{15, h, h + 3};
        b.at(Feature::BaseCost, dst) = pollFixedCost() +
                                       CatCost{2, 3, 0} +
                                       p * CatCost{12, h, h + 2};
    }

    // Buffer management: request/reply handshake plus segment
    // alloc/free (steps 1, 2, 3, 5).  Control packets are 4-word
    // format, so this term is constant in n (47 / 101).
    b.at(Feature::BufferMgmt, src) = sendCost() + recvSingleCost();
    b.at(Feature::BufferMgmt, dst) = recvSingleCost() +
                                     CatCost{25, 8, 0} + sendCost() +
                                     CatCost{18, 3, 0};

    // In-order delivery: per-packet offsets (source), extraction plus
    // count decrement (destination, +1 completion confirm).
    b.at(Feature::InOrderDelivery, src) = p * CatCost{2, 0, 0};
    b.at(Feature::InOrderDelivery, dst) =
        p * CatCost{3, 0, 0} + CatCost{1, 0, 0};

    // Fault tolerance: the end-to-end ack (step 6), constant 27/20.
    b.at(Feature::FaultTolerance, src) = recvSingleCost();
    b.at(Feature::FaultTolerance, dst) = sendCost();
    return b;
}

FeatureBreakdown
cmamStreamModel(const ProtoParams &pp)
{
    validate(pp);
    const double p = pp.packets();
    const double h = pp.n / 2.0;
    const double f = pp.oooFraction;
    const int g = pp.groupAck < 1 ? 1 : pp.groupAck;
    FeatureBreakdown b;

    // Base: p full-packet bulk sends; poll entry plus p bulk packet
    // receives at the destination.
    b.at(Feature::BaseCost, src) = p * sendBulkCost(pp.n);
    b.at(Feature::BaseCost, dst) =
        pollFixedCost() + p * recvBulkPacketCost(pp.n);

    // In-order delivery.  Source: sequence maintenance (2 reg +
    // 3 mem per packet).  Destination: extraction (2 reg) always;
    // in-sequence packets add the fast path (4 reg); out-of-order
    // packets add insert (13 reg + (9+h) mem) and drain (14 reg +
    // (10+h) mem).
    b.at(Feature::InOrderDelivery, src) = p * CatCost{2, 3, 0};
    b.at(Feature::InOrderDelivery, dst) =
        p * (CatCost{2, 0, 0} + (1.0 - f) * CatCost{4, 0, 0} +
             f * CatCost{27, 19 + 2 * h, 0});

    // Fault tolerance.  Source: retransmission-ring buffering
    // (6 reg + h mem per packet) plus ack consumption (16 reg +
    // (h+3) dev per ack).  Destination: one single-packet ack send
    // per packet (G = 1) or per group plus 2 reg tracking.
    const double acks =
        g <= 1 ? p
               : std::floor(p / g) +
                     ((pp.packets() % static_cast<std::uint32_t>(g))
                          ? 1.0
                          : 0.0);
    b.at(Feature::FaultTolerance, src) =
        p * CatCost{6, h, 0} + acks * CatCost{16, 0, 5};
    b.at(Feature::FaultTolerance, dst) =
        (g <= 1 ? CatCost{0, 0, 0} : p * CatCost{2, 0, 0}) +
        acks * sendCost();
    return b;
}

FeatureBreakdown
hlFiniteModel(const ProtoParams &pp)
{
    validate(pp);
    const double p = pp.packets();
    const double h = pp.n / 2.0;
    FeatureBreakdown b;

    // Base: identical source loop; destination one reg cheaper per
    // packet (running write pointer, fewer branches) with the same
    // poll entry and specialized last-packet completion.
    b.at(Feature::BaseCost, src) =
        CatCost{2, 1, 0} + p * CatCost{15, h, h + 3};
    b.at(Feature::BaseCost, dst) = pollFixedCost() + CatCost{2, 3, 0} +
                                   p * CatCost{11, h, h + 2};

    // Buffer management: bind the posted buffer to the incoming
    // message on header-packet arrival — a table insert.
    b.at(Feature::BufferMgmt, dst) = CatCost{9, 4, 0};
    return b;
}

FeatureBreakdown
hlStreamModel(const ProtoParams &pp)
{
    validate(pp);
    const double p = pp.packets();
    FeatureBreakdown b;

    // The whole protocol is repeated full-packet transmissions.
    b.at(Feature::BaseCost, src) = p * sendBulkCost(pp.n);
    b.at(Feature::BaseCost, dst) =
        pollFixedCost() + p * recvBulkPacketCost(pp.n);
    return b;
}

double
hlImprovement(const FeatureBreakdown &cmam, const FeatureBreakdown &hl)
{
    const double c = cmam.grandTotal();
    if (c == 0)
        return 0;
    return (c - hl.grandTotal()) / c;
}

} // namespace msgsim

#include "model/traffic_model.hh"

#include "sim/log.hh"

namespace msgsim
{

CatCost
TrafficPrediction::total() const
{
    CatCost t;
    for (const auto &f : feature)
        t += f;
    return t;
}

double
TrafficPrediction::grandTotal() const
{
    return total().total();
}

TrafficPrediction
predictTraffic(const TrafficShape &s)
{
    namespace tc = traffic_cost;
    const auto n = [](std::uint64_t v) {
        return static_cast<double>(v);
    };
    TrafficPrediction p;

    // Base cost: every fragment pays the Table 1 source column; every
    // delivered packet (data or ack) pays the generic-receive column;
    // every poll entry pays the fixed decode; the data handler's
    // unpack/verify work is charged where it runs.
    CatCost &base = p.at(Feature::BaseCost);
    base += n(s.fragmentsSent) * sendCost();
    base += n(s.fragmentsDelivered + s.acksDelivered) *
            recvPacketCost();
    base += n(s.polls) * pollFixedCost();
    base += n(s.fragmentsDelivered) *
            CatCost{double(tc::handlerBaseReg), 0, 0};

    // In-order delivery (seq proto): a sequence compare on every
    // arrival, a counter advance on the in-order ones, a reorder
    // stash (1 store) per OOO arrival and a drain (1 load) when its
    // turn comes.  ooo is realized — the fabric chose it.
    if (s.seq) {
        const double f = n(s.fragmentsDelivered);
        const double o = n(s.ooo);
        p.at(Feature::InOrderDelivery) +=
            CatCost{tc::seqCheckReg * f + tc::seqAdvanceReg * (f - o) +
                        (tc::seqStashReg + tc::seqDrainReg) * o,
                    2 * o, 0};
    }

    // Fault tolerance (acked proto): source-side retransmit hold per
    // fragment, destination-side message counting per fragment, a
    // full am4 send per ack, and the source's buffer release per ack
    // consumed.  (The ack's generic receive is base cost, counted
    // above — the paper charges the dispatch to the messaging layer,
    // the bookkeeping to the feature.)
    if (s.acked) {
        CatCost &ft = p.at(Feature::FaultTolerance);
        ft += n(s.fragmentsSent) * CatCost{double(tc::ackHoldReg), 1, 0};
        ft += n(s.fragmentsDelivered) *
              CatCost{double(tc::ackTrackReg), 0, 0};
        ft += n(s.acksSent) * sendCost();
        ft += n(s.acksDelivered) *
              CatCost{double(tc::ackConsumeReg), 1, 0};
    }
    return p;
}

TrafficPrediction
predictCollective(const CollShape &s)
{
    namespace tc = traffic_cost;
    TrafficPrediction p;
    CatCost &base = p.at(Feature::BaseCost);
    base += static_cast<double>(s.messages) * sendCost();
    base += static_cast<double>(s.delivered) *
            (recvPacketCost() +
             CatCost{double(tc::collHandlerReg), 0, 0});
    base += static_cast<double>(s.polls) * pollFixedCost();
    return p;
}

std::uint64_t
expectedCollMessages(const std::string &algo, std::uint32_t nodes)
{
    std::uint64_t lg = 0;
    while ((1ull << lg) < nodes)
        ++lg;
    if (algo == "barrier")
        return static_cast<std::uint64_t>(nodes) * lg;
    if (algo == "tree" || algo == "ring")
        return 2ull * (nodes - 1);
    if (algo == "rd")
        return static_cast<std::uint64_t>(nodes) * lg;
    msgsim_fatal("expectedCollMessages: unknown algorithm '", algo,
                 "'");
}

} // namespace msgsim

/**
 * @file
 * Closed-form cost model of every protocol/substrate combination —
 * the generalized breakdown of paper Figure 8 (left), parameterized
 * by hardware packet size n (words) and message size (hence
 * p = packets per message), plus the stream protocol's out-of-order
 * fraction f and ack group size G.
 *
 * The formulas are exactly the instruction sequences the simulator
 * executes (DESIGN.md section 2.1); the property tests in
 * tests/test_model_vs_sim.cc assert cell-for-cell agreement between
 * this model and measured simulator counts across parameter sweeps.
 * At n = 4 the model reproduces the paper's Tables 1-3.
 */

#ifndef MSGSIM_MODEL_ANALYTIC_HH
#define MSGSIM_MODEL_ANALYTIC_HH

#include <cstdint>

#include "core/cost_model.hh"
#include "core/op.hh"

namespace msgsim
{

/** Parameters of a modeled protocol run. */
struct ProtoParams
{
    int n = 4;                  ///< data words per packet (even)
    std::uint32_t words = 16;   ///< message volume (multiple of n)
    double oooFraction = 0.5;   ///< stream: fraction arriving OOO
    int groupAck = 1;           ///< stream: ack every G packets
    bool dma = false;           ///< finite: DMA bulk-data movement

    /** Packets per message. */
    std::uint32_t
    packets() const
    {
        return words / static_cast<std::uint32_t>(n);
    }
};

/** Cost in the paper's three instruction categories. */
struct CatCost
{
    double reg = 0;
    double mem = 0;
    double dev = 0;

    double total() const { return reg + mem + dev; }

    double
    weighted(const CostModel &m) const
    {
        return reg * m.regWeight + mem * m.memWeight + dev * m.devWeight;
    }

    CatCost &
    operator+=(const CatCost &o)
    {
        reg += o.reg;
        mem += o.mem;
        dev += o.dev;
        return *this;
    }

    friend CatCost
    operator+(CatCost a, const CatCost &b)
    {
        a += b;
        return a;
    }

    friend CatCost
    operator*(double k, const CatCost &c)
    {
        return {k * c.reg, k * c.mem, k * c.dev};
    }
};

/**
 * Per-feature, per-role cost breakdown of one protocol run.
 */
struct FeatureBreakdown
{
    /// [feature][role]: role 0 = source, 1 = destination.
    CatCost cost[numPaperFeatures][numDirections];

    CatCost &
    at(Feature f, Direction d)
    {
        return cost[static_cast<int>(f)][static_cast<int>(d)];
    }

    const CatCost &
    at(Feature f, Direction d) const
    {
        return cost[static_cast<int>(f)][static_cast<int>(d)];
    }

    /** Total instructions executed by one role. */
    double roleTotal(Direction d) const;

    /** Total instructions attributed to one feature (both roles). */
    double featureTotal(Feature f) const;

    /** Grand total. */
    double grandTotal() const;

    /** Fraction of the total NOT in BaseCost: the paper's overhead. */
    double overheadFraction() const;

    /** Cycle-weighted grand total under a cost model. */
    double weightedTotal(const CostModel &m) const;

    FeatureBreakdown &operator+=(const FeatureBreakdown &o);
};

// ------------------------------------------------------------------
// Building blocks (per DESIGN.md 2.1); h = n/2 throughout.  Active
// messages and protocol control packets always use the 4-word CMAM_4
// format (the CM-5 send-first store encodes packet length), so their
// costs are constant in the hardware packet size; bulk-data packets
// scale with n.
// ------------------------------------------------------------------

/** One 4-word-format single-packet send: 14 reg + 1 mem + 5 dev. */
CatCost sendCost();

/** One full-packet bulk send: 14 reg + 1 mem + (h+3) dev. */
CatCost sendBulkCost(int n);

/** Poll entry: 12 reg + 1 dev. */
CatCost pollFixedCost();

/** Per-packet 4-word-format generic receive: 10 reg + 4 dev. */
CatCost recvPacketCost();

/** Per-packet full-size bulk receive: 10 reg + (h+2) dev. */
CatCost recvBulkPacketCost(int n);

/** Poll entry plus one 4-word packet: 22 reg + 5 dev. */
CatCost recvSingleCost();

// ------------------------------------------------------------------
// Protocol models.
// ------------------------------------------------------------------

/** Table 1: single-packet delivery (both substrates). */
FeatureBreakdown singlePacketModel(int n = 4);

/** Table 2 top: CMAM finite-sequence, multi-packet delivery. */
FeatureBreakdown cmamFiniteModel(const ProtoParams &p);

/** Table 2 bottom: CMAM indefinite-sequence, multi-packet delivery. */
FeatureBreakdown cmamStreamModel(const ProtoParams &p);

/** Section 4: finite-sequence atop high-level network features. */
FeatureBreakdown hlFiniteModel(const ProtoParams &p);

/** Section 4: indefinite-sequence atop high-level features. */
FeatureBreakdown hlStreamModel(const ProtoParams &p);

/**
 * The §4.1/Figure 6 comparison: fractional improvement of the
 * high-level implementation over the CMAM implementation.
 */
double hlImprovement(const FeatureBreakdown &cmam,
                     const FeatureBreakdown &hl);

} // namespace msgsim

#endif // MSGSIM_MODEL_ANALYTIC_HH

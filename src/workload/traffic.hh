/**
 * @file
 * Compatibility shim: the traffic pattern library grew into its own
 * subsystem (src/traffic — pattern vocabulary, the declarative
 * TrafficEngine, the analytic predictor hookup).  This header keeps
 * the old include path working; new code should include
 * "traffic/traffic.hh" directly.
 */

#ifndef MSGSIM_WORKLOAD_TRAFFIC_HH
#define MSGSIM_WORKLOAD_TRAFFIC_HH

#include "traffic/traffic.hh"

#endif // MSGSIM_WORKLOAD_TRAFFIC_HH

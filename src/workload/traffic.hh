/**
 * @file
 * Synthetic traffic workloads for machine-wide experiments — the
 * standard patterns of the interconnection-network literature the
 * paper draws on (uniform random, permutation, hotspot,
 * nearest-neighbor ring, transpose), plus a runner that drives
 * active-message traffic across a whole stack and reports per-node
 * software cost statistics.
 */

#ifndef MSGSIM_WORKLOAD_TRAFFIC_HH
#define MSGSIM_WORKLOAD_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "protocols/stack.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace msgsim
{

/** Classic destination patterns. */
enum class TrafficPattern : std::uint8_t
{
    UniformRandom, ///< fresh uniform destination per message
    Permutation,   ///< fixed random bijection, drawn once per seed
    Hotspot,       ///< a fraction of traffic targets node 0
    Ring,          ///< nearest neighbor: (i + 1) mod N
    Transpose,     ///< bit-reversal-ish: (i + N/2) mod N
};

/** Printable name of a pattern. */
const char *toString(TrafficPattern p);

/**
 * Destination generator for one pattern instance.
 */
class TrafficGen
{
  public:
    /**
     * @param nodes        machine size
     * @param pattern      destination pattern
     * @param seed         randomness for the stochastic patterns
     * @param hotFraction  Hotspot: probability a message hits node 0
     */
    TrafficGen(std::uint32_t nodes, TrafficPattern pattern,
               std::uint64_t seed = 1, double hotFraction = 0.5);

    /** Destination of @p src's next message (never src itself). */
    NodeId destFor(NodeId src);

    TrafficPattern pattern() const { return pattern_; }

    /** The fixed mapping (Permutation/Ring/Transpose patterns). */
    const std::vector<NodeId> &mapping() const { return mapping_; }

  private:
    std::uint32_t nodes_;
    TrafficPattern pattern_;
    Rng rng_;
    double hotFraction_;
    std::vector<NodeId> mapping_;
};

/**
 * Drives @p messagesPerNode active messages from every node under a
 * pattern and reports delivery/cost statistics.
 */
class TrafficRunner
{
  public:
    struct Result
    {
        bool ok = false;             ///< every payload checksum held
        std::uint64_t messages = 0;  ///< messages sent
        std::uint64_t delivered = 0; ///< handler invocations
        Tick elapsed = 0;
        RunningStat perNodeInstr;    ///< instruction bill per node
        double maxOverMean = 0;      ///< load imbalance indicator
    };

    explicit TrafficRunner(Stack &stack);

    Result run(TrafficGen &gen, std::uint32_t messagesPerNode,
               std::uint64_t payloadSeed = 99);

  private:
    Stack &stack_;
    std::vector<int> handlerIds_;
    std::uint64_t delivered_ = 0;
    std::uint64_t badPayloads_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_WORKLOAD_TRAFFIC_HH

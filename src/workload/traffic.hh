/**
 * @file
 * DEPRECATED compatibility shim — do not use in new code.
 *
 * The traffic pattern library grew into its own subsystem
 * (src/traffic — pattern vocabulary, the declarative TrafficEngine,
 * the analytic predictor hookup); there is no src/workload/traffic.cc
 * any more.  This header and the msgsim_workload INTERFACE target
 * only keep pre-existing include paths and link lines compiling.
 * Include "traffic/traffic.hh" and link msgsim_traffic directly; the
 * shim will be removed once no in-tree caller needs it.
 */

#ifndef MSGSIM_WORKLOAD_TRAFFIC_HH
#define MSGSIM_WORKLOAD_TRAFFIC_HH

#include "traffic/traffic.hh"

#endif // MSGSIM_WORKLOAD_TRAFFIC_HH

/**
 * @file
 * Canonical little-endian marshalling over byte buffers, after the
 * umsg exemplar (SNIPPETS.md §3): a Writer appends fixed-width
 * fields to a growable byte vector, a Reader consumes them with
 * explicit bounds checking — it can never over-read, it only goes
 * bad (ok() == false) and keeps returning zeros.
 *
 * These are *host-side* codecs: they build and parse the real bytes
 * that travel the modeled wire.  The modeled instruction cost of
 * doing so is charged separately (wire/cost.hh) so the byte logic
 * stays testable in isolation (the fuzz round-trip test).
 */

#ifndef MSGSIM_WIRE_MARSHAL_HH
#define MSGSIM_WIRE_MARSHAL_HH

#include <cstdint>
#include <vector>

namespace msgsim::wire
{

using Bytes = std::vector<std::uint8_t>;

/** Append-only little-endian field writer. */
class Writer
{
  public:
    explicit Writer(Bytes &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v >> 16));
        out_.push_back(static_cast<std::uint8_t>(v >> 24));
    }

    void
    bytes(const std::uint8_t *p, std::size_t n)
    {
        out_.insert(out_.end(), p, p + n);
    }

    std::size_t size() const { return out_.size(); }

  private:
    Bytes &out_;
};

/** Bounds-checked little-endian field reader. */
class Reader
{
  public:
    Reader(const std::uint8_t *p, std::size_t n) : p_(p), n_(n) {}
    explicit Reader(const Bytes &b) : Reader(b.data(), b.size()) {}

    /** False once any read ran past the end; reads then yield 0. */
    bool ok() const { return ok_; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return n_ - at_; }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return p_[at_++];
    }

    std::uint16_t
    u16()
    {
        if (!take(2))
            return 0;
        const std::uint16_t v = static_cast<std::uint16_t>(
            p_[at_] | (static_cast<std::uint16_t>(p_[at_ + 1]) << 8));
        at_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        const std::uint32_t v =
            static_cast<std::uint32_t>(p_[at_]) |
            (static_cast<std::uint32_t>(p_[at_ + 1]) << 8) |
            (static_cast<std::uint32_t>(p_[at_ + 2]) << 16) |
            (static_cast<std::uint32_t>(p_[at_ + 3]) << 24);
        at_ += 4;
        return v;
    }

    /** Consume @p n bytes into @p out; false (and bad) when short. */
    bool
    bytes(Bytes &out, std::size_t n)
    {
        if (!take(n))
            return false;
        out.assign(p_ + at_, p_ + at_ + n);
        at_ += n;
        return true;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || n_ - at_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *p_;
    std::size_t n_;
    std::size_t at_ = 0;
    bool ok_ = true;
};

} // namespace msgsim::wire

#endif // MSGSIM_WIRE_MARSHAL_HH

#include "wire/wire_run.hh"

#include <map>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace msgsim::wire
{

std::size_t
frameWireBytes(std::uint32_t payloadWords)
{
    // body = header(12) + payload + crc(4); wire = COBS + delimiter.
    const std::size_t body = 12 + 4 * payloadWords + 4;
    return cobsMaxEncoded(body) + 1;
}

WireRunResult
runWireWorkload(Stack &stack, const WireWorkload &w)
{
    if (w.streams == 0 || w.framesPerStream == 0)
        msgsim_fatal("wire workload needs at least one stream and "
                     "one frame");
    if (w.payloadWords == 0 ||
        w.payloadWords > StreamMux::maxPayloadWords)
        msgsim_fatal("wire payload of ", w.payloadWords,
                     " words: must be 1..", StreamMux::maxPayloadWords);

    StreamProtocol proto(stack);

    // Ring sizing: enough slots that first-transmission traffic never
    // blocks inside a delivery callback (see mux.cc reentrancy note).
    const std::size_t n = static_cast<std::size_t>(stack.dataWords());
    const std::size_t hwPerFrame =
        (frameWireBytes(w.payloadWords) / 4 + n) / n + 1;
    const std::uint32_t totalFrames =
        w.streams * (w.framesPerStream + 2); // + attach/detach
    const std::uint32_t ring = static_cast<std::uint32_t>(
        totalFrames * hwPerFrame + 16);

    MuxOptions opt;
    opt.groupAck = w.groupAck;
    opt.ringPackets = ring;
    opt.window = w.window;
    opt.ackEvery = w.ackEvery;

    // Per-(sid, seq) delivery journal for the integrity check.
    std::map<std::uint16_t, std::vector<std::vector<Word>>> got;
    StreamMux mux(stack, proto, w.sender, w.receiver, opt,
                  [&got](std::uint16_t sid, std::uint32_t seq,
                         const std::vector<Word> &payload) {
                      auto &log = got[sid];
                      if (seq != log.size())
                          msgsim_panic("wire delivery out of order: "
                                       "stream ", sid, " seq ", seq,
                                       " after ", log.size());
                      log.push_back(payload);
                  });
    mux.setCorruptEveryN(w.corruptEvery);

    Node &src = stack.node(w.sender);
    Node &dst = stack.node(w.receiver);
    const InstrCounter srcBefore = src.acct().counter();
    const InstrCounter dstBefore = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    // Open every stream, then interleave their frames round-robin so
    // consecutive wire frames belong to different streams.
    std::vector<std::uint16_t> sids;
    sids.reserve(w.streams);
    for (std::uint32_t s = 0; s < w.streams; ++s)
        sids.push_back(mux.openStream());
    if (w.onStart)
        w.onStart(proto, mux, sids);

    for (std::uint32_t f = 0; f < w.framesPerStream; ++f) {
        for (std::uint32_t s = 0; s < w.streams; ++s) {
            std::uint64_t sm = w.fillSeed ^ (static_cast<std::uint64_t>(
                                                 sids[s])
                                             << 32) ^
                               f;
            std::vector<Word> payload(w.payloadWords);
            for (Word &word : payload)
                word = static_cast<Word>(splitMix64(sm));
            mux.send(sids[s], payload);
        }
    }
    for (const std::uint16_t sid : sids)
        mux.closeStream(sid);
    mux.flush();
    if (w.onFinish)
        w.onFinish(mux);

    WireRunResult out;
    out.run.counts.src = src.acct().counter().diff(srcBefore);
    out.run.counts.dst = dst.acct().counter().diff(dstBefore);
    out.run.elapsed = stack.sim().now() - t0;
    out.run.packets = mux.stats().dataFrames;
    out.run.acksSent = mux.stats().wireAcks;
    out.run.retransmissions = mux.stats().wireRetransmits;
    out.run.duplicates = mux.stats().dupDrops;
    out.run.oooArrivals = mux.stats().gapDrops;
    out.wire = mux.stats();
    out.crcRejects = mux.rxCrcRejects();
    out.malformed = mux.rxMalformed();

    // Integrity: every stream fully delivered, in order, detached on
    // both sides, with the exact payload words.
    bool ok = true;
    for (std::uint32_t s = 0; s < w.streams && ok; ++s) {
        const std::uint16_t sid = sids[s];
        ok = mux.sendState(sid) == SendState::Detached &&
             mux.recvState(sid) == RecvState::Detached &&
             got[sid].size() == w.framesPerStream;
        for (std::uint32_t f = 0; ok && f < w.framesPerStream; ++f) {
            std::uint64_t sm = w.fillSeed ^ (static_cast<std::uint64_t>(
                                                 sid)
                                             << 32) ^
                               f;
            for (const Word word : got[sid][f])
                if (word != static_cast<Word>(splitMix64(sm))) {
                    ok = false;
                    break;
                }
        }
    }
    out.run.dataOk = ok;
    return out;
}

} // namespace msgsim::wire

/**
 * @file
 * COBS (consistent-overhead byte stuffing) and table-driven CRC32,
 * per the umsg exemplar (SNIPPETS.md §3).
 *
 * COBS maps arbitrary bytes onto a zero-free encoding so that 0x00
 * can serve as an unambiguous frame delimiter on a byte stream:
 * the encoder replaces each zero with the distance to the next one
 * (chunked at 254), the decoder inverts that.  Both directions are
 * strictly bounds-checked — a truncated or corrupted encoding makes
 * cobsDecode return false, never read out of range (the fuzz test
 * pins this under ASan/UBSan).
 */

#ifndef MSGSIM_WIRE_COBS_HH
#define MSGSIM_WIRE_COBS_HH

#include <cstdint>

#include "wire/marshal.hh"

namespace msgsim::wire
{

/** Worst-case COBS expansion of @p n payload bytes (no delimiter). */
constexpr std::size_t
cobsMaxEncoded(std::size_t n)
{
    return n + 1 + n / 254;
}

/** Append the COBS encoding of [p, p+n) to @p out (no delimiter). */
void cobsEncode(const std::uint8_t *p, std::size_t n, Bytes &out);

/**
 * Decode one delimiter-free COBS block [p, p+n) into @p out.
 * Returns false (leaving @p out in an unspecified but valid state)
 * when the encoding is malformed: an embedded zero, or a code byte
 * pointing past the end of the block.
 */
bool cobsDecode(const std::uint8_t *p, std::size_t n, Bytes &out);

/** CRC-32 (IEEE 802.3, reflected) of [p, p+n), init/final 0xffffffff. */
std::uint32_t crc32(const std::uint8_t *p, std::size_t n);

} // namespace msgsim::wire

#endif // MSGSIM_WIRE_COBS_HH

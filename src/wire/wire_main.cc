/**
 * @file
 * msgsim-wire: run the canonical multi-stream wire workload on any
 * substrate and report the wire-layer bill.
 *
 *     msgsim-wire --substrate=rdma --streams=4 --frames=8
 *
 * The table shows the framing feature's instruction cost next to the
 * classic four, plus the mux counters (window stalls, wire acks, CRC
 * rejects when --corrupt-every is set).  --bench-out appends a
 * framed-bytes/s wall-clock entry to the perf trajectory file
 * (BENCH_throughput.json), labelled --bench-label.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lab/reporter.hh"
#include "lab/result_table.hh"
#include "sim/obs_cli.hh"
#include "wire/wire_run.hh"

namespace
{

using namespace msgsim;

struct Options
{
    std::string substrate = "cm5";
    std::uint32_t nodes = 4;
    std::uint32_t streams = 4;
    std::uint32_t frames = 8;
    std::uint32_t size = 6;
    std::uint32_t window = 4;
    std::uint32_t groupAck = 4;
    std::uint32_t ackEvery = 1;
    std::uint32_t corruptEvery = 0;
    std::uint64_t seed = 0x5eedf00dULL;
    bool quiet = false;
    std::string jsonOut;
    std::string benchOut;
    std::string benchLabel = "wire";
};

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: msgsim-wire [options]\n"
        "\n"
        "  --substrate=<s>      cm5 | cr | rdma | nicam      [cm5]\n"
        "  --nodes=<n>          machine size                 [4]\n"
        "  --streams=<n>        concurrent logical streams   [4]\n"
        "  --frames=<n>         DATA frames per stream       [8]\n"
        "  --size=<w>           payload words per frame      [6]\n"
        "  --window=<n>         per-stream sliding window    [4]\n"
        "  --group-ack=<n>      underlying hw group ack      [4]\n"
        "  --ack-every=<n>      wire acks per N frames       [1]\n"
        "  --corrupt-every=<n>  CRC-corrupt every Nth DATA\n"
        "                       frame (0 = off)              [0]\n"
        "  --seed=<n>           payload fill seed\n"
        "  --quiet              suppress the stdout table\n"
        "  --json-out=<file>    write the run table as JSON\n"
        "  --bench-out=<file>   append framed-bytes/s entry to the\n"
        "                       perf trajectory file\n"
        "  --bench-label=<l>    trajectory entry label  [wire]\n"
        "  --trace-out=<file>, --metrics-out=<file>  (observability)\n",
        to);
}

bool
eat(const std::string &arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (arg.compare(0, n, key) != 0)
        return false;
    out = arg.substr(n);
    return true;
}

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string v;
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (eat(arg, "--substrate=", opt.substrate) ||
                   eat(arg, "--json-out=", opt.jsonOut) ||
                   eat(arg, "--bench-out=", opt.benchOut) ||
                   eat(arg, "--bench-label=", opt.benchLabel)) {
        } else if (eat(arg, "--nodes=", v)) {
            opt.nodes = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--streams=", v)) {
            opt.streams = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--frames=", v)) {
            opt.frames = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--size=", v)) {
            opt.size = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--window=", v)) {
            opt.window = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--group-ack=", v)) {
            opt.groupAck = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--ack-every=", v)) {
            opt.ackEvery = static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--corrupt-every=", v)) {
            opt.corruptEvery =
                static_cast<std::uint32_t>(std::stoul(v));
        } else if (eat(arg, "--seed=", v)) {
            opt.seed = std::stoull(v);
        } else {
            std::fprintf(stderr, "msgsim-wire: unknown flag '%s'\n",
                         arg.c_str());
            usage(stderr);
            return false;
        }
    }
    return true;
}

bool
substrateOf(const std::string &name, Substrate &out)
{
    if (name == "cm5")
        out = Substrate::Cm5;
    else if (name == "cr")
        out = Substrate::Cr;
    else if (name == "rdma")
        out = Substrate::Rdma;
    else if (name == "nicam")
        out = Substrate::Nicam;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    auto obsOpts = obs::parseArgs(argc, argv);
    obs::Scope scope(obsOpts);

    Options opt;
    if (!parse(argc, argv, opt))
        return 2;

    Substrate substrate;
    if (!substrateOf(opt.substrate, substrate)) {
        std::fprintf(stderr, "msgsim-wire: unknown substrate '%s'\n",
                     opt.substrate.c_str());
        return 2;
    }
    if (opt.window == 0 || opt.window > 255) {
        std::fprintf(stderr, "msgsim-wire: window must be 1..255\n");
        return 2;
    }

    StackConfig cfg;
    cfg.substrate = substrate;
    cfg.nodes = opt.nodes < 2 ? 2 : opt.nodes;
    Stack stack(cfg);
    scope.bindClock(stack.sim());

    wire::WireWorkload w;
    w.streams = opt.streams;
    w.framesPerStream = opt.frames;
    w.payloadWords = opt.size;
    w.window = static_cast<std::uint8_t>(opt.window);
    w.groupAck = static_cast<int>(opt.groupAck);
    w.ackEvery = opt.ackEvery;
    w.corruptEvery = opt.corruptEvery;
    w.fillSeed = opt.seed;

    const auto w0 = std::chrono::steady_clock::now();
    const wire::WireRunResult res = wire::runWireWorkload(stack, w);
    const auto w1 = std::chrono::steady_clock::now();
    const double wallUs =
        std::chrono::duration<double, std::micro>(w1 - w0).count();
    scope.collect(stack.sim(), "sim");

    lab::ResultTable t;
    t.name = "wire";
    t.title = "Wire workload: " + std::to_string(opt.streams) +
              " streams x " + std::to_string(opt.frames) +
              " frames on " + opt.substrate;
    t.columns = {"substrate", "streams",  "frames",    "delivered",
                 "wire acks", "retx",     "crc rej",   "stalls",
                 "framed B",  "framing",  "base",      "buffer",
                 "inorder",   "fault",    "total",     "ticks",
                 "ok"};
    const BreakdownCounter &c = res.run.counts;
    t.addRow({lab::Cell::text(opt.substrate),
              lab::Cell::integer(opt.streams),
              lab::Cell::integer(res.wire.dataFrames),
              lab::Cell::integer(res.wire.dataDelivered),
              lab::Cell::integer(res.wire.wireAcks),
              lab::Cell::integer(res.wire.wireRetransmits),
              lab::Cell::integer(res.crcRejects),
              lab::Cell::integer(res.wire.windowStalls),
              lab::Cell::integer(res.wire.framedBytes),
              lab::Cell::integer(c.featureTotal(Feature::Framing)),
              lab::Cell::integer(c.featureTotal(Feature::BaseCost)),
              lab::Cell::integer(c.featureTotal(Feature::BufferMgmt)),
              lab::Cell::integer(
                  c.featureTotal(Feature::InOrderDelivery)),
              lab::Cell::integer(
                  c.featureTotal(Feature::FaultTolerance)),
              lab::Cell::integer(c.paperTotal() +
                                 c.featureTotal(Feature::Framing)),
              lab::Cell::integer(res.run.elapsed),
              lab::Cell::text(res.run.dataOk ? "ok" : "FAIL")});
    t.notes = {"'framing' is the Feature::Framing bill the wire layer "
               "adds on top of the classic four (docs/WIRE.md); "
               "'total' includes it."};
    if (!opt.quiet)
        std::fputs(t.markdown().c_str(), stdout);

    if (!opt.jsonOut.empty())
        lab::Reporter::writeFile(opt.jsonOut, t.jsonText());

    if (!opt.benchOut.empty()) {
        lab::ResultTable bt;
        bt.name = "W-wire";
        bt.title = "Wire-layer throughput: framed bytes/s "
                   "(host wall-clock)";
        bt.columns = {"scenario", "framed bytes", "wall us",
                      "framed bytes/s"};
        const double bps =
            wallUs > 0 ? 1e6 * static_cast<double>(
                                   res.wire.framedBytes) /
                             wallUs
                       : 0;
        bt.addRow({lab::Cell::text(opt.substrate + "/s" +
                                   std::to_string(opt.streams) +
                                   "/f" + std::to_string(opt.frames)),
                   lab::Cell::integer(res.wire.framedBytes),
                   lab::Cell::real(wallUs), lab::Cell::real(bps)});
        bt.notes = {"Measures this repository's simulator, not the "
                    "modeled machine; feeds the repo-root "
                    "BENCH_throughput.json perf trajectory."};
        lab::Reporter::appendBench(opt.benchOut, bt, opt.benchLabel);
    }

    if (!res.run.dataOk)
        std::fprintf(stderr,
                     "msgsim-wire: run FAILED (delivery check)\n");
    return res.run.dataOk ? 0 : 1;
}

/**
 * @file
 * StreamMux: many logical streams multiplexed over one reliable
 * channel pair, with per-stream sliding-window flow control.
 *
 * The mux rides two StreamProtocol persistent channels (forward for
 * framed data, reverse for wire-level ACK/RESET control), so it runs
 * unchanged on all four substrates and inherits reliable in-order
 * exactly-once delivery of the *hardware* packets.  What the wire
 * layer adds on top — marshalling, COBS framing, CRC, demux, the
 * window state machine — is charged to Feature::Framing, so
 * msgsim-prof differentials show which substrates make framing cost
 * vanish (rdma: the NIC gathers, stuffs and checksums inline, the
 * host builds one descriptor) versus appear (cm5/cr/nicam: the host
 * touches every byte).
 *
 * Stream lifecycle (libssu packet vocabulary):
 *
 *     sender                               receiver
 *     openStream()  --ATTACH-->            stream created
 *     send()        --DATA(seq)-->         in-seq: deliver, ack
 *                   <--ACK(cum)--          window refill, backlog pump
 *     closeStream() --DETACH-->            final ack, stream retired
 *                   <--RESET--             receiver aborts the stream
 *
 * Loss exists only at the wire layer (the deterministic corruption
 * knob flips a CRC before transmit); the receiver then sees a
 * sequence gap, drops until the timeout model (kick) resends the
 * unacknowledged tail.
 */

#ifndef MSGSIM_WIRE_MUX_HH
#define MSGSIM_WIRE_MUX_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "protocols/stream.hh"
#include "wire/frame.hh"

namespace msgsim::wire
{

/** Mux construction parameters. */
struct MuxOptions
{
    int groupAck = 1;            ///< underlying hw-packet group ack
    std::uint32_t ringPackets = 64; ///< underlying retransmit rings
    std::uint8_t window = 4;     ///< per-stream max unacked DATA frames
    std::uint32_t ackEvery = 1;  ///< wire acks: one per this many frames
};

/** Wire-layer counters (see docs/WIRE.md). */
struct MuxStats
{
    std::uint64_t framesSent = 0;     ///< all frames put on the wire
    std::uint64_t framedBytes = 0;    ///< line bytes incl. padding
    std::uint64_t dataFrames = 0;     ///< first-transmission DATA
    std::uint64_t dataDelivered = 0;  ///< in-seq deliveries to the app
    std::uint64_t wireAcks = 0;       ///< ACK frames sent
    std::uint64_t wireRetransmits = 0;///< DATA frames resent by kick()
    std::uint64_t corruptedTx = 0;    ///< frames corrupted by the knob
    std::uint64_t gapDrops = 0;       ///< seq > expected (post CRC loss)
    std::uint64_t dupDrops = 0;       ///< seq < expected (retx overlap)
    std::uint64_t windowStalls = 0;   ///< sends deferred to the backlog
    std::uint64_t resetsSent = 0;     ///< RESET frames sent (either way)
    std::uint64_t attaches = 0;       ///< ATTACH frames handled
    std::uint64_t detaches = 0;       ///< DETACH frames handled
    std::uint64_t deadStreamDrops = 0;///< DATA for unknown/detached sid
    /// Deliveries on a reset stream: always zero unless the seeded
    /// bug (setBugResetDeliver) is armed — the checker's invariant.
    std::uint64_t deliveredAfterReset = 0;
};

/** Sender-side stream state. */
enum class SendState
{
    Open,     ///< accepting send() calls
    Closing,  ///< closeStream() called with frames still unacked
    Detached, ///< DETACH sent; stream retired
    Reset,    ///< receiver aborted; unacked and backlog dropped
};

/** Receiver-side stream state. */
enum class RecvState
{
    Open,     ///< delivering
    Detached, ///< DETACH handled
    Reset,    ///< aborted; in-flight DATA discarded
};

const char *toString(SendState s);
const char *toString(RecvState s);

/**
 * The multiplexer: one sender node, one receiver node, many streams.
 */
class StreamMux
{
  public:
    /** App delivery: stream id, wire sequence, payload words. */
    using DeliverFn = std::function<void(
        std::uint16_t sid, std::uint32_t seq,
        const std::vector<Word> &payload)>;

    StreamMux(Stack &stack, StreamProtocol &proto, NodeId sender,
              NodeId receiver, const MuxOptions &opt, DeliverFn cb);

    StreamMux(const StreamMux &) = delete;
    StreamMux &operator=(const StreamMux &) = delete;

    // ---------------- sender-role API ----------------

    /** Open a new stream (sends ATTACH); returns its id. */
    std::uint16_t openStream();

    /**
     * Send one payload (at most maxPayloadWords words) on @p sid.
     * Queued in the backlog when the sliding window is full.
     */
    void send(std::uint16_t sid, const std::vector<Word> &payload);

    /**
     * Close @p sid: DETACH goes out once every DATA frame is
     * acknowledged (state Closing until then).
     */
    void closeStream(std::uint16_t sid);

    // ---------------- receiver-role API ----------------

    /**
     * Abort @p sid from the receiving side (sends RESET).  In-flight
     * DATA already in the network is discarded on arrival.
     */
    void resetStream(std::uint16_t sid);

    // ---------------- progress ----------------

    /**
     * Timeout-model recovery: resend unacknowledged DATA, flush
     * withheld wire acks, and kick the underlying channels.  Returns
     * true when anything was done.  The model checker and flush()
     * invoke this when progress stops.
     */
    bool kick();

    /** Settle + poll until quiescent (not for use under the checker). */
    void flush();

    /** True when nothing is in flight or deferred at the wire layer. */
    bool quiescent() const;

    // ---------------- knobs ----------------

    /**
     * Deterministic corruption: flip the CRC of every Nth
     * first-transmission DATA frame (0 = off).  Retransmissions are
     * never corrupted, so kick() always recovers.
     */
    void setCorruptEveryN(std::uint32_t n) { corruptEvery_ = n; }

    /**
     * Seeded bug for the model checker (docs/CHECKING.md): the
     * receiver keeps delivering in-flight DATA on a stream it has
     * already reset, violating the reset contract.
     */
    void setBugResetDeliver(bool on) { bugResetDeliver_ = on; }

    // ---------------- introspection ----------------

    SendState sendState(std::uint16_t sid) const;
    RecvState recvState(std::uint16_t sid) const;

    /** Ids of all sender-side streams ever opened, ascending. */
    std::vector<std::uint16_t>
    sendSids() const
    {
        std::vector<std::uint16_t> out;
        out.reserve(send_.size());
        for (const auto &[sid, ss] : send_)
            out.push_back(sid);
        return out;
    }

    /** The per-stream sliding-window size. */
    std::uint8_t window() const { return opt_.window; }
    std::size_t unacked(std::uint16_t sid) const;
    std::size_t backlog(std::uint16_t sid) const;
    std::uint32_t deliveredOn(std::uint16_t sid) const;
    const MuxStats &stats() const { return stats_; }

    /** CRC rejects observed by the receive-side frame decoder. */
    std::uint64_t rxCrcRejects() const { return rxDecoder_.crcRejects(); }

    /** Malformed blocks observed by the receive-side frame decoder. */
    std::uint64_t rxMalformed() const { return rxDecoder_.malformed(); }

    NodeId sender() const { return sender_; }
    NodeId receiver() const { return receiver_; }
    Word fwdChannel() const { return fwdChan_; }
    Word revChannel() const { return revChan_; }

    /** Largest payload send() accepts, in words. */
    static constexpr std::size_t maxPayloadWords = 48;

  private:
    struct SendStream
    {
        SendState state = SendState::Open;
        std::uint32_t nextSeq = 0;
        std::map<std::uint32_t, std::vector<Word>> unacked;
        std::deque<std::vector<Word>> backlog;
    };

    struct RecvStream
    {
        RecvState state = RecvState::Open;
        std::uint32_t expected = 0;
        std::uint32_t delivered = 0;
        std::uint32_t ackCount = 0; ///< frames since the last wire ack
    };

    /// Modeled scratch regions of one endpoint (see wire charging
    /// notes in mux.cc).
    struct Scratch
    {
        Addr crcTable = 0;
        Addr buf = 0;
        Addr desc = 0;
    };

    // Frame transmission (fwd = sender->receiver data channel,
    // rev = receiver->sender control channel).
    void transmitOn(bool fwd, const StreamHeader &h,
                    const Bytes &payload, bool corrupt);
    void transmitData(std::uint16_t sid, SendStream &ss,
                      const std::vector<Word> &payload);
    void pumpBacklog(std::uint16_t sid, SendStream &ss);
    void maybeDetach(std::uint16_t sid, SendStream &ss);

    // Frame reception.
    void onFwdPacket(const std::vector<Word> &words);
    void onRevPacket(const std::vector<Word> &words);
    void onFwdFrame(const Frame &f);  ///< at the receiver
    void onRevFrame(const Frame &f);  ///< at the sender
    void handleData(const Frame &f, RecvStream &rs);
    void sendAck(std::uint16_t sid, RecvStream &rs);
    void sendResetFromReceiver(std::uint16_t sid);

    // Modeled-cost charging (Feature::Framing).
    void chargeTxFrame(NodeId at, std::size_t bodyBytes,
                       std::size_t wireBytes, std::size_t payloadWords);
    void chargeRxChunk(std::size_t bytes);
    void chargeRxFrame(const Frame &f);

    Stack &stack_;
    StreamProtocol &proto_;
    NodeId sender_;
    NodeId receiver_;
    MuxOptions opt_;
    DeliverFn deliverFn_;
    bool offloaded_; ///< rdma: NIC does framing; host pays descriptors

    Word fwdChan_ = 0;
    Word revChan_ = 0;
    Scratch txScratch_; ///< on the sender node
    Scratch rxScratch_; ///< on the receiver node

    std::uint16_t nextSid_ = 1;
    std::map<std::uint16_t, SendStream> send_;
    std::map<std::uint16_t, RecvStream> recv_;

    FrameDecoder rxDecoder_; ///< receiver side of the fwd channel
    FrameDecoder txDecoder_; ///< sender side of the rev channel

    std::uint32_t corruptEvery_ = 0;
    std::uint64_t dataTxCount_ = 0;
    bool bugResetDeliver_ = false;
    MuxStats stats_;
};

} // namespace msgsim::wire

#endif // MSGSIM_WIRE_MUX_HH

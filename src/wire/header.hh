/**
 * @file
 * Typed wire-packet headers, after libssu's stream_protocol
 * (SNIPPETS.md §2): every frame starts with a common stream header
 * (stream id, packet type, window advertisement); DATA and ACK
 * frames extend it with a 32-bit sequence / cumulative-ack number.
 *
 * Layout (little-endian, inside the CRC-protected frame body):
 *
 *     magic(4) | sid(2) | type(1) | window(1) [| seq(4)] | payload
 *
 * magic = 0x304d5257 ("WRM0") guards against feeding a foreign byte
 * stream to the demultiplexer; type is the libssu vocabulary
 * (init/reply/data/datagram/ack/reset/attach/detach).
 */

#ifndef MSGSIM_WIRE_HEADER_HH
#define MSGSIM_WIRE_HEADER_HH

#include <cstdint>

#include "wire/marshal.hh"

namespace msgsim::wire
{

/** Frame magic: 'W' 'R' 'M' '0' in little-endian byte order. */
constexpr std::uint32_t kMagic = 0x304d5257u;

/** Packet-type vocabulary (libssu's stream_protocol values). */
enum class PacketType : std::uint8_t
{
    Invalid = 0x0,
    Init = 0x1,
    Reply = 0x2,
    Data = 0x3,
    Datagram = 0x4,
    Ack = 0x5,
    Reset = 0x6,
    Attach = 0x7,
    Detach = 0x8,
};

/** Printable name of a packet type. */
const char *toString(PacketType t);

/** The common header every frame carries; DATA/ACK add seq. */
struct StreamHeader
{
    std::uint16_t sid = 0;     ///< logical stream id
    PacketType type = PacketType::Invalid;
    std::uint8_t window = 0;   ///< receive-window advertisement
    std::uint32_t seq = 0;     ///< DATA: tx seq; ACK: cumulative ack

    /** True when @p type carries the 32-bit sequence field. */
    static bool
    hasSeq(PacketType t)
    {
        return t == PacketType::Data || t == PacketType::Ack ||
               t == PacketType::Init || t == PacketType::Reply;
    }

    /** Encoded header size in bytes for @p t. */
    static std::size_t
    encodedSize(PacketType t)
    {
        return hasSeq(t) ? 12 : 8;
    }

    void
    encode(Writer &w) const
    {
        w.u32(kMagic);
        w.u16(sid);
        w.u8(static_cast<std::uint8_t>(type));
        w.u8(window);
        if (hasSeq(type))
            w.u32(seq);
    }

    /** False on bad magic, unknown type, or a short buffer. */
    bool
    decode(Reader &r)
    {
        if (r.u32() != kMagic)
            return false;
        sid = r.u16();
        const std::uint8_t t = r.u8();
        if (t < 0x1 || t > 0x8)
            return false;
        type = static_cast<PacketType>(t);
        window = r.u8();
        if (hasSeq(type))
            seq = r.u32();
        return r.ok();
    }
};

} // namespace msgsim::wire

#endif // MSGSIM_WIRE_HEADER_HH

/**
 * @file
 * Framing: header + payload -> CRC-protected, COBS-delimited wire
 * bytes, and the inverse incremental decoder.
 *
 * Packet layout, per the umsg exemplar (SNIPPETS.md §3):
 *
 *     COBS( header || payload || crc32 ) || 0x00
 *
 * The CRC covers the whole frame body (header included), so header
 * corruption is caught the same way payload corruption is.  The
 * decoder is a resynchronizing byte-stream consumer: feed it any
 * byte sequence and it splits at 0x00 delimiters, COBS-decodes and
 * CRC-checks each block, surfaces the good frames, counts the bad
 * ones, and never crashes or over-reads (fuzz-tested).  Empty
 * blocks (padding zeros between frames) are skipped silently.
 */

#ifndef MSGSIM_WIRE_FRAME_HH
#define MSGSIM_WIRE_FRAME_HH

#include <functional>

#include "wire/cobs.hh"
#include "wire/header.hh"

namespace msgsim::wire
{

/** One decoded frame: its header and the raw payload bytes. */
struct Frame
{
    StreamHeader header;
    Bytes payload;
};

/** Append the encoded wire bytes of (@p header, payload) to @p out. */
void encodeFrame(const StreamHeader &header, const Bytes &payload,
                 Bytes &out);

/**
 * Incremental frame decoder.  push() consumes arbitrary byte chunks;
 * complete frames invoke the sink, malformed ones bump a counter and
 * the decoder resynchronizes at the next delimiter.
 */
class FrameDecoder
{
  public:
    using FrameSink = std::function<void(const Frame &)>;

    explicit FrameDecoder(FrameSink sink) : sink_(std::move(sink)) {}

    /** Consume @p n wire bytes. */
    void push(const std::uint8_t *p, std::size_t n);

    void
    push(const Bytes &b)
    {
        push(b.data(), b.size());
    }

    /** Frames delivered to the sink. */
    std::uint64_t frames() const { return frames_; }

    /** Blocks rejected by the CRC check. */
    std::uint64_t crcRejects() const { return crcRejects_; }

    /** Blocks rejected before the CRC (COBS / header / length). */
    std::uint64_t malformed() const { return malformed_; }

    /** Bytes buffered awaiting a delimiter. */
    std::size_t pendingBytes() const { return buf_.size(); }

  private:
    void finishBlock();

    FrameSink sink_;
    Bytes buf_; ///< current delimiter-free block
    std::uint64_t frames_ = 0;
    std::uint64_t crcRejects_ = 0;
    std::uint64_t malformed_ = 0;
};

} // namespace msgsim::wire

#endif // MSGSIM_WIRE_FRAME_HH

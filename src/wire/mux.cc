#include "wire/mux.hh"

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim::wire
{

namespace
{

/// Pack wire bytes into Words (4 bytes per word, little-endian),
/// zero-padded to a multiple of @p packetWords.  Padding zeros are
/// empty COBS blocks, which the decoder skips silently.
void
bytesToWords(const Bytes &b, int packetWords, std::vector<Word> &out)
{
    std::size_t words = (b.size() + 3) / 4;
    const std::size_t n = static_cast<std::size_t>(packetWords);
    words = ((words + n - 1) / n) * n;
    out.assign(words, 0);
    for (std::size_t i = 0; i < b.size(); ++i)
        out[i / 4] |= static_cast<Word>(b[i]) << (8 * (i % 4));
}

void
wordsToBytes(const std::vector<Word> &w, Bytes &out)
{
    out.resize(w.size() * 4);
    for (std::size_t i = 0; i < w.size(); ++i)
        for (int k = 0; k < 4; ++k)
            out[i * 4 + static_cast<std::size_t>(k)] =
                static_cast<std::uint8_t>(w[i] >> (8 * k));
}

void
payloadToBytes(const std::vector<Word> &payload, Bytes &out)
{
    Writer w(out);
    for (const Word word : payload)
        w.u32(word);
}

/// Like encodeFrame, but with the CRC flipped: the deterministic
/// corruption knob.  The COBS encoding stays well formed, so the
/// receiver reaches the CRC check and rejects there — guaranteed
/// crcRejects, never malformed.
void
encodeFrameCorrupt(const StreamHeader &header, const Bytes &payload,
                   Bytes &out)
{
    Bytes body;
    Writer w(body);
    header.encode(w);
    w.bytes(payload.data(), payload.size());
    w.u32(crc32(body.data(), body.size()) ^ 0x1u);
    cobsEncode(body.data(), body.size(), out);
    out.push_back(0);
}

} // namespace

const char *
toString(SendState s)
{
    switch (s) {
      case SendState::Open:     return "open";
      case SendState::Closing:  return "closing";
      case SendState::Detached: return "detached";
      case SendState::Reset:    return "reset";
      default:                  return "?";
    }
}

const char *
toString(RecvState s)
{
    switch (s) {
      case RecvState::Open:     return "open";
      case RecvState::Detached: return "detached";
      case RecvState::Reset:    return "reset";
      default:                  return "?";
    }
}

StreamMux::StreamMux(Stack &stack, StreamProtocol &proto, NodeId sender,
                     NodeId receiver, const MuxOptions &opt,
                     DeliverFn cb)
    : stack_(stack), proto_(proto), sender_(sender),
      receiver_(receiver), opt_(opt), deliverFn_(std::move(cb)),
      offloaded_(stack.substrate() == Substrate::Rdma),
      rxDecoder_([this](const Frame &f) { onFwdFrame(f); }),
      txDecoder_([this](const Frame &f) { onRevFrame(f); })
{
    if (opt_.window == 0)
        msgsim_fatal("wire mux window must be at least 1");
    if (opt_.ackEvery == 0)
        opt_.ackEvery = 1;

    // Modeled scratch regions, uncharged (static carving at
    // connection establishment, like the channel rings): the CRC
    // table, a staging buffer large enough for any frame, and the
    // two-word NIC descriptor the offloaded path uses instead.
    txScratch_.crcTable = stack_.node(sender_).mem().alloc(256);
    txScratch_.buf = stack_.node(sender_).mem().alloc(64);
    txScratch_.desc = stack_.node(sender_).mem().alloc(2);
    rxScratch_.crcTable = stack_.node(receiver_).mem().alloc(256);
    rxScratch_.buf = stack_.node(receiver_).mem().alloc(64);
    rxScratch_.desc = stack_.node(receiver_).mem().alloc(2);

    fwdChan_ = proto_.openPersistent(
        sender_, receiver_, opt_.groupAck, opt_.ringPackets,
        [this](std::uint32_t, const std::vector<Word> &w) {
            onFwdPacket(w);
        });
    revChan_ = proto_.openPersistent(
        receiver_, sender_, opt_.groupAck, opt_.ringPackets,
        [this](std::uint32_t, const std::vector<Word> &w) {
            onRevPacket(w);
        });
}

// ------------------------------------------------------------------
// Modeled cost (Feature::Framing).
//
// Software substrates (cm5/cr/nicam) touch every byte: the header
// build (6 reg + 2 st), the per-word payload marshal (2 reg + 1 st),
// the table-driven CRC (1 reg + 1 table ld per body byte), and the
// COBS stuffing pass (1 reg per body byte + 1 st per output word).
// The receive side mirrors it: a delimiter scan over every wire byte
// (1 reg + 1 ld per ring word), then per frame the CRC verify, the
// header parse (6 reg + 2 ld) and the payload unmarshal.
//
// On rdma the NIC gathers, stuffs and checksums inline (zero-copy):
// the host builds one two-word descriptor per frame on send (4 reg +
// 1 std) and harvests one on receive (4 reg + 1 ldd) — framing all
// but vanishes from the processor's bill.
// ------------------------------------------------------------------

void
StreamMux::chargeTxFrame(NodeId at, std::size_t bodyBytes,
                         std::size_t wireBytes,
                         std::size_t payloadWords)
{
    Node &nd = stack_.node(at);
    Processor &p = nd.proc();
    const Scratch &sc = at == sender_ ? txScratch_ : rxScratch_;
    if (offloaded_) {
        p.regOps(4); // descriptor fields, doorbell address
        p.storeDouble(sc.desc, static_cast<Word>(bodyBytes),
                      static_cast<Word>(payloadWords)); // mem 1
        return;
    }
    // Header build.
    p.regOps(6);
    p.storeWord(sc.buf + 0, 0); // mem 1
    p.storeWord(sc.buf + 1, 0); // mem 2
    // Payload marshal.
    p.regOps(2 * payloadWords);
    for (std::size_t w = 0; w < payloadWords; ++w)
        p.storeWord(sc.buf + 3 + static_cast<Addr>(w % 48), 0);
    // CRC accumulate: xor/index per byte + one table load.
    p.regOps(bodyBytes);
    for (std::size_t i = 0; i < bodyBytes; ++i)
        (void)p.loadWord(sc.crcTable + static_cast<Addr>(i & 0xff));
    // COBS stuffing pass + output stores.
    p.regOps(bodyBytes + 2);
    const std::size_t wireWords = (wireBytes + 3) / 4;
    for (std::size_t w = 0; w < wireWords; ++w)
        p.storeWord(sc.buf + static_cast<Addr>(w % 64), 0);
}

void
StreamMux::chargeRxChunk(std::size_t bytes)
{
    if (offloaded_)
        return; // the NIC scatters verified frames directly
    Processor &p = stack_.node(receiver_).proc();
    p.regOps(bytes); // delimiter scan
    const std::size_t words = (bytes + 3) / 4;
    for (std::size_t w = 0; w < words; ++w)
        (void)p.loadWord(rxScratch_.buf + static_cast<Addr>(w % 64));
}

void
StreamMux::chargeRxFrame(const Frame &f)
{
    Processor &p = stack_.node(receiver_).proc();
    if (offloaded_) {
        p.regOps(4); // completion harvest, header extract
        (void)p.loadDouble(rxScratch_.desc); // mem 1
        return;
    }
    const std::size_t bodyBytes =
        StreamHeader::encodedSize(f.header.type) + f.payload.size() + 4;
    // CRC verify.
    p.regOps(bodyBytes);
    for (std::size_t i = 0; i < bodyBytes; ++i)
        (void)p.loadWord(rxScratch_.crcTable +
                         static_cast<Addr>(i & 0xff));
    // Header parse.
    p.regOps(6);
    (void)p.loadWord(rxScratch_.buf + 0); // mem 1
    (void)p.loadWord(rxScratch_.buf + 1); // mem 2
    // Payload unmarshal into words.
    const std::size_t words = f.payload.size() / 4;
    p.regOps(2 * words);
    for (std::size_t w = 0; w < words; ++w)
        p.storeWord(rxScratch_.buf + 3 + static_cast<Addr>(w % 48), 0);
}

// ------------------------------------------------------------------
// Transmission.
// ------------------------------------------------------------------

void
StreamMux::transmitOn(bool fwd, const StreamHeader &h,
                      const Bytes &payload, bool corrupt)
{
    const NodeId at = fwd ? sender_ : receiver_;
    Bytes wire;
    {
        hostprof::HostScope hs(hostprof::Site::WireEncode);
        FeatureScope fs(stack_.node(at).acct(), Feature::Framing);
        if (corrupt)
            encodeFrameCorrupt(h, payload, wire);
        else
            encodeFrame(h, payload, wire);
        const std::size_t bodyBytes =
            StreamHeader::encodedSize(h.type) + payload.size() + 4;
        chargeTxFrame(at, bodyBytes, wire.size(), payload.size() / 4);
    }
    std::vector<Word> words;
    bytesToWords(wire, stack_.dataWords(), words);
    ++stats_.framesSent;
    stats_.framedBytes += words.size() * 4;
    if (corrupt)
        ++stats_.corruptedTx;
    // The underlying channel's send path charges under the ambient
    // feature; transmits triggered from inside a Framing-scoped
    // handler (acks, resets) must not bill the hw packet to Framing.
    FeatureScope base(stack_.node(at).acct(), Feature::BaseCost);
    proto_.sendOn(fwd ? fwdChan_ : revChan_, words);
}

std::uint16_t
StreamMux::openStream()
{
    if (nextSid_ == 0xffff)
        msgsim_panic("wire mux stream ids exhausted");
    const std::uint16_t sid = nextSid_++;
    send_[sid] = SendStream{};
    StreamHeader h;
    h.sid = sid;
    h.type = PacketType::Attach;
    h.window = opt_.window;
    transmitOn(true, h, {}, false);
    return sid;
}

void
StreamMux::send(std::uint16_t sid, const std::vector<Word> &payload)
{
    auto it = send_.find(sid);
    if (it == send_.end())
        msgsim_panic("wire send on unknown stream ", sid);
    SendStream &ss = it->second;
    if (ss.state != SendState::Open)
        msgsim_panic("wire send on ", toString(ss.state), " stream ",
                     sid);
    if (payload.empty() || payload.size() > maxPayloadWords)
        msgsim_fatal("wire payload of ", payload.size(),
                     " words: must be 1..", maxPayloadWords);
    if (!ss.backlog.empty() || ss.unacked.size() >= opt_.window) {
        // Window stall: defer until a cumulative ack frees a slot.
        ++stats_.windowStalls;
        ss.backlog.push_back(payload);
        return;
    }
    transmitData(sid, ss, payload);
}

void
StreamMux::transmitData(std::uint16_t sid, SendStream &ss,
                        const std::vector<Word> &payload)
{
    StreamHeader h;
    h.sid = sid;
    h.type = PacketType::Data;
    h.window = opt_.window;
    h.seq = ss.nextSeq++;
    ss.unacked[h.seq] = payload;
    ++stats_.dataFrames;
    ++dataTxCount_;
    const bool corrupt =
        corruptEvery_ != 0 && dataTxCount_ % corruptEvery_ == 0;
    Bytes bytes;
    payloadToBytes(payload, bytes);
    transmitOn(true, h, bytes, corrupt);
}

void
StreamMux::pumpBacklog(std::uint16_t sid, SendStream &ss)
{
    while (!ss.backlog.empty() && ss.unacked.size() < opt_.window) {
        const std::vector<Word> payload = ss.backlog.front();
        ss.backlog.pop_front();
        transmitData(sid, ss, payload);
    }
}

void
StreamMux::maybeDetach(std::uint16_t sid, SendStream &ss)
{
    if (ss.state != SendState::Closing || !ss.unacked.empty() ||
        !ss.backlog.empty())
        return;
    StreamHeader h;
    h.sid = sid;
    h.type = PacketType::Detach;
    h.window = 0;
    transmitOn(true, h, {}, false);
    ss.state = SendState::Detached;
}

void
StreamMux::closeStream(std::uint16_t sid)
{
    auto it = send_.find(sid);
    if (it == send_.end())
        msgsim_panic("wire close of unknown stream ", sid);
    SendStream &ss = it->second;
    if (ss.state != SendState::Open)
        return; // closing a closing/reset stream is a no-op
    ss.state = SendState::Closing;
    maybeDetach(sid, ss); // immediate when nothing is in flight
}

void
StreamMux::resetStream(std::uint16_t sid)
{
    auto it = recv_.find(sid);
    if (it == recv_.end() || it->second.state != RecvState::Open)
        return;
    it->second.state = RecvState::Reset;
    sendResetFromReceiver(sid);
}

void
StreamMux::sendResetFromReceiver(std::uint16_t sid)
{
    StreamHeader h;
    h.sid = sid;
    h.type = PacketType::Reset;
    h.window = 0;
    ++stats_.resetsSent;
    transmitOn(false, h, {}, false);
}

// ------------------------------------------------------------------
// Reception.
// ------------------------------------------------------------------

void
StreamMux::onFwdPacket(const std::vector<Word> &words)
{
    hostprof::HostScope hs(hostprof::Site::WireDecode);
    FeatureScope fs(stack_.node(receiver_).acct(), Feature::Framing);
    Bytes bytes;
    wordsToBytes(words, bytes);
    chargeRxChunk(bytes.size());
    rxDecoder_.push(bytes);
}

void
StreamMux::onRevPacket(const std::vector<Word> &words)
{
    hostprof::HostScope hs(hostprof::Site::WireDecode);
    FeatureScope fs(stack_.node(sender_).acct(), Feature::Framing);
    Bytes bytes;
    wordsToBytes(words, bytes);
    if (!offloaded_) {
        // Control-channel delimiter scan at the sender.
        Processor &p = stack_.node(sender_).proc();
        p.regOps(bytes.size());
        const std::size_t w = (bytes.size() + 3) / 4;
        for (std::size_t i = 0; i < w; ++i)
            (void)p.loadWord(txScratch_.buf +
                             static_cast<Addr>(i % 64));
    }
    txDecoder_.push(bytes);
}

void
StreamMux::onFwdFrame(const Frame &f)
{
    hostprof::HostScope hs(hostprof::Site::WireMux);
    Node &rcv = stack_.node(receiver_);
    FeatureScope fs(rcv.acct(), Feature::Framing);
    chargeRxFrame(f);
    rcv.proc().regOps(3); // type dispatch + sid table probe
    const std::uint16_t sid = f.header.sid;
    switch (f.header.type) {
      case PacketType::Attach: {
        // Declarative one-way open: the receiver (re)creates state.
        recv_[sid] = RecvStream{};
        ++stats_.attaches;
        break;
      }
      case PacketType::Detach: {
        auto it = recv_.find(sid);
        if (it != recv_.end() && it->second.state == RecvState::Open) {
            if (it->second.ackCount > 0)
                sendAck(sid, it->second); // final cumulative ack
            it->second.state = RecvState::Detached;
            ++stats_.detaches;
        }
        break;
      }
      case PacketType::Data: {
        auto it = recv_.find(sid);
        if (it == recv_.end() ||
            it->second.state == RecvState::Detached) {
            // Data for a stream we never attached (or already
            // retired): drop and abort the sender.
            ++stats_.deadStreamDrops;
            sendResetFromReceiver(sid);
            break;
        }
        handleData(f, it->second);
        break;
      }
      case PacketType::Reset: {
        // Sender-initiated abort.
        auto it = recv_.find(sid);
        if (it != recv_.end())
            it->second.state = RecvState::Reset;
        break;
      }
      default:
        msgsim_panic("unexpected wire frame type ",
                     toString(f.header.type), " on the data channel");
    }
}

void
StreamMux::handleData(const Frame &f, RecvStream &rs)
{
    const std::uint16_t sid = f.header.sid;
    if (rs.state == RecvState::Reset) {
        // In-flight data racing the reset: the contract says discard.
        ++stats_.dupDrops;
        if (bugResetDeliver_) {
            // Seeded bug: keep delivering on the reset stream.
            ++stats_.deliveredAfterReset;
            std::vector<Word> payload(f.payload.size() / 4);
            Reader r(f.payload);
            for (Word &w : payload)
                w = r.u32();
            if (deliverFn_)
                deliverFn_(sid, f.header.seq, payload);
        }
        return;
    }
    if (f.header.seq == rs.expected) {
        std::vector<Word> payload(f.payload.size() / 4);
        Reader r(f.payload);
        for (Word &w : payload)
            w = r.u32();
        ++rs.expected;
        ++rs.delivered;
        ++stats_.dataDelivered;
        if (deliverFn_)
            deliverFn_(sid, f.header.seq, payload);
        ++rs.ackCount;
        if (rs.ackCount >= opt_.ackEvery)
            sendAck(sid, rs);
    } else if (f.header.seq > rs.expected) {
        // A predecessor was CRC-rejected; the wire layer keeps no
        // reorder buffer (the channel is in-order), so drop and
        // prod the sender with a duplicate cumulative ack.
        ++stats_.gapDrops;
        sendAck(sid, rs);
    } else {
        // Retransmission overlap: already delivered; re-ack.
        ++stats_.dupDrops;
        sendAck(sid, rs);
    }
}

void
StreamMux::sendAck(std::uint16_t sid, RecvStream &rs)
{
    rs.ackCount = 0;
    StreamHeader h;
    h.sid = sid;
    h.type = PacketType::Ack;
    h.window = opt_.window;
    h.seq = rs.expected; // cumulative: everything below is acked
    ++stats_.wireAcks;
    transmitOn(false, h, {}, false);
}

void
StreamMux::onRevFrame(const Frame &f)
{
    hostprof::HostScope hs(hostprof::Site::WireMux);
    Node &snd = stack_.node(sender_);
    FeatureScope fs(snd.acct(), Feature::Framing);
    if (!offloaded_) {
        Processor &p = snd.proc();
        const std::size_t bodyBytes =
            StreamHeader::encodedSize(f.header.type) +
            f.payload.size() + 4;
        p.regOps(bodyBytes); // CRC verify
        for (std::size_t i = 0; i < bodyBytes; ++i)
            (void)p.loadWord(txScratch_.crcTable +
                             static_cast<Addr>(i & 0xff));
        p.regOps(6); // header parse
        (void)p.loadWord(txScratch_.buf + 0);
        (void)p.loadWord(txScratch_.buf + 1);
    } else {
        snd.proc().regOps(4);
        (void)snd.proc().loadDouble(txScratch_.desc);
    }
    snd.proc().regOps(3); // dispatch + sid probe
    auto it = send_.find(f.header.sid);
    if (it == send_.end())
        return; // control for a forgotten stream: ignore
    SendStream &ss = it->second;
    switch (f.header.type) {
      case PacketType::Ack: {
        if (ss.state == SendState::Detached ||
            ss.state == SendState::Reset)
            break; // late ack after retirement
        const std::uint32_t cum = f.header.seq;
        ss.unacked.erase(ss.unacked.begin(),
                         ss.unacked.lower_bound(cum));
        pumpBacklog(f.header.sid, ss);
        maybeDetach(f.header.sid, ss);
        break;
      }
      case PacketType::Reset: {
        // Receiver aborted: drop everything in flight and deferred.
        ss.unacked.clear();
        ss.backlog.clear();
        ss.state = SendState::Reset;
        break;
      }
      default:
        msgsim_panic("unexpected wire frame type ",
                     toString(f.header.type),
                     " on the control channel");
    }
}

// ------------------------------------------------------------------
// Progress.
// ------------------------------------------------------------------

bool
StreamMux::kick()
{
    hostprof::HostScope hs(hostprof::Site::WireMux);
    bool acted = false;
    // Wire-level timeout model: resend the unacknowledged tail of
    // every live stream, in sequence order (never corrupted, so the
    // corruption knob always converges).
    for (auto &[sid, ss] : send_) {
        if (ss.state != SendState::Open &&
            ss.state != SendState::Closing)
            continue;
        for (const auto &[seq, payload] : ss.unacked) {
            StreamHeader h;
            h.sid = sid;
            h.type = PacketType::Data;
            h.window = opt_.window;
            h.seq = seq;
            Bytes bytes;
            payloadToBytes(payload, bytes);
            ++stats_.wireRetransmits;
            transmitOn(true, h, bytes, false);
            acted = true;
        }
    }
    // Receiver: flush withheld grouped wire acks.
    for (auto &[sid, rs] : recv_) {
        if (rs.state == RecvState::Open && rs.ackCount > 0) {
            sendAck(sid, rs);
            acted = true;
        }
    }
    // Underlying channels: partial hw group acks + the hw timeout
    // model.
    if (proto_.channelOpen(fwdChan_)) {
        proto_.flushGroupAcks(fwdChan_);
        if (proto_.channelUnacked(fwdChan_) > 0) {
            proto_.retransmitUnacked(fwdChan_);
            acted = true;
        }
    }
    if (proto_.channelOpen(revChan_)) {
        proto_.flushGroupAcks(revChan_);
        if (proto_.channelUnacked(revChan_) > 0) {
            proto_.retransmitUnacked(revChan_);
            acted = true;
        }
    }
    return acted;
}

bool
StreamMux::quiescent() const
{
    for (const auto &[sid, ss] : send_) {
        if (ss.state == SendState::Closing)
            return false;
        if (!ss.unacked.empty() || !ss.backlog.empty())
            return false;
    }
    if (proto_.channelOpen(fwdChan_) &&
        (proto_.channelUnacked(fwdChan_) > 0 ||
         proto_.channelPending(fwdChan_) > 0))
        return false;
    if (proto_.channelOpen(revChan_) &&
        (proto_.channelUnacked(revChan_) > 0 ||
         proto_.channelPending(revChan_) > 0))
        return false;
    return true;
}

void
StreamMux::flush()
{
    int idle = 0;
    std::uint64_t lastProgress = 0;
    while (!quiescent()) {
        stack_.settle();
        for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
        }
        stack_.settle();
        const std::uint64_t progress =
            stats_.dataDelivered + stats_.wireAcks +
            stats_.framesSent + stats_.dupDrops + stats_.gapDrops +
            proto_.channelDelivered(fwdChan_) +
            proto_.channelDelivered(revChan_);
        if (progress != lastProgress) {
            lastProgress = progress;
            idle = 0;
            continue;
        }
        ++idle;
        if (idle % 2 == 0)
            kick();
        if (idle > 256)
            msgsim_panic("wire mux flush stalled: ",
                         stats_.dataDelivered, " delivered, fwd ",
                         proto_.channelUnacked(fwdChan_),
                         " hw-unacked");
    }
}

// ------------------------------------------------------------------
// Introspection.
// ------------------------------------------------------------------

SendState
StreamMux::sendState(std::uint16_t sid) const
{
    auto it = send_.find(sid);
    if (it == send_.end())
        msgsim_panic("wire sendState of unknown stream ", sid);
    return it->second.state;
}

RecvState
StreamMux::recvState(std::uint16_t sid) const
{
    auto it = recv_.find(sid);
    if (it == recv_.end())
        msgsim_panic("wire recvState of unknown stream ", sid);
    return it->second.state;
}

std::size_t
StreamMux::unacked(std::uint16_t sid) const
{
    auto it = send_.find(sid);
    return it == send_.end() ? 0 : it->second.unacked.size();
}

std::size_t
StreamMux::backlog(std::uint16_t sid) const
{
    auto it = send_.find(sid);
    return it == send_.end() ? 0 : it->second.backlog.size();
}

std::uint32_t
StreamMux::deliveredOn(std::uint16_t sid) const
{
    auto it = recv_.find(sid);
    return it == recv_.end() ? 0 : it->second.delivered;
}

} // namespace msgsim::wire

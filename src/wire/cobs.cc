#include "wire/cobs.hh"

#include <array>

namespace msgsim::wire
{

void
cobsEncode(const std::uint8_t *p, std::size_t n, Bytes &out)
{
    std::size_t codeAt = out.size();
    out.push_back(0); // placeholder for the first code byte
    std::uint8_t code = 1;
    for (std::size_t i = 0; i < n; ++i) {
        if (p[i] == 0) {
            out[codeAt] = code;
            codeAt = out.size();
            out.push_back(0);
            code = 1;
            continue;
        }
        out.push_back(p[i]);
        if (++code == 0xff) {
            out[codeAt] = code;
            codeAt = out.size();
            out.push_back(0);
            code = 1;
        }
    }
    out[codeAt] = code;
}

bool
cobsDecode(const std::uint8_t *p, std::size_t n, Bytes &out)
{
    std::size_t i = 0;
    while (i < n) {
        const std::uint8_t code = p[i];
        if (code == 0 || i + code > n)
            return false; // malformed: zero code or overrun
        for (std::uint8_t j = 1; j < code; ++j)
            out.push_back(p[i + j]);
        i += code;
        // A code below 0xff encodes a zero — unless it closed the
        // block, where the delimiter itself supplied it.
        if (code != 0xff && i < n)
            out.push_back(0);
    }
    return true;
}

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *p, std::size_t n)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace msgsim::wire

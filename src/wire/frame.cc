#include "wire/frame.hh"

namespace msgsim::wire
{

void
encodeFrame(const StreamHeader &header, const Bytes &payload,
            Bytes &out)
{
    Bytes body;
    body.reserve(StreamHeader::encodedSize(header.type) +
                 payload.size() + 4);
    Writer w(body);
    header.encode(w);
    w.bytes(payload.data(), payload.size());
    w.u32(crc32(body.data(), body.size()));
    cobsEncode(body.data(), body.size(), out);
    out.push_back(0); // frame delimiter
}

void
FrameDecoder::push(const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (p[i] != 0) {
            buf_.push_back(p[i]);
            continue;
        }
        if (!buf_.empty())
            finishBlock();
        // Empty block: inter-frame padding, skipped silently.
    }
}

void
FrameDecoder::finishBlock()
{
    Bytes body;
    body.reserve(buf_.size());
    const bool cobsOk = cobsDecode(buf_.data(), buf_.size(), body);
    buf_.clear();
    if (!cobsOk || body.size() < 8 + 4) {
        ++malformed_;
        return;
    }
    const std::size_t bodyLen = body.size() - 4;
    Reader tail(body.data() + bodyLen, 4);
    if (tail.u32() != crc32(body.data(), bodyLen)) {
        ++crcRejects_;
        return;
    }
    Frame f;
    Reader r(body.data(), bodyLen);
    if (!f.header.decode(r)) {
        ++malformed_;
        return;
    }
    if (!r.bytes(f.payload, r.remaining())) {
        ++malformed_;
        return;
    }
    ++frames_;
    if (sink_)
        sink_(f);
}

const char *
toString(PacketType t)
{
    switch (t) {
      case PacketType::Invalid:  return "invalid";
      case PacketType::Init:     return "init";
      case PacketType::Reply:    return "reply";
      case PacketType::Data:     return "data";
      case PacketType::Datagram: return "datagram";
      case PacketType::Ack:      return "ack";
      case PacketType::Reset:    return "reset";
      case PacketType::Attach:   return "attach";
      case PacketType::Detach:   return "detach";
      default:                   return "?";
    }
}

} // namespace msgsim::wire

/**
 * @file
 * The canonical multi-stream wire workload: one StreamMux between a
 * node pair, S logical streams sending F frames each, round-robin
 * interleaved so the demultiplexer really multiplexes.  Shared by the
 * profiler ("wire" protocol), the lab's F1 experiment, the
 * msgsim-wire CLI and the tests, so every consumer measures the same
 * exchange.
 */

#ifndef MSGSIM_WIRE_WIRE_RUN_HH
#define MSGSIM_WIRE_WIRE_RUN_HH

#include "protocols/result.hh"
#include "wire/mux.hh"

namespace msgsim::wire
{

/** Parameters of one wire workload run. */
struct WireWorkload
{
    NodeId sender = 0;
    NodeId receiver = 1;
    std::uint32_t streams = 4;         ///< concurrent logical streams
    std::uint32_t framesPerStream = 8; ///< DATA frames per stream
    std::uint32_t payloadWords = 6;    ///< words per DATA frame
    std::uint8_t window = 4;           ///< per-stream sliding window
    int groupAck = 4;                  ///< underlying hw group ack
    std::uint32_t ackEvery = 1;        ///< wire acks per N frames
    std::uint32_t corruptEvery = 0;    ///< CRC-corrupt every Nth frame
    std::uint64_t fillSeed = 0x5eedf00dULL;

    /**
     * Observation hooks (pure observers — e.g. telemetry probe
     * registration; they must not drive the mux).  onStart fires
     * after every stream is opened, onFinish after the final flush,
     * before the mux is torn down.
     */
    std::function<void(StreamProtocol &, StreamMux &,
                       const std::vector<std::uint16_t> &)>
        onStart;
    std::function<void(StreamMux &)> onFinish;
};

/** Outcome: the standard breakdown plus the wire-layer counters. */
struct WireRunResult
{
    RunResult run;   ///< counts: src = sender, dst = receiver
    MuxStats wire;   ///< the mux's own counters
    std::uint64_t crcRejects = 0; ///< receive-side CRC rejections
    std::uint64_t malformed = 0;  ///< receive-side framing rejections
};

/** Worst-case wire bytes of one frame with @p payloadWords words. */
std::size_t frameWireBytes(std::uint32_t payloadWords);

/** Run the workload on @p stack (any substrate) and report. */
WireRunResult runWireWorkload(Stack &stack, const WireWorkload &w);

} // namespace msgsim::wire

#endif // MSGSIM_WIRE_WIRE_RUN_HH

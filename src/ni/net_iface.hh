/**
 * @file
 * The memory-mapped network interface (CM-5 style, Figure 2 of the
 * paper).
 *
 * The NI sits on the processor-memory bus and exposes control
 * registers plus send/receive FIFOs.  Software injects a packet by
 * storing a control word (destination, hardware tag, messaging-layer
 * header) followed by the data words; the packet launches when the
 * last data word is pushed, and a subsequent status read reports
 * send_ok.  Packets are extracted with loads from the receive FIFO.
 *
 * Every software-visible access takes the caller's Accounting and is
 * charged as one dev-class operation — this *is* the paper's "dev"
 * category.  Hardware-side entry points (delivery from the network,
 * CRC checking) charge nothing.
 *
 * The same NI serves both substrates ("These costs are fixed by the
 * network interface, which is identical in the two cases", Section
 * 4.1).  For Compressionless Routing an acceptance predicate can be
 * installed: the hardware consults it before accepting a packet,
 * modeling CR's resource-based header rejection.
 */

#ifndef MSGSIM_NI_NET_IFACE_HH
#define MSGSIM_NI_NET_IFACE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/accounting.hh"
#include "core/types.hh"
#include "net/network.hh"
#include "net/packet.hh"

namespace msgsim
{

class Memory;
class MetricsRegistry;

/** Status-register bit assignments. */
namespace ni_status
{
constexpr Word sendOk = 1u << 0;    ///< last pushed packet was injected
constexpr Word recvReady = 1u << 1; ///< a packet waits in the recv FIFO
constexpr unsigned tagShift = 2;    ///< recv tag of the head packet
constexpr Word tagMask = 0xfu;
} // namespace ni_status

/**
 * One node's network interface.
 */
class NetIface
{
  public:
    /// Number of virtual (on the CM-5: physical left/right) data
    /// networks.  Network 1 is the reply network: it drains with
    /// priority and its FIFO is independent of network 0, so replies
    /// always get past backed-up requests (paper footnote 6).
    static constexpr int numVnets = 2;

    struct Config
    {
        int dataWords = 4; ///< data words per packet (CM-5: 4)
        /// Per-virtual-network receive-FIFO capacity in packets;
        /// arrivals beyond it are refused (backpressure/rejection).
        /// Unlimited by default for minimal-path calibration runs.
        std::size_t recvCapacity = static_cast<std::size_t>(-1);
    };

    /** Hardware acceptance predicate (CR header rejection). */
    using AcceptFn = std::function<bool(const Packet &)>;

    NetIface(NodeId id, Network &net, const Config &cfg);

    NetIface(const NetIface &) = delete;
    NetIface &operator=(const NetIface &) = delete;

    NodeId id() const { return id_; }
    int dataWords() const { return cfg_.dataWords; }

    /** The simulator driving the attached network (clock source). */
    Simulator &sim() { return net_.sim(); }

    /** Install / clear the CR acceptance predicate. */
    void setAcceptFn(AcceptFn fn) { acceptFn_ = std::move(fn); }

    /**
     * Attach the node memory for DMA (bus-master) transfers.  Done
     * once by the owning Node; without it the DMA operations panic.
     */
    void attachMemory(Memory *mem) { mem_ = mem; }

    // ------------------------------------------------------------
    // Software-visible operations (each charges dev ops on acct).
    // ------------------------------------------------------------

    /**
     * Begin an outgoing packet: one devStore of the control word
     * (destination node, hardware tag, messaging-layer header, and —
     * as on the CM-5, where the send-first store encodes the packet
     * length — the data length in words).  @p lenWords of 0 means a
     * full packet (dataWords); bulk-data packets use that, while
     * single-packet active messages and protocol control packets are
     * always the 4-word CMAM_4 format regardless of the hardware
     * maximum.  @p vnet selects the data network (1 = the reply
     * network).  The packet launches when the last data word is
     * pushed.
     */
    void writeSendCtl(Accounting &acct, NodeId dst, HwTag tag,
                      Word header, int lenWords = 0, int vnet = 0);

    /** Push two data words (SPARC std to the FIFO): one devStore. */
    void writeSendDouble(Accounting &acct, Word w0, Word w1);

    /** Push one data word: one devStore. */
    void writeSendWord(Accounting &acct, Word w);

    /**
     * Read the NI status register: one devLoad.  Returns sendOk |
     * recvReady | (tag of head recv packet).
     */
    Word readStatus(Accounting &acct);

    /** Read the header word of the head receive packet: one devLoad. */
    Word readRecvHeader(Accounting &acct);

    /**
     * Read two data words of the head receive packet: one devLoad
     * (ldd from the FIFO).  Consuming the last data word pops the
     * packet.
     */
    std::pair<Word, Word> readRecvDouble(Accounting &acct);

    /** Read one data word; pops the packet when it was the last. */
    Word readRecvWord(Accounting &acct);

    /** Source node id of the head receive packet: one devLoad. */
    Word readRecvSource(Accounting &acct);

    // ------------------------------------------------------------
    // DMA engine (§5 extension: "DMA hardware can reduce the cost
    // of moving large amounts of data").  Software writes one
    // descriptor (a charged devStore); the engine master's the
    // memory bus itself, so the per-word loads/stores vanish from
    // the instruction stream.
    // ------------------------------------------------------------

    /**
     * Gather-send: one devStore programs the DMA engine, which reads
     * the staged packet's remaining payload straight from memory and
     * launches the packet.  A packet must be staged (writeSendCtl).
     */
    void writeSendDma(Accounting &acct, Addr src, int words);

    /**
     * Scatter-receive: one devStore programs the engine to deposit
     * the head packet's remaining payload at @p dst and pop the
     * packet.
     */
    void dmaScatterRecv(Accounting &acct, Addr dst);

    /** DMA descriptor operations executed (diagnostic). */
    std::uint64_t dmaTransfers() const { return dmaTransfers_; }

    // ------------------------------------------------------------
    // Hardware-side (uncharged).
    // ------------------------------------------------------------

    /** Delivery from the network; false = refused (FIFO full/reject). */
    bool hwDeliver(Packet &&pkt);

    /** True when a packet waits on any network (uncharged). */
    bool
    hwRecvPending() const
    {
        for (const auto &q : recvQueues_)
            if (!q.empty())
                return true;
        return false;
    }

    /** Packets waiting on one virtual network (uncharged). */
    std::size_t
    hwRecvDepth(int vnet) const
    {
        return recvQueues_[static_cast<std::size_t>(vnet)].size();
    }

    /**
     * Uncharged peek at the packet the next read will service
     * (nullptr when empty) — the reply network drains first.  Used
     * for metadata the modeled hardware exposes out-of-band (source
     * node, dispatch) — never for payload shortcuts.
     */
    const Packet *hwPeekRecv() const;

    /** Packets discarded by the hardware CRC check. */
    std::uint64_t crcDiscards() const { return crcDiscards_; }

    /** Deliveries refused because the receive FIFO was full. */
    std::uint64_t recvRefusals() const { return recvRefusals_; }

    /** Deliveries refused by the acceptance predicate. */
    std::uint64_t acceptRefusals() const { return acceptRefusals_; }

    /** Packets whose injection failed at least once (send_ok = 0). */
    std::uint64_t sendBusyEvents() const { return sendBusyEvents_; }

    /** True while a send is staged but not yet launched (uncharged). */
    bool hwSendStaged() const { return staged_.has_value(); }

    /** Receive-FIFO capacity per virtual network (size_t(-1) = inf). */
    std::size_t recvCapacity() const { return cfg_.recvCapacity; }

    /** Optional hook invoked after a packet is queued (event mode). */
    void setArrivalHook(std::function<void()> fn)
    {
        arrivalHook_ = std::move(fn);
    }

    /**
     * Snapshot this NI's hardware counters into @p reg under
     * "<prefix>.<counter>{node=<id>}".
     */
    void publishMetrics(MetricsRegistry &reg,
                        const std::string &prefix = "ni") const;

  private:
    /** Launch the staged packet once it is fully written. */
    void launchStaged();

    /** Head of the service queue; latches the queue selection. */
    const Packet &headPacket(const char *what);
    void consumeData(std::size_t nwords);

    NodeId id_;
    Network &net_;
    Config cfg_;

    // Send staging area.
    std::optional<Packet> staged_;
    int stagedLen_ = 0;
    bool lastSendOk_ = true;

    // Receive FIFOs, one per virtual network.  Reads are latched to
    // one queue for the duration of a packet (serviceVnet_), and the
    // reply network (1) has drain priority between packets.
    std::array<std::deque<Packet>, numVnets> recvQueues_;
    std::size_t recvReadIndex_ = 0;
    int serviceVnet_ = -1;

    /** Queue the next read services (selection + latching rule). */
    int pickServiceVnet() const;

    AcceptFn acceptFn_;
    std::function<void()> arrivalHook_;

    Memory *mem_ = nullptr;

    std::uint64_t crcDiscards_ = 0;
    std::uint64_t recvRefusals_ = 0;
    std::uint64_t acceptRefusals_ = 0;
    std::uint64_t sendBusyEvents_ = 0;
    std::uint64_t dmaTransfers_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_NI_NET_IFACE_HH

#include "ni/net_iface.hh"

#include "hostprof/hostprof.hh"
#include "machine/memory.hh"
#include "net/lineage_hook.hh"
#include "sim/log.hh"
#include "sim/metrics.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

NetIface::NetIface(NodeId id, Network &net, const Config &cfg)
    : id_(id), net_(net), cfg_(cfg)
{
    if (cfg_.dataWords < 4 || cfg_.dataWords % 2 != 0)
        msgsim_fatal("NI data words must be even and >= 4 (the CMAM_4 "
                     "single-packet format), got ", cfg_.dataWords);
    net_.attach(id_, [this](Packet &&pkt) {
        return hwDeliver(std::move(pkt));
    });
}

void
NetIface::writeSendCtl(Accounting &acct, NodeId dst, HwTag tag,
                       Word header, int lenWords, int vnet)
{
    hostprof::HostScope hs(hostprof::Site::NiSend);
    acct.charge(OpClass::DevStore);
    if (lenWords == 0)
        lenWords = cfg_.dataWords;
    if (lenWords < 2 || lenWords % 2 != 0 || lenWords > cfg_.dataWords)
        msgsim_panic("bad packet length ", lenWords, " (max ",
                     cfg_.dataWords, ")");
    if (vnet < 0 || vnet >= numVnets)
        msgsim_panic("bad virtual network ", vnet);
    staged_.emplace(id_, dst, tag, header, std::vector<Word>{});
    staged_->vnet = static_cast<std::uint8_t>(vnet);
    staged_->data.reserve(static_cast<std::size_t>(lenWords));
    stagedLen_ = lenWords;
    // Packet birth: the lineage recorder stamps the id (and causal
    // parentage when we are inside a handler).  One pointer test
    // when off; never touches Accounting.
    if (LineageHooks *lh = LineageHooks::current())
        lh->packetBorn(*staged_, id_, net_.sim().now());
}

void
NetIface::writeSendDouble(Accounting &acct, Word w0, Word w1)
{
    hostprof::HostScope hs(hostprof::Site::NiSend);
    acct.charge(OpClass::DevStore);
    if (!staged_)
        msgsim_panic("send data pushed with no packet staged");
    staged_->data.push_back(w0);
    staged_->data.push_back(w1);
    if (staged_->data.size() >= static_cast<std::size_t>(stagedLen_))
        launchStaged();
}

void
NetIface::writeSendWord(Accounting &acct, Word w)
{
    hostprof::HostScope hs(hostprof::Site::NiSend);
    acct.charge(OpClass::DevStore);
    if (!staged_)
        msgsim_panic("send data pushed with no packet staged");
    staged_->data.push_back(w);
    if (staged_->data.size() >= static_cast<std::size_t>(stagedLen_))
        launchStaged();
}

void
NetIface::launchStaged()
{
    lastSendOk_ = net_.inject(std::move(*staged_));
    if (!lastSendOk_)
        ++sendBusyEvents_;
    staged_.reset();
}

int
NetIface::pickServiceVnet() const
{
    // Reads of one packet stay on the latched queue; between packets
    // the reply network (1) has priority — that is what lets replies
    // drain past backed-up requests.
    if (serviceVnet_ >= 0)
        return serviceVnet_;
    for (int v = numVnets - 1; v >= 0; --v)
        if (!recvQueues_[static_cast<std::size_t>(v)].empty())
            return v;
    return -1;
}

const Packet *
NetIface::hwPeekRecv() const
{
    const int v = pickServiceVnet();
    if (v < 0)
        return nullptr;
    return &recvQueues_[static_cast<std::size_t>(v)].front();
}

Word
NetIface::readStatus(Accounting &acct)
{
    hostprof::HostScope hs(hostprof::Site::NiRecv);
    acct.charge(OpClass::DevLoad);
    Word status = 0;
    if (lastSendOk_)
        status |= ni_status::sendOk;
    if (const Packet *head = hwPeekRecv()) {
        status |= ni_status::recvReady;
        status |= (static_cast<Word>(head->tag) & ni_status::tagMask)
                  << ni_status::tagShift;
    }
    return status;
}

const Packet &
NetIface::headPacket(const char *what)
{
    const int v = pickServiceVnet();
    if (v < 0)
        msgsim_panic("NI ", what, " with empty receive FIFO on node ",
                     id_);
    serviceVnet_ = v; // latch until this packet is fully consumed
    return recvQueues_[static_cast<std::size_t>(v)].front();
}

void
NetIface::consumeData(std::size_t nwords)
{
    if (serviceVnet_ < 0)
        msgsim_panic("NI data consume with no packet in service");
    auto &queue = recvQueues_[static_cast<std::size_t>(serviceVnet_)];
    const Packet &pkt = queue.front();
    recvReadIndex_ += nwords;
    if (recvReadIndex_ >= pkt.data.size()) {
        queue.pop_front();
        recvReadIndex_ = 0;
        serviceVnet_ = -1;
    }
}

Word
NetIface::readRecvHeader(Accounting &acct)
{
    hostprof::HostScope hs(hostprof::Site::NiRecv);
    acct.charge(OpClass::DevLoad);
    return headPacket("header read").header;
}

Word
NetIface::readRecvSource(Accounting &acct)
{
    hostprof::HostScope hs(hostprof::Site::NiRecv);
    acct.charge(OpClass::DevLoad);
    return headPacket("source read").src;
}

std::pair<Word, Word>
NetIface::readRecvDouble(Accounting &acct)
{
    hostprof::HostScope hs(hostprof::Site::NiRecv);
    acct.charge(OpClass::DevLoad);
    const Packet &pkt = headPacket("double read");
    if (recvReadIndex_ + 2 > pkt.data.size())
        msgsim_panic("NI double read past packet end");
    const Word w0 = pkt.data[recvReadIndex_];
    const Word w1 = pkt.data[recvReadIndex_ + 1];
    consumeData(2);
    return {w0, w1};
}

Word
NetIface::readRecvWord(Accounting &acct)
{
    hostprof::HostScope hs(hostprof::Site::NiRecv);
    acct.charge(OpClass::DevLoad);
    const Packet &pkt = headPacket("word read");
    if (recvReadIndex_ + 1 > pkt.data.size())
        msgsim_panic("NI word read past packet end");
    const Word w = pkt.data[recvReadIndex_];
    consumeData(1);
    return w;
}

void
NetIface::writeSendDma(Accounting &acct, Addr src, int words)
{
    hostprof::HostScope hs(hostprof::Site::NiDma);
    acct.charge(OpClass::DevStore);
    ++dmaTransfers_;
    if (mem_ == nullptr)
        msgsim_panic("DMA with no memory attached");
    if (!staged_)
        msgsim_panic("DMA gather with no packet staged");
    if (static_cast<int>(staged_->data.size()) + words > stagedLen_)
        msgsim_panic("DMA gather overruns the staged packet");
    // The engine masters the bus: word movement is hardware work.
    for (int i = 0; i < words; ++i)
        staged_->data.push_back(mem_->read(src + static_cast<Addr>(i)));
    if (staged_->data.size() >= static_cast<std::size_t>(stagedLen_))
        launchStaged();
}

void
NetIface::dmaScatterRecv(Accounting &acct, Addr dst)
{
    hostprof::HostScope hs(hostprof::Site::NiDma);
    acct.charge(OpClass::DevStore);
    ++dmaTransfers_;
    if (mem_ == nullptr)
        msgsim_panic("DMA with no memory attached");
    const Packet &pkt = headPacket("DMA scatter");
    const std::size_t remaining = pkt.data.size() - recvReadIndex_;
    for (std::size_t i = 0; i < remaining; ++i)
        mem_->write(dst + static_cast<Addr>(i),
                    pkt.data[recvReadIndex_ + i]);
    consumeData(remaining);
}

bool
NetIface::hwDeliver(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::NiHwDeliver);
    TraceSession *ts = TraceSession::current();
    // Hardware CRC check: detection without correction.  A bad packet
    // is consumed and discarded; software only notices the loss.
    if (!pkt.checksumOk()) {
        ++crcDiscards_;
        if (ts)
            ts->instant(id_, "ni", "crc_discard");
        return true;
    }
    if (acceptFn_ && !acceptFn_(pkt)) {
        ++acceptRefusals_;
        if (ts)
            ts->instant(id_, "ni", "accept_refusal");
        return false;
    }
    auto &queue = recvQueues_[pkt.vnet % numVnets];
    if (queue.size() >= cfg_.recvCapacity) {
        ++recvRefusals_;
        if (ts)
            ts->instant(id_, "ni", "recv_refusal");
        return false;
    }
    queue.push_back(std::move(pkt));
    if (ts) {
        std::size_t depth = 0;
        for (const auto &q : recvQueues_)
            depth += q.size();
        ts->counterSample(id_, "ni.recv_depth",
                          static_cast<double>(depth));
    }
    if (arrivalHook_)
        arrivalHook_();
    return true;
}

void
NetIface::publishMetrics(MetricsRegistry &reg,
                         const std::string &prefix) const
{
    const MetricsRegistry::Labels labels = {
        {"node", std::to_string(id_)}};
    reg.counter(prefix + ".crc_discards", labels) = crcDiscards_;
    reg.counter(prefix + ".recv_refusals", labels) = recvRefusals_;
    reg.counter(prefix + ".accept_refusals", labels) = acceptRefusals_;
    reg.counter(prefix + ".send_busy_events", labels) = sendBusyEvents_;
    reg.counter(prefix + ".dma_transfers", labels) = dmaTransfers_;
    std::size_t depth = 0;
    for (const auto &q : recvQueues_)
        depth += q.size();
    reg.gauge(prefix + ".recv_depth", labels) =
        static_cast<double>(depth);
}

} // namespace msgsim

/**
 * @file
 * The built-in experiment catalog: every entry of the EXPERIMENTS.md
 * E-index (T1, T2a/b, T3, F6, F8, D1, D2, A1, X1–X10) plus the perf
 * -trajectory micro measurement (P1), registered as declarative
 * Experiments over the existing protocol/model/workload layers.
 *
 * Each grid point builds its own stacks and touches no shared mutable
 * state, so the SweepRunner may execute points concurrently; all
 * random behaviour is seeded through StackConfig, so results are
 * bit-deterministic (P1, which measures host wall-clock, is the one
 * exception and is flagged non-deterministic).
 */

#include <chrono>
#include <cmath>

#include "check/explorer.hh"
#include "check/shrink.hh"
#include "coll/collectives.hh"
#include "hostprof/hostprof.hh"
#include "prof/profile.hh"
#include "core/cost_model.hh"
#include "hlam/hl_stack.hh"
#include "lab/registry.hh"
#include "model/analytic.hh"
#include "nicam/nicam_network.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"
#include "model/traffic_model.hh"
#include "rdmanet/rdma_network.hh"
#include "tele/tele_run.hh"
#include "traffic/engine.hh"
#include "traffic/traffic.hh"
#include "wire/wire_run.hh"

namespace msgsim::lab
{

namespace
{

Cell
I(std::uint64_t v)
{
    return Cell::integer(v);
}

Cell
R(double v)
{
    return Cell::real(v);
}

Cell
T(std::string v)
{
    return Cell::text(std::move(v));
}

/** Paper cell convention: zero renders (and pins) as null ("–"). */
Cell
paperCount(std::uint64_t v)
{
    return v == 0 ? Cell::null() : Cell::integer(v);
}

Cell
okCell(bool ok)
{
    return T(ok ? "ok" : "FAILED");
}

/** The paper's measurement setup: CM-5 substrate, n = 4. */
StackConfig
paperCm5(bool halfOoo = false)
{
    StackConfig cfg;
    cfg.substrate = Substrate::Cm5;
    cfg.nodes = 4;
    cfg.dataWords = 4;
    if (halfOoo)
        cfg.order = swapAdjacentFactory();
    return cfg;
}

// ------------------------------------------------------------------
// T1 — Table 1: single-packet delivery.
// ------------------------------------------------------------------

Experiment
makeT1()
{
    Experiment e;
    e.name = "T1";
    e.title = "Table 1: single-packet delivery instruction counts "
              "(paper: src 20, dst 27)";
    e.columns = {"substrate", "row", "src", "dst"};
    e.points = {"cm5", "cr"};
    e.notes = {"Identical on both substrates (paper section 4.1) — "
               "but on CR the packet is ordered, overflow-safe, and "
               "reliable."};
    e.runPoint = [](std::size_t pi) {
        StackConfig cfg = paperCm5();
        cfg.substrate = pi == 0 ? Substrate::Cm5 : Substrate::Cr;
        Stack stack(cfg);
        const auto res = runSinglePacket(stack, {});
        const std::string sub = toString(cfg.substrate);
        std::vector<Row> rows;
        for (int r = 0; r < numCostRows; ++r) {
            const auto row = static_cast<CostRow>(r);
            const auto s = res.srcRows[static_cast<std::size_t>(r)];
            const auto d = res.dstRows[static_cast<std::size_t>(r)];
            if (row == CostRow::Other && s == 0 && d == 0)
                continue;
            rows.push_back({T(sub), T(toString(row)), paperCount(s),
                            paperCount(d)});
        }
        rows.push_back({T(sub), T("Total"),
                        I(res.counts.src.paperTotal()),
                        I(res.counts.dst.paperTotal())});
        rows.push_back(
            {T(sub), T("integrity"), Cell::null(),
             okCell(res.dataOk)});
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// T2a/T2b — Table 2: multi-packet feature breakdowns.
// ------------------------------------------------------------------

std::vector<Row>
featureRows(const std::string &label, const BreakdownCounter &bd)
{
    std::vector<Row> rows;
    for (int f = 0; f < numPaperFeatures; ++f) {
        const auto feat = static_cast<Feature>(f);
        const auto s = bd.src.featureTotal(feat);
        const auto d = bd.dst.featureTotal(feat);
        rows.push_back({T(label), T(toString(feat)), paperCount(s),
                        paperCount(d), paperCount(s + d)});
    }
    rows.push_back({T(label), T("Total"), I(bd.src.paperTotal()),
                    I(bd.dst.paperTotal()), I(bd.paperTotal())});
    return rows;
}

Experiment
makeT2a()
{
    Experiment e;
    e.name = "T2a";
    e.title = "Table 2 (top): finite sequence, multi-packet delivery "
              "(16/1024 words, n = 4)";
    e.columns = {"words", "feature", "src", "dst", "total"};
    e.points = {"16", "1024"};
    e.notes = {"Paper totals: 173/224/397 at 16 words (see "
               "EXPERIMENTS.md on the prose's 285), "
               "6221/5516/11737 at 1024 words."};
    e.runPoint = [](std::size_t pi) {
        const std::uint32_t words = pi == 0 ? 16u : 1024u;
        Stack stack(paperCm5());
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = words;
        const auto res = proto.run(p);
        auto rows = featureRows(std::to_string(words), res.counts);
        rows.push_back({T(std::to_string(words)), T("integrity"),
                        Cell::null(), Cell::null(),
                        okCell(res.dataOk)});
        return rows;
    };
    return e;
}

Experiment
makeT2b()
{
    Experiment e;
    e.name = "T2b";
    e.title = "Table 2 (bottom): indefinite sequence, multi-packet "
              "delivery, half the packets out of order";
    e.columns = {"words", "feature", "src", "dst", "total"};
    e.points = {"16", "1024"};
    e.notes = {"Paper totals: 216/265/481 at 16 words, "
               "13824/16141/29965 at 1024 words; overhead ~70% "
               "independent of size."};
    e.runPoint = [](std::size_t pi) {
        const std::uint32_t words = pi == 0 ? 16u : 1024u;
        Stack stack(paperCm5(/*halfOoo=*/true));
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = words;
        const auto res = proto.run(p);
        const std::string w = std::to_string(words);
        auto rows = featureRows(w, res.counts);
        rows.push_back({T(w), T("ooo arrivals"), Cell::null(),
                        Cell::null(), I(res.oooArrivals)});
        rows.push_back({T(w), T("acks"), Cell::null(), Cell::null(),
                        I(res.acksSent)});
        rows.push_back({T(w), T("overhead"), Cell::null(),
                        Cell::null(),
                        R(res.counts.overheadFraction())});
        rows.push_back({T(w), T("integrity"), Cell::null(),
                        Cell::null(), okCell(res.dataOk)});
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// T3 — Table 3 (Appendix A): reg/mem/dev subcategories.
// ------------------------------------------------------------------

Experiment
makeT3()
{
    Experiment e;
    e.name = "T3";
    e.title = "Table 3 (Appendix A): instruction subcategories "
              "(reg/mem/dev) per feature";
    e.columns = {"run",     "feature", "src reg", "src mem",
                 "src dev", "dst reg", "dst mem", "dst dev"};
    e.points = {"finite 16", "finite 1024", "indefinite 16",
                "indefinite 1024"};
    e.runPoint = [points = e.points](std::size_t pi) {
        const bool finite = pi < 2;
        const std::uint32_t words = (pi % 2 == 0) ? 16u : 1024u;
        BreakdownCounter counts;
        if (finite) {
            Stack stack(paperCm5());
            FiniteXfer proto(stack);
            FiniteXferParams p;
            p.words = words;
            counts = proto.run(p).counts;
        } else {
            Stack stack(paperCm5(/*halfOoo=*/true));
            StreamProtocol proto(stack);
            StreamParams p;
            p.words = words;
            counts = proto.run(p).counts;
        }
        const std::string &label = points[pi];
        std::vector<Row> rows;
        for (int f = 0; f < numPaperFeatures; ++f) {
            const auto feat = static_cast<Feature>(f);
            rows.push_back(
                {T(label), T(toString(feat)),
                 paperCount(counts.src.category(feat, Category::Reg)),
                 paperCount(counts.src.category(feat, Category::Mem)),
                 paperCount(counts.src.category(feat, Category::Dev)),
                 paperCount(counts.dst.category(feat, Category::Reg)),
                 paperCount(counts.dst.category(feat, Category::Mem)),
                 paperCount(
                     counts.dst.category(feat, Category::Dev))});
        }
        auto catTotal = [](const InstrCounter &c, Category cat) {
            std::uint64_t sum = 0;
            for (int f = 0; f < numPaperFeatures; ++f)
                sum += c.category(static_cast<Feature>(f), cat);
            return sum;
        };
        rows.push_back(
            {T(label), T("Total"),
             I(catTotal(counts.src, Category::Reg)),
             I(catTotal(counts.src, Category::Mem)),
             I(catTotal(counts.src, Category::Dev)),
             I(catTotal(counts.dst, Category::Reg)),
             I(catTotal(counts.dst, Category::Mem)),
             I(catTotal(counts.dst, Category::Dev))});
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// F6 — Figure 6: CMAM versus high-level network features.
// ------------------------------------------------------------------

Experiment
makeF6()
{
    Experiment e;
    e.name = "F6";
    e.title = "Figure 6: messaging cost, CMAM vs high-level network "
              "features";
    e.columns = {"protocol",   "words",  "cmam src", "cmam dst",
                 "cmam total", "hl src", "hl dst",   "hl total",
                 "improvement", "ok"};
    e.points = {"finite 16", "finite 1024", "indefinite 16",
                "indefinite 1024"};
    e.notes = {"Paper: finite improves 10-50% by message size; "
               "indefinite ~70% independent of size."};
    e.runPoint = [](std::size_t pi) {
        const bool finite = pi < 2;
        const std::uint32_t words = (pi % 2 == 0) ? 16u : 1024u;

        RunResult rc, rh;
        if (finite) {
            Stack cm5(paperCm5());
            FiniteXfer proto(cm5);
            FiniteXferParams p;
            p.words = words;
            rc = proto.run(p);
            HlStack hl({});
            HlXferParams hp;
            hp.words = words;
            rh = runHlFinite(hl, hp);
        } else {
            Stack cm5(paperCm5(/*halfOoo=*/true));
            StreamProtocol proto(cm5);
            StreamParams p;
            p.words = words;
            rc = proto.run(p);
            HlStack hl({});
            HlStreamParams hp;
            hp.words = words;
            rh = runHlStream(hl, hp);
        }
        const double imp =
            1.0 - static_cast<double>(rh.counts.paperTotal()) /
                      static_cast<double>(rc.counts.paperTotal());
        return std::vector<Row>{
            {T(finite ? "finite" : "indefinite"), I(words),
             I(rc.counts.src.paperTotal()),
             I(rc.counts.dst.paperTotal()), I(rc.counts.paperTotal()),
             I(rh.counts.src.paperTotal()),
             I(rh.counts.dst.paperTotal()), I(rh.counts.paperTotal()),
             R(imp), okCell(rc.dataOk && rh.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// F8 — Figure 8: generalized costs; model vs simulation.
// ------------------------------------------------------------------

Experiment
makeF8()
{
    Experiment e;
    e.name = "F8";
    e.title = "Figure 8: generalized costs vs packet size "
              "(1024-word message; model cross-checked against "
              "simulation)";
    e.columns = {"n",           "fin model",    "fin sim",
                 "ind model",   "ind sim",      "fin overhead",
                 "ind overhead"};
    e.points = {"4", "8", "16", "32", "64", "128"};
    e.notes = {"Paper: finite overhead ~9-11%; indefinite overhead "
               "remains significant across the whole range."};
    e.runPoint = [](std::size_t pi) {
        static constexpr int ns[] = {4, 8, 16, 32, 64, 128};
        const int n = ns[pi];
        ProtoParams pp;
        pp.n = n;
        pp.words = 1024;
        pp.oooFraction = 0.5;
        const auto fin = cmamFiniteModel(pp);
        const auto str = cmamStreamModel(pp);

        StackConfig cfg = paperCm5();
        cfg.dataWords = n;
        Stack s1(cfg);
        FiniteXfer finP(s1);
        FiniteXferParams fp;
        fp.words = 1024;
        const auto rf = finP.run(fp);

        StackConfig cfg2 = paperCm5(/*halfOoo=*/true);
        cfg2.dataWords = n;
        Stack s2(cfg2);
        StreamProtocol strP(s2);
        StreamParams sp;
        sp.words = 1024;
        const auto rs = strP.run(sp);

        return std::vector<Row>{
            {I(static_cast<std::uint64_t>(n)), R(fin.grandTotal()),
             I(rf.counts.paperTotal()), R(str.grandTotal()),
             I(rs.counts.paperTotal()), R(fin.overheadFraction()),
             R(str.overheadFraction())}};
    };
    return e;
}

// ------------------------------------------------------------------
// D1 — §3.2 group-acknowledgement claim.
// ------------------------------------------------------------------

Experiment
makeD1()
{
    Experiment e;
    e.name = "D1";
    e.title = "Group acknowledgements: indefinite sequence, 1024 "
              "words, half OOO, ack group sweep";
    e.columns = {"G", "acks", "fault-tol", "total", "overhead", "ok"};
    e.points = {"1", "2", "4", "8", "16", "32", "64", "256"};
    e.notes = {"Paper section 3.2: overhead 'remains significant "
               "(~40-50%) even if group acknowledgements are "
               "employed'; our floor is ~56% (in-order delivery "
               "dominates the residual)."};
    e.runPoint = [](std::size_t pi) {
        static constexpr int gs[] = {1, 2, 4, 8, 16, 32, 64, 256};
        const int g = gs[pi];
        Stack stack(paperCm5(/*halfOoo=*/true));
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 1024;
        p.groupAck = g;
        const auto res = proto.run(p);
        const auto ft =
            res.counts.src.featureTotal(Feature::FaultTolerance) +
            res.counts.dst.featureTotal(Feature::FaultTolerance);
        return std::vector<Row>{
            {I(static_cast<std::uint64_t>(g)), I(res.acksSent), I(ft),
             I(res.counts.paperTotal()),
             R(res.counts.overheadFraction()), okCell(res.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// D2 — abstract claim: 50-70% overhead.
// ------------------------------------------------------------------

Experiment
makeD2()
{
    Experiment e;
    e.name = "D2";
    e.title = "Abstract claim: overhead is 50-70% of software cost "
              "in all situations except large finite transfers";
    e.columns = {"configuration", "overhead"};
    e.points = {"all"};
    e.runPoint = [](std::size_t) {
        ProtoParams p16;
        p16.words = 16;
        ProtoParams p1024;
        p1024.words = 1024;
        return std::vector<Row>{
            {T("finite, 16 words"),
             R(cmamFiniteModel(p16).overheadFraction())},
            {T("finite, 1024 words (the exception, section 3.3)"),
             R(cmamFiniteModel(p1024).overheadFraction())},
            {T("indefinite, 16 words"),
             R(cmamStreamModel(p16).overheadFraction())},
            {T("indefinite, 1024 words"),
             R(cmamStreamModel(p1024).overheadFraction())},
        };
    };
    return e;
}

// ------------------------------------------------------------------
// A1 — Appendix A cycle model.
// ------------------------------------------------------------------

Experiment
makeA1()
{
    Experiment e;
    e.name = "A1";
    e.title = "Appendix A cycle model: unit weighting vs CM-5 "
              "weighting (reg = mem = 1, dev = 5)";
    e.columns = {"run",      "model",     "base",  "buffer mgmt",
                 "in-order", "fault-tol", "total", "overhead"};
    e.points = {"single packet", "finite 16", "finite 1024",
                "indefinite 1024"};
    e.notes = {"The 47-instruction single-packet exchange becomes 87 "
               "cycles under the CM-5 weighting; the dev-heavy base "
               "cost inflates, so the overhead *fraction* drops — "
               "which reverses as NIs improve (X3a)."};
    e.runPoint = [points = e.points](std::size_t pi) {
        BreakdownCounter counts;
        if (pi == 0) {
            Stack stack(paperCm5());
            counts = runSinglePacket(stack, {}).counts;
        } else if (pi == 3) {
            Stack stack(paperCm5(/*halfOoo=*/true));
            StreamProtocol proto(stack);
            StreamParams p;
            p.words = 1024;
            counts = proto.run(p).counts;
        } else {
            Stack stack(paperCm5());
            FiniteXfer proto(stack);
            FiniteXferParams p;
            p.words = pi == 1 ? 16u : 1024u;
            counts = proto.run(p).counts;
        }
        std::vector<Row> rows;
        for (const CostModel &m :
             {CostModel::unit(), CostModel::cm5()}) {
            auto feat = [&](Feature f) {
                return m.cycles(counts.src, f) +
                       m.cycles(counts.dst, f);
            };
            const double total = m.cycles(counts);
            const double base = feat(Feature::BaseCost);
            rows.push_back(
                {T(points[pi]), T(m.name), R(base),
                 R(feat(Feature::BufferMgmt)),
                 R(feat(Feature::InOrderDelivery)),
                 R(feat(Feature::FaultTolerance)), R(total),
                 R(total > 0 ? (total - base) / total : 0.0)});
        }
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// X1 — overhead vs out-of-order fraction.
// ------------------------------------------------------------------

Experiment
makeX1()
{
    Experiment e;
    e.name = "X1";
    e.title = "In-order-delivery cost vs out-of-order fraction "
              "(indefinite sequence, 4096 words)";
    e.columns = {"target f", "actual f", "in-order cost", "model",
                 "overhead", "ok"};
    e.points = {"0.0", "0.1", "0.2", "0.3", "0.4", "0.5"};
    e.notes = {"Model evaluated at the realized fraction of each "
               "run; agreement is exact."};
    e.runPoint = [](std::size_t pi) {
        static constexpr double fs[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
        const double f = fs[pi];
        StackConfig cfg = paperCm5();
        if (f > 0)
            cfg.order = pairSwapChanceFactory(f / (1.0 - f), 987);
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 4096;
        const auto res = proto.run(p);
        const double actual = static_cast<double>(res.oooArrivals) /
                              static_cast<double>(res.packets);
        ProtoParams pp;
        pp.words = 4096;
        pp.oooFraction = actual;
        const double model =
            cmamStreamModel(pp).featureTotal(Feature::InOrderDelivery);
        const auto ord =
            res.counts.src.featureTotal(Feature::InOrderDelivery) +
            res.counts.dst.featureTotal(Feature::InOrderDelivery);
        return std::vector<Row>{
            {R(f), R(actual), I(ord), R(model),
             R(res.counts.overheadFraction()), okCell(res.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X2 — software vs hardware fault recovery.
// ------------------------------------------------------------------

Experiment
makeX2()
{
    Experiment e;
    e.name = "X2";
    e.title = "Fault-rate sweep: software recovery (CMAM/CM-5) vs "
              "hardware recovery (HL/CR), event mode, 1024 words";
    e.columns = {"drop %",  "cmam instr", "retx",       "dups",
                 "elapsed", "hl instr",   "hw retries", "ok"};
    e.points = {"0", "2", "5", "10", "20"};
    e.runPoint = [](std::size_t pi) {
        static constexpr double rates[] = {0.0, 0.02, 0.05, 0.10,
                                           0.20};
        const double rate = rates[pi];
        StackConfig cfg = paperCm5();
        cfg.faults.dropRate = rate;
        cfg.faults.seed = 404;
        Stack cm5(cfg);
        StreamProtocol proto(cm5);
        StreamParams p;
        p.words = 1024;
        p.eventMode = true;
        p.retxTimeout = 800;
        p.maxRetx = 4096;
        const auto rc = proto.run(p);

        HlStackConfig hcfg;
        hcfg.faults.dropRate = rate;
        hcfg.faults.seed = 404;
        HlStack hl(hcfg);
        HlStreamParams hp;
        hp.words = 1024;
        hp.eventMode = true;
        const auto rh = runHlStream(hl, hp);

        return std::vector<Row>{
            {R(rate * 100), I(rc.counts.paperTotal()),
             I(rc.retransmissions), I(rc.duplicates), I(rc.elapsed),
             I(rh.counts.paperTotal()),
             I(hl.machine().network().stats().hwRetries),
             okCell(rc.dataOk && rh.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X3a — the NI-improvement paradox (dev-weight sweep).
// ------------------------------------------------------------------

Experiment
makeX3a()
{
    Experiment e;
    e.name = "X3a";
    e.title = "NI design ablation: overhead fraction vs dev access "
              "cost (1024-word message, n = 4)";
    e.columns = {"NI model", "dev weight", "finite overhead",
                 "indefinite overhead", "cmam/hl stream"};
    e.points = {"dev 5", "dev 3", "dev 2", "dev 1"};
    e.notes = {"Paper section 5: reducing the base cost increases "
               "the importance of the remaining messaging layer — "
               "the overhead fraction RISES as the NI improves."};
    e.runPoint = [](std::size_t pi) {
        struct Ni
        {
            const char *name;
            double w;
        };
        static constexpr Ni nis[] = {
            {"CM-5 memory-mapped", 5.0},
            {"improved bus NI", 3.0},
            {"coprocessor NI", 2.0},
            {"on-chip NI, reg-mapped", 1.0},
        };
        ProtoParams pp;
        pp.words = 1024;
        pp.oooFraction = 0.5;
        const auto fin = cmamFiniteModel(pp);
        const auto str = cmamStreamModel(pp);
        const auto hl = hlStreamModel(pp);

        auto overheadUnder = [](const FeatureBreakdown &bd,
                                const CostModel &m) {
            const double base =
                bd.at(Feature::BaseCost, Direction::Source)
                    .weighted(m) +
                bd.at(Feature::BaseCost, Direction::Destination)
                    .weighted(m);
            const double total = bd.weightedTotal(m);
            return (total - base) / total;
        };

        const Ni &ni = nis[pi];
        const CostModel m{"sweep", 1.0, 1.0, ni.w};
        return std::vector<Row>{
            {T(ni.name), R(ni.w), R(overheadUnder(fin, m)),
             R(overheadUnder(str, m)),
             R(str.weightedTotal(m) / hl.weightedTotal(m))}};
    };
    return e;
}

// ------------------------------------------------------------------
// X3b — DMA vs programmed I/O.
// ------------------------------------------------------------------

Experiment
makeX3b()
{
    Experiment e;
    e.name = "X3b";
    e.title = "DMA vs programmed I/O: finite sequence, 1024-word "
              "message";
    e.columns = {"n",         "pio instr", "pio overhead",
                 "dma instr", "dma overhead", "ok"};
    e.points = {"4", "16", "64", "128"};
    e.notes = {"DMA shrinks the base cost but not one instruction of "
               "the handshake/ordering/ack machinery — the overhead "
               "fraction rises (paper section 5)."};
    e.runPoint = [](std::size_t pi) {
        static constexpr int ns[] = {4, 16, 64, 128};
        const int n = ns[pi];
        StackConfig pioCfg = paperCm5();
        pioCfg.dataWords = n;
        Stack pio(pioCfg);
        FiniteXfer p1(pio);
        FiniteXferParams params;
        params.words = 1024;
        const auto r1 = p1.run(params);

        StackConfig dmaCfg = pioCfg;
        dmaCfg.dmaXfer = true;
        Stack dma(dmaCfg);
        FiniteXfer p2(dma);
        params.dma = true;
        const auto r2 = p2.run(params);

        return std::vector<Row>{
            {I(static_cast<std::uint64_t>(n)),
             I(r1.counts.paperTotal()),
             R(r1.counts.overheadFraction()),
             I(r2.counts.paperTotal()),
             R(r2.counts.overheadFraction()),
             okCell(r1.dataOk && r2.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X4a — polling discipline: calibration vs event mode.
// ------------------------------------------------------------------

Experiment
makeX4a()
{
    Experiment e;
    e.name = "X4a";
    e.title = "Polling overhead: calibration (minimum path) vs "
              "event-driven execution";
    e.columns = {"workload", "calibration", "event mode", "extra",
                 "ok"};
    e.points = {"finite 16",  "finite 256",  "finite 1024",
                "stream 16",  "stream 256",  "stream 1024",
                "jitter 0",   "jitter 40",   "jitter 200"};
    e.notes = {"The paper's tables are the lower envelope: "
               "arrival-driven schedules pay extra poll entries "
               "(12 reg + 1 dev each), and scattered arrivals defeat "
               "poll batching."};
    e.runPoint = [points = e.points](std::size_t pi) {
        const std::string &label = points[pi];
        std::uint64_t cal = 0, evt = 0;
        bool ok = true;
        if (pi < 3) {
            static constexpr std::uint32_t ws[] = {16, 256, 1024};
            const std::uint32_t words = ws[pi];
            Stack s1(paperCm5());
            FiniteXfer pcal(s1);
            FiniteXferParams p;
            p.words = words;
            cal = pcal.run(p).counts.paperTotal();
            Stack s2(paperCm5());
            FiniteXfer pevt(s2);
            p.eventMode = true;
            const auto re = pevt.run(p);
            evt = re.counts.paperTotal();
            ok = re.dataOk;
        } else if (pi < 6) {
            static constexpr std::uint32_t ws[] = {16, 256, 1024};
            const std::uint32_t words = ws[pi - 3];
            Stack s1(paperCm5());
            StreamProtocol pcal(s1);
            StreamParams p;
            p.words = words;
            cal = pcal.run(p).counts.paperTotal();
            Stack s2(paperCm5());
            StreamProtocol pevt(s2);
            p.eventMode = true;
            const auto re = pevt.run(p);
            evt = re.counts.paperTotal();
            ok = re.dataOk;
        } else {
            static constexpr Tick jitters[] = {0, 40, 200};
            const Tick jitter = jitters[pi - 6];
            Stack s1(paperCm5());
            StreamProtocol pcal(s1);
            StreamParams p;
            p.words = 256;
            cal = pcal.run(p).counts.paperTotal();
            StackConfig jcfg = paperCm5();
            jcfg.maxJitter = jitter;
            Stack s2(jcfg);
            StreamProtocol pevt(s2);
            p.eventMode = true;
            const auto re = pevt.run(p);
            evt = re.counts.paperTotal();
            ok = re.dataOk;
        }
        const double extra = static_cast<double>(evt) /
                                 static_cast<double>(cal) -
                             1.0;
        return std::vector<Row>{
            {T(label), I(cal), I(evt), R(extra), okCell(ok)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X4b — interrupt-driven reception (paper footnote 2).
// ------------------------------------------------------------------

Experiment
makeX4b()
{
    Experiment e;
    e.name = "X4b";
    e.title = "Reception discipline: poll vs interrupt (256-word "
              "stream, event mode)";
    e.columns = {"jitter", "poll instr", "intr instr", "traps",
                 "penalty", "ok"};
    e.points = {"0", "10", "40", "160"};
    e.notes = {"One ~98-instruction SPARC trap per service vs a "
               "13-instruction poll entry — footnote 2's rationale "
               "for polling."};
    e.runPoint = [](std::size_t pi) {
        static constexpr Tick jitters[] = {0, 10, 40, 160};
        const Tick jitter = jitters[pi];
        StackConfig cfg = paperCm5();
        cfg.maxJitter = jitter;

        Stack s1(cfg);
        StreamProtocol p1(s1);
        StreamParams params;
        params.words = 256;
        params.eventMode = true;
        params.discipline = RecvDiscipline::Poll;
        const auto polled = p1.run(params);

        Stack s2(cfg);
        StreamProtocol p2(s2);
        params.discipline = RecvDiscipline::Interrupt;
        const auto intr = p2.run(params);

        const auto traps = s2.cmam(0).interruptsTaken() +
                           s2.cmam(1).interruptsTaken();
        const double penalty =
            static_cast<double>(intr.counts.paperTotal()) /
                static_cast<double>(polled.counts.paperTotal()) -
            1.0;
        return std::vector<Row>{
            {I(jitter), I(polled.counts.paperTotal()),
             I(intr.counts.paperTotal()), I(traps), R(penalty),
             okCell(polled.dataOk && intr.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X5 — protection: user-level vs kernel-mediated NI access.
// ------------------------------------------------------------------

Experiment
makeX5()
{
    Experiment e;
    e.name = "X5";
    e.title = "User-level vs kernel-mediated NI access (120 modeled "
              "instructions per crossing)";
    e.columns = {"workload", "user-level", "kernel", "blowup"};
    e.points = {"single packet", "finite 16", "finite 1024",
                "stream 16", "stream 1024"};
    e.notes = {"Per-packet user calls (streams) are crushed by "
               "per-call kernel crossings; batched calls (the xfer "
               "loop) amortize them (paper section 3.1/5)."};
    e.runPoint = [points = e.points](std::size_t pi) {
        auto runOne = [pi](bool kernel) -> std::uint64_t {
            StackConfig cfg =
                paperCm5(/*halfOoo=*/pi == 3 || pi == 4);
            cfg.kernelMediated = kernel;
            Stack stack(cfg);
            if (pi == 0)
                return runSinglePacket(stack, {})
                    .counts.paperTotal();
            if (pi == 1 || pi == 2) {
                FiniteXfer proto(stack);
                FiniteXferParams p;
                p.words = pi == 1 ? 16u : 1024u;
                return proto.run(p).counts.paperTotal();
            }
            StreamProtocol proto(stack);
            StreamParams p;
            p.words = pi == 3 ? 16u : 1024u;
            return proto.run(p).counts.paperTotal();
        };
        const std::uint64_t user = runOne(false);
        const std::uint64_t kernel = runOne(true);
        return std::vector<Row>{
            {T(points[pi]), I(user), I(kernel),
             R(static_cast<double>(kernel) /
               static_cast<double>(user))}};
    };
    return e;
}

// ------------------------------------------------------------------
// X6 — wire vs software latency.
// ------------------------------------------------------------------

Experiment
makeX6()
{
    Experiment e;
    e.name = "X6";
    e.title = "Latency / bandwidth vs message size (event mode, "
              "link serialization 5 ticks/packet)";
    e.columns = {"words", "cmam wire", "cmam sw", "hl wire", "hl sw",
                 "sw ratio", "ok"};
    e.points = {"16", "64", "256", "1024", "4096"};
    e.notes = {"wire = simulated ticks to deliver and acknowledge; "
               "sw = modeled cycles under the Appendix A weighting. "
               "Both substrates saturate the same links; the "
               "software bill separates them."};
    e.runPoint = [](std::size_t pi) {
        static constexpr std::uint32_t ws[] = {16, 64, 256, 1024,
                                               4096};
        const std::uint32_t words = ws[pi];
        StackConfig cfg = paperCm5();
        cfg.memWords = 1u << 24;
        cfg.injectGap = 5;
        cfg.deliverGap = 5;
        Stack cm5(cfg);
        StreamProtocol proto(cm5);
        StreamParams p;
        p.words = words;
        p.eventMode = true;
        p.retxTimeout = 100'000;
        const auto rc = proto.run(p);

        HlStackConfig hcfg;
        hcfg.memWords = 1u << 24;
        hcfg.injectGap = 5;
        hcfg.deliverGap = 5;
        HlStack hl(hcfg);
        HlStreamParams hp;
        hp.words = words;
        hp.eventMode = true;
        const auto rh = runHlStream(hl, hp);

        const CostModel m = CostModel::cm5();
        const double swC = m.cycles(rc.counts);
        const double swH = m.cycles(rh.counts);
        return std::vector<Row>{
            {I(words), I(rc.elapsed), R(swC), I(rh.elapsed), R(swH),
             R(swC / swH), okCell(rc.dataOk && rh.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X7 — collectives over active messages.
// ------------------------------------------------------------------

Experiment
makeX7()
{
    Experiment e;
    e.name = "X7";
    e.title = "Collectives on active messages: cost vs machine size";
    e.columns = {"nodes",       "barrier msgs", "barrier instr",
                 "barrier t",   "bcast msgs",   "bcast instr",
                 "bcast t",     "allreduce msgs",
                 "allreduce instr", "allreduce t", "ok"};
    e.points = {"2", "4", "8", "16", "32", "64"};
    e.notes = {"Per-node cost grows as log2(N) x (send 20 + recv 27 "
               "+ handler work): the paper's single-packet numbers "
               "are the coin these algorithms spend."};
    e.runPoint = [](std::size_t pi) {
        static constexpr std::uint32_t nodes[] = {2, 4, 8, 16, 32,
                                                  64};
        const std::uint32_t n = nodes[pi];
        StackConfig cfg;
        cfg.nodes = n;
        Stack stack(cfg);
        Collectives coll(stack);

        const auto bar = coll.barrier();
        std::vector<Word> out;
        const auto bc = coll.broadcast(0, 42, out);
        std::vector<Word> in(n, 1), all;
        const auto ar =
            coll.allReduce(Collectives::ReduceOp::Sum, in, all);

        return std::vector<Row>{
            {I(n), I(bar.messages), I(bar.instructions),
             I(bar.elapsed), I(bc.messages), I(bc.instructions),
             I(bc.elapsed), I(ar.messages), I(ar.instructions),
             I(ar.elapsed), okCell(bar.ok && bc.ok && ar.ok)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X8 — software flow control: window sweep.
// ------------------------------------------------------------------

Experiment
makeX8()
{
    Experiment e;
    e.name = "X8";
    e.title = "Ack-paced window sweep: 1024-word stream, link "
              "serialization 5 ticks/packet";
    e.columns = {"window", "elapsed", "words/kilotick", "acks", "ok"};
    e.points = {"1", "2", "4", "8", "16", "32", "64", "inf"};
    e.notes = {"Once the window covers the bandwidth-delay product, "
               "throughput saturates at the serialization limit — "
               "hardware end-to-end flow control (CR) gets this "
               "without any window bookkeeping."};
    e.runPoint = [points = e.points](std::size_t pi) {
        static constexpr std::uint32_t ws[] = {1, 2, 4, 8,
                                               16, 32, 64, 0};
        const std::uint32_t w = ws[pi];
        StackConfig cfg = paperCm5();
        cfg.memWords = 1u << 24;
        cfg.injectGap = 5;
        cfg.deliverGap = 5;
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 1024;
        p.eventMode = true;
        p.window = w;
        p.retxTimeout = 200'000;
        const auto res = proto.run(p);
        const double bw =
            res.elapsed
                ? 1000.0 * 1024.0 / static_cast<double>(res.elapsed)
                : 0.0;
        return std::vector<Row>{
            {T(points[pi]), I(res.elapsed), R(bw), I(res.acksSent),
             okCell(res.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X9 — traffic patterns.
// ------------------------------------------------------------------

Experiment
makeX9()
{
    Experiment e;
    e.name = "X9";
    e.title = "AM traffic patterns: 32 nodes, 64 messages/node, "
              "link serialization 5 ticks/packet";
    e.columns = {"pattern", "msgs", "instr/node", "imbalance",
                 "elapsed", "ok"};
    e.points = {"uniform", "permutation", "hotspot", "ring",
                "transpose"};
    e.notes = {"Hotspot traffic concentrates the per-packet receive "
               "cost on one processor — software overhead is also a "
               "load-balance problem."};
    e.runPoint = [](std::size_t pi) {
        static constexpr TrafficPattern patterns[] = {
            TrafficPattern::UniformRandom, TrafficPattern::Permutation,
            TrafficPattern::Hotspot, TrafficPattern::Ring,
            TrafficPattern::Transpose};
        const TrafficPattern pattern = patterns[pi];
        StackConfig cfg = paperCm5();
        cfg.nodes = 32;
        cfg.injectGap = 5;
        cfg.deliverGap = 5;
        cfg.maxJitter = 10;
        Stack stack(cfg);
        TrafficRunner runner(stack);
        TrafficGen gen(32, pattern, 77);
        const auto res = runner.run(gen, 64);
        return std::vector<Row>{
            {T(toString(pattern)), I(res.messages),
             R(res.perNodeInstr.mean()), R(res.maxOverMean),
             I(res.elapsed), okCell(res.ok)}};
    };
    return e;
}

// ------------------------------------------------------------------
// X10 — dual data networks (paper footnote 6).
// ------------------------------------------------------------------

Experiment
makeX10()
{
    Experiment e;
    e.name = "X10";
    e.title = "Dual data networks: replies ride virtual network 1 "
              "past a saturated request FIFO";
    e.columns = {"metric", "value"};
    e.points = {"all"};
    e.notes = {"Paper footnote 6: the CM-5's two data networks keep "
               "round trips safe when request traffic backs up; "
               "calibration counts are unchanged."};
    e.runPoint = [](std::size_t) {
        StackConfig cfg = paperCm5();
        cfg.nodes = 3;
        cfg.recvCapacity = 2; // per virtual network
        Stack stack(cfg);
        Node &dst = stack.node(1);
        const int h = stack.cmam(1).registerHandler(
            [](NodeId, const std::vector<Word> &) {});

        // Two requests fill vnet 0 on node 1; a third is refused.
        stack.cmam(0).am4(1, h, {1});
        stack.cmam(0).am4(1, h, {2});
        stack.settle();
        const auto depth0 = dst.ni().hwRecvDepth(0);
        stack.cmam(2).am4(1, h, {3});
        stack.machine().sim().run(500);
        const auto refusals = dst.ni().recvRefusals();
        const auto depth0After = dst.ni().hwRecvDepth(0);

        // A reply-class packet sails through on vnet 1.
        stack.cmam(2).sendTagged(
            HwTag::UserAm, 1,
            hdr::pack(static_cast<std::uint32_t>(h), 0), {99}, 4,
            /*vnet=*/1);
        stack.machine().sim().run(500);
        const auto depth1 = dst.ni().hwRecvDepth(1);

        // Calibration counts are unchanged by the dual-network NI.
        Stack fresh(paperCm5());
        const auto sp = runSinglePacket(fresh, {});

        return std::vector<Row>{
            {T("request fifo depth (vnet 0) after fill"), I(depth0)},
            {T("recv refusals after third request"), I(refusals)},
            {T("request fifo depth (vnet 0) after refusal"),
             I(depth0After)},
            {T("reply fifo depth (vnet 1) after reply"), I(depth1)},
            {T("single-packet src instructions"),
             I(sp.counts.src.paperTotal())},
            {T("single-packet dst instructions"),
             I(sp.counts.dst.paperTotal())},
        };
    };
    return e;
}

// ------------------------------------------------------------------
// S1 — asymptotic overhead at large message sizes.
// ------------------------------------------------------------------

Experiment
makeS1()
{
    Experiment e;
    e.name = "S1";
    e.title = "Asymptotic overhead: the abstract's claims at large "
              "message sizes (16K-256K words)";
    e.columns = {"protocol", "words", "ooo f", "total instr",
                 "overhead", "ok"};
    e.points = {"fin 65536",     "fin 262144",    "ind 65536 f=.5",
                "ind 262144 f=.5", "ind 262144 f=.25",
                "ind 262144 f=0"};
    e.notes = {"Paper abstract: overhead is 50-70% 'in all cases "
               "except large transfers with known size'.  The 1024 "
               "-word tables are not an artifact of small messages: "
               "finite overhead settles near 11% (per-packet buffer "
               "and ordering work that no message size amortizes "
               "away), indefinite overhead converges to a size "
               "-independent ~71% plateau.",
               "These are the sweep's heavyweight points — the "
               "parallel runner overlaps them with the rest of the "
               "E-index."};
    e.runPoint = [points = e.points](std::size_t pi) {
        const bool finite = pi < 2;
        static constexpr std::uint32_t ws[] = {65536, 262144, 65536,
                                               262144, 262144, 262144};
        static constexpr double fs[] = {0, 0, 0.5, 0.5, 0.25, 0.0};
        const std::uint32_t words = ws[pi];
        const double f = fs[pi];

        StackConfig cfg = paperCm5();
        cfg.memWords = 1u << 22;
        if (f == 0.5)
            cfg.order = swapAdjacentFactory();
        else if (f > 0)
            cfg.order = pairSwapChanceFactory(f / (1.0 - f), 987);

        RunResult res;
        if (finite) {
            Stack stack(cfg);
            FiniteXfer proto(stack);
            FiniteXferParams p;
            p.words = words;
            res = proto.run(p);
        } else {
            Stack stack(cfg);
            StreamProtocol proto(stack);
            StreamParams p;
            p.words = words;
            res = proto.run(p);
        }
        return std::vector<Row>{
            {T(finite ? "finite" : "indefinite"), I(words), R(f),
             I(res.counts.paperTotal()),
             R(res.counts.overheadFraction()), okCell(res.dataOk)}};
    };
    return e;
}

// ------------------------------------------------------------------
// C1 — schedule-space model checking (PR 4): bounded-exhaustive
// exploration of every protocol stack, plus the seeded stream bug
// which the checker must catch and shrink to one decisive choice.
// ------------------------------------------------------------------

Experiment
makeC1()
{
    Experiment e;
    e.name = "C1";
    e.title = "Model checking: bounded-exhaustive schedule "
              "exploration of the protocol stacks";
    e.columns = {"scenario",  "schedules", "steps",
                 "exhausted", "verdict",   "counterexample"};
    e.points = {"single_packet cm5",  "single_packet cr",
                "finite_xfer cm5",    "stream cm5",
                "stream cm5 2-fault", "stream cr",
                "socket cm5",         "stream cm5 BUG"};
    e.notes = {"Each point re-executes every schedule in a fresh "
               "harness; the same config always yields the same "
               "counts (golden-gated).",
               "The BUG point re-introduces the ack-before-insert "
               "stream bug and reports the invariant the checker "
               "catches plus its ddmin-minimized schedule."};
    e.runPoint = [](std::size_t pi) {
        using namespace msgsim::check;
        static const char *const labels[] = {
            "single_packet cm5",  "single_packet cr",
            "finite_xfer cm5",    "stream cm5",
            "stream cm5 2-fault", "stream cr",
            "socket cm5",         "stream cm5 BUG"};
        ScenarioConfig sc;
        ExploreLimits lim;
        lim.budget = 100000;
        switch (pi) {
        case 0: // single_packet cm5
            sc.protocol = "single_packet";
            sc.packets = 3;
            lim.depth = 12;
            break;
        case 1: // single_packet cr
            sc.protocol = "single_packet";
            sc.substrate = Substrate::Cr;
            sc.packets = 4;
            sc.faults = 2;
            lim.depth = 12;
            break;
        case 2: // finite_xfer cm5
            sc.protocol = "finite_xfer";
            sc.packets = 3;
            lim.depth = 8;
            break;
        case 3: // stream cm5
            sc.protocol = "stream";
            sc.packets = 3;
            lim.depth = 8;
            break;
        case 4: // stream cm5, two faults, shallower horizon
            sc.protocol = "stream";
            sc.packets = 3;
            sc.faults = 2;
            lim.depth = 5;
            break;
        case 5: // stream cr
            sc.protocol = "stream";
            sc.substrate = Substrate::Cr;
            sc.packets = 3;
            lim.depth = 8;
            break;
        case 6: // socket cm5
            sc.protocol = "socket";
            sc.packets = 3;
            lim.depth = 8;
            break;
        default: // stream cm5 with the seeded bug
            sc.protocol = "stream";
            sc.packets = 3;
            sc.bugAckBeforeInsert = true;
            lim.depth = 8;
            break;
        }

        Explorer explorer(sc, lim);
        CheckReport rep = explorer.run();

        std::string verdict = "ok";
        Cell ce = Cell::null();
        if (rep.violations) {
            verdict = rep.counterexample.invariant;
            const Shrinker shrinker(explorer);
            const ShrinkResult shrunk =
                shrinker.shrink(rep.counterexample);
            std::string sched;
            for (const Choice &c : shrunk.schedule) {
                if (!sched.empty())
                    sched += "; ";
                sched += toString(c.kind);
                sched += ' ';
                sched += std::to_string(c.packetId);
            }
            ce = T(sched.empty() ? "(default policy)" : sched);
        }
        return std::vector<Row>{
            {T(labels[pi]), I(rep.schedulesRun), I(rep.stepsTotal),
             T(rep.exhausted ? "yes" : "no"), T(verdict), ce}};
    };
    return e;
}

// ------------------------------------------------------------------
// P1 — perf trajectory: simulator packet throughput (host
// wall-clock; NOT deterministic, excluded from golden gating).
// ------------------------------------------------------------------

Experiment
makeP1()
{
    Experiment e;
    e.name = "P1";
    e.title = "Simulator micro throughput: packets/s through each "
              "substrate (host wall-clock)";
    e.deterministic = false;
    e.columns = {"substrate", "packets", "wall us", "packets/s"};
    e.points = {"cm5", "cr", "cmam am4", "prof differential",
                "cm5 profiled", "rdma", "nicam"};
    e.notes = {"Measures this repository's simulator, not the "
               "modeled machine; feeds the repo-root "
               "BENCH_throughput.json perf trajectory."};
    e.runPoint = [](std::size_t pi) {
        constexpr std::uint64_t kPackets = 200'000;
        using clock = std::chrono::steady_clock;
        std::uint64_t delivered = 0;
        double wallUs = 0;
        const char *label = "";

        if (pi == 3) {
            // Wall-clock of the msgsim-prof headline comparison
            // (observe = false: the sweep runs points concurrently
            // and the observability sessions are process-global).
            label = "prof differential";
            prof::ProfConfig pc;
            pc.observe = false;
            prof::ProfConfig bc = pc;
            bc.substrate = Substrate::Cr;
            const auto t0 = clock::now();
            const auto primary = prof::runProfiled(pc);
            const auto baseline = prof::runProfiled(bc);
            wallUs = std::chrono::duration<double, std::micro>(
                         clock::now() - t0)
                         .count();
            delivered = primary.result.packets +
                        baseline.result.packets;
        } else if (pi == 0 || pi == 1 || pi >= 4) {
            // The fifth point repeats the cm5 pump with the host
            // self-profiler attached: the trajectory shows what the
            // instrumentation itself costs (thread-local attach, so
            // concurrent grid points are unaffected).  The modern
            // substrates pump the same packet train so the trajectory
            // compares all four fabrics like-for-like; nicam routes
            // every packet through an on-NIC offload handler.
            label = pi == 0 ? "cm5 network"
                  : pi == 1 ? "cr network"
                  : pi == 4 ? "cm5 network (hostprof)"
                  : pi == 5 ? "rdma"
                            : "nicam";
            Simulator sim;
            std::unique_ptr<Network> net;
            if (pi == 1) {
                CrNetwork::Config cfg;
                cfg.nodes = 16;
                net = std::make_unique<CrNetwork>(sim, cfg);
            } else if (pi == 5) {
                RdmaNetwork::Config cfg;
                cfg.nodes = 16;
                net = std::make_unique<RdmaNetwork>(sim, cfg);
            } else if (pi == 6) {
                NicamNetwork::Config cfg;
                cfg.nodes = 16;
                auto nicam = std::make_unique<NicamNetwork>(sim, cfg);
                nicam->offloadHandler(
                    1, HwTag::UserAm, 0,
                    [&delivered](const Packet &) { ++delivered; });
                net = std::move(nicam);
            } else {
                Cm5Network::Config cfg;
                cfg.nodes = 16;
                net = std::make_unique<Cm5Network>(sim, cfg);
            }
            net->attach(1, [&delivered, pi](Packet &&) {
                if (pi != 6) // nicam counts in the offload handler
                    ++delivered;
                return true;
            });
            hostprof::HostProfiler hp;
            if (pi == 4)
                hp.attach();
            const auto t0 = clock::now();
            for (std::uint64_t i = 0; i < kPackets; ++i) {
                net->inject(
                    Packet(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4}));
                sim.run();
            }
            wallUs = std::chrono::duration<double, std::micro>(
                         clock::now() - t0)
                         .count();
            if (pi == 4)
                hp.detach();
        } else {
            label = "cmam am4 round";
            StackConfig cfg;
            cfg.nodes = 2;
            Stack stack(cfg);
            const int h = stack.cmam(1).registerHandler(
                [](NodeId, const std::vector<Word> &) {});
            const auto t0 = clock::now();
            for (std::uint64_t i = 0; i < kPackets / 4; ++i) {
                stack.cmam(0).am4(1, h, {1, 2, 3, 4});
                stack.settle();
                stack.cmam(1).poll();
                ++delivered;
            }
            wallUs = std::chrono::duration<double, std::micro>(
                         clock::now() - t0)
                         .count();
        }
        const double perSec =
            wallUs > 0 ? 1e6 * static_cast<double>(delivered) / wallUs
                       : 0.0;
        return std::vector<Row>{
            {T(label), I(delivered), R(wallUs), R(perSec)}};
    };
    return e;
}

// ------------------------------------------------------------------
// P2 — the profiler's headline differential (PR 5): run the same
// finite transfer through the CMAM/CM-5 stack and the CR stack and
// diff the per-feature instruction bill — the paper's "overhead that
// vanishes" table, golden-gated.
// ------------------------------------------------------------------

Experiment
makeP2()
{
    Experiment e;
    e.name = "P2";
    e.title = "Differential profile: 64-word finite transfer, "
              "CMAM/CM-5 vs CR (the overhead that vanishes)";
    e.columns = {"feature", "cm5/xfer", "cr/xfer", "status"};
    e.points = {"all"};
    e.notes = {"Computed by prof::differential() — the same code "
               "behind msgsim-prof --baseline; buffer management, "
               "in-order delivery and fault tolerance vanish on CR "
               "while the base cost stays put (paper sections 3-4).",
               "Profiling runs with observe = false here (the sweep "
               "is concurrent); instruction counts are bit-identical "
               "either way, by design."};
    e.runPoint = [](std::size_t) {
        prof::ProfConfig pc;
        pc.observe = false;
        prof::ProfConfig bc = pc;
        bc.substrate = Substrate::Cr;
        const auto primary = prof::runProfiled(pc);
        const auto baseline = prof::runProfiled(bc);
        const auto diff =
            prof::differential(pc, primary, bc, baseline);
        std::vector<Row> rows;
        for (const prof::DiffRow &row : diff.rows)
            rows.push_back({T(toString(row.feature)),
                            paperCount(row.primary),
                            paperCount(row.baseline), T(row.status)});
        rows.push_back({T("Total"), I(diff.primaryTotal),
                        I(diff.baselineTotal), Cell::null()});
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// M1 — the substrate × feature matrix (PR 7): every protocol on
// every substrate, with the per-feature instruction bill as columns.
// The classic two-column differential (P2) becomes one slice of this
// table; the modern substrates add the completion-poll, registration
// and host-dispatch columns the 1994 table had no need for.
// ------------------------------------------------------------------

Experiment
makeM1()
{
    Experiment e;
    e.name = "M1";
    e.title = "Substrate × feature matrix: per-feature instruction "
              "bill of each protocol on each substrate";
    e.columns = {"substrate", "protocol", "base", "buffer",
                 "in-order", "fault-tol", "compl-poll", "regist",
                 "dispatch", "total", "check"};
    e.points = {"cm5", "cr", "rdma", "nicam"};
    e.notes = {"Instruction counts from prof::runProfiled "
               "(observe = false: the sweep is concurrent; counts "
               "are bit-identical either way, by design).",
               "On rdma the buffering/in-order/fault columns vanish "
               "but completion-poll and registration appear; on "
               "nicam the host dispatch column empties because the "
               "NIC runs the handlers itself.",
               "'total' is the paper-feature sum (base + buffer + "
               "in-order + fault-tol); the modern columns are "
               "itemized separately, as the paper itemizes its "
               "per-feature overheads."};
    e.runPoint = [](std::size_t pi) {
        static const Substrate subs[] = {
            Substrate::Cm5, Substrate::Cr, Substrate::Rdma,
            Substrate::Nicam};
        static const char *protos[] = {"single", "am4", "xfer",
                                       "stream"};
        std::vector<Row> rows;
        for (const char *proto : protos) {
            prof::ProfConfig pc;
            pc.protocol = proto;
            pc.substrate = subs[pi];
            pc.observe = false;
            const prof::ProfRun run = prof::runProfiled(pc);
            const auto &c = run.result.counts;
            rows.push_back(
                {T(toString(pc.substrate)), T(proto),
                 paperCount(c.featureTotal(Feature::BaseCost)),
                 paperCount(c.featureTotal(Feature::BufferMgmt)),
                 paperCount(
                     c.featureTotal(Feature::InOrderDelivery)),
                 paperCount(
                     c.featureTotal(Feature::FaultTolerance)),
                 paperCount(
                     c.featureTotal(Feature::CompletionPoll)),
                 paperCount(c.featureTotal(Feature::Registration)),
                 paperCount(run.result.dispatchOps),
                 I(c.paperTotal()), okCell(run.result.dataOk)});
        }
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// H1 — host self-profile *counts*: scope entries and heap allocation
// traffic per subsystem under the PR 6 self-profiler.  Cycle costs
// are wall-clock and belong to the bench trajectory; the counts are
// pure functions of the (deterministic) simulation and golden-gate
// that the instrumentation keeps firing from every layer.
// ------------------------------------------------------------------

Experiment
makeH1()
{
    Experiment e;
    e.name = "H1";
    e.title = "Host self-profile: scope entries and heap allocations "
              "per subsystem (counts only, golden-gated)";
    e.columns = {"workload", "subsystem", "enters", "allocs",
                 "alloc bytes", "check"};
    e.points = {"xfer cm5", "xfer cr", "stream cm5", "am4 round"};
    e.notes = {"Self cycles are host wall-clock and feed "
               "BENCH_throughput.json via msgsim-selfprof; this "
               "table pins only the deterministic counts.",
               "The (total) row's check verifies the share-sum "
               "identity: scopes balanced, enters == exits, and the "
               "per-node self costs summing exactly to the root "
               "total.",
               "Attachment is thread-local, so the concurrent sweep "
               "cannot observe another grid point's profiler."};
    e.runPoint = [](std::size_t pi) {
        hostprof::HostProfiler hp;
        hp.attach();
        const char *label = "";
        switch (pi) {
        case 0:
        case 1: {
            label = pi == 0 ? "xfer cm5" : "xfer cr";
            StackConfig cfg = paperCm5();
            if (pi == 1)
                cfg.substrate = Substrate::Cr;
            Stack stack(cfg);
            FiniteXfer proto(stack);
            FiniteXferParams params;
            params.words = 64;
            proto.run(params);
            break;
        }
        case 2: {
            label = "stream cm5";
            Stack stack(paperCm5());
            StreamProtocol proto(stack);
            StreamParams params;
            params.words = 64;
            proto.run(params);
            break;
        }
        default: {
            label = "am4 round";
            StackConfig cfg;
            cfg.nodes = 2;
            Stack stack(cfg);
            const int h = stack.cmam(1).registerHandler(
                [](NodeId, const std::vector<Word> &) {});
            for (int i = 0; i < 64; ++i) {
                stack.cmam(0).am4(1, h, {1, 2, 3, 4});
                stack.settle();
                stack.cmam(1).poll();
            }
            break;
        }
        }
        hp.detach();

        std::vector<Row> rows;
        std::uint64_t selfSum = 0;
        for (const auto &sub : hp.subsystems()) {
            selfSum += sub.selfCycles;
            rows.push_back({T(label), T(sub.name), I(sub.enters),
                            I(sub.allocs), I(sub.allocBytes),
                            Cell::null()});
        }
        const bool identity = hp.balanced() &&
                              hp.totalEnters() == hp.totalExits() &&
                              hp.totalEnters() > 0 &&
                              selfSum == hp.rootCycles();
        rows.push_back({T(label), T("(total)"), I(hp.totalEnters()),
                        I(hp.scopedAllocs()),
                        I(hp.scopedAllocBytes()),
                        okCell(identity)});
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// W1 — traffic library: predicted vs measured, the golden-free gate.
// ------------------------------------------------------------------

/** Exact-intent agreement for composed floating-point sums. */
bool
w1Agree(double predicted, double measured)
{
    const double diff = std::fabs(predicted - measured);
    const double scale = std::max(
        1.0, std::max(std::fabs(predicted), std::fabs(measured)));
    return diff <= 1e-9 * scale;
}

Experiment
makeW1()
{
    Experiment e;
    e.name = "W1";
    e.title = "Traffic library vs analytic predictor: full "
              "pattern x protocol x substrate grid plus allreduce "
              "algorithms (golden-free: the model is the reference)";
    e.goldenExempt = true;
    e.columns = {"substrate", "workload", "variant", "msgs",
                 "predicted", "measured", "delta", "status"};
    e.points = {"cm5", "cr", "rdma", "nicam"};
    e.notes = {"Every per-event charge in traffic/engine.cc and "
               "coll/collectives.cc is a constant the predictor "
               "composes, so predicted == measured exactly; any "
               "drift in the charged protocol paths fails this gate "
               "without a golden file.",
               "Structural counts (fragments, acks, messages) are "
               "analytic; interleaving-dependent counts (polls, "
               "out-of-order arrivals) are realized, as in X1."};
    e.runPoint = [](std::size_t pi) {
        static constexpr Substrate substrates[] = {
            Substrate::Cm5, Substrate::Cr, Substrate::Rdma,
            Substrate::Nicam};
        const Substrate sub = substrates[pi];
        std::vector<Row> rows;

        // Traffic grid: 5 patterns x 3 protocols, 9 nodes, 5
        // messages of 5 words (3 fragments), jitter 3 so the
        // unordered fabrics realize reordering.
        static constexpr TrafficPattern patterns[] = {
            TrafficPattern::UniformRandom, TrafficPattern::Permutation,
            TrafficPattern::Hotspot, TrafficPattern::Incast,
            TrafficPattern::AllToAll};
        static constexpr TrafficProto protos[] = {
            TrafficProto::Am, TrafficProto::Seq, TrafficProto::Acked};
        for (const TrafficPattern pattern : patterns) {
            for (const TrafficProto proto : protos) {
                TrafficSpec spec;
                spec.pattern = pattern;
                spec.proto = proto;
                spec.nodes = 9;
                spec.messagesPerNode = 5;
                spec.sizeWords = 5;
                spec.seed = 1 + pi;
                spec.maxJitter = 3;
                Stack stack(trafficStackConfig(spec, sub));
                TrafficEngine engine(stack);
                const TrafficResult res = engine.run(spec);
                const TrafficPrediction pred =
                    predictTraffic(res.shape);

                bool ok = res.ok;
                for (int f = 0; f < numPaperFeatures; ++f) {
                    const CatCost &p = pred.feature[f];
                    const CatCost &m = res.measured[f];
                    ok = ok && w1Agree(p.reg, m.reg) &&
                         w1Agree(p.mem, m.mem) &&
                         w1Agree(p.dev, m.dev);
                }
                // The reliable, in-order fabrics must realize the
                // paper's "overheads vanish" argument: no reorder
                // stash activity, no fabric retransmissions.
                if (sub == Substrate::Cr || sub == Substrate::Rdma)
                    ok = ok && res.shape.ooo == 0 &&
                         res.hwRetries == 0;
                // Structural counts are analytic.
                const std::uint64_t wantFrags =
                    9ull * 5 * spec.fragmentsPerMessage();
                ok = ok && res.shape.fragmentsSent == wantFrags;
                if (proto == TrafficProto::Acked)
                    ok = ok && res.shape.acksSent == 9ull * 5;

                rows.push_back(
                    {T(toString(sub)), T(toString(pattern)),
                     T(toString(proto)),
                     I(res.shape.fragmentsSent),
                     R(pred.grandTotal()),
                     R(res.measuredGrandTotal()),
                     R(res.measuredGrandTotal() -
                       pred.grandTotal()),
                     okCell(ok)});
            }
        }

        // Collective algorithms: allreduce on 8 nodes (power of two
        // for recursive doubling), message counts analytic.
        static const char *algos[] = {"tree", "ring", "rd"};
        for (const char *name : algos) {
            Collectives::Algo algo;
            algoFromString(name, algo);
            StackConfig cfg;
            cfg.substrate = sub;
            cfg.nodes = 8;
            cfg.seed = 11 + pi;
            Stack stack(cfg);
            Collectives coll(stack);
            std::vector<Word> in(8), out;
            Word want = 0;
            for (std::uint32_t i = 0; i < 8; ++i) {
                in[i] = 10 * i + 3;
                want += in[i];
            }
            const auto res = coll.allReduce(
                Collectives::ReduceOp::Sum, in, out, algo);

            CollShape shape;
            shape.messages = res.messages;
            shape.delivered = res.messages;
            shape.polls = res.polls;
            const double predicted =
                predictCollective(shape).grandTotal();
            const double measured =
                static_cast<double>(res.instructions);

            bool ok = res.ok && w1Agree(predicted, measured) &&
                      res.messages == expectedCollMessages(name, 8);
            for (Word v : out)
                ok = ok && v == want;

            rows.push_back({T(toString(sub)), T("allreduce"),
                            T(name), I(res.messages), R(predicted),
                            R(measured), R(measured - predicted),
                            okCell(ok)});
        }
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// F1 — the per-feature wire bill: the framed multi-stream transport
// (src/wire) on every substrate, clean and under deterministic CRC
// corruption.  The Framing column is the wire layer's own cost
// (marshal + COBS + CRC + mux), charged outside the four paper
// features so every classic table is untouched; on rdma the NIC
// does the framing inline and the column collapses to descriptor
// handling.
// ------------------------------------------------------------------

Experiment
makeF1()
{
    Experiment e;
    e.name = "F1";
    e.title = "Wire framing bill: per-feature instruction counts of "
              "the framed multi-stream transport on each substrate, "
              "clean and under CRC corruption";
    e.columns = {"substrate", "run", "framing", "base", "buffer",
                 "in-order", "fault-tol", "framed B", "delivered",
                 "crc rej", "retx", "stalls", "total", "check"};
    e.points = {"cm5", "cr", "rdma", "nicam"};
    e.notes = {"The multi-stream workload: 4 streams x 8 frames of "
               "6 words, window 4, riding one persistent channel "
               "pair through the normal CMAM/Accounting path.",
               "'framing' is Feature::Framing — appended after the "
               "paper features, so paperTotal() and every classic "
               "golden stay byte-identical; 'total' adds it on top.",
               "The corrupt run flips every 3rd DATA frame's CRC "
               "before transmit; the receiver's frame decoder "
               "rejects, the sequence gap dup-acks, and the wire "
               "timeout model resends — all counts deterministic.",
               "On rdma framing collapses to descriptor handling "
               "(the NIC gathers, stuffs and checksums inline): the "
               "differential's 'vanishes' row, golden-pinned here."};
    e.runPoint = [](std::size_t pi) {
        static constexpr Substrate subs[] = {
            Substrate::Cm5, Substrate::Cr, Substrate::Rdma,
            Substrate::Nicam};
        std::vector<Row> rows;
        for (const int corrupt : {0, 3}) {
            StackConfig cfg;
            cfg.substrate = subs[pi];
            cfg.nodes = 4;
            cfg.dataWords = 4;
            Stack stack(cfg);
            wire::WireWorkload w;
            w.corruptEvery = static_cast<std::uint32_t>(corrupt);
            const wire::WireRunResult res =
                wire::runWireWorkload(stack, w);
            const auto &c = res.run.counts;
            const std::uint64_t framing =
                c.featureTotal(Feature::Framing);
            rows.push_back(
                {T(toString(cfg.substrate)),
                 T(corrupt ? "corrupt" : "clean"), I(framing),
                 paperCount(c.featureTotal(Feature::BaseCost)),
                 paperCount(c.featureTotal(Feature::BufferMgmt)),
                 paperCount(
                     c.featureTotal(Feature::InOrderDelivery)),
                 paperCount(
                     c.featureTotal(Feature::FaultTolerance)),
                 I(res.wire.framedBytes),
                 I(res.wire.dataDelivered), paperCount(res.crcRejects),
                 paperCount(res.wire.wireRetransmits),
                 paperCount(res.wire.windowStalls),
                 I(c.paperTotal() + framing),
                 okCell(res.run.dataOk)});
        }
        return rows;
    };
    return e;
}

// ------------------------------------------------------------------
// O1 — time-series telemetry: the canonical congestion scenarios run
// twice, bare and with the sampler attached.  The golden pins (a)
// every simulation result — ticks, completions, backpressure,
// instructions, latency percentiles — which must be bit-identical
// sampler on or off (the zero-perturbation contract, folded into the
// check cell), and (b) the sampler's full track bytes via
// tracksDigest(), so any drift in probe coverage, sample instants or
// serialization shows up as a golden diff.
// ------------------------------------------------------------------

Experiment
makeO1()
{
    Experiment e;
    e.name = "O1";
    e.title = "Time-series telemetry: congestion scenarios sampled "
              "and bare, with bottleneck attribution and golden-"
              "pinned track bytes";
    e.columns = {"scenario", "substrate", "ticks", "completions",
                 "backpressure", "instr", "lat p50", "lat p99",
                 "tracks", "snapshots", "sat win", "top bottleneck",
                 "digest", "check"};
    e.points = {"incast-cm5", "incast-rdma", "wire-cm5"};
    e.notes = {"Each point runs its scenario twice — without and "
               "with a TeleSession attached (period 16) — and the "
               "check cell fails unless every simulation-result "
               "field matches exactly: attaching the sampler must "
               "not perturb the run.",
               "'top bottleneck' is the attribution report's "
               "verdict: the incast names the destination NI recv "
               "ring on cm5 and CQ-depth backpressure on rdma; the "
               "wire run names a stream send window.",
               "'digest' hashes the canonical track serialization "
               "(every sample of every track), pinning the sampled "
               "series byte-for-byte."};
    e.runPoint = [](std::size_t pi) {
        static const char *kScen[] = {"incast", "incast", "wire"};
        static constexpr Substrate kSub[] = {
            Substrate::Cm5, Substrate::Rdma, Substrate::Cm5};
        tele::ScenarioOptions opt;
        opt.scenario = kScen[pi];
        opt.substrate = kSub[pi];
        const tele::ScenarioResult bare =
            tele::runScenario(opt, nullptr);
        tele::TeleSession sampler(
            {opt.period, opt.ringCapacity});
        const tele::ScenarioResult sampled =
            tele::runScenario(opt, &sampler);

        const bool unperturbed =
            bare.ok == sampled.ok &&
            bare.elapsed == sampled.elapsed &&
            bare.instrTotal == sampled.instrTotal &&
            bare.completions == sampled.completions &&
            bare.backpressure == sampled.backpressure &&
            bare.latencyP50 == sampled.latencyP50 &&
            bare.latencyP95 == sampled.latencyP95 &&
            bare.latencyP99 == sampled.latencyP99;
        const bool ok = sampled.ok && unperturbed &&
                        !sampled.topResource.empty() &&
                        sampled.saturatedWindows > 0;

        std::vector<Row> rows;
        rows.push_back(
            {T(kScen[pi]), T(toString(kSub[pi])),
             I(sampled.elapsed), I(sampled.completions),
             I(sampled.backpressure), R(sampled.instrTotal),
             R(sampled.latencyP50), R(sampled.latencyP99),
             I(sampled.trackCount), I(sampled.snapshots),
             I(sampled.saturatedWindows),
             T(sampled.topResource.empty() ? "-"
                                           : sampled.topResource),
             T(sampled.digest), okCell(ok)});
        return rows;
    };
    return e;
}

void
registerBuiltins(ExperimentRegistry &reg)
{
    reg.add(makeT1());
    reg.add(makeT2a());
    reg.add(makeT2b());
    reg.add(makeT3());
    reg.add(makeF6());
    reg.add(makeF8());
    reg.add(makeD1());
    reg.add(makeD2());
    reg.add(makeA1());
    reg.add(makeX1());
    reg.add(makeX2());
    reg.add(makeX3a());
    reg.add(makeX3b());
    reg.add(makeX4a());
    reg.add(makeX4b());
    reg.add(makeX5());
    reg.add(makeX6());
    reg.add(makeX7());
    reg.add(makeX8());
    reg.add(makeX9());
    reg.add(makeX10());
    reg.add(makeS1());
    reg.add(makeC1());
    reg.add(makeP1());
    reg.add(makeP2());
    reg.add(makeM1());
    reg.add(makeH1());
    reg.add(makeW1());
    reg.add(makeF1());
    reg.add(makeO1());
}

} // namespace

ExperimentRegistry &
builtinRegistry()
{
    static ExperimentRegistry reg = [] {
        ExperimentRegistry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

} // namespace msgsim::lab

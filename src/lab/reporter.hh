/**
 * @file
 * Rendering and artifact emission for sweep results: markdown to a
 * stream, CSV / JSON files per experiment into an output directory.
 */

#ifndef MSGSIM_LAB_REPORTER_HH
#define MSGSIM_LAB_REPORTER_HH

#include <string>
#include <vector>

#include "lab/result_table.hh"

namespace msgsim::lab
{

/**
 * Renders ResultTables and writes per-experiment artifacts.
 */
class Reporter
{
  public:
    /** Markdown rendering of every table, separated by blank lines. */
    static std::string markdown(const std::vector<ResultTable> &tables);

    /**
     * Write `<dir>/<name>.json` for each table (creating @p dir).
     * Returns the paths written; fatal on I/O failure.
     */
    static std::vector<std::string>
    writeJson(const std::string &dir,
              const std::vector<ResultTable> &tables);

    /** Write `<dir>/<name>.csv` for each table (creating @p dir). */
    static std::vector<std::string>
    writeCsv(const std::string &dir,
             const std::vector<ResultTable> &tables);

    /** Write one file; fatal on failure. */
    static void writeFile(const std::string &path,
                          const std::string &content);
};

} // namespace msgsim::lab

#endif // MSGSIM_LAB_REPORTER_HH

/**
 * @file
 * Rendering and artifact emission for sweep results: markdown to a
 * stream, CSV / JSON files per experiment into an output directory.
 */

#ifndef MSGSIM_LAB_REPORTER_HH
#define MSGSIM_LAB_REPORTER_HH

#include <string>
#include <vector>

#include "lab/result_table.hh"

namespace msgsim::lab
{

/**
 * Renders ResultTables and writes per-experiment artifacts.
 */
class Reporter
{
  public:
    /** Markdown rendering of every table, separated by blank lines. */
    static std::string markdown(const std::vector<ResultTable> &tables);

    /**
     * Write `<dir>/<name>.json` for each table (creating @p dir).
     * Returns the paths written; fatal on I/O failure.
     */
    static std::vector<std::string>
    writeJson(const std::string &dir,
              const std::vector<ResultTable> &tables);

    /** Write `<dir>/<name>.csv` for each table (creating @p dir). */
    static std::vector<std::string>
    writeCsv(const std::string &dir,
             const std::vector<ResultTable> &tables);

    /** Write one file; fatal on failure. */
    static void writeFile(const std::string &path,
                          const std::string &content);

    /**
     * Append @p table as a labelled entry to the perf-trajectory
     * file at @p path, preserving every prior entry:
     *
     *     { "bench": "msgsim perf trajectory",
     *       "entries": [ { "label": ..., "experiment": ..., ... } ] }
     *
     * A pre-trajectory file holding one bare ResultTable document is
     * migrated into the first entry.  An existing entry with the
     * same (experiment, label) is replaced in place, so repeated
     * verify runs keep one entry per labelled source instead of
     * growing without bound.
     */
    static void appendBench(const std::string &path,
                            const ResultTable &table,
                            const std::string &label);
};

} // namespace msgsim::lab

#endif // MSGSIM_LAB_REPORTER_HH

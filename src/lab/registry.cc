#include "lab/registry.hh"

#include "sim/log.hh"

namespace msgsim::lab
{

bool
globMatch(const std::string &pattern, const std::string &str)
{
    // Classic iterative wildcard match with backtracking on '*'.
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < str.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == str[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

void
ExperimentRegistry::add(Experiment e)
{
    if (find(e.name))
        msgsim_fatal("duplicate experiment name: ", e.name);
    if (!e.runPoint)
        msgsim_fatal("experiment ", e.name, " has no run function");
    if (e.points.empty())
        msgsim_fatal("experiment ", e.name, " has no grid points");
    experiments_.push_back(std::move(e));
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    for (const auto &e : experiments_)
        if (e.name == name)
            return &e;
    return nullptr;
}

std::vector<const Experiment *>
ExperimentRegistry::match(const std::string &glob) const
{
    std::vector<const Experiment *> out;
    for (const auto &e : experiments_)
        if (globMatch(glob, e.name))
            out.push_back(&e);
    return out;
}

} // namespace msgsim::lab

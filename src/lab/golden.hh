/**
 * @file
 * Golden-cell regression gating: compare a ResultTable against the
 * checked-in `lab/golden/<name>.json` document that pins every
 * recovered paper cell, and report mismatches precisely enough to
 * act on ("which cell, expected what, got what").
 *
 * Integer cells (instruction counts, packet counts) must match
 * exactly; real cells (overhead fractions, ratios) match within a
 * small relative tolerance so golden files stay robust to printf
 * round-tripping; text and null cells must match exactly.
 */

#ifndef MSGSIM_LAB_GOLDEN_HH
#define MSGSIM_LAB_GOLDEN_HH

#include <string>
#include <vector>

#include "lab/result_table.hh"

namespace msgsim::lab
{

/** Outcome of checking one table. */
struct GoldenReport
{
    bool ok = false;
    bool missing = false; ///< no golden file for this experiment
    std::vector<std::string> mismatches;
};

/**
 * Loads golden documents from a directory and diffs tables against
 * them.
 */
class GoldenChecker
{
  public:
    /** Relative tolerance for real-valued cells. */
    static constexpr double realTolerance = 1e-9;

    explicit GoldenChecker(std::string goldenDir)
        : dir_(std::move(goldenDir))
    {
    }

    /** Check @p table against `<dir>/<table.name>.json`. */
    GoldenReport check(const ResultTable &table) const;

    /**
     * Diff @p table against an already-parsed golden document
     * (exposed separately for tests of the mismatch reporting).
     */
    static GoldenReport compare(const Json &golden,
                                const ResultTable &table);

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace msgsim::lab

#endif // MSGSIM_LAB_GOLDEN_HH

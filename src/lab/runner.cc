#include "lab/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/log.hh"

namespace msgsim::lab
{

namespace
{

/** One schedulable unit: a single grid point of one experiment. */
struct Task
{
    std::size_t expIndex;
    std::size_t pointIndex;
};

} // namespace

std::vector<ResultTable>
SweepRunner::run(const std::vector<const Experiment *> &selection)
{
    const auto t0 = std::chrono::steady_clock::now();
    stats_ = {};
    stats_.experiments = selection.size();

    // Flatten the grid into tasks and pre-assign result slots so
    // completion order cannot affect merge order.
    std::vector<Task> tasks;
    std::vector<std::vector<std::vector<Row>>> slots(selection.size());
    for (std::size_t e = 0; e < selection.size(); ++e) {
        slots[e].resize(selection[e]->points.size());
        for (std::size_t p = 0; p < selection[e]->points.size(); ++p)
            tasks.push_back({e, p});
    }

    std::atomic<std::size_t> next{0};
    std::mutex errMutex;
    std::exception_ptr firstError;
    std::mutex progressMutex;

    auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            const Task &task = tasks[i];
            const Experiment &exp = *selection[task.expIndex];
            try {
                slots[task.expIndex][task.pointIndex] =
                    exp.runPoint(task.pointIndex);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
                return;
            }
            if (opts_.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                std::fprintf(stderr, "  [%zu/%zu] %s / %s\n", i + 1,
                             tasks.size(), exp.name.c_str(),
                             exp.points[task.pointIndex].c_str());
            }
        }
    };

    const int jobs = opts_.jobs < 1 ? 1 : opts_.jobs;
    if (jobs == 1 || tasks.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        const std::size_t n =
            std::min(static_cast<std::size_t>(jobs), tasks.size());
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    // Deterministic merge: experiments in selection order, points in
    // grid order.
    std::vector<ResultTable> tables;
    tables.reserve(selection.size());
    for (std::size_t e = 0; e < selection.size(); ++e) {
        ResultTable table = selection[e]->shell();
        for (auto &pointRows : slots[e]) {
            for (auto &row : pointRows)
                table.addRow(std::move(row));
            stats_.pointsRun += 1;
        }
        stats_.rowsEmitted += table.rows.size();
        tables.push_back(std::move(table));
    }
    stats_.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return tables;
}

} // namespace msgsim::lab

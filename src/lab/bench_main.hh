/**
 * @file
 * Shared main() for the thin bench wrappers: each bench_* binary
 * names the experiments it fronts and delegates selection, running,
 * and rendering to the lab engine, so the paper tables have exactly
 * one implementation.
 */

#ifndef MSGSIM_LAB_BENCH_MAIN_HH
#define MSGSIM_LAB_BENCH_MAIN_HH

#include <string>
#include <vector>

namespace msgsim::lab
{

/**
 * Run the named registered experiments sequentially and print their
 * markdown tables; honours the PR 1 observability flags
 * (`--trace-out=`, `--metrics-out=`) via obs::parseArgs.  Returns a
 * process exit status.
 */
int labBenchMain(int argc, char **argv,
                 const std::vector<std::string> &names);

} // namespace msgsim::lab

#endif // MSGSIM_LAB_BENCH_MAIN_HH

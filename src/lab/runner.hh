/**
 * @file
 * Parallel sweep execution over (experiment, grid-point) tasks.
 *
 * Every grid point is an independent seeded simulation, so points run
 * concurrently on a thread pool.  Results land in pre-assigned slots
 * and are merged in registration/grid order, which makes the output
 * byte-identical across `-j` values — the property the determinism
 * regression test pins.
 */

#ifndef MSGSIM_LAB_RUNNER_HH
#define MSGSIM_LAB_RUNNER_HH

#include <cstdint>
#include <vector>

#include "lab/experiment.hh"

namespace msgsim::lab
{

/** Sweep-execution options. */
struct SweepOptions
{
    int jobs = 1;        ///< worker threads (1 = run inline)
    bool progress = false; ///< print one line per finished point
};

/** Aggregate statistics of one sweep. */
struct SweepStats
{
    std::uint64_t experiments = 0;
    std::uint64_t pointsRun = 0;
    std::uint64_t rowsEmitted = 0;
    double wallMs = 0.0; ///< host wall-clock of the whole sweep
};

/**
 * Executes selected experiments' grid points on a thread pool and
 * assembles one ResultTable per experiment.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const SweepOptions &opts) : opts_(opts) {}

    /**
     * Run every point of every experiment in @p selection.
     * Returns the assembled tables in selection order.
     */
    std::vector<ResultTable>
    run(const std::vector<const Experiment *> &selection);

    /** Statistics of the last run() call. */
    const SweepStats &stats() const { return stats_; }

  private:
    SweepOptions opts_;
    SweepStats stats_;
};

} // namespace msgsim::lab

#endif // MSGSIM_LAB_RUNNER_HH

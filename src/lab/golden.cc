#include "lab/golden.hh"

#include <cmath>
#include <fstream>
#include <sstream>

namespace msgsim::lab
{

namespace
{

/** Render one cell for a mismatch message. */
std::string
show(const Cell &c)
{
    switch (c.kind) {
      case Cell::Kind::Null:
        return "null";
      case Cell::Kind::Text:
        return "\"" + c.s + "\"";
      default:
        return c.str();
    }
}

bool
cellsEqual(const Cell &want, const Cell &got)
{
    if (want.kind != got.kind)
        return false;
    switch (want.kind) {
      case Cell::Kind::Null:
        return true;
      case Cell::Kind::Int:
        return want.i == got.i;
      case Cell::Kind::Real: {
        const double scale =
            std::max(std::abs(want.r), std::abs(got.r));
        return std::abs(want.r - got.r) <=
               GoldenChecker::realTolerance * std::max(scale, 1.0);
      }
      case Cell::Kind::Text:
        return want.s == got.s;
    }
    return false;
}

} // namespace

GoldenReport
GoldenChecker::compare(const Json &golden, const ResultTable &table)
{
    GoldenReport rep;
    auto mismatch = [&](const std::string &msg) {
        rep.mismatches.push_back(table.name + ": " + msg);
    };

    const Json *cols = golden.find("columns");
    const Json *rows = golden.find("rows");
    if (!cols || !rows) {
        mismatch("golden document lacks 'columns'/'rows'");
        return rep;
    }

    if (cols->size() != table.columns.size()) {
        mismatch("column count: golden " +
                 std::to_string(cols->size()) + ", got " +
                 std::to_string(table.columns.size()));
    } else {
        for (std::size_t c = 0; c < table.columns.size(); ++c) {
            if (cols->at(c).asString() != table.columns[c])
                mismatch("column " + std::to_string(c) +
                         ": golden '" + cols->at(c).asString() +
                         "', got '" + table.columns[c] + "'");
        }
    }

    if (rows->size() != table.rows.size())
        mismatch("row count: golden " + std::to_string(rows->size()) +
                 ", got " + std::to_string(table.rows.size()));

    const std::size_t nrows =
        std::min(static_cast<std::size_t>(rows->size()),
                 table.rows.size());
    for (std::size_t r = 0; r < nrows; ++r) {
        const Json &grow = rows->at(r);
        const Row &trow = table.rows[r];
        if (grow.size() != trow.size()) {
            mismatch("row " + std::to_string(r) +
                     ": cell count golden " +
                     std::to_string(grow.size()) + ", got " +
                     std::to_string(trow.size()));
            continue;
        }
        // A leading text cell is the row's label; use it to make
        // mismatch messages self-locating.
        std::string label;
        if (!trow.empty() && trow[0].kind == Cell::Kind::Text)
            label = " ('" + trow[0].s + "')";
        for (std::size_t c = 0; c < trow.size(); ++c) {
            const Cell want = Cell::fromJson(grow.at(c));
            if (cellsEqual(want, trow[c]))
                continue;
            const std::string colName =
                c < table.columns.size() ? table.columns[c]
                                         : std::to_string(c);
            mismatch("row " + std::to_string(r) + label +
                     ", column '" + colName + "': golden " +
                     show(want) + ", got " + show(trow[c]));
        }
    }

    rep.ok = rep.mismatches.empty();
    return rep;
}

GoldenReport
GoldenChecker::check(const ResultTable &table) const
{
    GoldenReport rep;
    const std::string path = dir_ + "/" + table.name + ".json";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        rep.missing = true;
        rep.mismatches.push_back(table.name +
                                 ": no golden file at " + path);
        return rep;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    Json golden;
    std::string err;
    if (!Json::parse(ss.str(), golden, &err)) {
        rep.mismatches.push_back(table.name + ": unparseable golden " +
                                 path + " (" + err + ")");
        return rep;
    }
    return compare(golden, table);
}

} // namespace msgsim::lab

#include "lab/result_table.hh"

#include <cstdio>

#include "sim/log.hh"

namespace msgsim::lab
{

std::string
Cell::str() const
{
    switch (kind) {
      case Kind::Null:
        return "-";
      case Kind::Int:
        return std::to_string(i);
      case Kind::Real: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", r);
        return buf;
      }
      case Kind::Text:
        return s;
    }
    return "-";
}

Json
Cell::toJson() const
{
    switch (kind) {
      case Kind::Null:
        return Json();
      case Kind::Int:
        return Json(i);
      case Kind::Real:
        return Json(r);
      case Kind::Text:
        return Json(s);
    }
    return Json();
}

Cell
Cell::fromJson(const Json &j)
{
    switch (j.kind()) {
      case Json::Kind::Null:
        return Cell::null();
      case Json::Kind::Int:
        return Cell::integer(static_cast<std::uint64_t>(j.asInt()));
      case Json::Kind::Real:
        return Cell::real(j.asReal());
      case Json::Kind::String:
        return Cell::text(j.asString());
      default:
        msgsim_fatal("golden cell is not a scalar: ", j.dump());
    }
}

void
ResultTable::addRow(Row row)
{
    if (row.size() != columns.size())
        msgsim_panic("ResultTable '", name, "': row has ", row.size(),
                     " cells, table has ", columns.size(), " columns");
    rows.push_back(std::move(row));
}

std::string
ResultTable::markdown() const
{
    std::string out = "### " + name + " — " + title + "\n\n";
    out += "|";
    for (const auto &c : columns)
        out += " " + c + " |";
    out += "\n|";
    for (std::size_t i = 0; i < columns.size(); ++i)
        out += "---|";
    out += "\n";
    for (const auto &row : rows) {
        out += "|";
        for (const auto &cell : row)
            out += " " + cell.str() + " |";
        out += "\n";
    }
    for (const auto &n : notes)
        out += "\n> " + n + "\n";
    return out;
}

std::string
ResultTable::csv() const
{
    auto field = [](const std::string &v) {
        if (v.find_first_of(",\"\n") == std::string::npos)
            return v;
        std::string q = "\"";
        for (char c : v) {
            if (c == '"')
                q += '"';
            q += c;
        }
        q += '"';
        return q;
    };
    std::string out;
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out += ",";
        out += field(columns[i]);
    }
    out += "\n";
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ",";
            out += field(row[i].str());
        }
        out += "\n";
    }
    return out;
}

Json
ResultTable::toJson() const
{
    Json doc = Json::object();
    doc.set("experiment", name);
    doc.set("title", title);
    Json cols = Json::array();
    for (const auto &c : columns)
        cols.push(Json(c));
    doc.set("columns", std::move(cols));
    Json jrows = Json::array();
    for (const auto &row : rows) {
        Json jrow = Json::array();
        for (const auto &cell : row)
            jrow.push(cell.toJson());
        jrows.push(std::move(jrow));
    }
    doc.set("rows", std::move(jrows));
    Json jnotes = Json::array();
    for (const auto &n : notes)
        jnotes.push(Json(n));
    doc.set("notes", std::move(jnotes));
    return doc;
}

std::string
ResultTable::jsonText() const
{
    return toJson().dump(2);
}

} // namespace msgsim::lab

/**
 * @file
 * Central experiment registry: ordered, name-unique, glob-selectable.
 *
 * Registration order is significant — it is the order experiments
 * run and report in, so `msgsim-lab --all` output is stable across
 * builds and thread counts.
 */

#ifndef MSGSIM_LAB_REGISTRY_HH
#define MSGSIM_LAB_REGISTRY_HH

#include <string>
#include <vector>

#include "lab/experiment.hh"

namespace msgsim::lab
{

/** Case-sensitive glob match supporting '*' and '?'. */
bool globMatch(const std::string &pattern, const std::string &str);

/**
 * An ordered collection of experiments.
 */
class ExperimentRegistry
{
  public:
    /** Register @p e; fatal on a duplicate name. */
    void add(Experiment e);

    /** All experiments, in registration order. */
    const std::vector<Experiment> &all() const { return experiments_; }

    /** Lookup by exact name; nullptr when absent. */
    const Experiment *find(const std::string &name) const;

    /** All experiments whose name matches @p glob, in order. */
    std::vector<const Experiment *>
    match(const std::string &glob) const;

  private:
    std::vector<Experiment> experiments_;
};

/**
 * The registry holding the built-in E-index experiments, populated
 * on first use (definitions live in experiments.cc).
 */
ExperimentRegistry &builtinRegistry();

} // namespace msgsim::lab

#endif // MSGSIM_LAB_REGISTRY_HH

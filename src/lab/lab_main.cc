/**
 * @file
 * msgsim-lab: the experiment-engine CLI.
 *
 *   msgsim-lab --list                      show the catalog
 *   msgsim-lab --all [-j N]                run every deterministic experiment
 *   msgsim-lab --filter=GLOB [...]         select by name glob (repeatable)
 *   msgsim-lab T1 T2a [...]                select by exact name
 *   msgsim-lab --json-out=DIR              write <DIR>/<name>.json artifacts
 *   msgsim-lab --csv-out=DIR               write <DIR>/<name>.csv artifacts
 *   msgsim-lab --check-golden              gate against lab/golden/*.json
 *   msgsim-lab --golden-dir=DIR            alternate golden directory
 *   msgsim-lab --bench-out=FILE            run P1, write throughput JSON
 *   msgsim-lab --quiet / --progress        output volume control
 *
 * PR 1's observability flags (--trace-out=, --metrics-out=) are also
 * honoured; tracing forces -j 1 because the trace session hooks into
 * process-global state.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lab/golden.hh"
#include "lab/registry.hh"
#include "lab/reporter.hh"
#include "lab/runner.hh"
#include "sim/metrics.hh"
#include "sim/obs_cli.hh"

namespace
{

using namespace msgsim;
using namespace msgsim::lab;

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: msgsim-lab [options] [EXPERIMENT...]\n"
        "\n"
        "selection:\n"
        "  --list             list registered experiments and exit\n"
        "  --all              select every deterministic experiment\n"
        "  --filter=GLOB      select experiments matching GLOB ('*', '?');\n"
        "                     repeatable, union of matches\n"
        "  EXPERIMENT         exact experiment name (e.g. T1, X4a)\n"
        "\n"
        "execution:\n"
        "  -j N               run grid points on N worker threads\n"
        "                     (output is byte-identical for any N)\n"
        "  --progress         print one line per finished point (stderr)\n"
        "\n"
        "artifacts:\n"
        "  --json-out=DIR     write <DIR>/<name>.json per experiment\n"
        "  --csv-out=DIR      write <DIR>/<name>.csv per experiment\n"
        "  --check-golden     diff results against golden files; exit 1\n"
        "                     on any mismatch\n"
        "  --golden-dir=DIR   golden directory (default: lab/golden)\n"
        "  --bench-out=FILE   run the P1 throughput micro-benchmark and\n"
        "                     append a labelled entry to the FILE\n"
        "                     trajectory (prior entries preserved)\n"
        "  --bench-label=L    trajectory entry label (default: p1)\n"
        "  --quiet            suppress the markdown report on stdout\n"
        "\n"
        "observability (PR 1):\n"
        "  --trace-out=FILE   Chrome trace-event timeline (forces -j 1)\n"
        "  --metrics-out=FILE metrics registry dump\n",
        out);
}

struct CliOptions
{
    bool list = false;
    bool all = false;
    bool checkGolden = false;
    bool quiet = false;
    bool progress = false;
    int jobs = 1;
    std::string jsonOut;
    std::string csvOut;
    std::string benchOut;
    std::string benchLabel = "p1";
    std::string goldenDir = "lab/golden";
    std::vector<std::string> filters;
    std::vector<std::string> names;
};

bool
parseCli(int argc, char **argv, CliOptions &cli)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--list") {
            cli.list = true;
        } else if (arg == "--all") {
            cli.all = true;
        } else if (arg == "--check-golden") {
            cli.checkGolden = true;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--progress") {
            cli.progress = true;
        } else if (arg.rfind("--filter=", 0) == 0) {
            cli.filters.push_back(valueOf("--filter="));
        } else if (arg.rfind("--json-out=", 0) == 0) {
            cli.jsonOut = valueOf("--json-out=");
        } else if (arg.rfind("--csv-out=", 0) == 0) {
            cli.csvOut = valueOf("--csv-out=");
        } else if (arg.rfind("--golden-dir=", 0) == 0) {
            cli.goldenDir = valueOf("--golden-dir=");
        } else if (arg.rfind("--bench-out=", 0) == 0) {
            cli.benchOut = valueOf("--bench-out=");
        } else if (arg.rfind("--bench-label=", 0) == 0) {
            cli.benchLabel = valueOf("--bench-label=");
        } else if (arg == "-j") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: -j needs a value\n");
                return false;
            }
            cli.jobs = std::atoi(argv[++i]);
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            cli.jobs = std::atoi(arg.c_str() + 2);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return false;
        } else {
            cli.names.push_back(arg);
        }
    }
    if (cli.jobs < 1) {
        std::fprintf(stderr, "error: -j must be >= 1\n");
        return false;
    }
    return true;
}

/** Build the selection, preserving registration order, no duplicates. */
std::vector<const Experiment *>
select(const ExperimentRegistry &reg, const CliOptions &cli,
       bool &selectionError)
{
    selectionError = false;
    std::vector<const Experiment *> out;
    auto want = [&](const Experiment &e) {
        if (cli.all && e.deterministic)
            return true;
        for (const auto &g : cli.filters)
            if (globMatch(g, e.name))
                return true;
        for (const auto &n : cli.names)
            if (n == e.name)
                return true;
        return false;
    };
    for (const auto &e : reg.all())
        if (want(e))
            out.push_back(&e);

    // Names and filters that select nothing are user errors.
    for (const auto &n : cli.names) {
        if (!reg.find(n)) {
            std::fprintf(stderr,
                         "error: experiment '%s' is not registered "
                         "(see --list)\n",
                         n.c_str());
            selectionError = true;
        }
    }
    for (const auto &g : cli.filters) {
        if (reg.match(g).empty()) {
            std::fprintf(stderr,
                         "error: --filter=%s matches no experiment\n",
                         g.c_str());
            selectionError = true;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto obsOpts = obs::parseArgs(argc, argv);
    obs::Scope scope(obsOpts);

    CliOptions cli;
    if (!parseCli(argc, argv, cli))
        return 2;

    ExperimentRegistry &reg = builtinRegistry();

    if (cli.list) {
        for (const auto &e : reg.all())
            std::printf("%-5s %3zu point%s %s %s\n", e.name.c_str(),
                        e.points.size(),
                        e.points.size() == 1 ? " " : "s",
                        e.deterministic ? " " : "~", e.title.c_str());
        std::printf("\n('~' marks wall-clock experiments excluded "
                    "from --all and golden gating)\n");
        return 0;
    }

    bool selectionError = false;
    auto selection = select(reg, cli, selectionError);
    if (selectionError)
        return 2;
    if (!cli.benchOut.empty()) {
        const Experiment *p1 = reg.find("P1");
        if (p1 && std::find(selection.begin(), selection.end(), p1) ==
                      selection.end())
            selection.push_back(p1);
    }
    if (selection.empty()) {
        std::fprintf(stderr, "error: nothing selected — use --all, "
                             "--filter=GLOB, or experiment names\n");
        usage(stderr);
        return 2;
    }

    SweepOptions opts;
    opts.jobs = cli.jobs;
    opts.progress = cli.progress;
    if (scope.tracing() && opts.jobs > 1) {
        std::fprintf(stderr, "msgsim-lab: tracing attaches "
                             "process-global hooks; forcing -j 1\n");
        opts.jobs = 1;
    }

    SweepRunner runner(opts);
    const auto tables = runner.run(selection);
    const auto &stats = runner.stats();

    // The sweep itself is the subsystem's unit of work: publish its
    // shape to the PR 1 metrics registry (post-sweep — the global
    // registry is not touched by worker threads).
    auto &metrics = MetricsRegistry::global();
    metrics.counter("lab.experiments") += stats.experiments;
    metrics.counter("lab.points_run") += stats.pointsRun;
    metrics.counter("lab.rows_emitted") += stats.rowsEmitted;
    metrics.gauge("lab.sweep_wall_ms") = stats.wallMs;
    metrics.gauge("lab.jobs") = opts.jobs;

    if (!cli.quiet)
        std::fputs(Reporter::markdown(tables).c_str(), stdout);

    if (!cli.jsonOut.empty())
        Reporter::writeJson(cli.jsonOut, tables);
    if (!cli.csvOut.empty())
        Reporter::writeCsv(cli.csvOut, tables);
    if (!cli.benchOut.empty()) {
        for (const auto &t : tables)
            if (t.name == "P1")
                Reporter::appendBench(cli.benchOut, t,
                                      cli.benchLabel);
    }

    int status = 0;
    if (cli.checkGolden) {
        GoldenChecker checker(cli.goldenDir);
        std::uint64_t checked = 0, failed = 0, skipped = 0;
        for (const auto &t : tables) {
            const Experiment *e = reg.find(t.name);
            if (e && (!e->deterministic || e->goldenExempt)) {
                ++skipped; // wall-clock / self-gated: no golden
                continue;
            }
            const auto rep = checker.check(t);
            ++checked;
            if (rep.ok)
                continue;
            ++failed;
            for (const auto &m : rep.mismatches)
                std::fprintf(stderr, "golden: %s\n", m.c_str());
        }
        std::fprintf(stderr,
                     "golden: %llu checked, %llu failed, %llu "
                     "skipped (non-deterministic)\n",
                     static_cast<unsigned long long>(checked),
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(skipped));
        if (failed)
            status = 1;
    }

    std::fprintf(stderr,
                 "lab: %llu experiment(s), %llu point(s), %llu "
                 "row(s) in %.1f ms (-j %d)\n",
                 static_cast<unsigned long long>(stats.experiments),
                 static_cast<unsigned long long>(stats.pointsRun),
                 static_cast<unsigned long long>(stats.rowsEmitted),
                 stats.wallMs, opts.jobs);
    return status;
}

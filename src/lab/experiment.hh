/**
 * @file
 * The experiment abstraction: a named, described, point-gridded unit
 * of measurement whose execution yields rows of a ResultTable.
 *
 * Every entry of the EXPERIMENTS.md E-index (T1, T2a/b, T3, F6, F8,
 * D1, D2, A1, X1–X10) plus the perf-trajectory micro measurement (P1)
 * is registered as one Experiment.  Points of the parameter grid are
 * independent seeded simulations, so the SweepRunner may execute them
 * concurrently; their rows are merged back in grid order, which keeps
 * the assembled table byte-deterministic regardless of parallelism.
 */

#ifndef MSGSIM_LAB_EXPERIMENT_HH
#define MSGSIM_LAB_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "lab/result_table.hh"

namespace msgsim::lab
{

/**
 * One registered experiment.
 */
struct Experiment
{
    std::string name;  ///< E-index key, e.g. "T2a" (unique)
    std::string title; ///< one-line description
    /// False for wall-clock measurements (P1): excluded from golden
    /// checking and from the byte-determinism guarantee.
    bool deterministic = true;
    /// True for experiments that gate themselves (W1's
    /// predicted-vs-measured status column): deterministic — the
    /// byte-identity guarantee still applies — but carrying no golden
    /// file, because the analytic model is the reference.
    bool goldenExempt = false;
    std::vector<std::string> columns;
    /// Labels of the parameter-grid points (size = number of points).
    std::vector<std::string> points;
    /// Run one grid point; returns the rows it contributes.  Must be
    /// self-contained (build its own stacks) and safe to call from a
    /// worker thread concurrently with other points.
    std::function<std::vector<Row>(std::size_t pointIndex)> runPoint;
    std::vector<std::string> notes;

    /** Assemble the table shell (no rows) for this experiment. */
    ResultTable
    shell() const
    {
        ResultTable t;
        t.name = name;
        t.title = title;
        t.columns = columns;
        t.notes = notes;
        return t;
    }
};

} // namespace msgsim::lab

#endif // MSGSIM_LAB_EXPERIMENT_HH

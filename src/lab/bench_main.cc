#include "lab/bench_main.hh"

#include <cstdio>

#include "lab/registry.hh"
#include "lab/reporter.hh"
#include "lab/runner.hh"
#include "sim/obs_cli.hh"

namespace msgsim::lab
{

int
labBenchMain(int argc, char **argv,
             const std::vector<std::string> &names)
{
    auto obsOpts = obs::parseArgs(argc, argv);
    obs::Scope scope(obsOpts);

    ExperimentRegistry &reg = builtinRegistry();
    std::vector<const Experiment *> selection;
    for (const auto &name : names) {
        const Experiment *e = reg.find(name);
        if (!e) {
            std::fprintf(stderr,
                         "error: experiment '%s' is not registered\n",
                         name.c_str());
            return 1;
        }
        selection.push_back(e);
    }

    SweepOptions opts; // sequential: benches are for reading, not racing
    SweepRunner runner(opts);
    const auto tables = runner.run(selection);
    std::fputs(Reporter::markdown(tables).c_str(), stdout);
    return 0;
}

} // namespace msgsim::lab

/**
 * @file
 * The structured result of one experiment: a titled table of typed
 * cells, renderable as markdown, CSV, or JSON.
 *
 * Cells are typed so the JSON artifact preserves exactness:
 * instruction counts stay integers (golden-compared exactly), derived
 * ratios are reals (golden-compared with a tiny relative tolerance),
 * labels are text, and absent paper cells ("–") are nulls.
 */

#ifndef MSGSIM_LAB_RESULT_TABLE_HH
#define MSGSIM_LAB_RESULT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hh"

namespace msgsim::lab
{

// The JSON document model moved down to core (core/json.hh) so
// lower layers (src/check) can use it; these aliases keep the lab's
// historical spelling working.
using msgsim::Json;
using msgsim::jsonEscape;
using msgsim::jsonReal;

/** One typed table cell. */
struct Cell
{
    enum class Kind
    {
        Null,
        Int,
        Real,
        Text,
    };

    Kind kind = Kind::Null;
    std::int64_t i = 0;
    double r = 0.0;
    std::string s;

    Cell() = default;

    static Cell
    integer(std::uint64_t v)
    {
        Cell c;
        c.kind = Kind::Int;
        c.i = static_cast<std::int64_t>(v);
        return c;
    }

    static Cell
    real(double v)
    {
        Cell c;
        c.kind = Kind::Real;
        c.r = v;
        return c;
    }

    static Cell
    text(std::string v)
    {
        Cell c;
        c.kind = Kind::Text;
        c.s = std::move(v);
        return c;
    }

    static Cell null() { return Cell(); }

    /** Human-readable rendering (markdown / CSV). */
    std::string str() const;

    /** JSON value of this cell. */
    Json toJson() const;

    /** Rebuild a cell from its JSON value. */
    static Cell fromJson(const Json &j);
};

/** One row of cells. */
using Row = std::vector<Cell>;

/**
 * A titled, column-named table of results — what every experiment
 * returns and what golden files pin.
 */
struct ResultTable
{
    std::string name;  ///< experiment name (e.g. "T2a")
    std::string title; ///< one-line description
    std::vector<std::string> columns;
    std::vector<Row> rows;
    std::vector<std::string> notes; ///< free-text caveats / context

    /** Append a row; it must match the column count. */
    void addRow(Row row);

    /** Render as a GitHub-flavored markdown table (plus notes). */
    std::string markdown() const;

    /** Render as CSV (notes omitted). */
    std::string csv() const;

    /** Structured JSON document. */
    Json toJson() const;

    /** Pretty-printed, byte-deterministic JSON text. */
    std::string jsonText() const;
};

} // namespace msgsim::lab

#endif // MSGSIM_LAB_RESULT_TABLE_HH

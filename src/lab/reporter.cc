#include "lab/reporter.hh"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "sim/log.hh"

namespace msgsim::lab
{

std::string
Reporter::markdown(const std::vector<ResultTable> &tables)
{
    std::string out;
    for (std::size_t i = 0; i < tables.size(); ++i) {
        if (i)
            out += "\n";
        out += tables[i].markdown();
    }
    return out;
}

void
Reporter::writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        msgsim_fatal("cannot open for writing: ", path);
    out << content;
    if (!out)
        msgsim_fatal("write failed: ", path);
}

namespace
{

std::vector<std::string>
writeAll(const std::string &dir,
         const std::vector<ResultTable> &tables, const char *ext,
         std::string (ResultTable::*render)() const)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        msgsim_fatal("cannot create directory ", dir, ": ",
                     ec.message());
    std::vector<std::string> paths;
    paths.reserve(tables.size());
    for (const auto &t : tables) {
        const std::string path = dir + "/" + t.name + ext;
        Reporter::writeFile(path, (t.*render)());
        paths.push_back(path);
    }
    return paths;
}

} // namespace

std::vector<std::string>
Reporter::writeJson(const std::string &dir,
                    const std::vector<ResultTable> &tables)
{
    return writeAll(dir, tables, ".json", &ResultTable::jsonText);
}

std::vector<std::string>
Reporter::writeCsv(const std::string &dir,
                   const std::vector<ResultTable> &tables)
{
    return writeAll(dir, tables, ".csv", &ResultTable::csv);
}

void
Reporter::appendBench(const std::string &path,
                      const ResultTable &table,
                      const std::string &label)
{
    Json entry = table.toJson();
    // "label" distinguishes trajectory sources (verify refresh,
    // selfprof, ad-hoc dev runs); place it first for readability.
    Json labelled = Json::object();
    labelled.set("label", label);
    for (const auto &[key, value] : entry.members())
        labelled.set(key, value);

    Json entries = Json::array();
    std::ifstream in(path, std::ios::binary);
    if (in) {
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        Json prior;
        std::string error;
        if (!Json::parse(text, prior, &error))
            msgsim_fatal("bench trajectory ", path,
                         " is not valid JSON: ", error);
        if (const Json *list = prior.find("entries")) {
            for (std::size_t i = 0; i < list->size(); ++i)
                entries.push(list->at(i));
        } else if (prior.find("experiment") != nullptr) {
            // Pre-trajectory format: one bare ResultTable document
            // (the PR 5 --bench-out overwrite) becomes the first
            // preserved entry.
            Json migrated = Json::object();
            migrated.set("label", "pre-trajectory snapshot");
            for (const auto &[key, value] : prior.members())
                migrated.set(key, value);
            entries.push(std::move(migrated));
        } else {
            msgsim_fatal("bench trajectory ", path,
                         " has neither \"entries\" nor "
                         "\"experiment\"");
        }
    }

    // Replace in place on a (experiment, label) match; append
    // otherwise.
    Json out = Json::array();
    bool replaced = false;
    auto keyOf = [](const Json &e) {
        const Json *exp = e.find("experiment");
        const Json *lbl = e.find("label");
        return std::pair<std::string, std::string>(
            exp != nullptr ? exp->asString() : "",
            lbl != nullptr ? lbl->asString() : "");
    };
    const auto newKey = keyOf(labelled);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (keyOf(entries.at(i)) == newKey) {
            out.push(labelled);
            replaced = true;
        } else {
            out.push(entries.at(i));
        }
    }
    if (!replaced)
        out.push(std::move(labelled));

    Json doc = Json::object();
    doc.set("bench", "msgsim perf trajectory");
    doc.set("entries", std::move(out));
    writeFile(path, doc.dump(2) + "\n");
}

} // namespace msgsim::lab

#include "lab/reporter.hh"

#include <filesystem>
#include <fstream>

#include "sim/log.hh"

namespace msgsim::lab
{

std::string
Reporter::markdown(const std::vector<ResultTable> &tables)
{
    std::string out;
    for (std::size_t i = 0; i < tables.size(); ++i) {
        if (i)
            out += "\n";
        out += tables[i].markdown();
    }
    return out;
}

void
Reporter::writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        msgsim_fatal("cannot open for writing: ", path);
    out << content;
    if (!out)
        msgsim_fatal("write failed: ", path);
}

namespace
{

std::vector<std::string>
writeAll(const std::string &dir,
         const std::vector<ResultTable> &tables, const char *ext,
         std::string (ResultTable::*render)() const)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        msgsim_fatal("cannot create directory ", dir, ": ",
                     ec.message());
    std::vector<std::string> paths;
    paths.reserve(tables.size());
    for (const auto &t : tables) {
        const std::string path = dir + "/" + t.name + ext;
        Reporter::writeFile(path, (t.*render)());
        paths.push_back(path);
    }
    return paths;
}

} // namespace

std::vector<std::string>
Reporter::writeJson(const std::string &dir,
                    const std::vector<ResultTable> &tables)
{
    return writeAll(dir, tables, ".json", &ResultTable::jsonText);
}

std::vector<std::string>
Reporter::writeCsv(const std::string &dir,
                   const std::vector<ResultTable> &tables)
{
    return writeAll(dir, tables, ".csv", &ResultTable::csv);
}

} // namespace msgsim::lab

#include "prof/profile.hh"

#include <cstdio>
#include <memory>

#include "hlam/hl_stack.hh"
#include "nicam/nicam_stack.hh"
#include "prof/profiler.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/rpc.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"
#include "rdmanet/rdma_stack.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"
#include "wire/wire_run.hh"

namespace msgsim::prof
{

namespace
{

/**
 * The am4 round trip on the CMAM stack: one RPC call (request +
 * reply, both single packets), handler adds one to each word.
 */
RunResult
runAm4Round(Stack &stack)
{
    RunResult res;
    Node &src = stack.node(0);
    Node &dst = stack.node(1);

    RpcEngine rpc(stack);
    const Word proc = 3;
    rpc.registerProcedure(
        1, proc, [](NodeId, const std::vector<Word> &req) {
            std::vector<Word> rep(req);
            for (Word &w : rep)
                w += 1;
            return rep;
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const std::uint64_t dd0 = stack.cmam(1).dispatchOps();
    const Tick t0 = stack.sim().now();

    const std::vector<Word> request{11, 22};
    const std::vector<Word> reply =
        rpc.callSync(0, 1, proc, request);

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.dispatchOps = stack.cmam(1).dispatchOps() - dd0;
    res.elapsed = stack.sim().now() - t0;
    res.packets = 2;
    // The reply packet pads its payload to the fixed packet size;
    // only the request-length prefix is meaningful.
    res.dataOk = reply.size() >= request.size();
    for (std::size_t i = 0; res.dataOk && i < request.size(); ++i)
        if (reply[i] != request[i] + 1)
            res.dataOk = false;
    return res;
}

} // namespace

ProfRun
runProfiled(const ProfConfig &cfg)
{
    if (cfg.protocol != "single" && cfg.protocol != "am4" &&
        cfg.protocol != "xfer" && cfg.protocol != "stream" &&
        cfg.protocol != "wire")
        msgsim_fatal("unknown protocol '", cfg.protocol,
                     "' (single | am4 | xfer | stream | wire)");

    // Fold spans and flows into the caller's timeline when one is
    // attached; otherwise attach a private session for the run.
    std::unique_ptr<TraceSession> privateSession;
    TraceSession *ts = nullptr;
    std::unique_ptr<LineageSession> lineage;
    CostProfiler profiler(toString(cfg.substrate));
    if (cfg.observe) {
        ts = TraceSession::current();
        if (ts == nullptr) {
            privateSession = std::make_unique<TraceSession>();
            privateSession->attach();
            ts = privateSession.get();
        }
        lineage = std::make_unique<LineageSession>();
        ts->setSpanObserver(&profiler);
    }

    ProfRun out;
    // The CMAM layer runs both classic substrates; the high-level
    // layer is the Section-4 counterpart for the multi-packet
    // protocols; the modern substrates bring their own stacks.
    const bool hlRun = cfg.substrate == Substrate::Cr &&
                       (cfg.protocol == "xfer" ||
                        cfg.protocol == "stream");
    if (cfg.protocol == "wire") {
        // The wire layer rides the plain CMAM stack on every
        // substrate (its framing cost model flips on the substrate
        // itself), so the substrate x feature comparison holds the
        // protocol machinery constant.
        StackConfig sc;
        sc.substrate = cfg.substrate;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        Stack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        wire::WireWorkload w;
        w.groupAck = cfg.groupAck;
        w.framesPerStream =
            cfg.words < w.streams * w.payloadWords
                ? 1
                : cfg.words / (w.streams * w.payloadWords);
        out.result = wire::runWireWorkload(stack, w).run;
        out.result.dispatchOps = stack.cmam(1).dispatchOps();
    } else if (cfg.substrate == Substrate::Rdma) {
        RdmaStackConfig sc;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        RdmaStack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        RdmaRunParams p;
        p.words = cfg.words;
        if (cfg.protocol == "single")
            out.result = runRdmaSingle(stack, p);
        else if (cfg.protocol == "am4")
            out.result = runRdmaAm4(stack, p);
        else if (cfg.protocol == "xfer")
            out.result = runRdmaFinite(stack, p);
        else
            out.result = runRdmaStream(stack, p);
    } else if (cfg.substrate == Substrate::Nicam) {
        NicamStackConfig sc;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        NicamStack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        NicamRunParams p;
        p.words = cfg.words;
        if (cfg.protocol == "single")
            out.result = runNicamSingle(stack, p);
        else if (cfg.protocol == "am4")
            out.result = runNicamAm4(stack, p);
        else if (cfg.protocol == "xfer")
            out.result = runNicamFinite(stack, p);
        else
            out.result = runNicamStream(stack, p);
    } else if (hlRun) {
        HlStackConfig sc;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        HlStack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        if (cfg.protocol == "xfer") {
            HlXferParams p;
            p.words = cfg.words;
            out.result = runHlFinite(stack, p);
        } else {
            HlStreamParams p;
            p.words = cfg.words;
            out.result = runHlStream(stack, p);
        }
        out.result.dispatchOps = stack.hl(1).dispatchOps();
    } else {
        StackConfig sc;
        sc.substrate = cfg.substrate;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        Stack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        if (cfg.protocol == "single") {
            out.result = runSinglePacket(stack, SinglePacketParams{});
            out.result.dispatchOps = stack.cmam(1).dispatchOps();
        } else if (cfg.protocol == "am4") {
            out.result = runAm4Round(stack);
        } else if (cfg.protocol == "xfer") {
            FiniteXfer fx(stack);
            FiniteXferParams p;
            p.words = cfg.words;
            out.result = fx.run(p);
            out.result.dispatchOps = stack.cmam(1).dispatchOps();
        } else {
            StreamProtocol sp(stack);
            StreamParams p;
            p.words = cfg.words;
            p.groupAck = cfg.groupAck;
            out.result = sp.run(p);
            out.result.dispatchOps = stack.cmam(1).dispatchOps();
        }
    }

    // The stacks above are gone: unbind the clock before anything
    // (e.g. an obs::Scope export) asks the session for "now".
    if (ts) {
        ts->setSpanObserver(nullptr);
        ts->bindClock(nullptr);
        lineage->exportTo(*ts);
        out.folded = profiler.foldedStacks();
        out.waterfall = lineage->waterfall();
        out.packetsTracked = lineage->packetsTracked();
        out.lineageEdges = lineage->edges().size();
    }
    return out;
}

Differential
differential(const ProfConfig &primaryCfg, const ProfRun &primary,
             const ProfConfig &baselineCfg, const ProfRun &baseline)
{
    Differential d;
    d.primaryCfg = primaryCfg;
    d.baselineCfg = baselineCfg;
    d.primaryTotal = primary.result.counts.paperTotal();
    d.baselineTotal = baseline.result.counts.paperTotal();

    auto isModern = [](Substrate s) {
        return s == Substrate::Rdma || s == Substrate::Nicam;
    };
    d.modern = isModern(primaryCfg.substrate) ||
               isModern(baselineCfg.substrate);

    auto statusOf = [](std::uint64_t p, std::uint64_t b) {
        if (p == 0 && b == 0)
            return std::string("unchanged");
        if (b * 10 <= p)
            return std::string("vanishes");
        if ((b > p ? b - p : p - b) * 10 <= p)
            return std::string("unchanged");
        if (p * 10 <= b)
            return std::string("appears");
        return std::string(b < p ? "reduced" : "increased");
    };

    std::vector<Feature> feats = {
        Feature::BaseCost,
        Feature::BufferMgmt,
        Feature::InOrderDelivery,
        Feature::FaultTolerance,
    };
    if (d.modern) {
        // The costs 2020s hardware charges instead: harvesting the
        // completion queue and registering memory with the NIC —
        // plus the wire layer's framing bill, which the rdma NIC
        // absorbs (zero-copy gather + inline CRC) while the software
        // substrates pay per byte.
        feats.push_back(Feature::CompletionPoll);
        feats.push_back(Feature::Registration);
        feats.push_back(Feature::Framing);
    }
    for (Feature feat : feats) {
        DiffRow row;
        row.feature = feat;
        row.primary = primary.result.counts.featureTotal(feat);
        row.baseline = baseline.result.counts.featureTotal(feat);
        row.status = statusOf(row.primary, row.baseline);
        d.rows.push_back(std::move(row));
    }
    if (d.modern) {
        d.primaryDispatch = primary.result.dispatchOps;
        d.baselineDispatch = baseline.result.dispatchOps;
        d.dispatchStatus =
            statusOf(d.primaryDispatch, d.baselineDispatch);
    }
    return d;
}

std::string
Differential::markdown() const
{
    auto col = [](const ProfConfig &cfg) {
        return std::string(toString(cfg.substrate)) + "/" +
               cfg.protocol;
    };
    std::string out;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "| feature | %s | %s | delta | status |\n",
                  col(primaryCfg).c_str(), col(baselineCfg).c_str());
    out += line;
    out += "|---|---:|---:|---:|---|\n";
    for (const DiffRow &row : rows) {
        const long long delta =
            static_cast<long long>(row.baseline) -
            static_cast<long long>(row.primary);
        std::snprintf(line, sizeof(line),
                      "| %s | %llu | %llu | %+lld | %s |\n",
                      toString(row.feature),
                      static_cast<unsigned long long>(row.primary),
                      static_cast<unsigned long long>(row.baseline),
                      delta, row.status.c_str());
        out += line;
    }
    if (modern) {
        const long long ddelta =
            static_cast<long long>(baselineDispatch) -
            static_cast<long long>(primaryDispatch);
        std::snprintf(
            line, sizeof(line),
            "| dispatch (host) | %llu | %llu | %+lld | %s |\n",
            static_cast<unsigned long long>(primaryDispatch),
            static_cast<unsigned long long>(baselineDispatch), ddelta,
            dispatchStatus.c_str());
        out += line;
    }
    const long long tdelta = static_cast<long long>(baselineTotal) -
                             static_cast<long long>(primaryTotal);
    std::snprintf(line, sizeof(line),
                  "| **total** | **%llu** | **%llu** | %+lld | |\n",
                  static_cast<unsigned long long>(primaryTotal),
                  static_cast<unsigned long long>(baselineTotal),
                  tdelta);
    out += line;
    return out;
}

Json
Differential::toJson() const
{
    auto side = [](const ProfConfig &cfg, std::uint64_t total) {
        Json j = Json::object();
        j.set("protocol", cfg.protocol);
        j.set("substrate", toString(cfg.substrate));
        j.set("nodes", std::uint64_t(cfg.nodes));
        j.set("data_words", cfg.dataWords);
        j.set("words", std::uint64_t(cfg.words));
        j.set("paper_total", total);
        return j;
    };
    Json doc = Json::object();
    doc.set("primary", side(primaryCfg, primaryTotal));
    doc.set("baseline", side(baselineCfg, baselineTotal));
    Json features = Json::array();
    for (const DiffRow &row : rows) {
        Json j = Json::object();
        j.set("feature", featureSlug(row.feature));
        j.set("primary", row.primary);
        j.set("baseline", row.baseline);
        j.set("status", row.status);
        features.push(std::move(j));
    }
    doc.set("features", std::move(features));
    if (modern) {
        Json j = Json::object();
        j.set("primary", primaryDispatch);
        j.set("baseline", baselineDispatch);
        j.set("status", dispatchStatus);
        doc.set("dispatch_ops", std::move(j));
    }
    return doc;
}

} // namespace msgsim::prof

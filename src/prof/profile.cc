#include "prof/profile.hh"

#include <cstdio>
#include <memory>

#include "hlam/hl_stack.hh"
#include "prof/profiler.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim::prof
{

ProfRun
runProfiled(const ProfConfig &cfg)
{
    if (cfg.protocol != "single" && cfg.protocol != "xfer" &&
        cfg.protocol != "stream")
        msgsim_fatal("unknown protocol '", cfg.protocol,
                     "' (single | xfer | stream)");

    // Fold spans and flows into the caller's timeline when one is
    // attached; otherwise attach a private session for the run.
    std::unique_ptr<TraceSession> privateSession;
    TraceSession *ts = nullptr;
    std::unique_ptr<LineageSession> lineage;
    CostProfiler profiler(toString(cfg.substrate));
    if (cfg.observe) {
        ts = TraceSession::current();
        if (ts == nullptr) {
            privateSession = std::make_unique<TraceSession>();
            privateSession->attach();
            ts = privateSession.get();
        }
        lineage = std::make_unique<LineageSession>();
        ts->setSpanObserver(&profiler);
    }

    ProfRun out;
    // The CMAM layer runs both substrates; the high-level layer is
    // the Section-4 counterpart for the multi-packet protocols.
    const bool hlRun = cfg.substrate == Substrate::Cr &&
                       cfg.protocol != "single";
    if (hlRun) {
        HlStackConfig sc;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        HlStack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        if (cfg.protocol == "xfer") {
            HlXferParams p;
            p.words = cfg.words;
            out.result = runHlFinite(stack, p);
        } else {
            HlStreamParams p;
            p.words = cfg.words;
            out.result = runHlStream(stack, p);
        }
    } else {
        StackConfig sc;
        sc.substrate = cfg.substrate;
        sc.nodes = cfg.nodes;
        sc.dataWords = cfg.dataWords;
        Stack stack(sc);
        if (ts)
            ts->bindClock(&stack.sim());
        for (NodeId n = 0; n < cfg.nodes; ++n)
            profiler.bindNode(n, &stack.node(n).proc().acct());
        if (cfg.protocol == "single") {
            out.result = runSinglePacket(stack, SinglePacketParams{});
        } else if (cfg.protocol == "xfer") {
            FiniteXfer fx(stack);
            FiniteXferParams p;
            p.words = cfg.words;
            out.result = fx.run(p);
        } else {
            StreamProtocol sp(stack);
            StreamParams p;
            p.words = cfg.words;
            p.groupAck = cfg.groupAck;
            out.result = sp.run(p);
        }
    }

    // The stacks above are gone: unbind the clock before anything
    // (e.g. an obs::Scope export) asks the session for "now".
    if (ts) {
        ts->setSpanObserver(nullptr);
        ts->bindClock(nullptr);
        lineage->exportTo(*ts);
        out.folded = profiler.foldedStacks();
        out.waterfall = lineage->waterfall();
        out.packetsTracked = lineage->packetsTracked();
        out.lineageEdges = lineage->edges().size();
    }
    return out;
}

Differential
differential(const ProfConfig &primaryCfg, const ProfRun &primary,
             const ProfConfig &baselineCfg, const ProfRun &baseline)
{
    Differential d;
    d.primaryCfg = primaryCfg;
    d.baselineCfg = baselineCfg;
    d.primaryTotal = primary.result.counts.paperTotal();
    d.baselineTotal = baseline.result.counts.paperTotal();

    static const Feature feats[] = {
        Feature::BaseCost,
        Feature::BufferMgmt,
        Feature::InOrderDelivery,
        Feature::FaultTolerance,
    };
    for (Feature feat : feats) {
        DiffRow row;
        row.feature = feat;
        row.primary = primary.result.counts.featureTotal(feat);
        row.baseline = baseline.result.counts.featureTotal(feat);
        if (row.primary == 0 && row.baseline == 0)
            row.status = "unchanged";
        else if (row.baseline * 10 <= row.primary)
            row.status = "vanishes";
        else if ((row.baseline > row.primary
                      ? row.baseline - row.primary
                      : row.primary - row.baseline) *
                     10 <=
                 row.primary)
            row.status = "unchanged";
        else
            row.status =
                row.baseline < row.primary ? "reduced" : "increased";
        d.rows.push_back(std::move(row));
    }
    return d;
}

std::string
Differential::markdown() const
{
    auto col = [](const ProfConfig &cfg) {
        return std::string(toString(cfg.substrate)) + "/" +
               cfg.protocol;
    };
    std::string out;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "| feature | %s | %s | delta | status |\n",
                  col(primaryCfg).c_str(), col(baselineCfg).c_str());
    out += line;
    out += "|---|---:|---:|---:|---|\n";
    for (const DiffRow &row : rows) {
        const long long delta =
            static_cast<long long>(row.baseline) -
            static_cast<long long>(row.primary);
        std::snprintf(line, sizeof(line),
                      "| %s | %llu | %llu | %+lld | %s |\n",
                      toString(row.feature),
                      static_cast<unsigned long long>(row.primary),
                      static_cast<unsigned long long>(row.baseline),
                      delta, row.status.c_str());
        out += line;
    }
    const long long tdelta = static_cast<long long>(baselineTotal) -
                             static_cast<long long>(primaryTotal);
    std::snprintf(line, sizeof(line),
                  "| **total** | **%llu** | **%llu** | %+lld | |\n",
                  static_cast<unsigned long long>(primaryTotal),
                  static_cast<unsigned long long>(baselineTotal),
                  tdelta);
    out += line;
    return out;
}

Json
Differential::toJson() const
{
    auto side = [](const ProfConfig &cfg, std::uint64_t total) {
        Json j = Json::object();
        j.set("protocol", cfg.protocol);
        j.set("substrate", toString(cfg.substrate));
        j.set("nodes", std::uint64_t(cfg.nodes));
        j.set("data_words", cfg.dataWords);
        j.set("words", std::uint64_t(cfg.words));
        j.set("paper_total", total);
        return j;
    };
    Json doc = Json::object();
    doc.set("primary", side(primaryCfg, primaryTotal));
    doc.set("baseline", side(baselineCfg, baselineTotal));
    Json features = Json::array();
    for (const DiffRow &row : rows) {
        Json j = Json::object();
        j.set("feature", featureSlug(row.feature));
        j.set("primary", row.primary);
        j.set("baseline", row.baseline);
        j.set("status", row.status);
        features.push(std::move(j));
    }
    doc.set("features", std::move(features));
    return doc;
}

} // namespace msgsim::prof

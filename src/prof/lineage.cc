#include "prof/lineage.hh"

#include <algorithm>
#include <cstdio>

#include "sim/stats.hh"
#include "sim/trace_session.hh"

namespace msgsim::prof
{

const char *
toString(LineageSession::EdgeKind kind)
{
    switch (kind) {
      case LineageSession::EdgeKind::Birth:        return "birth";
      case LineageSession::EdgeKind::Inject:       return "inject";
      case LineageSession::EdgeKind::Deliver:      return "deliver";
      case LineageSession::EdgeKind::Reject:       return "reject";
      case LineageSession::EdgeKind::Drop:         return "drop";
      case LineageSession::EdgeKind::Corrupt:      return "corrupt";
      case LineageSession::EdgeKind::HwRetry:      return "hw_retry";
      case LineageSession::EdgeKind::Duplicate:    return "duplicate";
      case LineageSession::EdgeKind::HandlerBegin: return "handler_begin";
      case LineageSession::EdgeKind::HandlerEnd:   return "handler_end";
    }
    return "?";
}

namespace
{

LineageSession::EdgeKind
edgeOf(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Inject:    return LineageSession::EdgeKind::Inject;
      case TraceEvent::Deliver:   return LineageSession::EdgeKind::Deliver;
      case TraceEvent::Reject:    return LineageSession::EdgeKind::Reject;
      case TraceEvent::Drop:      return LineageSession::EdgeKind::Drop;
      case TraceEvent::Corrupt:   return LineageSession::EdgeKind::Corrupt;
      case TraceEvent::HwRetry:   return LineageSession::EdgeKind::HwRetry;
      case TraceEvent::Duplicate:
        return LineageSession::EdgeKind::Duplicate;
    }
    return LineageSession::EdgeKind::Inject;
}

} // namespace

LineageSession::LineageSession() : LineageSession(Config()) {}

LineageSession::LineageSession(const Config &cfg) : cfg_(cfg)
{
    attach();
}

LineageSession::~LineageSession()
{
    detach();
}

void
LineageSession::record(const Edge &e)
{
    if (edges_.size() >= cfg_.maxEdges) {
        ++edgesDropped_;
        return;
    }
    edges_.push_back(e);
}

void
LineageSession::packetBorn(Packet &pkt, NodeId node, Tick now)
{
    std::uint64_t parent = 0;
    auto it = handlerStack_.find(node);
    if (it != handlerStack_.end() && !it->second.empty())
        parent = it->second.back();

    pkt.lineage = nextId_++;
    if (parent != 0)
        parent_[pkt.lineage] = parent;
    record(Edge{pkt.lineage, parent, EdgeKind::Birth, node, now});
}

void
LineageSession::hwEvent(TraceEvent ev, const Packet &pkt, Tick now)
{
    if (pkt.lineage == 0)
        return; // staged before this session attached
    const EdgeKind kind = edgeOf(ev);
    const NodeId node = kind == EdgeKind::Inject ? pkt.src : pkt.dst;
    record(Edge{pkt.lineage, 0, kind, node, now});
}

void
LineageSession::handlerBegin(NodeId node, const Packet &pkt, Tick now)
{
    // Push even an untracked (0) lineage so handlerEnd pops
    // symmetrically; births under it are simply parentless.
    handlerStack_[node].push_back(pkt.lineage);
    if (pkt.lineage != 0)
        record(Edge{pkt.lineage, 0, EdgeKind::HandlerBegin, node, now});
}

void
LineageSession::handlerEnd(NodeId node, Tick now)
{
    auto it = handlerStack_.find(node);
    if (it == handlerStack_.end() || it->second.empty())
        return; // unmatched end (handler began before attach)
    const std::uint64_t lineage = it->second.back();
    it->second.pop_back();
    if (lineage != 0)
        record(Edge{lineage, 0, EdgeKind::HandlerEnd, node, now});
}

std::uint64_t
LineageSession::parentOf(std::uint64_t lineage) const
{
    auto it = parent_.find(lineage);
    return it == parent_.end() ? 0 : it->second;
}

std::uint64_t
LineageSession::rootOf(std::uint64_t lineage) const
{
    std::uint64_t cur = lineage;
    for (;;) {
        const std::uint64_t up = parentOf(cur);
        if (up == 0 || up == cur)
            return cur;
        cur = up;
    }
}

void
LineageSession::exportTo(TraceSession &ts) const
{
    // One flow chain per causal tree, keyed by the root lineage:
    // every location where the tree shows up (send, delivery,
    // handler) becomes one arrow point, in chronological order.
    struct Point
    {
        Tick tick;
        NodeId node;
    };
    std::map<std::uint64_t, std::vector<Point>> chains;
    for (const Edge &e : edges_) {
        switch (e.kind) {
          case EdgeKind::Birth:
          case EdgeKind::Inject:
          case EdgeKind::Deliver:
          case EdgeKind::HandlerBegin:
            chains[rootOf(e.lineage)].push_back(
                Point{e.tick, e.node});
            break;
          default:
            break; // faults/retries don't advance the arrow
        }
    }
    for (const auto &[root, points] : chains) {
        if (points.size() < 2)
            continue; // an arrow needs two ends
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto phase =
                i == 0 ? TraceSession::FlowPhase::Start
                : i + 1 == points.size()
                    ? TraceSession::FlowPhase::End
                    : TraceSession::FlowPhase::Step;
            ts.flowAt(points[i].tick, points[i].node, "lineage",
                      "pkt", root, phase);
        }
    }
}

WaterfallReport
LineageSession::waterfall() const
{
    // Per-lineage lifecycle ticks, folded from the edge stream.
    struct Life
    {
        bool hasBirth = false, hasInject = false, hasPresent = false;
        bool hasDeliver = false, hasHandler = false;
        Tick birth = 0, inject = 0, firstPresent = 0;
        Tick lastDeliver = 0, handler = 0;
        NodeId birthNode = invalidNode;
    };
    std::map<std::uint64_t, Life> lives;
    for (const Edge &e : edges_) {
        Life &l = lives[e.lineage];
        switch (e.kind) {
          case EdgeKind::Birth:
            if (!l.hasBirth) {
                l.hasBirth = true;
                l.birth = e.tick;
                l.birthNode = e.node;
            }
            break;
          case EdgeKind::Inject:
            if (!l.hasInject) {
                l.hasInject = true;
                l.inject = e.tick;
            }
            break;
          case EdgeKind::Deliver:
          case EdgeKind::Reject:
            if (!l.hasPresent) {
                l.hasPresent = true;
                l.firstPresent = e.tick;
            }
            if (e.kind == EdgeKind::Deliver) {
                l.hasDeliver = true;
                l.lastDeliver = e.tick;
            }
            break;
          case EdgeKind::HandlerBegin:
            if (!l.hasHandler) {
                l.hasHandler = true;
                l.handler = e.tick;
            }
            break;
          default:
            break;
        }
    }

    // Children index, for the ack-wait segment: a child delivered
    // back at the parent's birth node closes the round trip.
    std::map<std::uint64_t, std::vector<std::uint64_t>> children;
    for (const auto &[child, parent] : parent_)
        children[parent].push_back(child);

    WaterfallReport out;
    out.segments.resize(5);
    out.segments[0].name = "send_sw";
    out.segments[1].name = "wire";
    out.segments[2].name = "queue_wait";
    out.segments[3].name = "recv_sw";
    out.segments[4].name = "ack_wait";

    for (const auto &[lineage, l] : lives) {
        bool contributed = false;
        auto take = [&](std::size_t seg, Tick from, Tick to) {
            if (to < from)
                return;
            out.segments[seg].samples.push_back(
                static_cast<double>(to - from));
            contributed = true;
        };
        if (l.hasBirth && l.hasInject)
            take(0, l.birth, l.inject);
        if (l.hasInject && l.hasPresent)
            take(1, l.inject, l.firstPresent);
        if (l.hasPresent && l.hasDeliver)
            take(2, l.firstPresent, l.lastDeliver);
        if (l.hasDeliver && l.hasHandler)
            take(3, l.lastDeliver, l.handler);

        if (l.hasDeliver && l.birthNode != invalidNode) {
            // Earliest causal reply delivered back where we started.
            bool found = false;
            Tick replyAt = 0;
            auto cit = children.find(lineage);
            if (cit != children.end()) {
                for (std::uint64_t child : cit->second) {
                    auto lit = lives.find(child);
                    if (lit == lives.end() || !lit->second.hasDeliver)
                        continue;
                    if (lit->second.birthNode == l.birthNode)
                        continue; // sibling from same node, not a reply
                    if (!found ||
                        lit->second.lastDeliver < replyAt) {
                        found = true;
                        replyAt = lit->second.lastDeliver;
                    }
                }
            }
            if (found && replyAt >= l.lastDeliver)
                take(4, l.lastDeliver, replyAt);
        }
        if (contributed)
            ++out.lineages;
    }
    return out;
}

std::string
WaterfallReport::render() const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "%-10s %8s %8s %8s %8s %8s\n",
                  "segment", "n", "p50", "p90", "p99", "max");
    out += line;
    for (const Segment &seg : segments) {
        double hi = 1.0;
        for (double s : seg.samples)
            hi = std::max(hi, s);
        Histogram h(0.0, hi + 1.0, 40);
        for (double s : seg.samples)
            h.sample(s);
        std::snprintf(line, sizeof(line),
                      "%-10s %8llu %8.0f %8.0f %8.0f %8.0f  %s\n",
                      seg.name.c_str(),
                      static_cast<unsigned long long>(h.stat().count()),
                      h.percentile(50), h.percentile(90),
                      h.percentile(99), h.stat().max(),
                      h.renderAscii().c_str());
        out += line;
    }
    return out;
}

Json
WaterfallReport::toJson() const
{
    Json doc = Json::object();
    doc.set("lineages", std::uint64_t(lineages));
    Json segs = Json::array();
    for (const Segment &seg : segments) {
        double hi = 1.0;
        for (double s : seg.samples)
            hi = std::max(hi, s);
        Histogram h(0.0, hi + 1.0, 40);
        for (double s : seg.samples)
            h.sample(s);
        Json j = Json::object();
        j.set("name", seg.name);
        j.set("samples", h.stat().count());
        j.set("p50", h.percentile(50));
        j.set("p90", h.percentile(90));
        j.set("p99", h.percentile(99));
        j.set("max", h.stat().max());
        segs.push(std::move(j));
    }
    doc.set("segments", std::move(segs));
    return doc;
}

} // namespace msgsim::prof

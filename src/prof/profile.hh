/**
 * @file
 * Profiled protocol runs and the differential cost report.
 *
 * runProfiled() executes one protocol exchange (single / xfer /
 * stream) on one substrate with the full observability kit attached:
 * a LineageSession stamping causal lineage onto every packet, and a
 * CostProfiler folding span-resolved instruction deltas into
 * flamegraph stacks.  The lineage flows are exported into the
 * attached TraceSession when one exists (--trace-out), so the
 * Perfetto timeline gains send → deliver → handler arrows.
 *
 * differential() diffs two such runs per messaging feature — the
 * paper's headline experiment: run the same transfer on the CM-5
 * substrate (CMAM pays for buffering, ordering and fault tolerance
 * in software) and on the CR substrate (the hardware provides them),
 * and watch three of the four feature rows vanish while the base
 * cost stays put (Sections 3-4, Tables 2/3).
 *
 * The modern substrates extend the two-column table into a
 * substrate × feature matrix: on rdma the 1994 overheads vanish but
 * completion-poll and registration rows appear; on nicam the host's
 * dispatch instructions (tracked by the layers' dispatchOps()
 * mirrors) move into the NIC.  The extra rows are emitted only when
 * a modern substrate is on either side, so the classic cm5-vs-cr
 * artifacts are byte-identical to before.
 */

#ifndef MSGSIM_PROF_PROFILE_HH
#define MSGSIM_PROF_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hh"
#include "prof/lineage.hh"
#include "protocols/result.hh"
#include "protocols/stack.hh"

namespace msgsim::prof
{

/** What to run and where. */
struct ProfConfig
{
    std::string protocol = "xfer"; ///< single | am4 | xfer | stream | wire
    Substrate substrate = Substrate::Cm5;
    std::uint32_t nodes = 4;
    int dataWords = 4;
    std::uint32_t words = 64; ///< transfer volume (xfer / stream)
    int groupAck = 1;         ///< stream: ack every G packets
    /// Attach the lineage/profiling sessions (process-global state).
    /// The lab runs grid points concurrently and therefore profiles
    /// with observe = false: instruction counts are bit-identical
    /// either way (the PR 1 design rule), so the differential table
    /// is unaffected — only folded/waterfall artifacts are skipped.
    bool observe = true;
};

/** One profiled run: protocol result plus the derived artifacts. */
struct ProfRun
{
    RunResult result;
    std::string folded; ///< flamegraph folded-stack text
    WaterfallReport waterfall;
    std::uint64_t packetsTracked = 0;
    std::uint64_t lineageEdges = 0;
};

/**
 * Run @p cfg's protocol with lineage + profiling attached.  Uses the
 * attached TraceSession when one exists (so spans and flows land in
 * the --trace-out timeline); otherwise attaches a private session
 * for the duration so span costs still fold.
 */
ProfRun runProfiled(const ProfConfig &cfg);

/** One feature row of the differential table. */
struct DiffRow
{
    Feature feature = Feature::BaseCost;
    std::uint64_t primary = 0;  ///< instructions, primary run
    std::uint64_t baseline = 0; ///< instructions, baseline run
    /// vanishes | unchanged | reduced | increased | appears
    std::string status;
};

/** The paper's "overhead that vanishes" comparison. */
struct Differential
{
    ProfConfig primaryCfg;
    ProfConfig baselineCfg;
    /// The four paper features; plus completion-poll and
    /// registration when a modern substrate is on either side.
    std::vector<DiffRow> rows;
    std::uint64_t primaryTotal = 0;
    std::uint64_t baselineTotal = 0;
    /// True when rdma/nicam is on either side: the extra feature
    /// rows and the host-dispatch row are emitted.
    bool modern = false;
    std::uint64_t primaryDispatch = 0;  ///< host dispatchOps, primary
    std::uint64_t baselineDispatch = 0; ///< host dispatchOps, baseline
    std::string dispatchStatus;         ///< same vocabulary as rows

    /** Render as a markdown table. */
    std::string markdown() const;

    /** Machine-readable form (no wall-clock: byte-deterministic). */
    Json toJson() const;
};

/**
 * Diff two runs per feature.  Status thresholds: "vanishes" when the
 * baseline keeps at most 10% of the primary's instructions,
 * "appears" when the primary had at most 10% of the baseline's,
 * "unchanged" within +/-10%, otherwise "reduced" / "increased".
 */
Differential differential(const ProfConfig &primaryCfg,
                          const ProfRun &primary,
                          const ProfConfig &baselineCfg,
                          const ProfRun &baseline);

} // namespace msgsim::prof

#endif // MSGSIM_PROF_PROFILE_HH

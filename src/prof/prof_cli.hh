/**
 * @file
 * Command-line wiring for msgsim-prof.
 *
 * prof::parseArgs() strips the profiler's own flags from argv the
 * same way obs::parseArgs() strips --trace-out/--metrics-out, so the
 * two compose:
 *
 *     auto obsOpts = msgsim::obs::parseArgs(argc, argv);
 *     auto cli = msgsim::prof::parseArgs(argc, argv);
 *     // argv now holds only positional / unknown arguments
 *
 * Recognized flags:
 *
 *     --protocol=<single|am4|xfer|stream>  what to run (default xfer)
 *     --substrate=<cm5|cr|rdma|nicam>   primary substrate (cm5)
 *     --baseline=<cm5|cr|rdma|nicam>    run a second time on this
 *                                       substrate and emit the
 *                                       differential table
 *     --baseline                        bare form: diff cm5 against
 *                                       the --substrate run (the
 *                                       substrate × feature matrix
 *                                       column for that substrate)
 *     --words=<n>                       transfer volume (64)
 *     --nodes=<n>                       machine size (4)
 *     --group-ack=<g>                   stream ack grouping (1)
 *     --flame-out=<file>                folded stacks (flamegraph.pl)
 *     --waterfall-out=<file>            latency waterfall text
 *     --json-out=<file>                 machine-readable report
 */

#ifndef MSGSIM_PROF_PROF_CLI_HH
#define MSGSIM_PROF_PROF_CLI_HH

#include <cstdint>
#include <string>

#include "protocols/stack.hh"

namespace msgsim::prof
{

/** Parsed msgsim-prof options (strings validated by the caller). */
struct CliOptions
{
    std::string protocol = "xfer";
    std::string substrate = "cm5";
    std::string baseline;     ///< empty = no differential
    bool baselineBare = false; ///< bare --baseline: cm5 vs --substrate
    std::uint32_t words = 64;
    std::uint32_t nodes = 4;
    int groupAck = 1;
    std::string flameOut;
    std::string waterfallOut;
    std::string jsonOut;
};

/**
 * Extract the profiler flags from argv, compacting the remaining
 * arguments (argc is updated in place, same contract as
 * obs::parseArgs).
 */
CliOptions parseArgs(int &argc, char **argv);

/** Map a substrate name to the enum; false on unknown names. */
bool parseSubstrate(const std::string &name, Substrate &out);

} // namespace msgsim::prof

#endif // MSGSIM_PROF_PROF_CLI_HH

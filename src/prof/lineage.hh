/**
 * @file
 * Per-packet causal lineage recording.
 *
 * A LineageSession is the concrete implementation of the
 * LineageHooks interface declared in `src/net`: it stamps every
 * packet with a stable lineage id at birth, records the packet's
 * lifecycle edges (birth, injection, hardware retries/drops,
 * delivery, handler dispatch), and — because packets sent from
 * inside a handler inherit the handled packet's lineage as their
 * causal parent — links whole request/reply/ack chains into causal
 * trees.
 *
 * Two consumers read the recorded edges:
 *
 *  - exportTo() emits Chrome trace-event *flow* events ("s"/"t"/"f"
 *    sharing one id per causal tree) into a TraceSession, so
 *    Perfetto draws arrows from the send span on the source node's
 *    track to the delivery and handler work on the destination's;
 *
 *  - waterfall() decomposes each packet's end-to-end latency into
 *    the five segments of the paper's software-overhead story:
 *    send-side software, wire transit, queue wait, receive-side
 *    software, and ack wait.
 *
 * Design rules (PR 1): every hook site is a single pointer test when
 * no session is attached, and the recorder never touches an
 * Accounting object — instruction counts are bit-identical with
 * lineage tracing on or off (enforced by test_trace_session).
 */

#ifndef MSGSIM_PROF_LINEAGE_HH
#define MSGSIM_PROF_LINEAGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/types.hh"
#include "net/lineage_hook.hh"

namespace msgsim
{

class TraceSession;

namespace prof
{

/** Latency decomposition of the traced packet population. */
struct WaterfallReport
{
    /** One latency segment with its raw per-packet samples (ticks). */
    struct Segment
    {
        std::string name;
        std::vector<double> samples;
    };

    /// The five segments, in pipeline order: send_sw, wire,
    /// queue_wait, recv_sw, ack_wait.
    std::vector<Segment> segments;

    /// Packets that contributed at least one segment sample.
    std::uint64_t lineages = 0;

    /** Percentile table plus ASCII bin shapes, one segment per line. */
    std::string render() const;

    /** Machine-readable summary (counts and percentiles only). */
    Json toJson() const;
};

/**
 * The lineage recorder.  Construction attaches it as the
 * process-wide LineageHooks target; destruction detaches.
 */
class LineageSession : public LineageHooks
{
  public:
    /** Lifecycle edge kinds (hardware events plus software edges). */
    enum class EdgeKind : std::uint8_t
    {
        Birth,        ///< software staged the packet at the NI
        Inject,       ///< accepted at the injection port
        Deliver,      ///< presented to and accepted by the NI
        Reject,       ///< presented and refused (full / acceptance)
        Drop,         ///< lost inside the network
        Corrupt,      ///< corrupted in flight
        HwRetry,      ///< hardware retransmission (CR)
        Duplicate,    ///< ghost copy created in the network
        HandlerBegin, ///< messaging-layer handler dispatch started
        HandlerEnd,   ///< handler dispatch finished
    };

    /** One recorded lifecycle edge. */
    struct Edge
    {
        std::uint64_t lineage = 0;
        std::uint64_t parent = 0; ///< causal parent (Birth edges)
        EdgeKind kind = EdgeKind::Birth;
        NodeId node = invalidNode;
        Tick tick = 0;
    };

    struct Config
    {
        /// Edge-ring soft cap; further edges are dropped and counted.
        std::size_t maxEdges = 1u << 20;
    };

    LineageSession();
    explicit LineageSession(const Config &cfg);
    ~LineageSession() override;

    // LineageHooks implementation.
    void packetBorn(Packet &pkt, NodeId node, Tick now) override;
    void hwEvent(TraceEvent ev, const Packet &pkt, Tick now) override;
    void handlerBegin(NodeId node, const Packet &pkt,
                      Tick now) override;
    void handlerEnd(NodeId node, Tick now) override;

    // ------------------------------------------------------------
    // Inspection.
    // ------------------------------------------------------------

    /** Recorded edges, in observation (= chronological) order. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Packets stamped with a lineage id so far. */
    std::uint64_t packetsTracked() const { return nextId_ - 1; }

    /** Edges discarded because the ring cap was hit. */
    std::uint64_t edgesDropped() const { return edgesDropped_; }

    /** Causal parent of a lineage (0 = root / unknown). */
    std::uint64_t parentOf(std::uint64_t lineage) const;

    /** Root of a lineage's causal tree (itself when parentless). */
    std::uint64_t rootOf(std::uint64_t lineage) const;

    // ------------------------------------------------------------
    // Analysis / export.
    // ------------------------------------------------------------

    /**
     * Emit flow events for every causal tree with at least two
     * recorded locations into @p ts.  Each tree shares one flow id
     * (the root lineage), so Perfetto renders the whole
     * send → deliver → handler → reply chain as one arrow sequence.
     */
    void exportTo(TraceSession &ts) const;

    /** Decompose per-packet latency into the five-segment waterfall. */
    WaterfallReport waterfall() const;

  private:
    void record(const Edge &e);

    Config cfg_;
    std::uint64_t nextId_ = 1;
    std::uint64_t edgesDropped_ = 0;
    std::vector<Edge> edges_;
    std::map<std::uint64_t, std::uint64_t> parent_;
    /// Per-node stack of the lineages whose handlers are running:
    /// packets born on a node inherit the top entry as their parent.
    std::map<NodeId, std::vector<std::uint64_t>> handlerStack_;
};

/** Printable name of an edge kind. */
const char *toString(LineageSession::EdgeKind kind);

} // namespace prof
} // namespace msgsim

#endif // MSGSIM_PROF_LINEAGE_HH

#include "prof/prof_cli.hh"

#include <cstdlib>
#include <cstring>

namespace msgsim::prof
{

CliOptions
parseArgs(int &argc, char **argv)
{
    CliOptions opts;
    auto match = [](const char *arg, const char *flag,
                    const char **value) {
        const std::size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) != 0)
            return false;
        *value = arg + n;
        return true;
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (match(argv[i], "--protocol=", &v)) {
            opts.protocol = v;
        } else if (match(argv[i], "--substrate=", &v)) {
            opts.substrate = v;
        } else if (std::strcmp(argv[i], "--baseline") == 0) {
            opts.baselineBare = true;
        } else if (match(argv[i], "--baseline=", &v)) {
            opts.baseline = v;
        } else if (match(argv[i], "--words=", &v)) {
            opts.words =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
        } else if (match(argv[i], "--nodes=", &v)) {
            opts.nodes =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
        } else if (match(argv[i], "--group-ack=", &v)) {
            opts.groupAck = std::atoi(v);
        } else if (match(argv[i], "--flame-out=", &v)) {
            opts.flameOut = v;
        } else if (match(argv[i], "--waterfall-out=", &v)) {
            opts.waterfallOut = v;
        } else if (match(argv[i], "--json-out=", &v)) {
            opts.jsonOut = v;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

bool
parseSubstrate(const std::string &name, Substrate &out)
{
    if (name == "cm5") {
        out = Substrate::Cm5;
        return true;
    }
    if (name == "cr") {
        out = Substrate::Cr;
        return true;
    }
    if (name == "rdma") {
        out = Substrate::Rdma;
        return true;
    }
    if (name == "nicam") {
        out = Substrate::Nicam;
        return true;
    }
    return false;
}

} // namespace msgsim::prof

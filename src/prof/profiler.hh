/**
 * @file
 * Span-resolved cost attribution.
 *
 * A CostProfiler observes TraceSession span open/close events and,
 * at each boundary, snapshots the node's Accounting counter.  The
 * instruction delta of a span minus the deltas of its children is
 * the span's *self* cost, folded into a stack keyed by the full span
 * path — exactly the folded-stack text format flamegraph.pl and
 * speedscope consume, except the leaf is a (feature, category) pair
 * so a flamegraph shows *where* the paper's buffer-management /
 * in-order / fault-tolerance instructions are spent, not just how
 * many there are.
 *
 * The profiler is a pure reader: it never charges an Accounting
 * object, so instruction counts are bit-identical with profiling on
 * or off.
 */

#ifndef MSGSIM_PROF_PROFILER_HH
#define MSGSIM_PROF_PROFILER_HH

#include <map>
#include <string>
#include <vector>

#include "core/counter.hh"
#include "core/json.hh"
#include "core/types.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

class Accounting;

namespace prof
{

/**
 * Space-free feature name for folded stacks and JSON keys (the
 * display names in core/op.cc carry spaces, which the flamegraph
 * folded format reserves for the count separator).
 */
const char *featureSlug(Feature feat);

/**
 * Folds per-span Accounting deltas into feature x category stacks.
 * Bind it to a TraceSession with setSpanObserver(); spans on nodes
 * that were not bindNode()d are ignored.
 */
class CostProfiler : public TraceSession::SpanObserver
{
  public:
    /// @p prefix becomes the first folded-stack frame (typically the
    /// substrate name, so two runs diff cleanly side by side).
    explicit CostProfiler(std::string prefix = "");

    /** Associate @p node's spans with @p acct's counter. */
    void bindNode(NodeId node, const Accounting *acct);

    // TraceSession::SpanObserver implementation.
    void onBeginSpan(NodeId node, const char *cat,
                     const char *name) override;
    void onEndSpan(NodeId node, const char *cat,
                   const char *name) override;

    /** Self-cost counters keyed by full span path (deterministic). */
    const std::map<std::string, InstrCounter> &
    stacks() const
    {
        return stacks_;
    }

    /**
     * Folded-stack text: one line per
     * `prefix;nodeN;cat/name;...;Feature;category count`, only
     * non-zero cells, sorted by path.
     */
    std::string foldedStacks() const;

    /** Spans discarded because their node had no bound counter. */
    std::uint64_t unboundSpans() const { return unboundSpans_; }

  private:
    struct Frame
    {
        std::string path;
        InstrCounter snapshot; ///< counter at span open
        InstrCounter childSum; ///< sum of completed child deltas
    };

    std::string prefix_;
    std::map<NodeId, const Accounting *> accts_;
    std::map<NodeId, std::vector<Frame>> frames_;
    std::map<std::string, InstrCounter> stacks_;
    std::uint64_t unboundSpans_ = 0;
};

} // namespace prof
} // namespace msgsim

#endif // MSGSIM_PROF_PROFILER_HH

#include "prof/profiler.hh"

#include "core/accounting.hh"

namespace msgsim::prof
{

const char *
featureSlug(Feature feat)
{
    switch (feat) {
      case Feature::BaseCost:        return "base_cost";
      case Feature::BufferMgmt:      return "buffer_mgmt";
      case Feature::InOrderDelivery: return "in_order";
      case Feature::FaultTolerance:  return "fault_tol";
      case Feature::Idle:            return "idle";
      case Feature::CompletionPoll:  return "completion_poll";
      case Feature::Registration:    return "registration";
      case Feature::Framing:         return "framing";
      default:                       return "?";
    }
}

CostProfiler::CostProfiler(std::string prefix)
    : prefix_(std::move(prefix))
{
}

void
CostProfiler::bindNode(NodeId node, const Accounting *acct)
{
    accts_[node] = acct;
}

void
CostProfiler::onBeginSpan(NodeId node, const char *cat,
                          const char *name)
{
    auto it = accts_.find(node);
    if (it == accts_.end() || it->second == nullptr) {
        ++unboundSpans_;
        return;
    }
    auto &stack = frames_[node];
    Frame f;
    if (stack.empty()) {
        f.path = prefix_.empty() ? std::string() : prefix_ + ";";
        f.path += "node" + std::to_string(node);
    } else {
        f.path = stack.back().path;
    }
    f.path += ";";
    f.path += cat;
    f.path += "/";
    f.path += name;
    f.snapshot = it->second->counter();
    stack.push_back(std::move(f));
}

void
CostProfiler::onEndSpan(NodeId node, const char *cat,
                        const char *name)
{
    (void)cat;
    (void)name;
    auto ait = accts_.find(node);
    auto fit = frames_.find(node);
    if (ait == accts_.end() || fit == frames_.end() ||
        fit->second.empty())
        return; // span opened before this node was bound
    auto &stack = fit->second;
    Frame f = std::move(stack.back());
    stack.pop_back();

    const InstrCounter delta = ait->second->counter().diff(f.snapshot);
    stacks_[f.path] += delta.diff(f.childSum);
    if (!stack.empty())
        stack.back().childSum += delta;
}

std::string
CostProfiler::foldedStacks() const
{
    std::string out;
    for (const auto &[path, counter] : stacks_) {
        for (int fi = 0; fi < numFeatures; ++fi) {
            const auto feat = static_cast<Feature>(fi);
            for (int ci = 0; ci < numCategories; ++ci) {
                const auto cat = static_cast<Category>(ci);
                const std::uint64_t n = counter.category(feat, cat);
                if (n == 0)
                    continue;
                out += path;
                out += ";";
                out += featureSlug(feat);
                out += ";";
                out += toString(cat);
                out += " ";
                out += std::to_string(n);
                out += "\n";
            }
        }
    }
    return out;
}

} // namespace msgsim::prof

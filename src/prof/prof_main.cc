/**
 * @file
 * msgsim-prof: profiled protocol runs, latency waterfalls,
 * flamegraph folded stacks, and the CM-5-vs-CR differential table.
 *
 *     msgsim-prof --protocol=xfer --substrate=cm5 --baseline=cr
 *
 * prints the paper's headline comparison: the buffer-management,
 * in-order-delivery and fault-tolerance instruction counts of the
 * finite-sequence transfer vanish on the CR substrate while the
 * base cost stays put.  The bare flag form
 *
 *     msgsim-prof --substrate=rdma --baseline
 *
 * diffs the cm5 run against the named modern substrate — one column
 * of the substrate × feature matrix, with the completion-poll,
 * registration and host-dispatch rows the classic table lacks.
 * Composes with the observability flags (--trace-out /
 * --metrics-out): the traced timeline of the primary run gains
 * per-packet lineage flow arrows.
 */

#include <cstdio>
#include <fstream>

#include "prof/prof_cli.hh"
#include "prof/profile.hh"
#include "prof/profiler.hh"
#include "sim/obs_cli.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: msgsim-prof [--protocol=single|am4|xfer|stream|wire]\n"
        "                   [--substrate=cm5|cr|rdma|nicam]\n"
        "                   [--baseline=cm5|cr|rdma|nicam]\n"
        "                   [--baseline]  (bare: cm5 vs --substrate)\n"
        "                   [--words=N] [--nodes=N] [--group-ack=G]\n"
        "                   [--flame-out=F] [--waterfall-out=F]\n"
        "                   [--json-out=F] [--trace-out=F]\n"
        "                   [--metrics-out=F]\n");
}

bool
writeFile(const std::string &path, const std::string &text,
          const char *what)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "msgsim-prof: cannot write %s to %s\n",
                     what, path.c_str());
        return false;
    }
    out << text;
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace msgsim;

    obs::Options obsOpts = obs::parseArgs(argc, argv);
    prof::CliOptions cli = prof::parseArgs(argc, argv);
    if (argc > 1) {
        std::fprintf(stderr, "msgsim-prof: unknown argument '%s'\n",
                     argv[1]);
        usage();
        return 2;
    }

    Substrate primarySub;
    if (!prof::parseSubstrate(cli.substrate, primarySub)) {
        std::fprintf(stderr, "msgsim-prof: unknown substrate '%s'\n",
                     cli.substrate.c_str());
        usage();
        return 2;
    }
    Substrate baselineSub = Substrate::Cr;
    if (!cli.baseline.empty() &&
        !prof::parseSubstrate(cli.baseline, baselineSub)) {
        std::fprintf(stderr, "msgsim-prof: unknown baseline '%s'\n",
                     cli.baseline.c_str());
        usage();
        return 2;
    }
    if (cli.baselineBare) {
        // Bare --baseline: the classic cm5 column is the primary and
        // the named substrate the baseline, so its saved overheads
        // read "vanishes" and its new costs read "appears".
        baselineSub = primarySub;
        primarySub = Substrate::Cm5;
    }
    const bool wantDiff = cli.baselineBare || !cli.baseline.empty();

    obs::Scope scope(obsOpts);

    prof::ProfConfig primaryCfg;
    primaryCfg.protocol = cli.protocol;
    primaryCfg.substrate = primarySub;
    primaryCfg.nodes = cli.nodes;
    primaryCfg.words = cli.words;
    primaryCfg.groupAck = cli.groupAck;

    const prof::ProfRun primary = prof::runProfiled(primaryCfg);
    bool ok = primary.result.dataOk;

    std::printf("%s/%s: %llu paper instructions, %llu packets "
                "traced, %llu lineage edges\n",
                toString(primaryCfg.substrate),
                primaryCfg.protocol.c_str(),
                static_cast<unsigned long long>(
                    primary.result.counts.paperTotal()),
                static_cast<unsigned long long>(
                    primary.packetsTracked),
                static_cast<unsigned long long>(
                    primary.lineageEdges));
    std::printf("\n%s", primary.waterfall.render().c_str());

    if (!cli.flameOut.empty())
        ok = writeFile(cli.flameOut, primary.folded,
                       "folded stacks") &&
             ok;
    if (!cli.waterfallOut.empty())
        ok = writeFile(cli.waterfallOut, primary.waterfall.render(),
                       "waterfall") &&
             ok;

    Json report = Json::object();
    if (wantDiff) {
        // The baseline run gets a private timeline so the
        // --trace-out artifact stays a single-run trace.
        if (scope.tracing())
            scope.session()->detach();

        prof::ProfConfig baselineCfg = primaryCfg;
        baselineCfg.substrate = baselineSub;
        const prof::ProfRun baseline =
            prof::runProfiled(baselineCfg);
        ok = ok && baseline.result.dataOk;

        const prof::Differential diff = prof::differential(
            primaryCfg, primary, baselineCfg, baseline);
        std::printf("\n%s", diff.markdown().c_str());
        report = diff.toJson();
    } else {
        Json run = Json::object();
        run.set("protocol", primaryCfg.protocol);
        run.set("substrate", toString(primaryCfg.substrate));
        run.set("words", std::uint64_t(primaryCfg.words));
        run.set("paper_total",
                primary.result.counts.paperTotal());
        for (int fi = 0; fi < numPaperFeatures; ++fi) {
            const auto feat = static_cast<Feature>(fi);
            run.set(prof::featureSlug(feat),
                    primary.result.counts.featureTotal(feat));
        }
        if (primaryCfg.protocol == "wire")
            run.set(prof::featureSlug(Feature::Framing),
                    primary.result.counts.featureTotal(
                        Feature::Framing));
        report.set("run", std::move(run));
        report.set("waterfall", primary.waterfall.toJson());
    }
    if (!cli.jsonOut.empty())
        ok = writeFile(cli.jsonOut, report.dump(2) + "\n",
                       "report") &&
             ok;

    if (!ok)
        std::fprintf(stderr, "msgsim-prof: FAILED (data integrity "
                             "or output error)\n");
    return ok ? 0 : 1;
}

/**
 * @file
 * Fine-grained cost rows for single-packet delivery (paper Table 1).
 *
 * Table 1 breaks the single-packet send/receive paths into functional
 * rows (Call/Return, NI setup, ...).  We attribute each charged
 * operation to one of these rows, in parallel with the feature axis,
 * so the table can be regenerated from execution.
 */

#ifndef MSGSIM_CORE_ROW_HH
#define MSGSIM_CORE_ROW_HH

#include <cstdint>

namespace msgsim
{

/** Row labels of the paper's Table 1. */
enum class CostRow : std::uint8_t
{
    CallReturn,   ///< procedure call, register-window save, return
    NiSetup,      ///< computing NI addresses / tags before injection
    WriteNi,      ///< stores of user data into the NI send FIFO
    ReadNi,       ///< loads of packet data from the NI receive FIFO
    CheckStatus,  ///< polling / testing NI status registers
    ControlFlow,  ///< loop and dispatch branches
    Other,        ///< everything outside the single-packet fast path
    NumRows
};

/** Number of cost rows. */
constexpr int numCostRows = static_cast<int>(CostRow::NumRows);

/** Printable name of a cost row (matches Table 1 labels). */
const char *toString(CostRow row);

} // namespace msgsim

#endif // MSGSIM_CORE_ROW_HH

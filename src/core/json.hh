/**
 * @file
 * Minimal JSON document model for the lab's machine-readable
 * artifacts and golden files.
 *
 * Deliberately small: objects preserve insertion order (so emitted
 * documents are byte-deterministic), numbers distinguish integers
 * from reals (instruction counts round-trip exactly), and the parser
 * accepts exactly the documents the serializer produces plus
 * ordinary hand-edited JSON.  No external dependency.
 */

#ifndef MSGSIM_CORE_JSON_HH
#define MSGSIM_CORE_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace msgsim
{

/** One JSON value (null / bool / int / real / string / array / object). */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Real,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(std::int64_t i) : kind_(Kind::Int), int_(i) {}
    Json(std::uint64_t u)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(u))
    {
    }
    Json(int i) : kind_(Kind::Int), int_(i) {}
    Json(double d) : kind_(Kind::Real), real_(d) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}

    /** Make an empty array / object. */
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Real;
    }

    bool asBool() const { return bool_; }
    std::int64_t asInt() const { return int_; }
    /** Numeric value as double (works for Int and Real). */
    double asReal() const
    {
        return kind_ == Kind::Int ? static_cast<double>(int_) : real_;
    }
    const std::string &asString() const { return str_; }

    // Array access.
    void push(Json v);
    std::size_t size() const { return items_.size(); }
    const Json &at(std::size_t i) const { return items_[i]; }

    // Object access (insertion-ordered).
    void set(const std::string &key, Json v);
    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return fields_;
    }

    /** Serialize; @p indent 0 = compact, else pretty with that step. */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text.  Returns false (and fills @p error with a
     * line-annotated message) on malformed input.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double real_ = 0.0;
    std::string str_;
    std::vector<Json> items_;                          // Array
    std::vector<std::pair<std::string, Json>> fields_; // Object
};

/** Escape a string for embedding in JSON (adds no quotes). */
std::string jsonEscape(const std::string &s);

/** Deterministic formatting of a real number ("%.10g"). */
std::string jsonReal(double v);

} // namespace msgsim

#endif // MSGSIM_CORE_JSON_HH

#include "core/op.hh"

namespace msgsim
{

const char *
toString(OpClass cls)
{
    switch (cls) {
      case OpClass::Reg:      return "reg";
      case OpClass::MemLoad:  return "mem.load";
      case OpClass::MemStore: return "mem.store";
      case OpClass::DevLoad:  return "dev.load";
      case OpClass::DevStore: return "dev.store";
      default:                return "?";
    }
}

const char *
toString(Category cat)
{
    switch (cat) {
      case Category::Reg: return "reg";
      case Category::Mem: return "mem";
      case Category::Dev: return "dev";
      default:            return "?";
    }
}

const char *
toString(Feature feat)
{
    switch (feat) {
      case Feature::BaseCost:        return "Base Cost";
      case Feature::BufferMgmt:      return "Buffer Mgmt.";
      case Feature::InOrderDelivery: return "In-order Del.";
      case Feature::FaultTolerance:  return "Fault-toler.";
      case Feature::Idle:            return "Idle";
      case Feature::CompletionPoll:  return "Compl. Poll";
      case Feature::Registration:    return "Registration";
      case Feature::Framing:         return "Framing";
      default:                       return "?";
    }
}

const char *
toString(Direction dir)
{
    switch (dir) {
      case Direction::Source:      return "Source";
      case Direction::Destination: return "Destination";
      default:                     return "?";
    }
}

} // namespace msgsim

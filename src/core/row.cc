#include "core/row.hh"

namespace msgsim
{

const char *
toString(CostRow row)
{
    switch (row) {
      case CostRow::CallReturn:  return "Call/Return";
      case CostRow::NiSetup:     return "NI setup";
      case CostRow::WriteNi:     return "Write to NI";
      case CostRow::ReadNi:      return "Read from NI";
      case CostRow::CheckStatus: return "Check NI status";
      case CostRow::ControlFlow: return "Control flow";
      case CostRow::Other:       return "Other";
      default:                   return "?";
    }
}

} // namespace msgsim

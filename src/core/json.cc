#include "core/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace msgsim
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

void
Json::push(Json v)
{
    kind_ = Kind::Array;
    items_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    kind_ = Kind::Object;
    for (auto &[k, val] : fields_) {
        if (k == key) {
            val = std::move(v);
            return;
        }
    }
    fields_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, v] : fields_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonReal(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    // Ensure the value re-parses as a real, not an integer, so the
    // int/real distinction survives a golden round trip.
    std::string s = buf;
    if (s.find_first_of(".eEn") == std::string::npos)
        s += ".0";
    return s;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent ? std::string(static_cast<std::size_t>(indent) *
                                 (static_cast<std::size_t>(depth) + 1),
                             ' ')
               : std::string();
    const std::string close =
        indent ? std::string(static_cast<std::size_t>(indent) *
                                 static_cast<std::size_t>(depth),
                             ' ')
               : std::string();
    const char *nl = indent ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Real:
        out += jsonReal(real_);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < items_.size(); ++i) {
            out += pad;
            items_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items_.size())
                out += ',';
            out += nl;
            if (!indent && i + 1 < items_.size())
                out += ' ';
        }
        out += close;
        out += ']';
        break;
      }
      case Kind::Object: {
        if (fields_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            out += pad;
            out += '"';
            out += jsonEscape(fields_[i].first);
            out += "\": ";
            fields_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < fields_.size())
                out += ',';
            out += nl;
            if (!indent && i + 1 < fields_.size())
                out += ' ';
        }
        out += close;
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent)
        out += '\n';
    return out;
}

namespace
{

/** Recursive-descent parser over a string view. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); ++i)
            if (text[i] == '\n')
                ++line;
        error = "json: line " + std::to_string(line) + ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("dangling escape");
                char e = text[pos++];
                switch (e) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'n':  out += '\n'; break;
                  case 't':  out += '\t'; break;
                  case 'r':  out += '\r'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // Only BMP code points below 0x80 are emitted by
                    // our serializer; encode others as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json v;
                if (!parseValue(v))
                    return false;
                out.set(key, std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Json v;
                if (!parseValue(v))
                    return false;
                out.push(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Json(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Json(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = Json();
            return true;
        }
        // Number: integer unless it contains '.', 'e', or 'E'.
        std::size_t start = pos;
        if (c == '-' || c == '+')
            ++pos;
        bool isReal = false;
        while (pos < text.size()) {
            char d = text[pos];
            if (std::isdigit(static_cast<unsigned char>(d))) {
                ++pos;
            } else if (d == '.' || d == 'e' || d == 'E' || d == '-' ||
                       d == '+') {
                if (d == '.' || d == 'e' || d == 'E')
                    isReal = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start)
            return fail("unexpected character");
        const std::string tok = text.substr(start, pos - start);
        if (isReal) {
            out = Json(std::strtod(tok.c_str(), nullptr));
        } else {
            out = Json(static_cast<std::int64_t>(
                std::strtoll(tok.c_str(), nullptr, 10)));
        }
        return true;
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error) {
            p.fail("trailing garbage");
            *error = p.error;
        }
        return false;
    }
    return true;
}

} // namespace msgsim

/**
 * @file
 * Instruction-accounting taxonomy.
 *
 * Karamcheti & Chien (ASPLOS '94) classify every dynamic instruction of
 * the messaging layer along two axes:
 *
 *  - an *instruction category* reflecting the machine's cost hierarchy
 *    (Appendix A): register-based instructions (reg), loads/stores to
 *    memory (mem), and loads/stores to memory-mapped devices (dev);
 *
 *  - a *messaging feature* the instruction pays for (Section 3): the
 *    base data-movement cost, buffer management, in-order delivery, or
 *    fault tolerance.
 *
 * We keep a slightly finer operation class (splitting loads from
 * stores) and project onto the paper's three categories for reporting.
 */

#ifndef MSGSIM_CORE_OP_HH
#define MSGSIM_CORE_OP_HH

#include <cstdint>

namespace msgsim
{

/**
 * Fine-grained operation class charged by the Processor primitives.
 */
enum class OpClass : std::uint8_t
{
    Reg,        ///< register arithmetic / logic / branch / call / return
    MemLoad,    ///< load from node memory (SPARC ld / ldd = one op)
    MemStore,   ///< store to node memory (st / std = one op)
    DevLoad,    ///< load from a memory-mapped NI register
    DevStore,   ///< store to a memory-mapped NI register
    NumClasses
};

/** Number of fine-grained operation classes. */
constexpr int numOpClasses = static_cast<int>(OpClass::NumClasses);

/**
 * The paper's three-way cost-hierarchy category (Appendix A).
 */
enum class Category : std::uint8_t
{
    Reg,
    Mem,
    Dev,
    NumCategories
};

/** Number of coarse categories. */
constexpr int numCategories = static_cast<int>(Category::NumCategories);

/**
 * The messaging-layer feature an instruction is attributed to
 * (the row labels of the paper's Tables 2 and 3).
 *
 * Idle is an extension of ours: in event-driven execution, polls that
 * find no packet are charged here so that the paper's four features
 * stay directly comparable with the calibration tables.
 *
 * CompletionPoll and Registration are further extensions for the
 * modern substrate family (rdma/nicam): overheads the 1994 layers
 * never paid, but which verbs-style NICs introduce — harvesting
 * completion-queue entries, and pinning/translating memory regions
 * before the NIC may touch them.  They come AFTER Idle so that the
 * paper-feature indices (and every golden-pinned table) are
 * unchanged; paperTotal() still sums only the first four.
 *
 * Framing is the fifth measurable feature column (src/wire): the
 * marshalling / COBS-framing / CRC bill a concrete byte-level wire
 * format adds on top of the abstract packet protocols.  Appended
 * after Registration under the same convention, so paperTotal() and
 * every classic golden stay byte-identical.
 */
enum class Feature : std::uint8_t
{
    BaseCost,       ///< data movement: NI access plus memory copies
    BufferMgmt,     ///< segment pre-allocation / deallocation handshakes
    InOrderDelivery,///< sequencing, offsets, reorder buffering
    FaultTolerance, ///< source buffering, acks, retransmission
    Idle,           ///< unproductive polling (event mode only)
    CompletionPoll, ///< harvesting NIC completion-queue entries (rdma)
    Registration,   ///< memory-region pin/translate before NIC access
    Framing,        ///< wire marshalling, COBS framing, CRC (src/wire)
    NumFeatures
};

/** Number of features. */
constexpr int numFeatures = static_cast<int>(Feature::NumFeatures);

/** The four features the paper reports (excludes Idle). */
constexpr int numPaperFeatures = 4;

/** Which node role executed an instruction. */
enum class Direction : std::uint8_t
{
    Source,
    Destination,
    NumDirections
};

/** Number of directions. */
constexpr int numDirections = static_cast<int>(Direction::NumDirections);

/** Project a fine operation class onto the paper's category. */
constexpr Category
categoryOf(OpClass cls)
{
    switch (cls) {
      case OpClass::Reg:
        return Category::Reg;
      case OpClass::MemLoad:
      case OpClass::MemStore:
        return Category::Mem;
      case OpClass::DevLoad:
      case OpClass::DevStore:
        return Category::Dev;
      default:
        return Category::Reg;
    }
}

/** Printable name of an operation class. */
const char *toString(OpClass cls);

/** Printable name of a category. */
const char *toString(Category cat);

/** Printable name of a feature (matches the paper's row labels). */
const char *toString(Feature feat);

/** Printable name of a direction (matches the paper's column labels). */
const char *toString(Direction dir);

} // namespace msgsim

#endif // MSGSIM_CORE_OP_HH

#include "core/report.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace msgsim
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };

    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string &v = cells[c];
            std::string pad(widths[c] - v.size(), ' ');
            // Left-align the label column, right-align values.
            if (c == 0)
                s += " " + v + pad + " |";
            else
                s += " " + pad + v + " |";
        }
        s += "\n";
        return s;
    };

    std::string out = rule() + line(headers_) + rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out += rule();
        else
            out += line(row);
    }
    out += rule();
    return out;
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                out << ",";
            out << cells[c];
        }
        out << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        if (!row.empty())
            emit(row);
    return out.str();
}

std::string
fmtCount(std::uint64_t v)
{
    return v == 0 ? std::string("-") : std::to_string(v);
}

std::string
featureTable(const std::string &title, const BreakdownCounter &bd)
{
    TextTable t({"Feature", "Source", "Destination", "Total"});
    for (int f = 0; f < numPaperFeatures; ++f) {
        auto feat = static_cast<Feature>(f);
        const auto s = bd.src.featureTotal(feat);
        const auto d = bd.dst.featureTotal(feat);
        t.addRow({toString(feat), fmtCount(s), fmtCount(d),
                  fmtCount(s + d)});
    }
    t.addSeparator();
    t.addRow({"Total", std::to_string(bd.src.paperTotal()),
              std::to_string(bd.dst.paperTotal()),
              std::to_string(bd.paperTotal())});
    return title + "\n" + t.render();
}

std::string
categoryTable(const std::string &title, const BreakdownCounter &bd)
{
    TextTable t({"Feature", "src reg", "src mem", "src dev", "dst reg",
                 "dst mem", "dst dev"});
    for (int f = 0; f < numPaperFeatures; ++f) {
        auto feat = static_cast<Feature>(f);
        t.addRow({toString(feat),
                  fmtCount(bd.src.category(feat, Category::Reg)),
                  fmtCount(bd.src.category(feat, Category::Mem)),
                  fmtCount(bd.src.category(feat, Category::Dev)),
                  fmtCount(bd.dst.category(feat, Category::Reg)),
                  fmtCount(bd.dst.category(feat, Category::Mem)),
                  fmtCount(bd.dst.category(feat, Category::Dev))});
    }
    auto catTotal = [](const InstrCounter &c, Category cat) {
        std::uint64_t sum = 0;
        for (int f = 0; f < numPaperFeatures; ++f)
            sum += c.category(static_cast<Feature>(f), cat);
        return sum;
    };
    t.addSeparator();
    t.addRow({"Total",
              fmtCount(catTotal(bd.src, Category::Reg)),
              fmtCount(catTotal(bd.src, Category::Mem)),
              fmtCount(catTotal(bd.src, Category::Dev)),
              fmtCount(catTotal(bd.dst, Category::Reg)),
              fmtCount(catTotal(bd.dst, Category::Mem)),
              fmtCount(catTotal(bd.dst, Category::Dev))});
    return title + "\n" + t.render();
}

std::string
rowTable(const std::string &title, const Accounting &src,
         const Accounting &dst)
{
    TextTable t({"Description", "Source", "Destination"});
    std::uint64_t stotal = 0, dtotal = 0;
    for (int r = 0; r < numCostRows; ++r) {
        auto row = static_cast<CostRow>(r);
        const auto s = src.rowTotal(row);
        const auto d = dst.rowTotal(row);
        if (row == CostRow::Other && s == 0 && d == 0)
            continue;
        t.addRow({toString(row), fmtCount(s), fmtCount(d)});
        stotal += s;
        dtotal += d;
    }
    t.addSeparator();
    t.addRow({"Total", std::to_string(stotal), std::to_string(dtotal)});
    return title + "\n" + t.render();
}

std::string
cycleTable(const std::string &title, const BreakdownCounter &bd,
           const CostModel &model)
{
    auto fmt = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return std::string(buf);
    };
    TextTable t({"Feature", "Source", "Destination", "Total"});
    for (int f = 0; f < numPaperFeatures; ++f) {
        auto feat = static_cast<Feature>(f);
        const double s = model.cycles(bd.src, feat);
        const double d = model.cycles(bd.dst, feat);
        t.addRow({toString(feat), fmt(s), fmt(d), fmt(s + d)});
    }
    t.addSeparator();
    t.addRow({"Total", fmt(model.cycles(bd.src)), fmt(model.cycles(bd.dst)),
              fmt(model.cycles(bd))});
    return title + " [cost model: " + model.name + "]\n" + t.render();
}

} // namespace msgsim

/**
 * @file
 * Charging context: where every modeled instruction gets recorded.
 *
 * An Accounting object is embedded in each modeled Processor.  It
 * carries the *current* feature and Table-1 row attribution, which
 * messaging-layer code sets with RAII scopes, so the primitive
 * operations themselves stay attribution-agnostic.
 */

#ifndef MSGSIM_CORE_ACCOUNTING_HH
#define MSGSIM_CORE_ACCOUNTING_HH

#include <array>
#include <cstdint>

#include "core/counter.hh"
#include "core/op.hh"
#include "core/row.hh"

namespace msgsim
{

/**
 * Accumulates charged operations under the currently scoped feature
 * and cost row.
 */
class Accounting
{
  public:
    /** Record @p n operations of class @p cls. */
    void
    charge(OpClass cls, std::uint64_t n = 1)
    {
        counter_.add(feature_, cls, n);
        rows_[static_cast<int>(row_)] += n;
    }

    /** Currently scoped feature. */
    Feature feature() const { return feature_; }

    /** Currently scoped Table-1 row. */
    CostRow row() const { return row_; }

    /** The accumulated counts. */
    const InstrCounter &counter() const { return counter_; }

    /** Accumulated count for one Table-1 row. */
    std::uint64_t
    rowTotal(CostRow row) const
    {
        return rows_[static_cast<int>(row)];
    }

    /** All Table-1 row totals. */
    const std::array<std::uint64_t, numCostRows> &
    rowTotals() const
    {
        return rows_;
    }

    /** Drop all accumulated state (scopes are unaffected). */
    void
    clear()
    {
        counter_.clear();
        rows_.fill(0);
    }

  private:
    friend class FeatureScope;
    friend class RowScope;

    InstrCounter counter_;
    std::array<std::uint64_t, numCostRows> rows_{};
    Feature feature_ = Feature::BaseCost;
    CostRow row_ = CostRow::Other;
};

/**
 * RAII scope that attributes all charges inside it to one feature.
 * Nested scopes restore the previous attribution on destruction.
 */
class FeatureScope
{
  public:
    FeatureScope(Accounting &acct, Feature feat)
        : acct_(acct), saved_(acct.feature_)
    {
        acct_.feature_ = feat;
    }

    ~FeatureScope() { acct_.feature_ = saved_; }

    FeatureScope(const FeatureScope &) = delete;
    FeatureScope &operator=(const FeatureScope &) = delete;

  private:
    Accounting &acct_;
    Feature saved_;
};

/**
 * RAII scope that attributes all charges inside it to one Table-1 row.
 */
class RowScope
{
  public:
    RowScope(Accounting &acct, CostRow row)
        : acct_(acct), saved_(acct.row_)
    {
        acct_.row_ = row;
    }

    ~RowScope() { acct_.row_ = saved_; }

    RowScope(const RowScope &) = delete;
    RowScope &operator=(const RowScope &) = delete;

  private:
    Accounting &acct_;
    CostRow saved_;
};

} // namespace msgsim

#endif // MSGSIM_CORE_ACCOUNTING_HH

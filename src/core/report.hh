/**
 * @file
 * Text-table rendering of instruction-count breakdowns.
 *
 * The benches regenerate the paper's tables with these helpers:
 * featureTable() has the shape of Table 2, categoryTable() the shape
 * of Table 3 (Appendix A), and TextTable is the generic fixed-width
 * renderer underneath.  CSV output is provided for post-processing.
 */

#ifndef MSGSIM_CORE_REPORT_HH
#define MSGSIM_CORE_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/accounting.hh"
#include "core/cost_model.hh"
#include "core/counter.hh"

namespace msgsim
{

/**
 * A simple fixed-width text table: first column left-aligned labels,
 * remaining columns right-aligned values.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render with padding and rules. */
    std::string render() const;

    /** Render as CSV (separators are skipped). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row = separator
};

/** Format a count, rendering zero as "-" like the paper's tables. */
std::string fmtCount(std::uint64_t v);

/**
 * Render a Table-2-shaped feature breakdown:
 * rows = the four paper features + Total, columns = Source /
 * Destination / Total.
 */
std::string featureTable(const std::string &title,
                         const BreakdownCounter &bd);

/**
 * Render a Table-3-shaped category breakdown:
 * rows = features + Total, columns = reg/mem/dev for each role.
 */
std::string categoryTable(const std::string &title,
                          const BreakdownCounter &bd);

/**
 * Render a Table-1-shaped row breakdown from source and destination
 * accounting contexts.
 */
std::string rowTable(const std::string &title, const Accounting &src,
                     const Accounting &dst);

/**
 * Render a feature breakdown weighted by a cost model (modeled
 * cycles instead of raw instruction counts).
 */
std::string cycleTable(const std::string &title,
                       const BreakdownCounter &bd, const CostModel &model);

} // namespace msgsim

#endif // MSGSIM_CORE_REPORT_HH

/**
 * @file
 * Weighted instruction-cost models.
 *
 * Appendix A of the paper: "a model for the CM-5 hardware might assume
 * that reg and mem instructions cost 1 cycle each, while a dev
 * instruction costs 5 cycles".  A CostModel turns category counts into
 * modeled cycles; the unit model reproduces the paper's main-body
 * convention that "all instructions are assumed to have unit cost".
 */

#ifndef MSGSIM_CORE_COST_MODEL_HH
#define MSGSIM_CORE_COST_MODEL_HH

#include <string>

#include "core/counter.hh"
#include "core/op.hh"

namespace msgsim
{

/**
 * A linear, category-weighted cost model over instruction counts.
 */
struct CostModel
{
    /** Human-readable model name, used by reports. */
    std::string name = "unit";

    double regWeight = 1.0; ///< cycles per register instruction
    double memWeight = 1.0; ///< cycles per memory load/store
    double devWeight = 1.0; ///< cycles per device (NI) load/store

    /** The paper's main-body convention: every instruction costs 1. */
    static CostModel
    unit()
    {
        return {"unit", 1.0, 1.0, 1.0};
    }

    /** The Appendix A CM-5 example: reg = mem = 1 cycle, dev = 5. */
    static CostModel
    cm5()
    {
        return {"cm5", 1.0, 1.0, 5.0};
    }

    /** Weight applied to one coarse category. */
    double
    weight(Category cat) const
    {
        switch (cat) {
          case Category::Reg: return regWeight;
          case Category::Mem: return memWeight;
          case Category::Dev: return devWeight;
          default:            return 0.0;
        }
    }

    /** Weight applied to one fine operation class. */
    double
    weight(OpClass cls) const
    {
        return weight(categoryOf(cls));
    }

    /** Modeled cycles for everything in @p counter (paper features). */
    double cycles(const InstrCounter &counter) const;

    /** Modeled cycles for one feature of @p counter. */
    double cycles(const InstrCounter &counter, Feature feat) const;

    /** Modeled cycles for both roles of a breakdown. */
    double
    cycles(const BreakdownCounter &bd) const
    {
        return cycles(bd.src) + cycles(bd.dst);
    }
};

} // namespace msgsim

#endif // MSGSIM_CORE_COST_MODEL_HH

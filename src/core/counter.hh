/**
 * @file
 * Dynamic instruction counters.
 *
 * An InstrCounter accumulates dynamic instruction counts along the
 * (Feature x OpClass) axes for one node role, mirroring the paper's
 * measurement methodology: "Costs were measured using dynamic
 * instruction counts of the CMAM assembly code".  A BreakdownCounter
 * pairs a source-side and destination-side InstrCounter so a whole
 * protocol run can be reported in the shape of the paper's Tables 2/3.
 */

#ifndef MSGSIM_CORE_COUNTER_HH
#define MSGSIM_CORE_COUNTER_HH

#include <array>
#include <cstdint>

#include "core/op.hh"

namespace msgsim
{

/**
 * Per-role dynamic instruction counts, indexed by feature and
 * fine-grained operation class.
 */
class InstrCounter
{
  public:
    InstrCounter() { clear(); }

    /** Reset all counts to zero. */
    void
    clear()
    {
        for (auto &row : counts)
            row.fill(0);
    }

    /** Accumulate @p n operations of class @p cls under @p feat. */
    void
    add(Feature feat, OpClass cls, std::uint64_t n = 1)
    {
        counts[idx(feat)][idx(cls)] += n;
    }

    /** Count for one (feature, op-class) cell. */
    std::uint64_t
    get(Feature feat, OpClass cls) const
    {
        return counts[idx(feat)][idx(cls)];
    }

    /** Count for one (feature, paper-category) cell. */
    std::uint64_t category(Feature feat, Category cat) const;

    /** Total instructions attributed to @p feat. */
    std::uint64_t featureTotal(Feature feat) const;

    /** Total instructions in paper-category @p cat over all features. */
    std::uint64_t categoryTotal(Category cat) const;

    /**
     * Total instructions over the paper's four features (excludes
     * Idle, so the calibration-mode totals line up with the tables).
     */
    std::uint64_t paperTotal() const;

    /** Total over every feature including Idle. */
    std::uint64_t total() const;

    /** Element-wise accumulate another counter into this one. */
    InstrCounter &operator+=(const InstrCounter &other);

    /** Element-wise sum. */
    friend InstrCounter
    operator+(InstrCounter a, const InstrCounter &b)
    {
        a += b;
        return a;
    }

    /** Element-wise difference (saturating at zero is NOT applied). */
    InstrCounter diff(const InstrCounter &baseline) const;

    /** Exact equality of every cell. */
    bool operator==(const InstrCounter &other) const = default;

  private:
    static constexpr int
    idx(Feature f)
    {
        return static_cast<int>(f);
    }

    static constexpr int
    idx(OpClass c)
    {
        return static_cast<int>(c);
    }

    std::array<std::array<std::uint64_t, numOpClasses>, numFeatures> counts;
};

/**
 * Source + destination counters for one protocol run, i.e. one row
 * group of the paper's Table 2 (and, via categories, Table 3).
 */
struct BreakdownCounter
{
    InstrCounter src;
    InstrCounter dst;

    /** Paper-total (source + destination, four features). */
    std::uint64_t
    paperTotal() const
    {
        return src.paperTotal() + dst.paperTotal();
    }

    /** Per-feature total across both roles. */
    std::uint64_t
    featureTotal(Feature feat) const
    {
        return src.featureTotal(feat) + dst.featureTotal(feat);
    }

    /**
     * Fraction of the paper-total spent on features other than the
     * base cost: the paper's "messaging overhead".
     */
    double overheadFraction() const;

    BreakdownCounter &operator+=(const BreakdownCounter &other);

    void
    clear()
    {
        src.clear();
        dst.clear();
    }
};

} // namespace msgsim

#endif // MSGSIM_CORE_COUNTER_HH

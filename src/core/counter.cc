#include "core/counter.hh"

namespace msgsim
{

std::uint64_t
InstrCounter::category(Feature feat, Category cat) const
{
    std::uint64_t sum = 0;
    for (int c = 0; c < numOpClasses; ++c) {
        auto cls = static_cast<OpClass>(c);
        if (categoryOf(cls) == cat)
            sum += counts[idx(feat)][c];
    }
    return sum;
}

std::uint64_t
InstrCounter::featureTotal(Feature feat) const
{
    std::uint64_t sum = 0;
    for (auto v : counts[idx(feat)])
        sum += v;
    return sum;
}

std::uint64_t
InstrCounter::categoryTotal(Category cat) const
{
    std::uint64_t sum = 0;
    for (int f = 0; f < numFeatures; ++f)
        sum += category(static_cast<Feature>(f), cat);
    return sum;
}

std::uint64_t
InstrCounter::paperTotal() const
{
    std::uint64_t sum = 0;
    for (int f = 0; f < numPaperFeatures; ++f)
        sum += featureTotal(static_cast<Feature>(f));
    return sum;
}

std::uint64_t
InstrCounter::total() const
{
    std::uint64_t sum = 0;
    for (int f = 0; f < numFeatures; ++f)
        sum += featureTotal(static_cast<Feature>(f));
    return sum;
}

InstrCounter &
InstrCounter::operator+=(const InstrCounter &other)
{
    for (int f = 0; f < numFeatures; ++f)
        for (int c = 0; c < numOpClasses; ++c)
            counts[f][c] += other.counts[f][c];
    return *this;
}

InstrCounter
InstrCounter::diff(const InstrCounter &baseline) const
{
    InstrCounter out;
    for (int f = 0; f < numFeatures; ++f)
        for (int c = 0; c < numOpClasses; ++c)
            out.counts[f][c] = counts[f][c] - baseline.counts[f][c];
    return out;
}

double
BreakdownCounter::overheadFraction() const
{
    const double total = static_cast<double>(paperTotal());
    if (total == 0.0)
        return 0.0;
    const double base = static_cast<double>(
        src.featureTotal(Feature::BaseCost) +
        dst.featureTotal(Feature::BaseCost));
    return (total - base) / total;
}

BreakdownCounter &
BreakdownCounter::operator+=(const BreakdownCounter &other)
{
    src += other.src;
    dst += other.dst;
    return *this;
}

} // namespace msgsim

/**
 * @file
 * Fundamental scalar types shared across the msgsim library.
 *
 * The modeled machine is a CM-5-like multicomputer: 32-bit words, a
 * word-addressed per-node memory, and a discrete simulation clock
 * measured in "ticks" (one tick is one modeled processor cycle at
 * unit instruction cost; weighted cost models rescale on top).
 */

#ifndef MSGSIM_CORE_TYPES_HH
#define MSGSIM_CORE_TYPES_HH

#include <cstdint>

namespace msgsim
{

/** A 32-bit machine word, the unit of all modeled data movement. */
using Word = std::uint32_t;

/** Identifier of a compute node in the machine (dense, 0-based). */
using NodeId = std::uint32_t;

/** Word-granularity address into a node-local memory. */
using Addr = std::uint32_t;

/** Simulation time, in ticks. */
using Tick = std::uint64_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = ~NodeId(0);

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~Addr(0);

} // namespace msgsim

#endif // MSGSIM_CORE_TYPES_HH

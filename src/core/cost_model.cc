#include "core/cost_model.hh"

namespace msgsim
{

double
CostModel::cycles(const InstrCounter &counter) const
{
    double sum = 0.0;
    for (int f = 0; f < numPaperFeatures; ++f)
        sum += cycles(counter, static_cast<Feature>(f));
    return sum;
}

double
CostModel::cycles(const InstrCounter &counter, Feature feat) const
{
    double sum = 0.0;
    for (int c = 0; c < numCategories; ++c) {
        auto cat = static_cast<Category>(c);
        sum += weight(cat) * static_cast<double>(counter.category(feat, cat));
    }
    return sum;
}

} // namespace msgsim

/**
 * @file
 * Common result type of protocol runs: the per-role instruction
 * breakdown plus functional-integrity and dynamic-behaviour stats.
 */

#ifndef MSGSIM_PROTOCOLS_RESULT_HH
#define MSGSIM_PROTOCOLS_RESULT_HH

#include <cstdint>

#include "core/counter.hh"
#include "core/types.hh"

namespace msgsim
{

/**
 * Outcome of one protocol run.
 */
struct RunResult
{
    BreakdownCounter counts; ///< source/destination instruction counts
    bool dataOk = false;     ///< end-to-end payload integrity verified
    Tick elapsed = 0;        ///< simulated time of the whole exchange

    std::uint64_t packets = 0;         ///< data packets sent (first try)
    /// Host instructions spent on handler dispatch (poll linkage,
    /// status decode, handler linkage) — diagnostic mirror of the
    /// layer's dispatchOps() counters; zero on substrates that
    /// dispatch in the NIC.
    std::uint64_t dispatchOps = 0;
    std::uint64_t oooArrivals = 0;     ///< packets buffered out of order
    std::uint64_t acksSent = 0;        ///< acknowledgement packets
    std::uint64_t retransmissions = 0; ///< software retransmissions
    std::uint64_t duplicates = 0;      ///< duplicate data packets seen
};

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_RESULT_HH

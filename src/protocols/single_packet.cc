#include "protocols/single_packet.hh"

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim
{

SinglePacketResult
runSinglePacket(Stack &stack, const SinglePacketParams &params)
{
    hostprof::HostScope hps(hostprof::Site::ProtoSingle);
    SinglePacketResult res;
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);
    Cmam &csrc = stack.cmam(params.src);
    Cmam &cdst = stack.cmam(params.dst);
    // CMAM_4 carries four data words regardless of the hardware
    // packet maximum.
    const int n = 4;

    std::vector<Word> payload = params.payload;
    if (payload.empty())
        for (int i = 0; i < n; ++i)
            payload.push_back(0xfeed0000u + static_cast<Word>(i));

    std::vector<Word> received;
    const int handler = cdst.registerHandler(
        [&received](NodeId, const std::vector<Word> &args) {
            received = args;
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const auto src_rows_before = src.acct().rowTotals();
    const auto dst_rows_before = dst.acct().rowTotals();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        csrc.am4(params.dst, handler, payload);
    }
    stack.settle();
    {
        FeatureScope fs(dst.acct(), Feature::BaseCost);
        cdst.poll();
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    for (int r = 0; r < numCostRows; ++r) {
        res.srcRows[static_cast<std::size_t>(r)] =
            src.acct().rowTotals()[static_cast<std::size_t>(r)] -
            src_rows_before[static_cast<std::size_t>(r)];
        res.dstRows[static_cast<std::size_t>(r)] =
            dst.acct().rowTotals()[static_cast<std::size_t>(r)] -
            dst_rows_before[static_cast<std::size_t>(r)];
    }
    res.elapsed = stack.sim().now() - t0;
    res.packets = 1;

    // Integrity: the handler must have observed the payload,
    // zero-padded to the packet size.
    res.dataOk = static_cast<int>(received.size()) == n;
    if (res.dataOk)
        for (int i = 0; i < n; ++i) {
            const Word want = i < static_cast<int>(payload.size())
                                  ? payload[static_cast<std::size_t>(i)]
                                  : 0;
            if (received[static_cast<std::size_t>(i)] != want)
                res.dataOk = false;
        }
    return res;
}

} // namespace msgsim

#include "protocols/stack.hh"

#include "sim/log.hh"

namespace msgsim
{

const char *
toString(Substrate s)
{
    switch (s) {
      case Substrate::Cm5:   return "cm5";
      case Substrate::Cr:    return "cr";
      case Substrate::Rdma:  return "rdma";
      case Substrate::Nicam: return "nicam";
      default:               return "?";
    }
}

const char *
toString(RecvDiscipline d)
{
    switch (d) {
      case RecvDiscipline::Poll:      return "poll";
      case RecvDiscipline::Interrupt: return "interrupt";
      default:                        return "?";
    }
}

Stack::Stack(const StackConfig &cfg) : cfg_(cfg)
{
    Machine::Config mc;
    mc.nodes = cfg_.nodes;
    mc.dataWords = cfg_.dataWords;
    mc.memWords = cfg_.memWords;
    mc.recvCapacity = cfg_.recvCapacity;

    Machine::NetworkFactory factory;
    if (cfg_.substrate == Substrate::Cm5) {
        Cm5Network::Config nc;
        nc.nodes = cfg_.nodes;
        nc.orderFactory = cfg_.order ? cfg_.order : fifoOrderFactory();
        nc.faults = cfg_.faults;
        nc.maxJitter = cfg_.maxJitter;
        nc.injectBusyRate = cfg_.injectBusyRate;
        nc.seed = cfg_.seed;
        nc.injectGap = cfg_.injectGap;
        nc.deliverGap = cfg_.deliverGap;
        factory = [nc](Simulator &sim) {
            return std::make_unique<Cm5Network>(sim, nc);
        };
    } else if (cfg_.substrate == Substrate::Cr) {
        CrNetwork::Config nc;
        nc.nodes = cfg_.nodes;
        nc.faults = cfg_.faults;
        nc.injectGap = cfg_.injectGap;
        nc.deliverGap = cfg_.deliverGap;
        factory = [nc](Simulator &sim) {
            return std::make_unique<CrNetwork>(sim, nc);
        };
    } else if (cfg_.substrate == Substrate::Rdma) {
        // CMAM over the RDMA fabric: the model checker drives the
        // NI sink directly, exercising per-QP in-order reliable
        // delivery underneath unchanged software.
        RdmaNetwork::Config nc;
        nc.nodes = cfg_.nodes;
        nc.faults = cfg_.faults;
        nc.injectGap = cfg_.injectGap;
        nc.deliverGap = cfg_.deliverGap;
        factory = [nc](Simulator &sim) {
            return std::make_unique<RdmaNetwork>(sim, nc);
        };
    } else {
        // CMAM over the nicam fabric with an empty handler table:
        // every packet misses to the host, so software-recovery
        // exploration (drop/duplicate choices) still applies.
        NicamNetwork::Config nc;
        nc.nodes = cfg_.nodes;
        nc.orderFactory = cfg_.order ? cfg_.order : fifoOrderFactory();
        nc.faults = cfg_.faults;
        nc.maxJitter = cfg_.maxJitter;
        nc.injectBusyRate = cfg_.injectBusyRate;
        nc.seed = cfg_.seed;
        nc.injectGap = cfg_.injectGap;
        nc.deliverGap = cfg_.deliverGap;
        factory = [nc](Simulator &sim) {
            return std::make_unique<NicamNetwork>(sim, nc);
        };
    }

    machine_ = std::make_unique<Machine>(mc, factory);

    Cmam::Config cc;
    cc.maxSegments = cfg_.maxSegments;
    cc.dmaXfer = cfg_.dmaXfer;
    cc.kernelMediated = cfg_.kernelMediated;
    cmams_.reserve(cfg_.nodes);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i)
        cmams_.push_back(std::make_unique<Cmam>(machine_->node(i), cc));
}

Cmam &
Stack::cmam(NodeId id)
{
    if (id >= cmams_.size())
        msgsim_panic("cmam: node id ", id, " out of range");
    return *cmams_[id];
}

} // namespace msgsim

#include "protocols/socket.hh"

#include "hostprof/hostprof.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

StreamSocket::StreamSocket(StreamProtocol &proto, NodeId src,
                           NodeId dst, OnData onData,
                           const Options &opts)
    : proto_(proto), src_(src)
{
    chan_ = proto_.openPersistent(
        src, dst, opts.groupAck, opts.ringPackets,
        [cb = std::move(onData)](std::uint32_t,
                                 const std::vector<Word> &words) {
            if (cb)
                cb(words);
        });
    open_ = true;
}

StreamSocket::~StreamSocket()
{
    close();
}

void
StreamSocket::drain()
{
    if (!open_)
        return;
    ScopedSpan span(src_, "socket", "drain");
    hostprof::HostScope hps(hostprof::Site::ProtoSocket);
    // A partial ack group would leave the tail of the ring
    // unacknowledged forever; flush it before waiting.
    proto_.flushGroupAcks(chan_);
    proto_.flushChannel(chan_);
}

void
StreamSocket::close()
{
    if (!open_)
        return;
    drain();
    ScopedSpan span(src_, "socket", "close");
    hostprof::HostScope hps(hostprof::Site::ProtoSocket);
    proto_.closePersistent(chan_);
    open_ = false;
}

void
StreamSocket::write(const std::vector<Word> &words)
{
    ScopedSpan span(src_, "socket", "write");
    hostprof::HostScope hps(hostprof::Site::ProtoSocket);
    proto_.sendOn(chan_, words);
    packetsWritten_ += words.size() /
                       static_cast<std::size_t>(proto_.packetWords());
}

void
StreamSocket::flush()
{
    ScopedSpan span(src_, "socket", "flush");
    hostprof::HostScope hps(hostprof::Site::ProtoSocket);
    proto_.flushChannel(chan_);
}

std::uint64_t
StreamSocket::unacked() const
{
    return open_ ? proto_.channelUnacked(chan_) : 0;
}

std::uint64_t
StreamSocket::oooArrivals() const
{
    return open_ ? proto_.channelOoo(chan_) : 0;
}

} // namespace msgsim

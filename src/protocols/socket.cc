#include "protocols/socket.hh"

#include "sim/trace_session.hh"

namespace msgsim
{

StreamSocket::StreamSocket(StreamProtocol &proto, NodeId src,
                           NodeId dst, OnData onData,
                           const Options &opts)
    : proto_(proto), src_(src)
{
    chan_ = proto_.openPersistent(
        src, dst, opts.groupAck, opts.ringPackets,
        [cb = std::move(onData)](std::uint32_t,
                                 const std::vector<Word> &words) {
            if (cb)
                cb(words);
        });
}

StreamSocket::~StreamSocket()
{
    proto_.closePersistent(chan_);
}

void
StreamSocket::write(const std::vector<Word> &words)
{
    ScopedSpan span(src_, "socket", "write");
    proto_.sendOn(chan_, words);
    packetsWritten_ += words.size() /
                       static_cast<std::size_t>(proto_.packetWords());
}

void
StreamSocket::flush()
{
    ScopedSpan span(src_, "socket", "flush");
    proto_.flushChannel(chan_);
}

std::uint64_t
StreamSocket::unacked() const
{
    return proto_.channelUnacked(chan_);
}

std::uint64_t
StreamSocket::oooArrivals() const
{
    return proto_.channelOoo(chan_);
}

} // namespace msgsim

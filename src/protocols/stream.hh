/**
 * @file
 * Protocol 3: indefinite-sequence, multi-packet delivery (paper
 * Section 3.2, Figure 4) — a socket-like ordered stream between a
 * pair of nodes.
 *
 * Per packet the CMAM implementation pays for:
 *  - BaseCost: a full single-packet send (the stream is
 *    register-to-register, so no memory copies beyond the NI);
 *  - InOrderDelivery: sequence-number maintenance at the source
 *    (2 reg + 3 mem) and, at the destination, either the in-sequence
 *    fast path (6 reg) or the out-of-order buffering path (insert
 *    13 reg + (9 + n/2) mem at arrival, drain 14 reg + (10 + n/2) mem
 *    when the gap fills) — with half the packets out of order the
 *    average is the paper's 29 reg + 11.5 mem per packet;
 *  - FaultTolerance: source buffering for retransmission (6 reg +
 *    n/2 mem), one ack send per packet at the destination (a
 *    single-packet send, 20), and ack consumption at the source
 *    (16 reg + (n/2 + 3) dev), folded into the send loop's status
 *    tests as CMAM does.
 *
 * Group acknowledgements (ack every G packets) reduce the
 * fault-tolerance term at the price of holding source buffers
 * longer; the paper's §3.2 discussion claim (overhead stays ~40-50%)
 * is reproduced by bench_groupack.
 *
 * Event mode adds timeout-driven selective retransmission, duplicate
 * suppression with re-acknowledgement, and optional window flow
 * control — end-to-end reliability over the detection-only network.
 */

#ifndef MSGSIM_PROTOCOLS_STREAM_HH
#define MSGSIM_PROTOCOLS_STREAM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "protocols/result.hh"
#include "protocols/stack.hh"

namespace msgsim
{

class MetricsRegistry;

/** Parameters of one stream run. */
struct StreamParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::uint32_t words = 16; ///< total volume (multiple of n)
    int groupAck = 1;         ///< G: ack every G delivered packets
    std::uint64_t fillSeed = 0x57'12ea'3ULL;
    bool eventMode = false;
    Tick retxTimeout = 3000; ///< event mode: retransmission period
    int maxRetx = 64;        ///< event mode: per-run retransmit bound
    std::uint32_t window = 0; ///< event mode: max unacked packets (0 = off)
    /// Event mode: how arrivals are serviced (poll vs interrupt).
    RecvDiscipline discipline = RecvDiscipline::Poll;
};

/**
 * The indefinite-sequence protocol engine for one stack.
 */
class StreamProtocol
{
  public:
    /** Delivery callback: packets arrive in sequence order. */
    using DeliverFn =
        std::function<void(std::uint32_t seq, const std::vector<Word> &)>;

    explicit StreamProtocol(Stack &stack);

    /** Run one whole-stream exchange and report the breakdown. */
    RunResult run(const StreamParams &params);

    // ------------------------------------------------------------
    // Persistent-channel operations (the StreamSocket API).
    // ------------------------------------------------------------

    /**
     * Open a long-lived channel; @p ringPackets bounds the
     * retransmission ring (and therefore the in-flight window).
     */
    Word openPersistent(NodeId src, NodeId dst, int groupAck,
                        std::uint32_t ringPackets, DeliverFn cb);

    /**
     * Transmit @p words (a multiple of the packet size) on a
     * persistent channel, blocking on the progress loop when the
     * retransmission ring is full.
     */
    void sendOn(Word chan, const std::vector<Word> &words);

    /** Progress until the channel is fully delivered and acked. */
    void flushChannel(Word chan);

    /** Flush and retire a persistent channel. */
    void closePersistent(Word chan);

    /** Unacknowledged packets on a channel. */
    std::uint64_t channelUnacked(Word chan) const;

    /** Out-of-order arrivals absorbed on a channel so far. */
    std::uint64_t channelOoo(Word chan) const;

    /** Duplicate arrivals suppressed on a channel so far. */
    std::uint64_t channelDups(Word chan) const;

    /** Packets delivered in order on a channel so far. */
    std::uint64_t channelDelivered(Word chan) const;

    /** Reorder-buffer occupancy (packets held) on a channel. */
    std::size_t channelPending(Word chan) const;

    /** Window backlog: queued sends not yet injected on a channel. */
    std::size_t channelBacklog(Word chan) const;

    /** Retransmission-ring capacity of a channel, in packets. */
    std::uint32_t channelRetxSlots(Word chan) const;

    /** Reorder-arena capacity of a channel, in packets. */
    std::uint32_t channelArenaSlots(Word chan) const;

    /** True while @p chan names an open channel. */
    bool channelOpen(Word chan) const;

    /**
     * Timeout-model recovery for persistent channels: resend every
     * currently unacknowledged packet on @p chan.  This is the
     * polling-mode stand-in for the event-mode retransmission timer;
     * flushChannel and the model checker invoke it when a channel
     * stops making progress.
     */
    void retransmitUnacked(Word chan);

    /** Emit any partial cumulative group ack pending on @p chan. */
    void flushGroupAcks(Word chan);

    /** Protocol-wide cumulative counters, across all channels. */
    struct Totals
    {
        std::uint64_t retransmissions = 0;
        std::uint64_t duplicatesSuppressed = 0;
        std::uint64_t oooBuffered = 0;
        std::uint64_t acksSent = 0;
    };

    /** Cumulative counters since construction. */
    const Totals &totals() const { return totals_; }

    /**
     * Snapshot the protocol-wide counters into @p reg under
     * "<prefix>." ("stream.retransmissions" etc.).
     */
    void publishMetrics(MetricsRegistry &reg,
                        const std::string &prefix = "stream") const;

    /**
     * Deliberately re-introduce a classic protocol bug, for the
     * model checker's demonstration (docs/CHECKING.md): acknowledge
     * an out-of-order arrival *before* inserting it into the reorder
     * buffer — and then lose it.  The sender releases the
     * retransmission slot, so the packet is gone for good.
     */
    void setBugAckBeforeInsert(bool on) { bugAckBeforeInsert_ = on; }

    /** Hardware packet payload size of the underlying stack. */
    int packetWords() const { return stack_.dataWords(); }

  private:
    struct Channel
    {
        NodeId src = 0;
        NodeId dst = 0;
        Word id = 0;
        int groupAck = 1;

        // Sender-side modeled state.
        Addr seqAddr = 0;      ///< sequence counter (memory word)
        Addr lastSentAddr = 0; ///< last sequence injected
        Addr retxBase = 0;     ///< retransmission ring
        std::uint32_t retxSlots = 0;
        std::uint32_t nextSeq = 0; ///< mirror of the modeled counter
        std::map<std::uint32_t, std::vector<Word>> unacked;
        std::map<std::uint32_t, Tick> sentAt;
        std::vector<std::vector<Word>> sendQueue; ///< window backlog
        std::uint32_t nextToSend = 0;             ///< index into queue
        std::uint32_t window = 0; ///< event mode: max unacked (0 = off)

        // Receiver-side modeled state.
        std::uint32_t expected = 0;
        Addr arenaBase = 0;   ///< reorder-slot arena
        std::uint32_t arenaSlots = 0;
        Addr listHeadAddr = 0;
        Addr pendingCountAddr = 0;
        Addr lastDeliveredAddr = 0;
        std::vector<Addr> freeSlots;
        std::map<std::uint32_t, Addr> pending; ///< seq -> slot
        int groupCount = 0;
        std::uint32_t deliveredPackets = 0;
        std::vector<Word> deliveredWords;

        // Statistics.
        std::uint64_t ooo = 0;
        std::uint64_t dups = 0;
        std::uint64_t acksSent = 0;
        std::uint64_t retx = 0;

        DeliverFn userCb;
    };

    Channel &openChannel(const StreamParams &params, DeliverFn cb);
    void closeChannel(Word id);

    /** Source: send one packet (Base + InOrder + FaultTol charges). */
    void sendPacket(Channel &ch, const std::vector<Word> &data);

    /** Source: retransmit one unacked packet (FaultTol). */
    void retransmit(Channel &ch, std::uint32_t seq);

    /** Source: consume waiting acks without poll-entry overhead. */
    void consumeAcks(Channel &ch);

    /** Destination: StreamData sink. */
    void onStreamData(NodeId self, NodeId pktSrc);

    /** Source: StreamAck sink. */
    void onStreamAck(NodeId self, NodeId pktSrc);

    void deliverInSeq(Channel &ch, std::uint32_t seq,
                      const std::vector<Word> &data);
    void insertReorder(Channel &ch, std::uint32_t seq,
                       const std::vector<Word> &data);
    void drainReorder(Channel &ch);
    void ackArrival(Channel &ch, std::uint32_t seq);
    void flushGroupAck(Channel &ch);

    /** Event mode: window pump + retransmission timer. */
    void pumpWindow(Channel &ch, std::uint32_t window);
    void armRetxTimer(Word chanId, const StreamParams &params);

    Node &srcNode(Channel &ch) { return stack_.node(ch.src); }
    Node &dstNode(Channel &ch) { return stack_.node(ch.dst); }

    /** Event mode: coalesced poll scheduling. */
    void schedulePoll(NodeId id);

    /** One settle + machine-wide poll round (persistent channels). */
    void progressOnce();

    /** Event mode: periodic group-ack flush for a live channel. */
    void armFlushTimer(Word chanId, Tick period);

    /** Modeled memory regions of a retired channel, for reuse. */
    struct ChannelResources
    {
        NodeId src = 0;
        NodeId dst = 0;
        Addr seqAddr = 0;
        Addr lastSentAddr = 0;
        Addr retxBase = 0;
        std::uint32_t retxSlots = 0;
        Addr arenaBase = 0;
        std::uint32_t arenaSlots = 0;
        Addr listHeadAddr = 0;
        Addr pendingCountAddr = 0;
        Addr lastDeliveredAddr = 0;
    };

    Stack &stack_;
    Totals totals_;
    bool bugAckBeforeInsert_ = false;
    std::map<Word, Channel> channels_;
    std::map<NodeId, bool> pollPending_;
    RecvDiscipline runDiscipline_ = RecvDiscipline::Poll;
    std::vector<Word> freeIds_;
    std::vector<ChannelResources> resourcePool_;
    Word nextChanId_ = 1;
};

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_STREAM_HH

#include "protocols/finite_xfer.hh"

#include "hostprof/hostprof.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

FiniteXfer::FiniteXfer(Stack &stack) : stack_(stack)
{
    installSinks();
}

void
FiniteXfer::installSinks()
{
    for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
        Cmam &cm = stack_.cmam(id);
        cm.setControlSink(
            CtrlOp::XferAllocReq,
            [this, id](NodeId src, Word tid,
                       const std::vector<Word> &args) {
                onAllocReq(id, src, tid, args);
            });
        cm.setControlSink(
            CtrlOp::XferAllocReply,
            [this](NodeId, Word tid, const std::vector<Word> &args) {
                onAllocReply(tid, args);
            });
        cm.setControlSink(
            CtrlOp::XferAck,
            [this](NodeId, Word tid, const std::vector<Word> &) {
                onAck(tid);
            });
    }
}

void
FiniteXfer::onAllocReq(NodeId dstNode, NodeId srcNode, Word transferId,
                       const std::vector<Word> &args)
{
    auto it = transfers_.find(transferId);
    if (it == transfers_.end())
        msgsim_panic("alloc request for unknown transfer ", transferId);
    Transfer &t = it->second;

    Node &node = stack_.node(dstNode);
    Cmam &cm = stack_.cmam(dstNode);
    FeatureScope fs(node.acct(), Feature::BufferMgmt);

    // A restarted handshake first retires the stale segment.
    const auto key = std::make_pair(dstNode, transferId);
    if (auto seg_it = dstSegments_.find(key);
        seg_it != dstSegments_.end()) {
        cm.segments().free(node.proc(), seg_it->second);
        dstSegments_.erase(seg_it);
    }

    const Word expected_packets = args.empty() ? 0 : args[0];
    Word seg;
    {
        // Step 2: allocate the communication segment.
        ScopedSpan sp(dstNode, "finite_xfer", "seg_alloc");
        seg = cm.segments().alloc(node.proc(), t.dstBuf,
                                  expected_packets);
    }
    if (seg == invalidSegment) {
        // Overflow safety: no segment available; tell the source to
        // back off (paper Section 2.3's over-commitment avoidance).
        ScopedSpan sp(dstNode, "finite_xfer", "alloc_reply");
        cm.sendControl(srcNode, CtrlOp::XferAllocReply, transferId,
                       {invalidSegment}, /*vnet=*/1);
        return;
    }
    dstSegments_[key] = seg;

    cm.segments().setCompletion(
        seg, [this, dstNode, srcNode, transferId](Word segId) {
            Node &nd = stack_.node(dstNode);
            Cmam &c = stack_.cmam(dstNode);
            {
                // Step 5: release the communication segment.
                FeatureScope f1(nd.acct(), Feature::BufferMgmt);
                ScopedSpan sp(dstNode, "finite_xfer", "seg_free");
                c.segments().free(nd.proc(), segId);
            }
            dstSegments_.erase(std::make_pair(dstNode, transferId));
            {
                // Step 6: end-to-end acknowledgement.
                FeatureScope f2(nd.acct(), Feature::FaultTolerance);
                ScopedSpan sp(dstNode, "finite_xfer", "ack");
                c.sendControl(srcNode, CtrlOp::XferAck, transferId, {},
                              /*vnet=*/1);
            }
        });

    // Step 3: reply with the segment id.
    {
        ScopedSpan sp(dstNode, "finite_xfer", "alloc_reply");
        cm.sendControl(srcNode, CtrlOp::XferAllocReply, transferId,
                       {seg}, /*vnet=*/1);
    }
}

void
FiniteXfer::onAllocReply(Word transferId, const std::vector<Word> &args)
{
    Transfer &t = transfers_.at(transferId);
    t.segId = args.empty() ? invalidSegment : args[0];
    t.gotReply = true;
    if (eventMode_ && t.segId != invalidSegment)
        sendData(transferId);
}

void
FiniteXfer::onAck(Word transferId)
{
    transfers_.at(transferId).gotAck = true;
}

void
FiniteXfer::schedulePoll(NodeId id)
{
    if (pollPending_[id])
        return;
    pollPending_[id] = true;
    stack_.sim().schedule(1, [this, id] {
        pollPending_[id] = false;
        Node &n = stack_.node(id);
        FeatureScope fs(n.acct(), Feature::BaseCost);
        if (runDiscipline_ == RecvDiscipline::Interrupt)
            stack_.cmam(id).interruptService();
        else
            stack_.cmam(id).poll();
    });
}

void
FiniteXfer::armTimer(Word transferId, const FiniteXferParams &params)
{
    stack_.sim().schedule(params.ackTimeout, [this, transferId, params] {
        Transfer &t = transfers_.at(transferId);
        if (t.gotAck)
            return;
        ++t.restarts;
        if (t.restarts > params.maxRestarts) {
            msgsim_warn("finite xfer ", transferId, " gave up after ",
                        params.maxRestarts, " restarts");
            return;
        }
        // Recovery: re-run the whole handshake; the destination will
        // retire the stale segment and allocate a fresh one.
        Node &s = stack_.node(t.src);
        FeatureScope fs(s.acct(), Feature::FaultTolerance);
        t.gotReply = false;
        if (TraceSession *ts = TraceSession::current())
            ts->instant(t.src, "finite_xfer", "restart",
                        static_cast<double>(t.restarts));
        {
            ScopedSpan sp(t.src, "finite_xfer", "alloc_req");
            stack_.cmam(t.src).sendControl(t.dst, CtrlOp::XferAllocReq,
                                           transferId, {t.packets});
        }
        armTimer(transferId, params);
    });
}

void
FiniteXfer::sendData(Word transferId)
{
    Transfer &t = transfers_.at(transferId);
    Node &s = stack_.node(t.src);
    const Feature feat =
        t.restarts ? Feature::FaultTolerance : Feature::BaseCost;
    FeatureScope fs(s.acct(), feat);
    ScopedSpan sp(t.src, "finite_xfer", "data");
    if (t.dma)
        stack_.cmam(t.src).xferSendDma(t.dst, t.segId, t.srcBuf,
                                       t.words);
    else
        stack_.cmam(t.src).xferSend(t.dst, t.segId, t.srcBuf, t.words);
    if (t.restarts)
        t.retransmitted += t.packets;
}

Word
FiniteXfer::beginTransfer(const FiniteXferParams &params)
{
    const int n = stack_.dataWords();
    if (params.words == 0 ||
        params.words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("finite xfer of ", params.words,
                     " words: not a multiple of packet size ", n);

    Node &src = stack_.node(params.src);
    Node &dst = stack_.node(params.dst);

    const Word tid = nextTransferId_++;
    Transfer &t = transfers_[tid];
    t.src = params.src;
    t.dst = params.dst;
    t.words = params.words;
    t.packets = params.words / static_cast<std::uint32_t>(n);
    t.srcBuf = src.mem().alloc(params.words);
    t.dstBuf = dst.mem().alloc(params.words);

    std::uint64_t sm = params.fillSeed;
    for (std::uint32_t i = 0; i < params.words; ++i)
        src.mem().write(t.srcBuf + i,
                        static_cast<Word>(splitMix64(sm)));

    // Reactive mode: the polled alloc reply triggers the data phase
    // (the checker drives polls from its schedule, not from timers).
    eventMode_ = true;
    {
        // Step 1.
        FeatureScope fs(src.acct(), Feature::BufferMgmt);
        ScopedSpan sp(params.src, "finite_xfer", "alloc_req");
        stack_.cmam(params.src).sendControl(
            params.dst, CtrlOp::XferAllocReq, tid, {t.packets});
    }
    return tid;
}

bool
FiniteXfer::transferComplete(Word tid) const
{
    return transfers_.at(tid).gotAck;
}

bool
FiniteXfer::transferDataOk(Word tid) const
{
    const Transfer &t = transfers_.at(tid);
    if (!t.gotAck)
        return false;
    Node &src = stack_.node(t.src);
    Node &dst = stack_.node(t.dst);
    for (std::uint32_t i = 0; i < t.words; ++i)
        if (dst.mem().read(t.dstBuf + i) !=
            src.mem().read(t.srcBuf + i))
            return false;
    return true;
}

bool
FiniteXfer::restartTransfer(Word tid, int maxRestarts)
{
    Transfer &t = transfers_.at(tid);
    if (t.gotAck || t.restarts >= maxRestarts)
        return false;
    ++t.restarts;
    Node &s = stack_.node(t.src);
    FeatureScope fs(s.acct(), Feature::FaultTolerance);
    t.gotReply = false;
    if (TraceSession *ts = TraceSession::current())
        ts->instant(t.src, "finite_xfer", "restart",
                    static_cast<double>(t.restarts));
    {
        ScopedSpan sp(t.src, "finite_xfer", "alloc_req");
        stack_.cmam(t.src).sendControl(t.dst, CtrlOp::XferAllocReq,
                                       tid, {t.packets});
    }
    return true;
}

int
FiniteXfer::transferRestarts(Word tid) const
{
    return transfers_.at(tid).restarts;
}

RunResult
FiniteXfer::run(const FiniteXferParams &params)
{
    hostprof::HostScope hps(hostprof::Site::ProtoXfer);
    RunResult res;
    const int n = stack_.dataWords();
    if (params.words == 0 ||
        params.words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("finite xfer of ", params.words,
                     " words: not a multiple of packet size ", n);

    Node &src = stack_.node(params.src);
    Node &dst = stack_.node(params.dst);
    Cmam &csrc = stack_.cmam(params.src);
    Cmam &cdst = stack_.cmam(params.dst);

    if (params.dma && !stack_.config().dmaXfer)
        msgsim_fatal("DMA transfer on a stack built without "
                     "StackConfig::dmaXfer");

    const Word tid = nextTransferId_++;
    Transfer &t = transfers_[tid];
    t.src = params.src;
    t.dst = params.dst;
    t.dma = params.dma;
    t.words = params.words;
    t.packets = params.words / static_cast<std::uint32_t>(n);
    t.srcBuf = src.mem().alloc(params.words);
    t.dstBuf = dst.mem().alloc(params.words);

    // Fill the source buffer with a seeded pattern (application data;
    // uncharged setup).
    std::uint64_t sm = params.fillSeed;
    for (std::uint32_t i = 0; i < params.words; ++i)
        src.mem().write(t.srcBuf + i,
                        static_cast<Word>(splitMix64(sm)));

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack_.sim().now();
    Tick done_at = t0;

    eventMode_ = params.eventMode;
    if (!params.eventMode) {
        // ---- Calibration mode: the paper's minimum execution path,
        // one explicitly sequenced phase at a time.
        {
            // Step 1.
            FeatureScope fs(src.acct(), Feature::BufferMgmt);
            ScopedSpan sp(params.src, "finite_xfer", "alloc_req");
            csrc.sendControl(params.dst, CtrlOp::XferAllocReq, tid,
                             {t.packets});
        }
        stack_.settle();
        {
            // Steps 2 + 3.
            FeatureScope fs(dst.acct(), Feature::BufferMgmt);
            cdst.poll();
        }
        stack_.settle();
        {
            FeatureScope fs(src.acct(), Feature::BufferMgmt);
            csrc.poll();
        }
        if (!t.gotReply || t.segId == invalidSegment)
            msgsim_panic("finite xfer handshake failed");
        {
            // Step 4, source side.
            FeatureScope fs(src.acct(), Feature::BaseCost);
            ScopedSpan sp(params.src, "finite_xfer", "data");
            if (t.dma)
                csrc.xferSendDma(params.dst, t.segId, t.srcBuf,
                                 params.words);
            else
                csrc.xferSend(params.dst, t.segId, t.srcBuf,
                              params.words);
        }
        stack_.settle();
        {
            // Steps 4 + 5 + 6 destination side (completion fires the
            // segment free and the ack inside the poll).
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            cdst.poll();
        }
        stack_.settle();
        {
            // Step 6, source side.
            FeatureScope fs(src.acct(), Feature::FaultTolerance);
            csrc.poll();
        }
        done_at = stack_.sim().now();
    } else {
        // ---- Event mode: arrival-hook-driven polling, timers, and
        // restart recovery.
        runDiscipline_ = params.discipline;
        src.ni().setArrivalHook([this, id = params.src] {
            schedulePoll(id);
        });
        dst.ni().setArrivalHook([this, id = params.dst] {
            schedulePoll(id);
        });
        {
            FeatureScope fs(src.acct(), Feature::BufferMgmt);
            ScopedSpan sp(params.src, "finite_xfer", "alloc_req");
            csrc.sendControl(params.dst, CtrlOp::XferAllocReq, tid,
                             {t.packets});
        }
        armTimer(tid, params);
        stack_.sim().runUntil(
            [&] {
                return t.gotAck || t.restarts > params.maxRestarts;
            },
            50'000'000);
        done_at = stack_.sim().now();
        src.ni().setArrivalHook(nullptr);
        dst.ni().setArrivalHook(nullptr);
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = done_at - t0;
    res.packets = t.packets;
    res.acksSent = 1;
    res.retransmissions = t.retransmitted;

    // End-to-end integrity.
    res.dataOk = t.gotAck;
    for (std::uint32_t i = 0; res.dataOk && i < params.words; ++i)
        if (dst.mem().read(t.dstBuf + i) != src.mem().read(t.srcBuf + i))
            res.dataOk = false;
    return res;
}

} // namespace msgsim

/**
 * @file
 * Protocol 1: single-packet delivery (paper Section 3.2, Table 1).
 *
 * One CMAM_4-style active message: the cheapest communication
 * possible.  At n = 4 the calibrated costs are 20 instructions at the
 * source and 27 at the destination.  The same driver runs unchanged
 * on the CR substrate (Section 4.1: identical costs, but the packet
 * is now ordered, safe, and reliable by hardware).
 */

#ifndef MSGSIM_PROTOCOLS_SINGLE_PACKET_HH
#define MSGSIM_PROTOCOLS_SINGLE_PACKET_HH

#include <array>
#include <vector>

#include "core/row.hh"
#include "protocols/result.hh"
#include "protocols/stack.hh"

namespace msgsim
{

/** Parameters of a single-packet run. */
struct SinglePacketParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::vector<Word> payload; ///< up to n words; default 4 test words
};

/** Result including the Table-1 row breakdown. */
struct SinglePacketResult : RunResult
{
    std::array<std::uint64_t, numCostRows> srcRows{};
    std::array<std::uint64_t, numCostRows> dstRows{};
};

/**
 * Send one active message and poll it in on a *fresh-counter* basis:
 * counters are diffed around the run, rows are reported absolute
 * (use a fresh Stack when regenerating Table 1).
 */
SinglePacketResult runSinglePacket(Stack &stack,
                                   const SinglePacketParams &params);

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_SINGLE_PACKET_HH

/**
 * @file
 * Protocol 2: finite-sequence, multi-packet delivery (paper Section
 * 3.2, Figure 3) — the CMAM_xfer-style reliable memory-to-memory
 * transfer.
 *
 * Six steps: (1) the sender requests an allocation; (2) the receiver
 * allocates a communication segment; (3) and replies; (4) the sender
 * streams single-packet transfers carrying explicit placement
 * offsets; (5) on completion the receiver frees the segment; (6) and
 * returns an end-to-end acknowledgement.
 *
 * Cost attribution (calibrated to Tables 2/3 at n = 4):
 *   BaseCost    — the data packets themselves (77+24p / 140+21p split
 *                 over the four features as in DESIGN.md);
 *   BufferMgmt  — steps 1,2,3,5 (src 47, dst 101);
 *   InOrderDel. — offset maintenance (src 2p, dst 3p+1);
 *   FaultToler. — step 6 (src 27, dst 20).
 *
 * Event mode adds timeout-driven full-restart recovery: if the ack
 * does not arrive, the source re-runs the handshake (the receiver
 * frees the stale segment) and resends every packet — exercising the
 * "fault-detection but no fault-tolerance" network property.
 */

#ifndef MSGSIM_PROTOCOLS_FINITE_XFER_HH
#define MSGSIM_PROTOCOLS_FINITE_XFER_HH

#include <cstdint>
#include <map>
#include <utility>

#include "protocols/result.hh"
#include "protocols/stack.hh"

namespace msgsim
{

/** Parameters of one finite-sequence transfer. */
struct FiniteXferParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::uint32_t words = 16;  ///< message size (multiple of n)
    std::uint64_t fillSeed = 0x11d0'beefULL;
    bool eventMode = false;    ///< event-driven with timers/recovery
    Tick ackTimeout = 4000;    ///< event mode: restart period
    int maxRestarts = 16;      ///< event mode: give-up bound
    /// Event mode: how arrivals are serviced (poll vs interrupt).
    RecvDiscipline discipline = RecvDiscipline::Poll;
    /// Use the DMA data path (the stack must be built with
    /// StackConfig::dmaXfer).
    bool dma = false;
};

/**
 * The finite-sequence protocol engine for one stack.  Installs its
 * control sinks on every node's CMAM layer at construction; multiple
 * transfers (sequential or concurrent in event mode) are supported.
 */
class FiniteXfer
{
  public:
    explicit FiniteXfer(Stack &stack);

    /** Execute one transfer and report its cost breakdown. */
    RunResult run(const FiniteXferParams &params);

    // ------------------------------------------------------------
    // Stepwise API for the model checker (src/check): explicit,
    // non-blocking operations driven by an external schedule.  The
    // transfer reacts to polled arrivals (the alloc reply triggers
    // the data phase); recovery is the caller's explicit decision.
    // ------------------------------------------------------------

    /**
     * Set up a transfer and issue step 1 (the alloc request).
     * Returns the transfer id; the data phase fires reactively when
     * the reply is polled at the source.
     */
    Word beginTransfer(const FiniteXferParams &params);

    /** True once the end-to-end ack (step 6) has arrived. */
    bool transferComplete(Word tid) const;

    /** True when the destination buffer matches the source's. */
    bool transferDataOk(Word tid) const;

    /**
     * Timeout recovery: re-run the whole handshake (the destination
     * retires its stale segment).  Returns false when @p maxRestarts
     * is exhausted or the transfer already completed (no restart
     * issued).
     */
    bool restartTransfer(Word tid, int maxRestarts = 16);

    /** Restarts performed so far on a transfer. */
    int transferRestarts(Word tid) const;

    /** Destination segments currently allocated (buffer-bound probe). */
    std::size_t activeDstSegments() const { return dstSegments_.size(); }

  private:
    struct Transfer
    {
        NodeId src = 0;
        NodeId dst = 0;
        Addr srcBuf = 0;
        Addr dstBuf = 0;
        std::uint32_t words = 0;
        std::uint32_t packets = 0;
        Word segId = invalidSegment; ///< source's view after reply
        bool dma = false;
        bool gotReply = false;
        bool gotAck = false;
        int restarts = 0;
        std::uint64_t retransmitted = 0;
    };

    void installSinks();
    void onAllocReq(NodeId dstNode, NodeId srcNode, Word transferId,
                    const std::vector<Word> &args);
    void onAllocReply(Word transferId, const std::vector<Word> &args);
    void onAck(Word transferId);

    /** Event mode: coalesced poll scheduling. */
    void schedulePoll(NodeId id);
    /** Event mode: (re)arm the restart timer for a transfer. */
    void armTimer(Word transferId, const FiniteXferParams &params);
    /** Event mode: data phase (handshake done) for a transfer. */
    void sendData(Word transferId);

    Stack &stack_;
    std::map<Word, Transfer> transfers_;
    /// (dstNode, transferId) -> active destination segment.
    std::map<std::pair<NodeId, Word>, Word> dstSegments_;
    std::map<NodeId, bool> pollPending_;
    Word nextTransferId_ = 1;
    bool eventMode_ = false;
    RecvDiscipline runDiscipline_ = RecvDiscipline::Poll;
};

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_FINITE_XFER_HH

#include "protocols/rpc.hh"

#include "sim/log.hh"

namespace msgsim
{

RpcEngine::RpcEngine(Stack &stack) : stack_(stack)
{
    const std::uint32_t n = stack_.machine().nodeCount();
    reqHandler_.resize(n);
    replyHandler_.resize(n);
    for (NodeId id = 0; id < n; ++id) {
        reqHandler_[id] = stack_.cmam(id).registerHandler(
            [this, id](NodeId from, const std::vector<Word> &args) {
                onRequest(id, from, args);
            });
        replyHandler_[id] = stack_.cmam(id).registerHandler(
            [this, id](NodeId from, const std::vector<Word> &args) {
                onReply(id, from, args);
            });
    }
}

void
RpcEngine::registerProcedure(NodeId server, Word proc, RpcHandler fn)
{
    procedures_[{server, proc}] = std::move(fn);
}

RpcEngine::CallHandle
RpcEngine::call(NodeId client, NodeId server, Word proc,
                const std::vector<Word> &request)
{
    if (request.size() > 2)
        msgsim_fatal("rpc request limited to 2 payload words (got ",
                     request.size(), ")");
    const CallHandle h = nextCall_++;
    calls_[h].client = client;

    // Request AM payload: [callId, proc, req...].
    std::vector<Word> args{h, proc};
    for (Word w : request)
        args.push_back(w);
    Node &node = stack_.node(client);
    FeatureScope fs(node.acct(), Feature::BaseCost);
    stack_.cmam(client).am4(server, reqHandler_[server], args);
    return h;
}

void
RpcEngine::onRequest(NodeId self, NodeId from,
                     const std::vector<Word> &args)
{
    Node &node = stack_.node(self);
    Processor &p = node.proc();
    // Demultiplex (call id, procedure) and marshal the reply.
    p.regOps(3);
    const Word call_id = args.at(0);
    const Word proc = args.at(1);
    auto it = procedures_.find({self, proc});
    if (it == procedures_.end())
        msgsim_panic("rpc: node ", self, " serves no procedure ",
                     proc);
    const std::vector<Word> request(args.begin() + 2, args.end());
    std::vector<Word> result = it->second(from, request);
    if (result.size() > 3)
        msgsim_fatal("rpc reply limited to 3 payload words");

    std::vector<Word> reply{call_id};
    for (Word w : result)
        reply.push_back(w);
    FeatureScope fs(node.acct(), Feature::BaseCost);
    // The reply travels the reply network (footnote 6): it can always
    // drain past backed-up requests, making the round trip safe.
    stack_.cmam(self).sendTagged(
        HwTag::UserAm, from,
        hdr::pack(static_cast<std::uint32_t>(replyHandler_[from]), 0),
        reply, 4, /*vnet=*/1);
}

void
RpcEngine::onReply(NodeId self, NodeId from,
                   const std::vector<Word> &args)
{
    (void)self;
    (void)from;
    const Word call_id = args.at(0);
    auto it = calls_.find(call_id);
    if (it == calls_.end())
        msgsim_panic("rpc: reply for unknown call ", call_id);
    it->second.reply.assign(args.begin() + 1, args.end());
    it->second.done = true;
}

bool
RpcEngine::done(CallHandle h) const
{
    return calls_.at(h).done;
}

const std::vector<Word> &
RpcEngine::reply(CallHandle h) const
{
    const Pending &p = calls_.at(h);
    if (!p.done)
        msgsim_panic("rpc: reply() before completion");
    return p.reply;
}

bool
RpcEngine::wait(CallHandle h, int maxRounds)
{
    for (int round = 0; round < maxRounds; ++round) {
        if (done(h))
            return true;
        stack_.settle();
        for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
        }
    }
    return done(h);
}

std::vector<Word>
RpcEngine::callSync(NodeId client, NodeId server, Word proc,
                    const std::vector<Word> &request)
{
    const CallHandle h = call(client, server, proc, request);
    if (!wait(h))
        msgsim_panic("rpc: call ", h, " to node ", server,
                     " never completed");
    return reply(h);
}

} // namespace msgsim

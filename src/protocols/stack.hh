/**
 * @file
 * Protocol test-bench stack: a machine, a substrate, and one CMAM
 * layer per node, with convenience builders for the two substrates
 * the paper compares.
 */

#ifndef MSGSIM_PROTOCOLS_STACK_HH
#define MSGSIM_PROTOCOLS_STACK_HH

#include <memory>
#include <vector>

#include "cm5net/cm5_network.hh"
#include "cmam/cmam.hh"
#include "crnet/cr_network.hh"
#include "machine/machine.hh"
#include "nicam/nicam_network.hh"
#include "rdmanet/rdma_network.hh"

namespace msgsim
{

/** Which routing substrate the stack runs on. */
enum class Substrate
{
    Cm5,   ///< out-of-order, finite-buffered, detection-only
    Cr,    ///< in-order, reliable, acceptance-independent
    Rdma,  ///< verbs fabric: reliable, per-QP in-order, zero-copy
    Nicam, ///< CM-5 fabric with an on-NIC handler table
};

/** Printable name of a substrate. */
const char *toString(Substrate s);

/**
 * How a node learns of arrived packets in event-driven execution:
 * polling (the CMAM default) or interrupts (paper footnote 2 — the
 * CM-5 NI supports it, but SPARC trap overhead makes it expensive).
 */
enum class RecvDiscipline
{
    Poll,
    Interrupt,
};

/** Printable name of a reception discipline. */
const char *toString(RecvDiscipline d);

/**
 * Configuration of a whole protocol stack.
 */
struct StackConfig
{
    Substrate substrate = Substrate::Cm5;
    std::uint32_t nodes = 4;
    int dataWords = 4; ///< n, the hardware packet payload (CM-5: 4)
    std::size_t memWords = 1u << 20;
    std::size_t recvCapacity = static_cast<std::size_t>(-1);
    int maxSegments = 64;
    bool dmaXfer = false; ///< §5 extension: DMA bulk-data movement
    /// §5 ablation: every messaging call crosses into the kernel
    /// (no user-level NI access).
    bool kernelMediated = false;

    // CM-5 substrate knobs.
    OrderPolicyFactory order;          ///< default FIFO
    FaultInjector::Config faults;      ///< default fault-free
    Tick maxJitter = 0;
    double injectBusyRate = 0.0;
    std::uint64_t seed = 0xc0ffeeULL;
    Tick injectGap = 0;  ///< link bandwidth: per-source packet spacing
    Tick deliverGap = 0; ///< link bandwidth: per-dest packet spacing
};

/**
 * Machine + substrate + per-node CMAM layers.
 */
class Stack
{
  public:
    explicit Stack(const StackConfig &cfg);

    Machine &machine() { return *machine_; }
    Simulator &sim() { return machine_->sim(); }
    Network &network() { return machine_->network(); }
    Substrate substrate() const { return cfg_.substrate; }
    int dataWords() const { return cfg_.dataWords; }
    const StackConfig &config() const { return cfg_; }

    /** The CMAM layer on node @p id. */
    Cmam &cmam(NodeId id);

    /** The node itself. */
    Node &node(NodeId id) { return machine_->node(id); }

    /** Run the simulation to quiescence (flushing order stages). */
    void settle() { machine_->settle(); }

  private:
    StackConfig cfg_;
    std::unique_ptr<Machine> machine_;
    std::vector<std::unique_ptr<Cmam>> cmams_;
};

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_STACK_HH

/**
 * @file
 * The user-facing stream API — the paper's §3.2 framing of the
 * indefinite-sequence protocol: "static channels between a pair of
 * user processes (sockets) ... characterized by an indefinite amount
 * of communication through the channels."
 *
 * A StreamSocket is a long-lived, one-direction channel.  The
 * application writes bursts whenever it likes; the socket runs the
 * full indefinite-sequence machinery underneath (sequence numbers,
 * reorder buffer, source retransmission ring, acks) and delivers
 * in-order data to the receiver's callback.  Writes block (drive the
 * progress loop) when the retransmission ring is full — end-to-end
 * flow control in software, exactly the service the paper prices.
 */

#ifndef MSGSIM_PROTOCOLS_SOCKET_HH
#define MSGSIM_PROTOCOLS_SOCKET_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "protocols/stream.hh"

namespace msgsim
{

/**
 * A persistent ordered word stream between two nodes.
 */
class StreamSocket
{
  public:
    /** In-order delivery callback (runs on the receiving node). */
    using OnData =
        std::function<void(const std::vector<Word> &words)>;

    struct Options
    {
        int groupAck = 1;            ///< ack every G packets
        std::uint32_t ringPackets = 64; ///< retransmission-ring depth
    };

    /**
     * Open a channel from @p src to @p dst on @p proto's stack.
     * The socket borrows the protocol's sinks; any number of
     * sockets can coexist on one StreamProtocol.
     */
    StreamSocket(StreamProtocol &proto, NodeId src, NodeId dst,
                 OnData onData)
        : StreamSocket(proto, src, dst, std::move(onData), Options())
    {
    }

    StreamSocket(StreamProtocol &proto, NodeId src, NodeId dst,
                 OnData onData, const Options &opts);

    ~StreamSocket();

    StreamSocket(const StreamSocket &) = delete;
    StreamSocket &operator=(const StreamSocket &) = delete;

    /**
     * Write @p words (a multiple of the packet size) into the
     * stream.  Transmits immediately; blocks on the progress loop
     * when the retransmission ring is full (software end-to-end
     * flow control).
     */
    void write(const std::vector<Word> &words);

    /** Drive the machine until everything written is delivered
     *  in order AND acknowledged. */
    void flush();

    /**
     * Graceful teardown, phase 1: flush any partial group ack, then
     * drive the machine until the retransmission ring is empty — every
     * written packet delivered in order and its final ack consumed.
     * Idempotent; a no-op once the socket is closed.
     */
    void drain();

    /**
     * Graceful teardown, phase 2: drain, then retire the channel and
     * return its modeled resources.  Safe to call with packets still
     * in flight (they are drained first), safe to call twice.  The
     * destructor closes automatically when the user did not.
     */
    void close();

    /** True until close() completes. */
    bool isOpen() const { return open_; }

    /** The underlying protocol channel id (for instrumentation). */
    Word channel() const { return chan_; }

    /** Packets written so far. */
    std::uint64_t packetsWritten() const { return packetsWritten_; }

    /** Packets currently unacknowledged. */
    std::uint64_t unacked() const;

    /** Out-of-order arrivals absorbed by the reorder buffer. */
    std::uint64_t oooArrivals() const;

  private:
    StreamProtocol &proto_;
    NodeId src_ = invalidNode;
    Word chan_ = 0;
    bool open_ = false;
    std::uint64_t packetsWritten_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_SOCKET_HH

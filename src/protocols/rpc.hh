/**
 * @file
 * Round-trip request/reply over active messages — the CMAM
 * round-trip protocol of the paper's footnote 6 ("The CMAM
 * round-trip protocol ... however is safe"): because every request
 * is answered and requesters bound their outstanding window, the
 * pattern is self-throttling — request traffic can never
 * over-commit receive buffering the way unsolicited one-way sends
 * can, which is what makes it the safe primitive on a
 * finite-buffered network.
 *
 * A server node registers typed RPC handlers (request words in,
 * reply words out).  A client issues calls; each call costs one
 * single-packet exchange in each direction (2 x (20 + 27) = 94
 * instructions end to end at n = 4, plus the handler's own work).
 */

#ifndef MSGSIM_PROTOCOLS_RPC_HH
#define MSGSIM_PROTOCOLS_RPC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "protocols/stack.hh"

namespace msgsim
{

/**
 * Per-stack RPC engine.
 */
class RpcEngine
{
  public:
    /**
     * Server-side handler: request payload in, reply payload out
     * (at most 3 words each; one word carries the call id).
     */
    using RpcHandler = std::function<std::vector<Word>(
        NodeId caller, const std::vector<Word> &request)>;

    /** Handle naming one outstanding call. */
    using CallHandle = std::uint32_t;

    explicit RpcEngine(Stack &stack);

    RpcEngine(const RpcEngine &) = delete;
    RpcEngine &operator=(const RpcEngine &) = delete;

    /**
     * Register procedure @p proc on node @p server.  The same
     * procedure number may be served by many nodes.
     */
    void registerProcedure(NodeId server, Word proc, RpcHandler fn);

    /**
     * Issue a call from @p client: procedure @p proc on @p server
     * with up to 3 request words.  Returns a handle.
     */
    CallHandle call(NodeId client, NodeId server, Word proc,
                    const std::vector<Word> &request);

    /** True once the reply arrived. */
    bool done(CallHandle h) const;

    /** The reply payload (valid once done()). */
    const std::vector<Word> &reply(CallHandle h) const;

    /**
     * Progress the whole machine until the call completes
     * (calibration-style settle+poll loop).  Returns success.
     */
    bool wait(CallHandle h, int maxRounds = 64);

    /** Convenience: call and wait; panics on timeout. */
    std::vector<Word> callSync(NodeId client, NodeId server, Word proc,
                               const std::vector<Word> &request);

  private:
    struct Pending
    {
        NodeId client = 0;
        bool done = false;
        std::vector<Word> reply;
    };

    void onRequest(NodeId self, NodeId from,
                   const std::vector<Word> &args);
    void onReply(NodeId self, NodeId from,
                 const std::vector<Word> &args);

    Stack &stack_;
    std::vector<int> reqHandler_;   ///< per-node AM handler ids
    std::vector<int> replyHandler_; ///< per-node AM handler ids
    std::map<std::pair<NodeId, Word>, RpcHandler> procedures_;
    std::map<CallHandle, Pending> calls_;
    CallHandle nextCall_ = 1;
};

} // namespace msgsim

#endif // MSGSIM_PROTOCOLS_RPC_HH

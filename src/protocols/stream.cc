#include "protocols/stream.hh"

#include "cmam/send_path.hh"
#include "hostprof/hostprof.hh"
#include "sim/log.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

namespace
{
constexpr Word nilLink = ~Word(0);
constexpr std::uint32_t maxSeqHeader = hdr::maxFieldB;
} // namespace

StreamProtocol::StreamProtocol(Stack &stack) : stack_(stack)
{
    for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
        stack_.cmam(id).setStreamDataSink([this, id](NodeId pktSrc) {
            onStreamData(id, pktSrc);
        });
        stack_.cmam(id).setStreamAckSink([this, id](NodeId pktSrc) {
            onStreamAck(id, pktSrc);
        });
    }
}

StreamProtocol::Channel &
StreamProtocol::openChannel(const StreamParams &params, DeliverFn cb)
{
    Word id;
    if (!freeIds_.empty()) {
        id = freeIds_.back();
        freeIds_.pop_back();
    } else {
        id = nextChanId_++;
        if (id > hdr::maxFieldA)
            msgsim_fatal("stream channel ids exhausted");
    }
    Channel &ch = channels_[id];
    ch.src = params.src;
    ch.dst = params.dst;
    ch.id = id;
    ch.groupAck = params.groupAck < 1 ? 1 : params.groupAck;
    ch.window = params.window;
    ch.userCb = std::move(cb);

    const int n = stack_.dataWords();
    const std::uint32_t packets =
        params.words / static_cast<std::uint32_t>(n);
    const std::uint32_t slot_words = 2 + static_cast<std::uint32_t>(n);

    // Channel setup (uncharged, models connection establishment):
    // reuse a retired channel's modeled regions when big enough,
    // else carve fresh ones.
    bool reused = false;
    for (auto it = resourcePool_.begin(); it != resourcePool_.end();
         ++it) {
        if (it->src == params.src && it->dst == params.dst &&
            it->retxSlots >= packets + 1 &&
            it->arenaSlots >= packets + 2) {
            ch.seqAddr = it->seqAddr;
            ch.lastSentAddr = it->lastSentAddr;
            ch.retxBase = it->retxBase;
            ch.retxSlots = it->retxSlots;
            ch.arenaBase = it->arenaBase;
            ch.arenaSlots = it->arenaSlots;
            ch.listHeadAddr = it->listHeadAddr;
            ch.pendingCountAddr = it->pendingCountAddr;
            ch.lastDeliveredAddr = it->lastDeliveredAddr;
            resourcePool_.erase(it);
            reused = true;
            break;
        }
    }
    if (!reused) {
        // Sender-side sequence state and retransmission ring ...
        Node &s = stack_.node(ch.src);
        ch.seqAddr = s.mem().alloc(1);
        ch.lastSentAddr = s.mem().alloc(1);
        ch.retxSlots = packets + 1;
        ch.retxBase =
            s.mem().alloc(static_cast<std::size_t>(ch.retxSlots) *
                          static_cast<std::size_t>(n));
        // ... and receiver-side reorder arena (seq, link, n data
        // words per slot) plus list bookkeeping words.
        Node &d = stack_.node(ch.dst);
        ch.arenaSlots = packets + 2;
        ch.arenaBase =
            d.mem().alloc(static_cast<std::size_t>(ch.arenaSlots) *
                          slot_words);
        ch.listHeadAddr = d.mem().alloc(1);
        ch.pendingCountAddr = d.mem().alloc(1);
        ch.lastDeliveredAddr = d.mem().alloc(1);
    }

    stack_.node(ch.src).mem().write(ch.seqAddr, 0);
    stack_.node(ch.dst).mem().write(ch.listHeadAddr, nilLink);
    for (std::uint32_t i = 0; i < ch.arenaSlots; ++i)
        ch.freeSlots.push_back(ch.arenaBase + i * slot_words);
    return ch;
}

void
StreamProtocol::closeChannel(Word id)
{
    auto it = channels_.find(id);
    if (it == channels_.end())
        return;
    const Channel &ch = it->second;
    ChannelResources res;
    res.src = ch.src;
    res.dst = ch.dst;
    res.seqAddr = ch.seqAddr;
    res.lastSentAddr = ch.lastSentAddr;
    res.retxBase = ch.retxBase;
    res.retxSlots = ch.retxSlots;
    res.arenaBase = ch.arenaBase;
    res.arenaSlots = ch.arenaSlots;
    res.listHeadAddr = ch.listHeadAddr;
    res.pendingCountAddr = ch.pendingCountAddr;
    res.lastDeliveredAddr = ch.lastDeliveredAddr;
    resourcePool_.push_back(res);
    freeIds_.push_back(id);
    channels_.erase(it);
}

void
StreamProtocol::sendPacket(Channel &ch, const std::vector<Word> &data)
{
    Node &s = srcNode(ch);
    Processor &p = s.proc();
    Accounting &a = p.acct();
    const int n = stack_.dataWords();
    ScopedSpan span(ch.src, "stream", "send_data");

    std::uint32_t seq;
    {
        // In-order delivery, source side (2 reg + 3 mem): load the
        // channel's sequence counter, increment, store back, pack it
        // into the header, and record the last sequence injected.
        FeatureScope io(a, Feature::InOrderDelivery);
        seq = p.loadWord(ch.seqAddr);                    // mem 1
        p.regOps(1);                                     // increment
        p.storeWord(ch.seqAddr, seq + 1);                // mem 2
        p.regOps(1);                                     // header pack
        p.storeWord(ch.lastSentAddr, seq);               // mem 3
    }
    if (seq > maxSeqHeader)
        msgsim_fatal("stream sequence ", seq, " exceeds header field");

    {
        // Fault tolerance, source side (6 reg + n/2 mem): copy the
        // outgoing payload into the retransmission ring so it can be
        // resent until acknowledged.
        FeatureScope ft(a, Feature::FaultTolerance);
        p.regOps(2); // ring slot address (mod + multiply-add)
        const Addr slot =
            ch.retxBase + (seq % ch.retxSlots) *
                              static_cast<std::uint32_t>(n);
        for (int i = 0; i < n; i += 2)
            p.storeDouble(slot + static_cast<Addr>(i),
                          data[static_cast<std::size_t>(i)],
                          data[static_cast<std::size_t>(i + 1)]);
        p.regOps(4); // ring index update, wrap test, branch
        ch.unacked[seq] = data;
        ch.sentAt[seq] = stack_.sim().now();
    }

    // Base cost: the single-packet send itself (register-to-register:
    // the payload is already in registers); a full hardware packet.
    stack_.cmam(ch.src).sendTagged(
        HwTag::StreamData, ch.dst,
        hdr::pack(ch.id, seq & hdr::maxFieldB), data, 0);
    ch.nextSeq = seq + 1;
}

void
StreamProtocol::retransmit(Channel &ch, std::uint32_t seq)
{
    Node &s = srcNode(ch);
    Processor &p = s.proc();
    Accounting &a = p.acct();
    const int n = stack_.dataWords();
    ScopedSpan span(ch.src, "stream", "retransmit");

    FeatureScope ft(a, Feature::FaultTolerance);
    // Reload the payload from the retransmission ring and resend.
    p.regOps(4);
    const Addr slot = ch.retxBase +
                      (seq % ch.retxSlots) * static_cast<std::uint32_t>(n);
    std::vector<Word> data(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i += 2) {
        const auto [w0, w1] = p.loadDouble(slot + static_cast<Addr>(i));
        data[static_cast<std::size_t>(i)] = w0;
        data[static_cast<std::size_t>(i + 1)] = w1;
    }
    stack_.cmam(ch.src).sendTagged(
        HwTag::StreamData, ch.dst,
        hdr::pack(ch.id, seq & hdr::maxFieldB), data, 0);
    ch.sentAt[seq] = stack_.sim().now();
    ++ch.retx;
    ++totals_.retransmissions;
}

void
StreamProtocol::onStreamData(NodeId self, NodeId pktSrc)
{
    Node &nd = stack_.node(self);
    Processor &p = nd.proc();
    Accounting &a = p.acct();
    NetIface &ni = nd.ni();
    const int n = stack_.dataWords();
    ScopedSpan span(self, "stream", "recv_data");

    // Base cost: header and payload extraction plus dispatch; the
    // poll loop already charged its per-iteration status/branch cost.
    Word header;
    {
        RowScope r(a, CostRow::ReadNi);
        header = ni.readRecvHeader(a);
    }
    std::vector<Word> data(static_cast<std::size_t>(n));
    {
        RowScope r(a, CostRow::ReadNi);
        for (int i = 0; i < n; i += 2) {
            const auto [w0, w1] = ni.readRecvDouble(a);
            data[static_cast<std::size_t>(i)] = w0;
            data[static_cast<std::size_t>(i + 1)] = w1;
        }
    }
    p.regOps(3); // tag-vector dispatch
    {
        // Per-packet handler linkage, charged flat per the paper's
        // per-packet base accounting (OOO packets pay it here even
        // though their handler runs at drain time).
        RowScope r(a, CostRow::CallReturn);
        p.callRet(4);
    }

    const Word chan = hdr::fieldA(header);
    auto it = channels_.find(chan);
    if (it == channels_.end())
        msgsim_panic("stream data for unknown channel ", chan);
    Channel &ch = it->second;

    std::uint32_t seq;
    {
        // In-order delivery: sequence extraction (shift + mask).
        FeatureScope io(a, Feature::InOrderDelivery);
        p.regOps(2);
        seq = hdr::fieldB(header);
    }

    if (seq == ch.expected) {
        {
            // In-sequence fast path: compare, advance, branches.
            FeatureScope io(a, Feature::InOrderDelivery);
            p.regOps(4);
        }
        deliverInSeq(ch, seq, data);
        drainReorder(ch);
        ackArrival(ch, seq);
    } else if (seq > ch.expected && !ch.pending.count(seq)) {
        if (bugAckBeforeInsert_) {
            // Injected bug (see setBugAckBeforeInsert): the ack goes
            // out first, and the insert never happens — the packet is
            // acknowledged yet lost.
            ackArrival(ch, seq);
        } else {
            insertReorder(ch, seq, data);
            ++ch.ooo;
            ++totals_.oooBuffered;
            ackArrival(ch, seq);
        }
    } else {
        // Duplicate (retransmission overlap or lost ack): discard and
        // re-acknowledge so the source can release its buffer.
        p.regOps(2);
        ++ch.dups;
        ++totals_.duplicatesSuppressed;
        FeatureScope ft(a, Feature::FaultTolerance);
        stack_.cmam(ch.dst).sendTagged(
            HwTag::StreamAck, ch.src,
            hdr::pack(ch.id, seq & hdr::maxFieldB), {seq, 0}, 4, 1);
        ++ch.acksSent;
        ++totals_.acksSent;
    }
    (void)pktSrc;
}

void
StreamProtocol::deliverInSeq(Channel &ch, std::uint32_t seq,
                             const std::vector<Word> &data)
{
    // Delivery itself is the user handler consuming register-resident
    // data; the linkage was charged in the flat per-packet base cost.
    for (Word w : data)
        ch.deliveredWords.push_back(w);
    ++ch.deliveredPackets;
    ch.expected = seq + 1;
    if (ch.userCb)
        ch.userCb(seq, data);
}

void
StreamProtocol::insertReorder(Channel &ch, std::uint32_t seq,
                              const std::vector<Word> &data)
{
    Node &nd = dstNode(ch);
    Processor &p = nd.proc();
    Accounting &a = p.acct();
    const int n = stack_.dataWords();
    ScopedSpan span(ch.dst, "stream", "reorder_insert");

    // Out-of-order buffering (13 reg + (9 + n/2) mem): pop a slot
    // from the arena free list, fill it, and link it into the
    // seq-sorted pending list.
    FeatureScope io(a, Feature::InOrderDelivery);
    if (ch.freeSlots.empty())
        msgsim_panic("reorder arena exhausted on channel ", ch.id);
    const Addr slot = ch.freeSlots.back();
    ch.freeSlots.pop_back();

    p.regOps(4); // slot address arithmetic, free-list pop
    // Free-list head load/store (modeled; the C++ free list mirrors
    // a memory-resident one).
    (void)p.loadWord(ch.listHeadAddr);                        // mem 1
    p.storeWord(ch.listHeadAddr, nd.mem().read(ch.listHeadAddr)); // mem 2
    p.storeWord(slot + 0, seq);                               // mem 3
    p.storeWord(slot + 1, nilLink);                           // mem 4
    for (int i = 0; i < n; i += 2)
        p.storeDouble(slot + 2 + static_cast<Addr>(i),
                      data[static_cast<std::size_t>(i)],
                      data[static_cast<std::size_t>(i + 1)]); // n/2
    // Sorted-list scan and splice.
    (void)p.loadWord(ch.listHeadAddr);                        // mem 5
    (void)p.loadWord(slot + 0);                               // mem 6
    p.storeWord(ch.listHeadAddr, slot);                       // mem 7
    p.storeWord(ch.pendingCountAddr,
                static_cast<Word>(ch.pending.size() + 1));    // mem 8
    p.storeWord(ch.lastDeliveredAddr, ch.expected);           // mem 9
    p.regOps(9); // scan compares, splice branches

    ch.pending[seq] = slot;
}

void
StreamProtocol::drainReorder(Channel &ch)
{
    Node &nd = dstNode(ch);
    Processor &p = nd.proc();
    Accounting &a = p.acct();
    const int n = stack_.dataWords();

    // Deliver buffered successors now in sequence: 14 reg +
    // (10 + n/2) mem per drained packet.
    while (!ch.pending.empty() &&
           ch.pending.begin()->first == ch.expected) {
        ScopedSpan span(ch.dst, "stream", "reorder_drain");
        FeatureScope io(a, Feature::InOrderDelivery);
        const auto [seq, slot] = *ch.pending.begin();
        ch.pending.erase(ch.pending.begin());

        (void)p.loadWord(ch.listHeadAddr);                    // mem 1
        (void)p.loadWord(slot + 0);                           // mem 2
        (void)p.loadWord(slot + 1);                           // mem 3
        std::vector<Word> data(static_cast<std::size_t>(n));
        for (int i = 0; i < n; i += 2) {
            const auto [w0, w1] =
                p.loadDouble(slot + 2 + static_cast<Addr>(i)); // n/2
            data[static_cast<std::size_t>(i)] = w0;
            data[static_cast<std::size_t>(i + 1)] = w1;
        }
        p.storeWord(ch.listHeadAddr, nd.mem().read(slot + 1)); // mem 4
        p.storeWord(slot + 1, nilLink);                        // mem 5
        p.storeWord(ch.pendingCountAddr,
                    static_cast<Word>(ch.pending.size()));     // mem 6
        p.storeWord(ch.lastDeliveredAddr, seq);                // mem 7
        (void)p.loadWord(ch.pendingCountAddr);                 // mem 8
        (void)p.loadWord(ch.lastDeliveredAddr);                // mem 9
        p.storeWord(slot + 0, 0);                              // mem 10
        p.regOps(14); // head/seq compares, unlink, free-list return

        ch.freeSlots.push_back(slot);
        deliverInSeq(ch, seq, data);
    }
}

void
StreamProtocol::ackArrival(Channel &ch, std::uint32_t seq)
{
    Node &nd = dstNode(ch);
    Processor &p = nd.proc();
    Accounting &a = p.acct();
    ScopedSpan span(ch.dst, "stream", "send_ack");

    FeatureScope ft(a, Feature::FaultTolerance);
    if (ch.groupAck <= 1) {
        // Per-packet selective acknowledgement: one single-packet
        // send (20 at n = 4).
        stack_.cmam(ch.dst).sendTagged(
            HwTag::StreamAck, ch.src,
            hdr::pack(ch.id, seq & hdr::maxFieldB), {seq, 0}, 4, 1);
        ++ch.acksSent;
        ++totals_.acksSent;
        return;
    }
    // Group acknowledgement: track arrivals (2 reg) and emit one
    // cumulative ack per G packets.
    p.regOps(2);
    ++ch.groupCount;
    if (ch.groupCount >= ch.groupAck && ch.expected > 0) {
        ch.groupCount = 0;
        const std::uint32_t cum = ch.expected - 1;
        stack_.cmam(ch.dst).sendTagged(
            HwTag::StreamAck, ch.src,
            hdr::pack(ch.id, cum & hdr::maxFieldB), {cum, 1}, 4, 1);
        ++ch.acksSent;
        ++totals_.acksSent;
    }
}

void
StreamProtocol::flushGroupAck(Channel &ch)
{
    if (ch.groupAck <= 1 || ch.expected == 0 || ch.groupCount == 0)
        return;
    Node &nd = dstNode(ch);
    FeatureScope ft(nd.proc().acct(), Feature::FaultTolerance);
    ch.groupCount = 0;
    const std::uint32_t cum = ch.expected - 1;
    stack_.cmam(ch.dst).sendTagged(
        HwTag::StreamAck, ch.src,
        hdr::pack(ch.id, cum & hdr::maxFieldB), {cum, 1}, 4, 1);
    ++ch.acksSent;
    ++totals_.acksSent;
}

void
StreamProtocol::onStreamAck(NodeId self, NodeId pktSrc)
{
    Node &nd = stack_.node(self);
    Processor &p = nd.proc();
    Accounting &a = p.acct();
    NetIface &ni = nd.ni();
    ScopedSpan span(self, "stream", "recv_ack");
    // Acks are 4-word control-format packets at any hardware size.
    const int n = static_cast<int>(ni.hwPeekRecv()->data.size());

    // Ack consumption (13 reg + 4 dev here; the enclosing loop
    // iteration supplies 3 reg + 1 dev, totalling the paper's
    // 16 reg + 5 dev).
    FeatureScope ft(a, Feature::FaultTolerance);
    Word header;
    {
        RowScope r(a, CostRow::ReadNi);
        header = ni.readRecvHeader(a);
        (void)ni.readRecvSource(a); // window lookup key
    }
    std::vector<Word> payload(static_cast<std::size_t>(n));
    {
        RowScope r(a, CostRow::ReadNi);
        for (int i = 0; i < n; i += 2) {
            const auto [w0, w1] = ni.readRecvDouble(a);
            payload[static_cast<std::size_t>(i)] = w0;
            payload[static_cast<std::size_t>(i + 1)] = w1;
        }
    }
    p.regOps(3); // dispatch
    p.regOps(2); // channel/sequence extraction

    const Word chan = hdr::fieldA(header);
    auto it = channels_.find(chan);
    if (it == channels_.end())
        msgsim_panic("stream ack for unknown channel ", chan);
    Channel &ch = it->second;

    const std::uint32_t seq = payload[0];
    const bool cumulative = payload[1] != 0;
    p.regOps(6); // window bitmap update, ring head advance
    p.regOps(2); // release branches
    if (cumulative) {
        auto upto = ch.unacked.upper_bound(seq);
        ch.unacked.erase(ch.unacked.begin(), upto);
        auto upto_t = ch.sentAt.upper_bound(seq);
        ch.sentAt.erase(ch.sentAt.begin(), upto_t);
    } else {
        ch.unacked.erase(seq);
        ch.sentAt.erase(seq);
    }
    // Window flow control: freed slots admit backlogged packets.
    if (!ch.sendQueue.empty())
        pumpWindow(ch, ch.window);
    (void)pktSrc;
}

void
StreamProtocol::consumeAcks(Channel &ch)
{
    // Calibration-mode ack drain: CMAM folds the incoming-packet test
    // into the send path's status reads, so ack consumption costs one
    // loop iteration (1 dev + 3 reg) plus the ack sink — no fresh
    // poll entry.
    Node &s = srcNode(ch);
    while (s.ni().hwRecvPending()) {
        const Packet *head = s.ni().hwPeekRecv();
        if (head->tag != HwTag::StreamAck)
            break;
        {
            FeatureScope ft(s.proc().acct(), Feature::FaultTolerance);
            (void)pollIterationStatus(s);
        }
        onStreamAck(ch.src, head->src);
    }
}

Word
StreamProtocol::openPersistent(NodeId src, NodeId dst, int groupAck,
                               std::uint32_t ringPackets, DeliverFn cb)
{
    StreamParams params;
    params.src = src;
    params.dst = dst;
    params.groupAck = groupAck;
    params.words = ringPackets *
                   static_cast<std::uint32_t>(stack_.dataWords());
    Channel &ch = openChannel(params, std::move(cb));
    return ch.id;
}

void
StreamProtocol::progressOnce()
{
    stack_.settle();
    for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
        Node &node = stack_.node(id);
        if (!node.ni().hwRecvPending())
            continue;
        FeatureScope fs(node.acct(), Feature::BaseCost);
        stack_.cmam(id).poll();
    }
    stack_.settle();
}

void
StreamProtocol::sendOn(Word chan, const std::vector<Word> &words)
{
    Channel &ch = channels_.at(chan);
    const int n = stack_.dataWords();
    if (words.empty() ||
        words.size() % static_cast<std::size_t>(n) != 0)
        msgsim_fatal("socket write of ", words.size(),
                     " words: must be a positive multiple of ", n);

    for (std::size_t off = 0; off < words.size();
         off += static_cast<std::size_t>(n)) {
        // Software end-to-end flow control: the retransmission ring
        // bounds the in-flight window; block until a slot frees.
        // Blocking uses the same timeout model as flushChannel: a
        // lost packet leaves a hole no cumulative group ack can
        // cover, so idle rounds must eventually retransmit.
        int guard = 0;
        std::size_t before = ch.unacked.size();
        while (ch.unacked.size() >= ch.retxSlots - 1) {
            if (ch.groupAck > 1 && ch.groupCount > 0)
                flushGroupAck(ch);
            progressOnce();
            if (ch.unacked.size() < before) {
                before = ch.unacked.size();
                guard = 0;
                continue;
            }
            ++guard;
            if (guard % 4 == 0)
                retransmitUnacked(chan);
            if (guard > 1000)
                msgsim_panic("socket write stalled: ring never "
                             "drains on channel ", chan);
        }
        std::vector<Word> pkt(words.begin() + static_cast<long>(off),
                              words.begin() +
                                  static_cast<long>(off) + n);
        sendPacket(ch, pkt);
    }
}

void
StreamProtocol::flushChannel(Word chan)
{
    Channel &ch = channels_.at(chan);
    int idle_rounds = 0;
    while (!ch.unacked.empty()) {
        const std::size_t before = ch.unacked.size();
        progressOnce();
        if (ch.unacked.size() == before) {
            // No forward progress: a partial ack group may be holding
            // things up -- flush it; if that still isn't enough (a
            // data or ack packet was lost outright), fall back to the
            // timeout model and resend everything outstanding.
            if (ch.groupAck > 1 && ch.groupCount > 0)
                flushGroupAck(ch);
            ++idle_rounds;
            if (idle_rounds % 4 == 0)
                retransmitUnacked(chan);
            if (idle_rounds > 256)
                msgsim_panic("socket flush stalled on channel ", chan);
        } else {
            idle_rounds = 0;
        }
    }
}

void
StreamProtocol::closePersistent(Word chan)
{
    flushChannel(chan);
    closeChannel(chan);
}

std::uint64_t
StreamProtocol::channelUnacked(Word chan) const
{
    return channels_.at(chan).unacked.size();
}

std::uint64_t
StreamProtocol::channelOoo(Word chan) const
{
    return channels_.at(chan).ooo;
}

std::uint64_t
StreamProtocol::channelDups(Word chan) const
{
    return channels_.at(chan).dups;
}

std::uint64_t
StreamProtocol::channelDelivered(Word chan) const
{
    return channels_.at(chan).deliveredPackets;
}

std::size_t
StreamProtocol::channelPending(Word chan) const
{
    return channels_.at(chan).pending.size();
}

std::size_t
StreamProtocol::channelBacklog(Word chan) const
{
    const Channel &ch = channels_.at(chan);
    return ch.sendQueue.size() - ch.nextToSend;
}

std::uint32_t
StreamProtocol::channelRetxSlots(Word chan) const
{
    return channels_.at(chan).retxSlots;
}

std::uint32_t
StreamProtocol::channelArenaSlots(Word chan) const
{
    return channels_.at(chan).arenaSlots;
}

bool
StreamProtocol::channelOpen(Word chan) const
{
    return channels_.count(chan) != 0;
}

void
StreamProtocol::retransmitUnacked(Word chan)
{
    Channel &ch = channels_.at(chan);
    std::vector<std::uint32_t> seqs;
    seqs.reserve(ch.unacked.size());
    for (const auto &[seq, data] : ch.unacked)
        seqs.push_back(seq);
    for (auto seq : seqs)
        retransmit(ch, seq);
}

void
StreamProtocol::flushGroupAcks(Word chan)
{
    flushGroupAck(channels_.at(chan));
}

void
StreamProtocol::publishMetrics(MetricsRegistry &reg,
                               const std::string &prefix) const
{
    reg.counter(prefix + ".retransmissions") =
        totals_.retransmissions;
    reg.counter(prefix + ".duplicates_suppressed") =
        totals_.duplicatesSuppressed;
    reg.counter(prefix + ".ooo_buffered") = totals_.oooBuffered;
    reg.counter(prefix + ".acks_sent") = totals_.acksSent;
}

void
StreamProtocol::armFlushTimer(Word chanId, Tick period)
{
    // Group-ack flush timer (event mode): an indefinite stream's
    // receiver cannot know when the last group will complete, so it
    // periodically flushes a cumulative acknowledgement while the
    // channel is live.
    stack_.sim().schedule(period, [this, chanId, period] {
        auto it = channels_.find(chanId);
        if (it == channels_.end())
            return;
        Channel &ch = it->second;
        if (ch.groupCount > 0)
            flushGroupAck(ch);
        if (!ch.unacked.empty() ||
            ch.nextToSend < ch.sendQueue.size() || ch.groupCount > 0)
            armFlushTimer(chanId, period);
    });
}

void
StreamProtocol::schedulePoll(NodeId id)
{
    if (pollPending_[id])
        return;
    pollPending_[id] = true;
    stack_.sim().schedule(1, [this, id] {
        pollPending_[id] = false;
        Node &nd = stack_.node(id);
        FeatureScope fs(nd.acct(), Feature::BaseCost);
        if (runDiscipline_ == RecvDiscipline::Interrupt)
            stack_.cmam(id).interruptService();
        else
            stack_.cmam(id).poll();
    });
}

void
StreamProtocol::pumpWindow(Channel &ch, std::uint32_t window)
{
    while (ch.nextToSend < ch.sendQueue.size() &&
           (window == 0 || ch.unacked.size() < window))
        sendPacket(ch, ch.sendQueue[ch.nextToSend++]);
}

void
StreamProtocol::armRetxTimer(Word chanId, const StreamParams &params)
{
    stack_.sim().schedule(params.retxTimeout, [this, chanId, params] {
        auto it = channels_.find(chanId);
        if (it == channels_.end())
            return;
        Channel &ch = it->second;
        if (ch.unacked.empty() &&
            ch.nextToSend >= ch.sendQueue.size())
            return; // stream fully acknowledged: timer dies
        if (ch.retx >= static_cast<std::uint64_t>(params.maxRetx)) {
            msgsim_warn("stream channel ", chanId,
                        " exceeded retransmission bound");
            return;
        }
        const Tick now = stack_.sim().now();
        std::vector<std::uint32_t> stale;
        for (const auto &[seq, when] : ch.sentAt)
            if (now - when >= params.retxTimeout)
                stale.push_back(seq);
        for (auto seq : stale)
            retransmit(ch, seq);
        pumpWindow(ch, params.window);
        armRetxTimer(chanId, params);
    });
}

RunResult
StreamProtocol::run(const StreamParams &params)
{
    hostprof::HostScope hps(hostprof::Site::ProtoStream);
    RunResult res;
    const int n = stack_.dataWords();
    if (params.words == 0 ||
        params.words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("stream of ", params.words,
                     " words: not a multiple of packet size ", n);
    const std::uint32_t packets =
        params.words / static_cast<std::uint32_t>(n);

    Channel &ch = openChannel(params, nullptr);
    Node &src = stack_.node(params.src);
    Node &dst = stack_.node(params.dst);

    // Generate the stream contents (register-resident application
    // data; uncharged).
    std::vector<std::vector<Word>> data(packets);
    std::uint64_t sm = params.fillSeed;
    for (auto &pkt : data) {
        pkt.resize(static_cast<std::size_t>(n));
        for (auto &w : pkt)
            w = static_cast<Word>(splitMix64(sm));
    }

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack_.sim().now();
    Tick done_at = t0;

    if (!params.eventMode) {
        // ---- Calibration mode: minimum execution path.
        for (const auto &pkt : data)
            sendPacket(ch, pkt);
        stack_.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack_.cmam(params.dst).poll();
        }
        flushGroupAck(ch);
        stack_.settle();
        consumeAcks(ch);
        done_at = stack_.sim().now();
    } else {
        // ---- Event mode: hooks, window pump, retransmission.
        runDiscipline_ = params.discipline;
        src.ni().setArrivalHook(
            [this, id = params.src] { schedulePoll(id); });
        dst.ni().setArrivalHook(
            [this, id = params.dst] { schedulePoll(id); });
        ch.sendQueue = data;
        pumpWindow(ch, params.window);
        armRetxTimer(ch.id, params);
        if (params.groupAck > 1)
            armFlushTimer(ch.id, params.retxTimeout / 2);
        stack_.sim().runUntil(
            [&] {
                return (ch.deliveredPackets >= packets &&
                        ch.unacked.empty() &&
                        ch.nextToSend >= ch.sendQueue.size()) ||
                       ch.retx >=
                           static_cast<std::uint64_t>(params.maxRetx);
            },
            50'000'000);
        done_at = stack_.sim().now();
        // Let straggler acks and duplicate traffic settle (timers may
        // run past the completion instant; they don't count toward
        // the exchange's latency).
        stack_.settle();
        src.ni().setArrivalHook(nullptr);
        dst.ni().setArrivalHook(nullptr);
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = done_at - t0;
    res.packets = packets;
    res.oooArrivals = ch.ooo;
    res.acksSent = ch.acksSent;
    res.retransmissions = ch.retx;
    res.duplicates = ch.dups;

    // Integrity: the receiver must have observed the exact word
    // stream, in order.
    res.dataOk = ch.deliveredWords.size() ==
                 static_cast<std::size_t>(params.words);
    if (res.dataOk) {
        std::size_t k = 0;
        for (const auto &pkt : data)
            for (Word w : pkt)
                if (ch.deliveredWords[k++] != w) {
                    res.dataOk = false;
                    break;
                }
    }
    closeChannel(ch.id);
    return res;
}

} // namespace msgsim

/**
 * @file
 * A CMMD/MPI-style user-level message-passing library built on the
 * CMAM stack — the kind of consumer the paper's §2.1 "communication
 * services" list is written for (it cites CMMD, PVM, and MPI).
 *
 * Semantics: tag-matched, rendezvous point-to-point messages.
 *
 *  - The receiver posts a buffer with (source, tag) selectors
 *    (wildcards allowed).
 *  - The sender issues a send request carrying (tag, size).  If a
 *    matching receive is posted, the receiver allocates a
 *    communication segment over the posted buffer and replies;
 *    otherwise the request parks in the unexpected-message queue
 *    until a matching receive arrives (the classic rendezvous
 *    dance).
 *  - Data moves with the finite-sequence machinery (offset-stamped
 *    packets into the segment), completion frees the segment and
 *    acknowledges the sender.
 *
 * Matching between a (src, tag) pair is FIFO: messages from one
 * sender with one tag are received in the order they were sent.
 *
 * Cost attribution: the matching machinery is charged to
 * BufferMgmt (it exists to bind buffers), the data packets to
 * BaseCost/InOrderDelivery as usual, and the final ack to
 * FaultTolerance.
 */

#ifndef MSGSIM_MSGLIB_MSG_PASSING_HH
#define MSGSIM_MSGLIB_MSG_PASSING_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "protocols/stack.hh"

namespace msgsim
{

/** Wildcard for postRecv's source selector. */
constexpr NodeId anySource = invalidNode;

/** Wildcard tag. */
constexpr Word anyTag = 0x00ffffffu;

/**
 * The per-stack message-passing engine.
 */
class MsgPassing
{
  public:
    /** Handle naming one posted receive. */
    using RecvHandle = std::uint32_t;

    /** Handle naming one outstanding send. */
    using SendHandle = std::uint32_t;

    explicit MsgPassing(Stack &stack);

    MsgPassing(const MsgPassing &) = delete;
    MsgPassing &operator=(const MsgPassing &) = delete;

    /**
     * Post a receive on node @p self: up to @p maxWords words into
     * @p buf, matching sender @p from (or anySource) and tag @p tag
     * (or anyTag).  Returns a handle to query with recvDone().
     * Charges the posting cost (queue insert) to BufferMgmt.
     */
    RecvHandle postRecv(NodeId self, Addr buf, std::uint32_t maxWords,
                        Word tag, NodeId from = anySource);

    /**
     * Start a send from node @p self: @p words words at @p buf to
     * @p dst with tag @p tag.  Returns a handle to query with
     * sendDone().  The data flows once the receiver has a matching
     * posted buffer.
     */
    SendHandle send(NodeId self, NodeId dst, Addr buf,
                    std::uint32_t words, Word tag);

    /** True once the receive completed. */
    bool recvDone(RecvHandle h) const;

    /** Words actually received (valid once recvDone()). */
    std::uint32_t recvWords(RecvHandle h) const;

    /** Sender node id of the matched message (once recvDone()). */
    NodeId recvSource(RecvHandle h) const;

    /** True once the send was delivered and acknowledged. */
    bool sendDone(SendHandle h) const;

    /**
     * Calibration-style progress driver: alternately settles the
     * network and polls every node until the given predicates hold
     * (or the round budget runs out).  Returns true on success.
     */
    bool progressUntil(const std::function<bool()> &done,
                       int maxRounds = 64);

    /** Block (progress) until a specific send completes. */
    bool waitSend(SendHandle h, int maxRounds = 64);

    /** Block (progress) until a specific receive completes. */
    bool waitRecv(RecvHandle h, int maxRounds = 64);

    /** Messages that arrived before a matching receive was posted. */
    std::uint64_t unexpectedArrivals() const { return unexpected_; }

  private:
    struct PostedRecv
    {
        NodeId self = 0;
        Addr buf = 0;
        std::uint32_t maxWords = 0;
        Word tag = 0;
        NodeId from = anySource;
        bool done = false;
        std::uint32_t gotWords = 0;
        NodeId gotFrom = invalidNode;
    };

    struct PendingSend
    {
        NodeId self = 0;
        NodeId dst = 0;
        Addr buf = 0;
        std::uint32_t words = 0;
        Word tag = 0;
        bool started = false;
        bool done = false;
    };

    /** A send request queued at the receiver before matching. */
    struct UnexpectedMsg
    {
        NodeId src = 0;
        Word tag = 0;
        std::uint32_t words = 0;
        Word sendId = 0;
    };

    void installSinks();
    void onSendReq(NodeId self, NodeId src, Word sendId, Word tag,
                   std::uint32_t words);
    void onReplyOrAck(NodeId self, NodeId src, Word hdrArg,
                      const std::vector<Word> &args);

    /** Receiver side: bind request @p m to posted receive @p rh. */
    void match(NodeId self, const UnexpectedMsg &m, RecvHandle rh);

    bool matches(const PostedRecv &r, NodeId src, Word tag) const;

    Stack &stack_;
    std::map<RecvHandle, PostedRecv> recvs_;
    std::map<SendHandle, PendingSend> sends_;
    /// Receiver-side queues, per node: posted-but-unmatched receives
    /// (in post order) and unexpected messages (in arrival order).
    std::map<NodeId, std::deque<RecvHandle>> postedQueue_;
    std::map<NodeId, std::deque<UnexpectedMsg>> unexpectedQueue_;
    RecvHandle nextRecv_ = 1;
    SendHandle nextSend_ = 1;
    std::uint64_t unexpected_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_MSGLIB_MSG_PASSING_HH

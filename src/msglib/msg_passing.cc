#include "msglib/msg_passing.hh"

#include "sim/log.hh"

namespace msgsim
{

namespace
{
/// GenericB payload word 0: message kind.
constexpr Word kindReply = 0;
constexpr Word kindAck = 1;
} // namespace

MsgPassing::MsgPassing(Stack &stack) : stack_(stack)
{
    installSinks();
}

void
MsgPassing::installSinks()
{
    for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
        Cmam &cm = stack_.cmam(id);
        cm.setControlSink(
            CtrlOp::GenericA,
            [this, id](NodeId src, Word sendId,
                       const std::vector<Word> &args) {
                onSendReq(id, src, sendId, args.at(0), args.at(1));
            });
        cm.setControlSink(
            CtrlOp::GenericB,
            [this, id](NodeId src, Word hdrArg,
                       const std::vector<Word> &args) {
                onReplyOrAck(id, src, hdrArg, args);
            });
    }
}

bool
MsgPassing::matches(const PostedRecv &r, NodeId src, Word tag) const
{
    if (r.done)
        return false;
    if (r.from != anySource && r.from != src)
        return false;
    if (r.tag != anyTag && r.tag != tag)
        return false;
    return true;
}

MsgPassing::RecvHandle
MsgPassing::postRecv(NodeId self, Addr buf, std::uint32_t maxWords,
                     Word tag, NodeId from)
{
    const RecvHandle h = nextRecv_++;
    PostedRecv r;
    r.self = self;
    r.buf = buf;
    r.maxWords = maxWords;
    r.tag = tag;
    r.from = from;
    recvs_[h] = r;

    Node &node = stack_.node(self);
    {
        // Posting cost: append to the posted-receive queue (modeled:
        // descriptor stores + queue-tail update).
        FeatureScope bm(node.acct(), Feature::BufferMgmt);
        node.proc().regOps(6);
        node.proc().acct().charge(OpClass::MemStore, 3);
    }

    // First service the unexpected-message queue (rendezvous
    // requests that raced ahead of this post).
    auto &uq = unexpectedQueue_[self];
    for (auto it = uq.begin(); it != uq.end(); ++it) {
        // Matching scan: tag/source compares per visited entry.
        {
            FeatureScope bm(node.acct(), Feature::BufferMgmt);
            node.proc().regOps(4);
        }
        if (matches(recvs_[h], it->src, it->tag)) {
            const UnexpectedMsg m = *it;
            uq.erase(it);
            match(self, m, h);
            return h;
        }
    }
    postedQueue_[self].push_back(h);
    return h;
}

MsgPassing::SendHandle
MsgPassing::send(NodeId self, NodeId dst, Addr buf,
                 std::uint32_t words, Word tag)
{
    const int n = stack_.dataWords();
    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("msglib send of ", words, " words: must be a "
                     "positive multiple of the packet size ", n);
    if (tag > hdr::maxFieldB)
        msgsim_fatal("msglib tag ", tag, " exceeds 24 bits");

    const SendHandle h = nextSend_++;
    PendingSend s;
    s.self = self;
    s.dst = dst;
    s.buf = buf;
    s.words = words;
    s.tag = tag;
    sends_[h] = s;

    // Rendezvous request: (tag, size) ride a control packet.
    Node &node = stack_.node(self);
    FeatureScope bm(node.acct(), Feature::BufferMgmt);
    stack_.cmam(self).sendControl(dst, CtrlOp::GenericA, h,
                                  {tag, words});
    return h;
}

void
MsgPassing::onSendReq(NodeId self, NodeId src, Word sendId, Word tag,
                      std::uint32_t words)
{
    Node &node = stack_.node(self);

    // Walk the posted-receive queue looking for the first match.
    auto &pq = postedQueue_[self];
    for (auto it = pq.begin(); it != pq.end(); ++it) {
        {
            FeatureScope bm(node.acct(), Feature::BufferMgmt);
            node.proc().regOps(4);
        }
        if (matches(recvs_.at(*it), src, tag)) {
            const RecvHandle rh = *it;
            pq.erase(it);
            match(self, UnexpectedMsg{src, tag, words, sendId}, rh);
            return;
        }
    }

    // No match: park in the unexpected-message queue.
    {
        FeatureScope bm(node.acct(), Feature::BufferMgmt);
        node.proc().regOps(8);
        node.proc().acct().charge(OpClass::MemStore, 4);
    }
    unexpectedQueue_[self].push_back(
        UnexpectedMsg{src, tag, words, sendId});
    ++unexpected_;
}

void
MsgPassing::match(NodeId self, const UnexpectedMsg &m, RecvHandle rh)
{
    Node &node = stack_.node(self);
    Cmam &cm = stack_.cmam(self);
    PostedRecv &r = recvs_.at(rh);
    const int n = stack_.dataWords();

    if (m.words > r.maxWords)
        msgsim_fatal("msglib: message of ", m.words,
                     " words overflows the posted buffer of ",
                     r.maxWords);

    FeatureScope bm(node.acct(), Feature::BufferMgmt);
    const Word seg = cm.segments().alloc(
        node.proc(), r.buf, m.words / static_cast<Word>(n));
    if (seg == invalidSegment)
        msgsim_fatal("msglib: segment table exhausted on node ", self);

    const NodeId sender = m.src;
    const Word send_id = m.sendId;
    cm.segments().setCompletion(
        seg, [this, self, sender, send_id, rh, words = m.words](
                 Word segId) {
            Node &nd = stack_.node(self);
            Cmam &c = stack_.cmam(self);
            {
                FeatureScope f1(nd.acct(), Feature::BufferMgmt);
                c.segments().free(nd.proc(), segId);
            }
            PostedRecv &rr = recvs_.at(rh);
            rr.done = true;
            rr.gotWords = words;
            rr.gotFrom = sender;
            {
                FeatureScope f2(nd.acct(), Feature::FaultTolerance);
                c.sendControl(sender, CtrlOp::GenericB, send_id,
                              {kindAck}, /*vnet=*/1);
            }
        });

    // Tell the sender where to put the data.
    cm.sendControl(sender, CtrlOp::GenericB, send_id,
                   {kindReply, seg}, /*vnet=*/1);
}

void
MsgPassing::onReplyOrAck(NodeId self, NodeId src, Word hdrArg,
                         const std::vector<Word> &args)
{
    (void)self;
    (void)src;
    auto it = sends_.find(hdrArg);
    if (it == sends_.end())
        msgsim_panic("msglib control for unknown send ", hdrArg);
    PendingSend &s = it->second;

    if (args.at(0) == kindAck) {
        s.done = true;
        return;
    }
    // Reply: stream the data into the granted segment.
    const Word seg = args.at(1);
    s.started = true;
    Node &node = stack_.node(s.self);
    FeatureScope base(node.acct(), Feature::BaseCost);
    stack_.cmam(s.self).xferSend(s.dst, seg, s.buf, s.words);
}

bool
MsgPassing::recvDone(RecvHandle h) const
{
    return recvs_.at(h).done;
}

std::uint32_t
MsgPassing::recvWords(RecvHandle h) const
{
    return recvs_.at(h).gotWords;
}

NodeId
MsgPassing::recvSource(RecvHandle h) const
{
    return recvs_.at(h).gotFrom;
}

bool
MsgPassing::sendDone(SendHandle h) const
{
    return sends_.at(h).done;
}

bool
MsgPassing::progressUntil(const std::function<bool()> &done,
                          int maxRounds)
{
    for (int round = 0; round < maxRounds; ++round) {
        if (done())
            return true;
        stack_.settle();
        for (NodeId id = 0; id < stack_.machine().nodeCount(); ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
        }
    }
    return done();
}

bool
MsgPassing::waitSend(SendHandle h, int maxRounds)
{
    return progressUntil([this, h] { return sendDone(h); }, maxRounds);
}

bool
MsgPassing::waitRecv(RecvHandle h, int maxRounds)
{
    return progressUntil([this, h] { return recvDone(h); }, maxRounds);
}

} // namespace msgsim

/**
 * @file
 * The instrumented execution model.
 *
 * Messaging-layer code is written against these primitives, so every
 * dynamic instruction of the modeled SPARC-like processor is both
 * *performed* (memory really changes) and *charged* (recorded in the
 * embedded Accounting under the scoped feature/row).  The primitives
 * follow the paper's cost hierarchy:
 *
 *  - regOps / callRet / branches:  register-class instructions;
 *  - loadWord/storeWord and the double variants:  memory class —
 *    note a SPARC ldd/std moves TWO words in ONE instruction, which
 *    is why a 4-word packet body costs 2 memory operations;
 *  - device (NI) loads/stores are charged by the NetIface itself.
 */

#ifndef MSGSIM_MACHINE_PROCESSOR_HH
#define MSGSIM_MACHINE_PROCESSOR_HH

#include <cstdint>
#include <utility>

#include "core/accounting.hh"
#include "core/types.hh"
#include "machine/memory.hh"

namespace msgsim
{

/**
 * Charged-primitive processor bound to one node's memory.
 */
class Processor
{
  public:
    explicit Processor(Memory &mem) : mem_(mem) {}

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /** The charging context (features/rows are scoped on this). */
    Accounting &acct() { return acct_; }
    const Accounting &acct() const { return acct_; }

    /** The node memory this processor addresses. */
    Memory &mem() { return mem_; }

    /** Charge @p n register-class instructions (ALU, compare, move). */
    void
    regOps(std::uint64_t n = 1)
    {
        acct_.charge(OpClass::Reg, n);
    }

    /** Charge @p n branch instructions (register class). */
    void
    branches(std::uint64_t n = 1)
    {
        acct_.charge(OpClass::Reg, n);
    }

    /**
     * Charge procedure-linkage cost: call + return + register-window
     * management, @p n register-class instructions total.
     */
    void
    callRet(std::uint64_t n)
    {
        acct_.charge(OpClass::Reg, n);
    }

    /** Load one word (SPARC ld): one memory operation. */
    Word
    loadWord(Addr addr)
    {
        acct_.charge(OpClass::MemLoad);
        return mem_.read(addr);
    }

    /** Store one word (st): one memory operation. */
    void
    storeWord(Addr addr, Word value)
    {
        acct_.charge(OpClass::MemStore);
        mem_.write(addr, value);
    }

    /** Load two adjacent words (ldd): ONE memory operation. */
    std::pair<Word, Word>
    loadDouble(Addr addr)
    {
        acct_.charge(OpClass::MemLoad);
        return {mem_.read(addr), mem_.read(addr + 1)};
    }

    /** Store two adjacent words (std): ONE memory operation. */
    void
    storeDouble(Addr addr, Word w0, Word w1)
    {
        acct_.charge(OpClass::MemStore);
        mem_.write(addr, w0);
        mem_.write(addr + 1, w1);
    }

  private:
    Memory &mem_;
    Accounting acct_;
};

} // namespace msgsim

#endif // MSGSIM_MACHINE_PROCESSOR_HH

/**
 * @file
 * One compute node: processor + memory + network interface.
 */

#ifndef MSGSIM_MACHINE_NODE_HH
#define MSGSIM_MACHINE_NODE_HH

#include <memory>

#include "core/types.hh"
#include "machine/memory.hh"
#include "machine/processor.hh"
#include "ni/net_iface.hh"

namespace msgsim
{

/**
 * A single node of the modeled multicomputer.
 */
class Node
{
  public:
    Node(NodeId id, Network &net, std::size_t memWords,
         const NetIface::Config &niCfg)
        : id_(id), mem_(memWords), proc_(mem_), ni_(id, net, niCfg)
    {
        ni_.attachMemory(&mem_); // DMA bus mastering
    }

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    NodeId id() const { return id_; }
    Memory &mem() { return mem_; }
    Processor &proc() { return proc_; }
    NetIface &ni() { return ni_; }
    Accounting &acct() { return proc_.acct(); }

  private:
    NodeId id_;
    Memory mem_;
    Processor proc_;
    NetIface ni_;
};

} // namespace msgsim

#endif // MSGSIM_MACHINE_NODE_HH

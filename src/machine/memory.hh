/**
 * @file
 * Node-local memory.
 *
 * A flat, word-addressed store with bounds checking and a bump
 * allocator for carving out message buffers, segments, and protocol
 * state.  Accesses are *not* charged here — charging is the
 * Processor's job — so hardware agents (e.g. a DMA model) could touch
 * memory without perturbing instruction counts.
 */

#ifndef MSGSIM_MACHINE_MEMORY_HH
#define MSGSIM_MACHINE_MEMORY_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"
#include "sim/log.hh"

namespace msgsim
{

/**
 * Flat word-addressed node memory with a bump allocator.
 */
class Memory
{
  public:
    /** @param words capacity in 32-bit words. */
    explicit Memory(std::size_t words = 1u << 20) : words_(words, 0) {}

    /** Capacity in words. */
    std::size_t size() const { return words_.size(); }

    /** Read one word. */
    Word
    read(Addr addr) const
    {
        check(addr);
        return words_[addr];
    }

    /** Write one word. */
    void
    write(Addr addr, Word value)
    {
        check(addr);
        words_[addr] = value;
    }

    /**
     * Allocate @p words contiguous words; returns the base address.
     * This models static buffer carving, not the protocol-level
     * segment allocation the paper accounts for.
     */
    Addr
    alloc(std::size_t words)
    {
        if (brk_ + words > words_.size())
            msgsim_fatal("node memory exhausted: want ", words,
                         " words at brk ", brk_, " of ", words_.size());
        const Addr base = static_cast<Addr>(brk_);
        brk_ += words;
        return base;
    }

    /** Words currently allocated. */
    std::size_t allocated() const { return brk_; }

  private:
    void
    check(Addr addr) const
    {
        if (addr >= words_.size())
            msgsim_panic("memory access out of bounds: ", addr, " >= ",
                         words_.size());
    }

    std::vector<Word> words_;
    std::size_t brk_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_MACHINE_MEMORY_HH

/**
 * @file
 * Node-local memory.
 *
 * A flat, word-addressed store with bounds checking and a bump
 * allocator for carving out message buffers, segments, and protocol
 * state.  Accesses are *not* charged here — charging is the
 * Processor's job — so hardware agents (e.g. a DMA model) could touch
 * memory without perturbing instruction counts.
 */

#ifndef MSGSIM_MACHINE_MEMORY_HH
#define MSGSIM_MACHINE_MEMORY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hh"
#include "sim/log.hh"

namespace msgsim
{

/**
 * Flat word-addressed node memory with a bump allocator.
 *
 * Backing storage is demand-paged: pages materialize (zero-filled)
 * on first write, and reads of untouched words return 0 — exactly
 * the semantics of the previous eagerly-zeroed array, but a node
 * with a large address space no longer costs its full capacity in
 * host memory and page-zeroing time.  That matters to the lab's
 * parallel sweeps, where many stacks are built per second.
 */
class Memory
{
  public:
    /** @param words capacity in 32-bit words. */
    explicit Memory(std::size_t words = 1u << 20)
        : size_(words), pages_((words + pageWords - 1) / pageWords)
    {
    }

    /** Capacity in words. */
    std::size_t size() const { return size_; }

    /** Read one word. */
    Word
    read(Addr addr) const
    {
        check(addr);
        const auto &page = pages_[addr / pageWords];
        return page ? (*page)[addr % pageWords] : 0;
    }

    /** Write one word. */
    void
    write(Addr addr, Word value)
    {
        check(addr);
        auto &page = pages_[addr / pageWords];
        if (!page)
            page = std::make_unique<std::vector<Word>>(pageWords, 0);
        (*page)[addr % pageWords] = value;
    }

    /**
     * Allocate @p words contiguous words; returns the base address.
     * This models static buffer carving, not the protocol-level
     * segment allocation the paper accounts for.
     */
    Addr
    alloc(std::size_t words)
    {
        if (brk_ + words > size_)
            msgsim_fatal("node memory exhausted: want ", words,
                         " words at brk ", brk_, " of ", size_);
        const Addr base = static_cast<Addr>(brk_);
        brk_ += words;
        return base;
    }

    /** Words currently allocated. */
    std::size_t allocated() const { return brk_; }

  private:
    static constexpr std::size_t pageWords = 1u << 14;

    void
    check(Addr addr) const
    {
        if (addr >= size_)
            msgsim_panic("memory access out of bounds: ", addr, " >= ",
                         size_);
    }

    std::size_t size_;
    std::vector<std::unique_ptr<std::vector<Word>>> pages_;
    std::size_t brk_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_MACHINE_MEMORY_HH

#include "machine/machine.hh"

#include "sim/log.hh"

namespace msgsim
{

Machine::Machine(const Config &cfg, const NetworkFactory &makeNetwork)
    : cfg_(cfg)
{
    if (cfg_.nodes == 0)
        msgsim_fatal("machine needs at least one node");
    net_ = makeNetwork(sim_);
    if (!net_)
        msgsim_panic("network factory returned null");

    NetIface::Config ni_cfg;
    ni_cfg.dataWords = cfg_.dataWords;
    ni_cfg.recvCapacity = cfg_.recvCapacity;
    nodes_.reserve(cfg_.nodes);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i)
        nodes_.push_back(std::make_unique<Node>(i, *net_, cfg_.memWords,
                                                ni_cfg));
}

Node &
Machine::node(NodeId id)
{
    if (id >= nodes_.size())
        msgsim_panic("node id ", id, " out of range ", nodes_.size());
    return *nodes_[id];
}

void
Machine::settle(std::uint64_t maxEvents)
{
    for (int round = 0; round < 64; ++round) {
        sim_.run(maxEvents);
        net_->flushHeldPackets();
        if (sim_.idle())
            return;
    }
    msgsim_panic("machine failed to settle: order stages keep "
                 "producing work");
}

} // namespace msgsim

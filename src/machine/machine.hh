/**
 * @file
 * The whole modeled multicomputer: a simulator, a routing network,
 * and N nodes attached to it.
 */

#ifndef MSGSIM_MACHINE_MACHINE_HH
#define MSGSIM_MACHINE_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "machine/node.hh"
#include "net/network.hh"
#include "sim/event.hh"

namespace msgsim
{

/**
 * Builds and owns the simulator, network, and nodes.
 */
class Machine
{
  public:
    struct Config
    {
        std::uint32_t nodes = 4;     ///< node count
        int dataWords = 4;           ///< packet data words (CM-5: 4)
        std::size_t memWords = 1u << 20; ///< per-node memory
        /// Receive-FIFO capacity in packets (unlimited by default for
        /// minimal-path calibration).
        std::size_t recvCapacity = static_cast<std::size_t>(-1);
    };

    /** Builds the substrate once the simulator exists. */
    using NetworkFactory =
        std::function<std::unique_ptr<Network>(Simulator &)>;

    Machine(const Config &cfg, const NetworkFactory &makeNetwork);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    Simulator &sim() { return sim_; }
    Network &network() { return *net_; }
    std::uint32_t nodeCount() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    Node &node(NodeId id);

    /** Packet data words per hardware packet. */
    int dataWords() const { return cfg_.dataWords; }

    /**
     * Run the event loop to completion, then flush any packets held
     * in order-scrambling stages and run again, until truly quiescent.
     */
    void settle(std::uint64_t maxEvents = 10'000'000);

  private:
    Config cfg_;
    Simulator sim_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

} // namespace msgsim

#endif // MSGSIM_MACHINE_MACHINE_HH

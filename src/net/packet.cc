#include "net/packet.hh"

namespace msgsim
{

const char *
toString(HwTag tag)
{
    switch (tag) {
      case HwTag::UserAm:     return "user-am";
      case HwTag::XferData:   return "xfer-data";
      case HwTag::StreamData: return "stream-data";
      case HwTag::Control:    return "control";
      case HwTag::StreamAck:  return "stream-ack";
      default:                return "?";
    }
}

std::uint32_t
Packet::computeCrc() const
{
    // FNV-1a over all payload words: not the CM-5's actual CRC
    // polynomial, but an error-detecting hash with the same role.
    std::uint32_t h = 0x811c9dc5u;
    auto mix = [&h](std::uint32_t w) {
        for (int i = 0; i < 4; ++i) {
            h ^= (w >> (8 * i)) & 0xffu;
            h *= 16777619u;
        }
    };
    mix(header);
    for (Word w : data)
        mix(w);
    return h;
}

} // namespace msgsim

/**
 * @file
 * Packet fault injection.
 *
 * The paper's network model provides "fault-detection but not
 * fault-tolerance": packets can be lost or corrupted; corruption is
 * detected (per-packet CRC) but not corrected.  The injector
 * deterministically (seeded) drops or corrupts packets at configured
 * rates, and also supports scripted faults on specific injection
 * sequence numbers for directed tests.
 */

#ifndef MSGSIM_NET_FAULT_HH
#define MSGSIM_NET_FAULT_HH

#include <cstdint>
#include <set>

#include "net/packet.hh"
#include "sim/rng.hh"

namespace msgsim
{

/** What the injector did to a packet. */
enum class FaultAction : std::uint8_t
{
    None,      ///< delivered intact
    Drop,      ///< silently lost in the network
    Corrupt,   ///< delivered with a flipped bit (CRC will catch it)
    Duplicate, ///< delivered twice (adaptive-retry ghost copy)
};

/**
 * Seeded, per-network fault injector.
 */
class FaultInjector
{
  public:
    struct Config
    {
        double dropRate = 0.0;    ///< iid probability of silent loss
        double corruptRate = 0.0; ///< iid probability of bit corruption
        /// iid probability a packet is delivered twice (a ghost copy
        /// from a speculative adaptive retry) — exercises the
        /// sequence-number dedup path of the messaging layers.
        double duplicateRate = 0.0;
        std::uint64_t seed = 0x5eedfa017ULL;
    };

    FaultInjector() : FaultInjector(Config{}) {}

    explicit FaultInjector(const Config &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {
    }

    /**
     * Decide the fate of @p pkt and apply corruption in place.
     * Scripted faults (by injectSeq) take precedence over rates.
     */
    FaultAction apply(Packet &pkt);

    /** Script a drop of the packet with global injection seq @p n. */
    void scriptDrop(std::uint64_t n) { scriptedDrops_.insert(n); }

    /** Script a corruption of the packet with injection seq @p n. */
    void scriptCorrupt(std::uint64_t n) { scriptedCorrupts_.insert(n); }

    /** Script a duplication of the packet with injection seq @p n. */
    void
    scriptDuplicate(std::uint64_t n)
    {
        scriptedDuplicates_.insert(n);
    }

    std::uint64_t drops() const { return drops_; }
    std::uint64_t corruptions() const { return corruptions_; }
    std::uint64_t duplications() const { return duplications_; }

  private:
    Config cfg_;
    Rng rng_;
    std::set<std::uint64_t> scriptedDrops_;
    std::set<std::uint64_t> scriptedCorrupts_;
    std::set<std::uint64_t> scriptedDuplicates_;
    std::uint64_t drops_ = 0;
    std::uint64_t corruptions_ = 0;
    std::uint64_t duplications_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_NET_FAULT_HH

/**
 * @file
 * Packet-lineage instrumentation hooks.
 *
 * LineageHooks is the narrow, dependency-free interface the hardware
 * and messaging layers consult to report packet lifecycle edges:
 * birth (software stages a packet at the NI), hardware events
 * (inject / deliver / reject / drop / corrupt / retry / duplicate),
 * and handler dispatch (a polled packet entering messaging-layer
 * software).  The concrete recorder lives in `src/prof`
 * (prof::LineageSession); keeping only this abstract base in
 * `src/net` lets the low layers stay free of any profiling
 * dependency.
 *
 * Design rules (same as TraceSession): when no hooks are attached
 * each site is a single pointer test, and no hook implementation may
 * ever touch an Accounting object — lineage tracing can never
 * perturb instruction counts.
 */

#ifndef MSGSIM_NET_LINEAGE_HOOK_HH
#define MSGSIM_NET_LINEAGE_HOOK_HH

#include "core/types.hh"
#include "net/packet.hh"
#include "net/tracer.hh"

namespace msgsim
{

/**
 * Process-wide packet-lifecycle observer.  All methods are invoked
 * synchronously from the simulation thread; call sites pass their own
 * clock so the recorder needs no clock binding of its own.
 */
class LineageHooks
{
  public:
    virtual ~LineageHooks();

    /** The attached hooks, or nullptr (the sites' fast path). */
    static LineageHooks *current() { return current_; }

    /**
     * A packet was staged for sending (NetIface::writeSendCtl).  The
     * implementation assigns @p pkt.lineage (and records parentage
     * when the send happens inside a handler).
     */
    virtual void packetBorn(Packet &pkt, NodeId node, Tick now) = 0;

    /** A hardware-level packet event (Network::trace's events). */
    virtual void hwEvent(TraceEvent ev, const Packet &pkt,
                         Tick now) = 0;

    /**
     * Messaging-layer software starts handling the head receive
     * packet (CMAM / HL poll dispatch).  Until the matching
     * handlerEnd, packets born on any node inherit @p pkt's lineage
     * as their causal parent.
     */
    virtual void handlerBegin(NodeId node, const Packet &pkt,
                              Tick now) = 0;

    /** The dispatch that began with handlerBegin finished. */
    virtual void handlerEnd(NodeId node, Tick now) = 0;

  protected:
    /** Make this instance the process-wide hook target. */
    void attach();

    /** Stop being the target (no-op if not attached). */
    void detach();

  private:
    static LineageHooks *current_;
};

} // namespace msgsim

#endif // MSGSIM_NET_LINEAGE_HOOK_HH

#include "net/lineage_hook.hh"

#include "sim/log.hh"

namespace msgsim
{

LineageHooks *LineageHooks::current_ = nullptr;

LineageHooks::~LineageHooks()
{
    detach();
}

void
LineageHooks::attach()
{
    if (current_ != nullptr && current_ != this)
        msgsim_warn("replacing attached LineageHooks");
    current_ = this;
}

void
LineageHooks::detach()
{
    if (current_ == this)
        current_ = nullptr;
}

} // namespace msgsim

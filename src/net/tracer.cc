#include "net/tracer.hh"

#include <cstdio>
#include <sstream>

#include "sim/trace_session.hh"

namespace msgsim
{

const char *
toString(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Inject:  return "inject";
      case TraceEvent::Deliver: return "deliver";
      case TraceEvent::Drop:    return "drop";
      case TraceEvent::Corrupt: return "corrupt";
      case TraceEvent::Reject:  return "reject";
      case TraceEvent::HwRetry: return "hw-retry";
      case TraceEvent::Duplicate: return "duplicate";
      default:                  return "?";
    }
}

std::string
TraceRecord::format() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%10llu  %-8s  %3u -> %3u  %-11s  seq=%llu  "
                  "hdr=%08x",
                  static_cast<unsigned long long>(when),
                  toString(event), src, dst, toString(tag),
                  static_cast<unsigned long long>(injectSeq), header);
    return buf;
}

PacketTracer::PacketTracer(std::size_t capacity)
    : capacity_(capacity ? capacity : 1),
      perEvent_(8, 0)
{
    ring_.reserve(capacity_);
}

void
PacketTracer::record(Tick when, TraceEvent ev, const Packet &pkt)
{
    TraceRecord rec;
    rec.when = when;
    rec.event = ev;
    rec.src = pkt.src;
    rec.dst = pkt.dst;
    rec.tag = pkt.tag;
    rec.injectSeq = pkt.injectSeq;
    rec.header = pkt.header;

    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
    } else {
        ring_[head_] = rec;
        wrapped_ = true;
    }
    head_ = (head_ + 1) % capacity_;
    ++observed_;
    const auto evIdx = static_cast<std::size_t>(ev);
    if (evIdx >= perEvent_.size())
        perEvent_.resize(evIdx + 1, 0);
    ++perEvent_[evIdx];
    if (observer_)
        observer_(rec);
}

std::uint64_t
PacketTracer::observed(TraceEvent ev) const
{
    const auto evIdx = static_cast<std::size_t>(ev);
    return evIdx < perEvent_.size() ? perEvent_[evIdx] : 0;
}

std::vector<TraceRecord>
PacketTracer::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    if (!wrapped_) {
        out = ring_;
    } else {
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(head_ + i) % capacity_]);
    }
    return out;
}

std::vector<TraceRecord>
PacketTracer::select(
    const std::function<bool(const TraceRecord &)> &pred) const
{
    std::vector<TraceRecord> out;
    for (const auto &rec : snapshot())
        if (pred(rec))
            out.push_back(rec);
    return out;
}

std::string
PacketTracer::dump() const
{
    std::ostringstream os;
    for (const auto &rec : snapshot())
        os << rec.format() << "\n";
    return os.str();
}

void
PacketTracer::clear()
{
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
}

void
attachTraceBridge(PacketTracer &tracer, TraceSession &session)
{
    tracer.setObserver([&session](const TraceRecord &rec) {
        // Injections happen at the source; delivery-side events land
        // on the destination's track.
        const NodeId node =
            rec.event == TraceEvent::Inject ? rec.src : rec.dst;
        session.instantAt(rec.when, node, "hw", toString(rec.event),
                          static_cast<double>(rec.injectSeq));
    });
}

} // namespace msgsim

#include "net/network.hh"

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim
{

void
Network::attach(NodeId id, DeliverFn fn)
{
    sinks_[id] = std::move(fn);
    // Boot-time sizing of the per-destination link counters: the hot
    // paths below only ever increment, never allocate.
    if (id >= injectedTo_.size()) {
        injectedTo_.resize(id + 1, 0);
        settledTo_.resize(id + 1, 0);
        deliveredTo_.resize(id + 1, 0);
    }
}

bool
Network::inject(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::NetInject);
    const auto flow =
        std::make_tuple(pkt.src, pkt.dst, static_cast<int>(pkt.vnet));
    const NodeId flowDst = pkt.dst;
    pkt.injectSeq = nextInjectSeq_;
    pkt.flowIndex = flowCounters_[flow];
    pkt.seal();
    trace(TraceEvent::Inject, pkt);
    if (gate_ != nullptr) {
        // A schedule gate replaces the substrate: it owns the packet
        // until it decides its fate through the gate*() re-entry
        // points.  Injection always succeeds (port backpressure is a
        // substrate behaviour the gate models explicitly, if at all).
        gate_->capture(std::move(pkt));
    } else if (!injectImpl(std::move(pkt))) {
        return false;
    }
    ++nextInjectSeq_;
    ++flowCounters_[flow];
    ++stats_.injected;
    if (flowDst < injectedTo_.size())
        ++injectedTo_[flowDst];
    return true;
}

bool
Network::gateDeliver(Packet &&pkt)
{
    return presentToSink(std::move(pkt));
}

void
Network::gateDrop(const Packet &pkt)
{
    ++stats_.dropped;
    noteAbsorbed(pkt.dst);
    trace(TraceEvent::Drop, pkt);
}

void
Network::gateCorrupt(Packet &pkt)
{
    if (!pkt.data.empty())
        pkt.data[0] ^= 0x1u << (pkt.injectSeq % 32);
    else
        pkt.header ^= 0x1u;
    pkt.corrupted = true;
    ++stats_.corrupted;
    trace(TraceEvent::Corrupt, pkt);
}

void
Network::gateDuplicate(const Packet &pkt)
{
    ++stats_.duplicated;
    trace(TraceEvent::Duplicate, pkt);
}

bool
Network::presentToSink(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::NetDeliver);
    auto it = sinks_.find(pkt.dst);
    if (it == sinks_.end())
        msgsim_panic("no sink attached for node ", pkt.dst);
    // Capture trace metadata before the sink may consume the packet.
    Packet meta;
    if (tracer_ || LineageHooks::current()) {
        meta.src = pkt.src;
        meta.dst = pkt.dst;
        meta.tag = pkt.tag;
        meta.header = pkt.header;
        meta.injectSeq = pkt.injectSeq;
        meta.lineage = pkt.lineage;
    }
    const NodeId sinkDst = pkt.dst;
    const bool accepted = it->second(std::move(pkt));
    if (accepted) {
        ++stats_.delivered;
        noteDelivered(sinkDst);
        trace(TraceEvent::Deliver, meta);
    } else {
        trace(TraceEvent::Reject, meta);
    }
    return accepted;
}

} // namespace msgsim

/**
 * @file
 * The hardware packet format.
 *
 * The CM-5 data network carries packets of five 32-bit words.  We
 * model a packet as: a routing envelope (source, destination, 4-bit
 * hardware tag — consumed by the network/NI, like the CM-5's
 * destination register), one messaging-layer *header* word, and
 * n data words (n = 4 on the CM-5, configurable for the Figure 8
 * packet-size sweep).  Header + data = the 5-word CM-5 payload.
 *
 * The header word is packed/unpacked by the messaging layers:
 * CMAM_4 puts the handler index there; the finite-sequence transfer
 * packs (segment, offset); the indefinite-sequence stream packs
 * (channel, sequence number).
 */

#ifndef MSGSIM_NET_PACKET_HH
#define MSGSIM_NET_PACKET_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace msgsim
{

/** Hardware message tags, the NI's dispatch vector (4 bits on CM-5). */
enum class HwTag : std::uint8_t
{
    UserAm = 0,     ///< user-level active message (handler in header)
    XferData = 1,   ///< finite-sequence data packet (seg/offset header)
    StreamData = 2, ///< indefinite-sequence data packet (chan/seq header)
    Control = 3,    ///< messaging-layer internal request/reply/ack
    StreamAck = 4,  ///< per-packet/group ack of the indefinite protocol
    NumTags
};

/** Printable name of a hardware tag. */
const char *toString(HwTag tag);

/**
 * One hardware packet in flight.
 */
struct Packet
{
    NodeId src = invalidNode;  ///< injecting node
    NodeId dst = invalidNode;  ///< destination node
    HwTag tag = HwTag::UserAm; ///< hardware dispatch tag
    /// Virtual (physical, on the CM-5: left/right) data network.
    /// The CM-5 carries requests on one network and replies on the
    /// other so replies can always drain past backed-up requests —
    /// the paper's footnote 6: "The CMAM round-trip protocol using
    /// the two separate CM-5 networks however is safe."
    std::uint8_t vnet = 0;
    Word header = 0;           ///< messaging-layer header word
    std::vector<Word> data;    ///< n data words

    /// CRC over header+data, computed at injection (hardware).
    std::uint32_t crc = 0;
    /// Set by the fault injector; detected by the receiving NI.
    bool corrupted = false;
    /// Global injection sequence, for tracing and scripted faults.
    std::uint64_t injectSeq = 0;
    /// Per-(src,dst) flow index, assigned at injection.
    std::uint64_t flowIndex = 0;
    /// Causal lineage id, assigned at birth when a prof::LineageSession
    /// is attached (0 = untracked).  Purely observational: never read
    /// by the hardware model or the messaging layers.
    std::uint64_t lineage = 0;

    Packet() = default;

    Packet(NodeId s, NodeId d, HwTag t, Word hdr, std::vector<Word> words)
        : src(s), dst(d), tag(t), header(hdr), data(std::move(words))
    {
    }

    /** Wire size in words: header plus data. */
    std::size_t sizeWords() const { return 1 + data.size(); }

    /** Recompute the stored CRC from current contents. */
    void seal() { crc = computeCrc(); }

    /** True when the stored CRC matches the contents. */
    bool checksumOk() const { return !corrupted && crc == computeCrc(); }

    /** CRC32-like hash of header and data words. */
    std::uint32_t computeCrc() const;
};

/**
 * Header-word packing helpers.  Layout (32 bits):
 *   [31:24] field A (handler / segment / channel)
 *   [23: 0] field B (unused / offset / sequence)
 */
namespace hdr
{

constexpr Word
pack(std::uint32_t a, std::uint32_t b)
{
    return (a << 24) | (b & 0x00ffffffu);
}

constexpr std::uint32_t fieldA(Word h) { return h >> 24; }
constexpr std::uint32_t fieldB(Word h) { return h & 0x00ffffffu; }

/** Largest value field A can carry. */
constexpr std::uint32_t maxFieldA = 0xffu;
/** Largest value field B can carry. */
constexpr std::uint32_t maxFieldB = 0x00ffffffu;

} // namespace hdr

} // namespace msgsim

#endif // MSGSIM_NET_PACKET_HH

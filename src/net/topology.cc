#include "net/topology.hh"

#include "sim/log.hh"

namespace msgsim
{

FatTree::FatTree(std::uint32_t nodes, std::uint32_t arity)
    : nodes_(nodes), arity_(arity)
{
    if (nodes == 0)
        msgsim_fatal("fat tree needs at least one node");
    if (arity < 2)
        msgsim_fatal("fat tree arity must be >= 2, got ", arity);
    levels_ = 1;
    std::uint64_t reach = arity_;
    while (reach < nodes_) {
        reach *= arity_;
        ++levels_;
    }
}

std::uint32_t
FatTree::lca(NodeId a, NodeId b) const
{
    if (a >= nodes_ || b >= nodes_)
        msgsim_panic("node id out of range: ", a, ", ", b, " of ", nodes_);
    if (a == b)
        return 0;
    std::uint32_t level = 1;
    std::uint64_t span = arity_;
    while (a / span != b / span) {
        span *= arity_;
        ++level;
    }
    return level;
}

std::uint32_t
FatTree::hops(NodeId a, NodeId b) const
{
    return 2 * lca(a, b);
}

std::uint64_t
FatTree::pathCount(NodeId a, NodeId b) const
{
    const std::uint32_t l = lca(a, b);
    if (l <= 1)
        return 1;
    std::uint64_t paths = 1;
    for (std::uint32_t i = 1; i < l; ++i)
        paths *= arity_;
    return paths;
}

} // namespace msgsim

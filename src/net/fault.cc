#include "net/fault.hh"

namespace msgsim
{

FaultAction
FaultInjector::apply(Packet &pkt)
{
    auto corrupt = [&] {
        // Flip one bit of the first data word (or the header when the
        // packet carries no data) and mark the packet so the NI-side
        // CRC check fails deterministically.
        if (!pkt.data.empty())
            pkt.data[0] ^= 0x1u << (pkt.injectSeq % 32);
        else
            pkt.header ^= 0x1u;
        pkt.corrupted = true;
        ++corruptions_;
        return FaultAction::Corrupt;
    };

    if (scriptedDrops_.erase(pkt.injectSeq)) {
        ++drops_;
        return FaultAction::Drop;
    }
    if (scriptedCorrupts_.erase(pkt.injectSeq))
        return corrupt();
    if (scriptedDuplicates_.erase(pkt.injectSeq)) {
        ++duplications_;
        return FaultAction::Duplicate;
    }

    if (cfg_.dropRate > 0.0 && rng_.chance(cfg_.dropRate)) {
        ++drops_;
        return FaultAction::Drop;
    }
    if (cfg_.corruptRate > 0.0 && rng_.chance(cfg_.corruptRate))
        return corrupt();
    if (cfg_.duplicateRate > 0.0 && rng_.chance(cfg_.duplicateRate)) {
        ++duplications_;
        return FaultAction::Duplicate;
    }
    return FaultAction::None;
}

} // namespace msgsim

/**
 * @file
 * Delivery-order policies.
 *
 * The CM-5 data network does not preserve transmission order (adaptive
 * up-path randomization, virtual channels).  We model order scrambling
 * as a per-flow policy stage at the destination edge of the network,
 * which both makes reordering *controllable* — the paper's
 * measurement condition "half the packets arrive out of order" becomes
 * the deterministic SwapAdjacentOrder policy — and *reproducible*
 * (seeded policies).
 */

#ifndef MSGSIM_NET_ORDER_HH
#define MSGSIM_NET_ORDER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hh"
#include "sim/rng.hh"

namespace msgsim
{

/**
 * Per-flow delivery-order stage.  The network feeds packets of one
 * (src, dst) flow in transmission order; the policy emits them in the
 * order the destination should see them.
 */
class OrderPolicy
{
  public:
    virtual ~OrderPolicy() = default;

    /**
     * A packet reached the destination edge.  The policy appends the
     * packets to present to the NI (possibly none, possibly several)
     * to @p release, in presentation order.
     */
    virtual void arrive(Packet &&pkt, std::vector<Packet> &release) = 0;

    /** Release any held packets (end of measurement / teardown). */
    virtual void flush(std::vector<Packet> &release) = 0;
};

/** Factory producing a fresh policy instance per flow. */
using OrderPolicyFactory = std::function<std::unique_ptr<OrderPolicy>()>;

/** Transmission-order delivery (no scrambling). */
class FifoOrder : public OrderPolicy
{
  public:
    void
    arrive(Packet &&pkt, std::vector<Packet> &release) override
    {
        release.push_back(std::move(pkt));
    }

    void flush(std::vector<Packet> &) override {}
};

/**
 * Deterministic pairwise swap: packets (2k, 2k+1) of every flow are
 * delivered as (2k+1, 2k).  Exactly half of the packets of a
 * multi-packet sequence arrive before a predecessor — the paper's
 * measurement assumption for in-order-delivery costs.
 */
class SwapAdjacentOrder : public OrderPolicy
{
  public:
    void arrive(Packet &&pkt, std::vector<Packet> &release) override;
    void flush(std::vector<Packet> &release) override;

  private:
    std::optional<Packet> held_;
};

/**
 * Randomized pairwise swap: at each decision point the next two
 * packets are swapped with probability q = @p swapChance (consuming
 * two packets) or the next packet passes through (consuming one).
 * The expected out-of-order packet fraction is therefore
 * f = q / (1 + q), in [0, 0.5]; invert with q = f / (1 - f).
 */
class PairSwapChanceOrder : public OrderPolicy
{
  public:
    PairSwapChanceOrder(double swapChance, std::uint64_t seed)
        : swapChance_(swapChance), rng_(seed)
    {
    }

    void arrive(Packet &&pkt, std::vector<Packet> &release) override;
    void flush(std::vector<Packet> &release) override;

  private:
    double swapChance_;
    Rng rng_;
    std::optional<Packet> held_;
    bool swapCurrent_ = false;
};

/**
 * Windowed random permutation: buffers @p window packets and releases
 * them in a random order; models deep adaptive scrambling with
 * out-of-order fractions above one half.
 */
class RandomWindowOrder : public OrderPolicy
{
  public:
    RandomWindowOrder(std::size_t window, std::uint64_t seed)
        : window_(window), rng_(seed)
    {
    }

    void arrive(Packet &&pkt, std::vector<Packet> &release) override;
    void flush(std::vector<Packet> &release) override;

  private:
    std::size_t window_;
    Rng rng_;
    std::vector<Packet> held_;
};

/** Factory helpers. */
OrderPolicyFactory fifoOrderFactory();
OrderPolicyFactory swapAdjacentFactory();
OrderPolicyFactory pairSwapChanceFactory(double swapChance,
                                         std::uint64_t seed);
OrderPolicyFactory randomWindowFactory(std::size_t window,
                                       std::uint64_t seed);

} // namespace msgsim

#endif // MSGSIM_NET_ORDER_HH

/**
 * @file
 * Packet-event tracing.
 *
 * A PacketTracer records every hardware-level packet event —
 * injection, delivery, fault, rejection, hardware retry — into a
 * bounded ring, for debugging protocol behaviour and for asserting
 * event-level properties in tests (e.g. "every injected packet was
 * delivered or dropped", "no delivery precedes its injection").
 * Tracing is a pure observer: it never perturbs instruction counts
 * or simulation behaviour.
 */

#ifndef MSGSIM_NET_TRACER_HH
#define MSGSIM_NET_TRACER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hh"
#include "net/packet.hh"

namespace msgsim
{

/** Hardware-level packet event kinds. */
enum class TraceEvent : std::uint8_t
{
    Inject,    ///< packet accepted at the injection port
    Deliver,   ///< packet presented to and accepted by the NI
    Drop,      ///< silently lost inside the network (fault)
    Corrupt,   ///< payload corrupted in flight (fault)
    Reject,    ///< NI refused the packet (full / acceptance check)
    HwRetry,   ///< CR hardware retransmission
    Duplicate, ///< ghost copy created inside the network (fault)
};

/** Printable name of a trace event. */
const char *toString(TraceEvent ev);

/** One recorded packet event. */
struct TraceRecord
{
    Tick when = 0;
    TraceEvent event = TraceEvent::Inject;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    HwTag tag = HwTag::UserAm;
    std::uint64_t injectSeq = 0;
    Word header = 0;

    /** One-line rendering: "tick ev src->dst tag seq header". */
    std::string format() const;
};

class TraceSession;

/**
 * Bounded ring of packet events.
 */
class PacketTracer
{
  public:
    /** Callback fired synchronously for every recorded event. */
    using Observer = std::function<void(const TraceRecord &)>;

    explicit PacketTracer(std::size_t capacity = 1u << 16);

    /** Record one event (oldest entries are evicted when full). */
    void record(Tick when, TraceEvent ev, const Packet &pkt);

    /** Install / clear (nullptr) the per-event observer. */
    void setObserver(Observer fn) { observer_ = std::move(fn); }

    /** Total events observed (including evicted ones). */
    std::uint64_t observed() const { return observed_; }

    /** Events observed of one kind. */
    std::uint64_t observed(TraceEvent ev) const;

    /** Retained records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /** Retained records matching a predicate, oldest first. */
    std::vector<TraceRecord>
    select(const std::function<bool(const TraceRecord &)> &pred) const;

    /** Render the retained trace, one event per line. */
    std::string dump() const;

    /** Drop all retained records (counters keep accumulating). */
    void clear();

  private:
    std::size_t capacity_;
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0; ///< next write slot
    bool wrapped_ = false;
    std::uint64_t observed_ = 0;
    std::vector<std::uint64_t> perEvent_;
    Observer observer_;
};

/**
 * Bridge hardware packet events onto a TraceSession timeline: every
 * recorded event becomes an instant on the involved node's track
 * (injections on the source, everything else on the destination),
 * at the hardware event's own tick.  Detach by clearing the
 * tracer's observer.
 */
void attachTraceBridge(PacketTracer &tracer, TraceSession &session);

} // namespace msgsim

#endif // MSGSIM_NET_TRACER_HH

/**
 * @file
 * k-ary fat-tree topology model (the CM-5 data network shape).
 *
 * The CM-5 data network is a 4-ary fat tree: a packet ascends to the
 * least common ancestor of source and destination (choosing among
 * several equivalent parents at each level — the source of delivery
 * -order randomness) and then descends on the unique down-path.  We
 * model hop counts and up-path multiplicity; the Cm5Network uses them
 * for latency and path randomization.
 */

#ifndef MSGSIM_NET_TOPOLOGY_HH
#define MSGSIM_NET_TOPOLOGY_HH

#include <cstdint>

#include "core/types.hh"

namespace msgsim
{

/**
 * Geometry of a k-ary fat tree over a set of leaf nodes.
 */
class FatTree
{
  public:
    /**
     * @param nodes  number of leaf (compute) nodes, >= 1
     * @param arity  children per switch, >= 2 (CM-5: 4)
     */
    FatTree(std::uint32_t nodes, std::uint32_t arity = 4);

    std::uint32_t nodes() const { return nodes_; }
    std::uint32_t arity() const { return arity_; }

    /** Number of switch levels above the leaves. */
    std::uint32_t levels() const { return levels_; }

    /**
     * Level of the least common ancestor switch of two leaves:
     * 1 = same leaf switch, levels() = root.  lca(a, a) is 0 by
     * convention (no network traversal).
     */
    std::uint32_t lca(NodeId a, NodeId b) const;

    /** Switch-to-switch hops on a shortest path (2 * lca). */
    std::uint32_t hops(NodeId a, NodeId b) const;

    /**
     * Number of distinct shortest up-paths between two leaves:
     * arity^(lca-1) — the degree of route freedom the randomizing
     * router exploits.
     */
    std::uint64_t pathCount(NodeId a, NodeId b) const;

  private:
    std::uint32_t nodes_;
    std::uint32_t arity_;
    std::uint32_t levels_;
};

} // namespace msgsim

#endif // MSGSIM_NET_TOPOLOGY_HH

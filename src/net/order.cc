#include "net/order.hh"

namespace msgsim
{

void
SwapAdjacentOrder::arrive(Packet &&pkt, std::vector<Packet> &release)
{
    if (!held_) {
        held_ = std::move(pkt);
        return;
    }
    // Release the later packet first, then the earlier one.
    release.push_back(std::move(pkt));
    release.push_back(std::move(*held_));
    held_.reset();
}

void
SwapAdjacentOrder::flush(std::vector<Packet> &release)
{
    if (held_) {
        release.push_back(std::move(*held_));
        held_.reset();
    }
}

void
PairSwapChanceOrder::arrive(Packet &&pkt, std::vector<Packet> &release)
{
    if (!held_) {
        swapCurrent_ = rng_.chance(swapChance_);
        if (swapCurrent_) {
            held_ = std::move(pkt);
            return;
        }
        release.push_back(std::move(pkt));
        return;
    }
    release.push_back(std::move(pkt));
    release.push_back(std::move(*held_));
    held_.reset();
}

void
PairSwapChanceOrder::flush(std::vector<Packet> &release)
{
    if (held_) {
        release.push_back(std::move(*held_));
        held_.reset();
    }
}

void
RandomWindowOrder::arrive(Packet &&pkt, std::vector<Packet> &release)
{
    held_.push_back(std::move(pkt));
    if (held_.size() >= window_) {
        rng_.shuffle(held_);
        for (auto &p : held_)
            release.push_back(std::move(p));
        held_.clear();
    }
}

void
RandomWindowOrder::flush(std::vector<Packet> &release)
{
    rng_.shuffle(held_);
    for (auto &p : held_)
        release.push_back(std::move(p));
    held_.clear();
}

OrderPolicyFactory
fifoOrderFactory()
{
    return [] { return std::make_unique<FifoOrder>(); };
}

OrderPolicyFactory
swapAdjacentFactory()
{
    return [] { return std::make_unique<SwapAdjacentOrder>(); };
}

OrderPolicyFactory
pairSwapChanceFactory(double swapChance, std::uint64_t seed)
{
    // Give each flow its own stream, derived from the base seed, so
    // flows don't correlate but runs stay reproducible.
    auto counter = std::make_shared<std::uint64_t>(seed);
    return [counter, swapChance] {
        std::uint64_t s = *counter;
        const std::uint64_t flow_seed = splitMix64(s);
        *counter = s;
        return std::make_unique<PairSwapChanceOrder>(swapChance, flow_seed);
    };
}

OrderPolicyFactory
randomWindowFactory(std::size_t window, std::uint64_t seed)
{
    auto counter = std::make_shared<std::uint64_t>(seed);
    return [counter, window] {
        std::uint64_t s = *counter;
        const std::uint64_t flow_seed = splitMix64(s);
        *counter = s;
        return std::make_unique<RandomWindowOrder>(window, flow_seed);
    };
}

} // namespace msgsim

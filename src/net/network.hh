/**
 * @file
 * Abstract routing-network interface.
 *
 * A Network moves packets between attached delivery sinks (the NIs).
 * The concrete substrates differ exactly along the axes the paper
 * studies — plus the modern-NIC capabilities the rdma/nicam family
 * adds — summarized in NetFeatures:
 *
 *  substrate     | inOrder | reliable | acceptInd | zeroCopy | offload | complQ
 *  ------------- | ------- | -------- | --------- | -------- | ------- | ------
 *  Cm5Network    |   no    |    no    |    no     |    no    |   no    |  no
 *  CrNetwork     |   yes   |   yes    |    yes    |    no    |   no    |  no
 *  RdmaNetwork   |   yes   |   yes    |    yes    |   yes    |   no    |  yes
 *  NicamNetwork  |   no    |    no    |    no     |    no    |   yes   |  no
 *
 *  - Cm5Network: arbitrary delivery order, finite buffering
 *    (backpressure), fault detection without correction;
 *  - CrNetwork: in-order delivery, deadlock freedom independent of
 *    packet acceptance (header rejection + hardware retransmission),
 *    packet-level fault tolerance (hardware retry);
 *  - RdmaNetwork: CR-like guarantees per queue pair, plus zero-copy
 *    DMA into registered regions and host-polled completion queues;
 *  - NicamNetwork: CM-5-like unreliable/unordered fabric whose NIC
 *    runs registered AM handlers itself (bounded on-NIC handler
 *    table, host-dispatch fallback on miss).
 *
 * The model checker reads the first three bits (scheduling and fault
 * choices); the last three are capability advertisements consumed by
 * the host layers and the differential profiler.
 */

#ifndef MSGSIM_NET_NETWORK_HH
#define MSGSIM_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "core/types.hh"
#include "net/lineage_hook.hh"
#include "net/packet.hh"
#include "net/tracer.hh"
#include "sim/event.hh"

namespace msgsim
{

/** High-level service guarantees a network provides in hardware. */
struct NetFeatures
{
    /// Transmission order between each (src, dst) pair is preserved.
    bool inOrderDelivery = false;
    /// Every injected packet eventually arrives uncorrupted.
    bool reliableDelivery = false;
    /// Deadlock freedom does not depend on destinations accepting
    /// packets (CR: reject + hardware retransmit).
    bool acceptanceIndependent = false;
    /// Payloads are DMA-ed into registered destination memory without
    /// a host-instruction copy (rdma).
    bool zeroCopy = false;
    /// The NIC can execute registered AM handlers itself, bypassing
    /// the host dispatch loop (nicam).
    bool offloadDispatch = false;
    /// Completions are reported through a host-polled completion
    /// queue rather than status-register reads (rdma).
    bool completionQueue = false;
};

/** Aggregate traffic statistics for a network instance. */
struct NetStats
{
    std::uint64_t injected = 0;      ///< packets accepted at injection
    std::uint64_t delivered = 0;     ///< packets presented to a sink
    std::uint64_t dropped = 0;       ///< silently lost (faults)
    std::uint64_t corrupted = 0;     ///< delivered with bad CRC
    std::uint64_t duplicated = 0;    ///< ghost copies created (faults)
    std::uint64_t deliveryRetries = 0; ///< sink-full redelivery attempts
    std::uint64_t hwRetries = 0;     ///< CR hardware retransmissions
};

/**
 * Delivery-schedule interception point (the `src/check` model
 * checker's hook).  When a gate is attached to a Network, every
 * injected packet is handed to the gate *instead of* the substrate:
 * latency models, order policies, and the fault injector are all
 * replaced by the gate's explicit decisions.  The gate re-enters the
 * network through the gate*() operations below, so delivery
 * statistics and packet tracing stay coherent with normal runs.
 */
class ScheduleGate
{
  public:
    virtual ~ScheduleGate() = default;

    /** Take ownership of an injected (sealed, stamped) packet. */
    virtual void capture(Packet &&pkt) = 0;
};

/**
 * Base class of routing substrates.
 */
class Network
{
  public:
    /**
     * Delivery sink: the destination NI.  Returns false when the NI
     * cannot accept the packet right now (receive queue full or, on
     * CR, resource-based header rejection).
     */
    using DeliverFn = std::function<bool(Packet &&)>;

    explicit Network(Simulator &sim) : sim_(sim) {}
    virtual ~Network() = default;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Register the delivery sink of node @p id. */
    void attach(NodeId id, DeliverFn fn);

    /**
     * Inject a packet.  Stamps injection and flow sequence numbers.
     * Returns false when the injection port is backpressured (the
     * software must retry, like re-pushing a CM-5 packet whose
     * send_ok read failed).
     */
    bool inject(Packet &&pkt);

    /** Hardware service levels of this substrate. */
    virtual NetFeatures features() const = 0;

    /**
     * Release packets held by order-scrambling stages (used at
     * teardown so no packet is stranded).
     */
    virtual void flushHeldPackets() {}

    /** Traffic statistics so far. */
    const NetStats &stats() const { return stats_; }

    // ------------------------------------------------------------
    // Per-destination-link occupancy (telemetry; never charged).
    // A packet is "in flight toward d" from the moment inject()
    // accepts it until a sink accepts it, the NIC dispatches it, or
    // a fault absorbs it.  Maintained as two preallocated counters
    // per node (sized at attach() time, so the hot paths never
    // allocate) — the probes the src/tele sampler reads.
    // ------------------------------------------------------------

    /** Packets currently inside the fabric heading for @p dst. */
    std::uint64_t
    inFlightTo(NodeId dst) const
    {
        if (dst >= injectedTo_.size())
            return 0;
        const std::uint64_t in = injectedTo_[dst];
        const std::uint64_t out = settledTo_[dst];
        return in > out ? in - out : 0;
    }

    /** Packets delivered to @p dst (sink-accepted or NIC-dispatched). */
    std::uint64_t
    deliveredTo(NodeId dst) const
    {
        return dst < deliveredTo_.size() ? deliveredTo_[dst] : 0;
    }

    /** The simulator driving this network. */
    Simulator &sim() { return sim_; }

    /**
     * Attach (or detach, with nullptr) a packet tracer.  A pure
     * observer: hardware events are recorded, nothing else changes.
     */
    void setTracer(PacketTracer *tracer) { tracer_ = tracer; }

    /**
     * Attach (or detach, with nullptr) a schedule gate.  While a gate
     * is attached the substrate never sees injected packets: the gate
     * owns them and decides delivery order and faults explicitly.
     */
    void setScheduleGate(ScheduleGate *gate) { gate_ = gate; }

    /** The attached schedule gate (nullptr when none). */
    ScheduleGate *scheduleGate() const { return gate_; }

    // ------------------------------------------------------------
    // Gate-side re-entry points.  Only meaningful while a gate is
    // attached; they keep NetStats and the packet trace coherent so
    // invariants (packet conservation etc.) read the same counters
    // in checked and unchecked runs.
    // ------------------------------------------------------------

    /** Deliver a gated packet to its sink now.  Returns the sink's
     *  acceptance result (false = refused; the gate keeps it). */
    bool gateDeliver(Packet &&pkt);

    /** Account a gate decision to drop @p pkt. */
    void gateDrop(const Packet &pkt);

    /** Corrupt @p pkt in place (flip a bit, mark it) and account. */
    void gateCorrupt(Packet &pkt);

    /** Account a gate decision to duplicate @p pkt. */
    void gateDuplicate(const Packet &pkt);

  protected:
    /** Record a packet event if a tracer or lineage hooks are attached. */
    void
    trace(TraceEvent ev, const Packet &pkt)
    {
        if (tracer_)
            tracer_->record(sim_.now(), ev, pkt);
        if (LineageHooks *lh = LineageHooks::current())
            lh->hwEvent(ev, pkt, sim_.now());
    }

    /** Substrate-specific injection behaviour. */
    virtual bool injectImpl(Packet &&pkt) = 0;

    /**
     * Present a packet to the destination sink.  Returns the sink's
     * acceptance result; panics when the destination was never
     * attached.
     */
    bool presentToSink(Packet &&pkt);

    /**
     * A packet bound for @p dst left the fabric by delivery outside
     * presentToSink (nicam's on-NIC handler dispatch).
     */
    void
    noteDelivered(NodeId dst)
    {
        if (dst < settledTo_.size()) {
            ++settledTo_[dst];
            ++deliveredTo_[dst];
        }
    }

    /**
     * A packet bound for @p dst was absorbed inside the fabric (fault
     * drop, NIC-side CRC discard): no longer in flight, never
     * delivered.
     */
    void
    noteAbsorbed(NodeId dst)
    {
        if (dst < settledTo_.size())
            ++settledTo_[dst];
    }

    Simulator &sim_;
    NetStats stats_;

  private:
    PacketTracer *tracer_ = nullptr;
    ScheduleGate *gate_ = nullptr;
    std::map<NodeId, DeliverFn> sinks_;
    /// Per-destination link counters (boot-sized in attach()).
    std::vector<std::uint64_t> injectedTo_;
    std::vector<std::uint64_t> settledTo_;
    std::vector<std::uint64_t> deliveredTo_;
    std::uint64_t nextInjectSeq_ = 0;
    std::map<std::tuple<NodeId, NodeId, int>, std::uint64_t>
        flowCounters_;
};

} // namespace msgsim

#endif // MSGSIM_NET_NETWORK_HH

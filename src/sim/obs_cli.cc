#include "sim/obs_cli.hh"

#include <cstring>
#include <fstream>

#include "sim/event.hh"
#include "sim/log.hh"

namespace msgsim::obs
{

Options
parseArgs(int &argc, char **argv)
{
    Options opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            opts.traceOut = arg + 12;
        } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
            opts.metricsOut = arg + 14;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

Scope::Scope(const Options &opts) : opts_(opts)
{
    if (!opts_.traceOut.empty()) {
        session_ = std::make_unique<TraceSession>();
        session_->attach();
    }
}

Scope::~Scope()
{
    if (session_) {
        // Phase counters double as metrics so a single --metrics-out
        // run still reports how often each protocol step ran.
        MetricsRegistry &reg = metrics();
        for (const auto &[key, count] : session_->spanCounts())
            reg.counter("trace.span." + key) = count;
        reg.counter("trace.records_observed") = session_->observed();
        reg.counter("trace.records_dropped") = session_->dropped();
        // Ring-eviction visibility: with dropped > 0 the timeline is
        // truncated, and everything before this tick may be missing.
        reg.gauge("trace.oldest_retained_tick") =
            static_cast<double>(session_->oldestRetainedTick());

        if (session_->writeChromeTrace(opts_.traceOut))
            msgsim_inform("trace written to ", opts_.traceOut);
        else
            msgsim_warn("could not write trace to ", opts_.traceOut);
        session_->detach();
    }
    if (!opts_.metricsOut.empty()) {
        std::ofstream out(opts_.metricsOut);
        if (out) {
            out << metrics().dumpJson();
            msgsim_inform("metrics written to ", opts_.metricsOut);
        } else {
            msgsim_warn("could not write metrics to ",
                        opts_.metricsOut);
        }
    }
}

void
Scope::bindClock(const Simulator &sim)
{
    if (session_)
        session_->bindClock(&sim);
}

void
Scope::collect(const Simulator &sim, const std::string &prefix)
{
    sim.publishMetrics(metrics(), prefix);
}

} // namespace msgsim::obs

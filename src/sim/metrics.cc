#include "sim/metrics.hh"

#include <cstdio>
#include <sstream>

#include "sim/log.hh"

namespace msgsim
{

namespace
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
num(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
kindName(MetricsRegistry::MetricKind k)
{
    switch (k) {
      case MetricsRegistry::MetricKind::Counter:   return "counter";
      case MetricsRegistry::MetricKind::Gauge:     return "gauge";
      case MetricsRegistry::MetricKind::Stat:      return "stat";
      case MetricsRegistry::MetricKind::Histogram: return "histogram";
      default:                                     return "?";
    }
}

} // namespace

std::string
MetricsRegistry::flatKey(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    std::string key = name + "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            key += ",";
        first = false;
        key += k + "=" + v;
    }
    key += "}";
    return key;
}

MetricsRegistry::Metric &
MetricsRegistry::fetch(MetricKind kind, const std::string &name,
                       const Labels &labels)
{
    const std::string key = flatKey(name, labels);
    auto it = metrics_.find(key);
    if (it == metrics_.end()) {
        Metric m;
        m.kind = kind;
        m.name = name;
        m.labels = labels;
        it = metrics_.emplace(key, std::move(m)).first;
    } else if (it->second.kind != kind) {
        msgsim_fatal("metric '", key, "' registered as ",
                     kindName(it->second.kind), ", requested as ",
                     kindName(kind));
    }
    return it->second;
}

std::uint64_t &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    return fetch(MetricKind::Counter, name, labels).counter;
}

double &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    return fetch(MetricKind::Gauge, name, labels).gauge;
}

RunningStat &
MetricsRegistry::stat(const std::string &name, const Labels &labels)
{
    return fetch(MetricKind::Stat, name, labels).stat;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double lo,
                           double hi, std::size_t bins,
                           const Labels &labels)
{
    Metric &m = fetch(MetricKind::Histogram, name, labels);
    if (!m.hist)
        m.hist.emplace(lo, hi, bins);
    return *m.hist;
}

bool
MetricsRegistry::has(const std::string &name, const Labels &labels) const
{
    return metrics_.count(flatKey(name, labels)) != 0;
}

std::string
MetricsRegistry::dumpText() const
{
    std::ostringstream os;
    for (const auto &[key, m] : metrics_) {
        os << key << "  ";
        switch (m.kind) {
          case MetricKind::Counter:
            os << "counter  " << m.counter;
            break;
          case MetricKind::Gauge:
            os << "gauge  " << num(m.gauge);
            break;
          case MetricKind::Stat:
            os << "stat  count=" << m.stat.count()
               << " mean=" << num(m.stat.mean())
               << " min=" << num(m.stat.min())
               << " max=" << num(m.stat.max())
               << " stddev=" << num(m.stat.stddev());
            break;
          case MetricKind::Histogram:
            if (m.hist) {
                os << "histogram  count=" << m.hist->stat().count()
                   << " mean=" << num(m.hist->stat().mean())
                   << " p50=" << num(m.hist->percentile(50.0))
                   << " p99=" << num(m.hist->percentile(99.0))
                   << "  " << m.hist->renderAscii();
            }
            break;
        }
        os << "\n";
    }
    return os.str();
}

std::string
MetricsRegistry::dumpJson() const
{
    std::ostringstream os;
    os << "{\"metrics\":[";
    bool first = true;
    for (const auto &[key, m] : metrics_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << escape(m.name) << "\",\"labels\":{";
        bool lf = true;
        for (const auto &[k, v] : m.labels) {
            if (!lf)
                os << ",";
            lf = false;
            os << "\"" << escape(k) << "\":\"" << escape(v) << "\"";
        }
        os << "},\"type\":\"" << kindName(m.kind) << "\"";
        switch (m.kind) {
          case MetricKind::Counter:
            os << ",\"value\":" << m.counter;
            break;
          case MetricKind::Gauge:
            os << ",\"value\":" << num(m.gauge);
            break;
          case MetricKind::Stat:
            os << ",\"count\":" << m.stat.count()
               << ",\"mean\":" << num(m.stat.mean())
               << ",\"min\":" << num(m.stat.min())
               << ",\"max\":" << num(m.stat.max())
               << ",\"stddev\":" << num(m.stat.stddev());
            break;
          case MetricKind::Histogram:
            if (m.hist) {
                os << ",\"count\":" << m.hist->stat().count()
                   << ",\"mean\":" << num(m.hist->stat().mean())
                   << ",\"p50\":" << num(m.hist->percentile(50.0))
                   << ",\"p99\":" << num(m.hist->percentile(99.0))
                   << ",\"bins\":[";
                bool bf = true;
                for (std::uint64_t b : m.hist->bins()) {
                    if (!bf)
                        os << ",";
                    bf = false;
                    os << b;
                }
                os << "]";
            }
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace msgsim

/**
 * @file
 * Clock-advance observation hook for the simulation kernel.
 *
 * A TickHooks implementation (the telemetry sampler in src/tele) is
 * notified whenever the Simulator's clock is about to move forward —
 * the one moment when all state at the old tick is final and the
 * state observed is exactly "end of tick `prev`".  The hook fires
 * *between* events, never schedules anything, and never touches
 * Accounting, so an attached observer cannot perturb event counts,
 * dispatch order, or instruction totals.
 *
 * Attachment follows the hostprof discipline rather than the
 * TraceSession one: the current pointer is thread-local, so lab
 * sweep workers running independent simulators in parallel can each
 * attach their own sampler without racing (byte-identical across
 * -j).  When nothing is attached the hook site in Simulator::step()
 * is a single thread-local pointer test.
 */

#ifndef MSGSIM_SIM_TICK_HOOK_HH
#define MSGSIM_SIM_TICK_HOOK_HH

#include "core/types.hh"

namespace msgsim
{

class Simulator;

/**
 * Abstract clock-advance observer.
 */
class TickHooks
{
  public:
    virtual ~TickHooks();

    /**
     * The clock of @p sim is moving from @p prev to @p next
     * (prev < next).  All events at ticks <= prev have executed;
     * the event that caused the advance has not run yet.
     */
    virtual void onTickAdvance(const Simulator &sim, Tick prev,
                               Tick next) = 0;

    /** The attached hooks on this thread, or nullptr (fast path). */
    static TickHooks *current() { return current_; }

  protected:
    /** Make this instance the thread's observer (at most one). */
    void attachHooks();

    /** Stop observing (no-op when not attached). */
    void detachHooks();

  private:
    static thread_local TickHooks *current_;
};

} // namespace msgsim

#endif // MSGSIM_SIM_TICK_HOOK_HH

#include "sim/trace_session.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/event.hh"
#include "sim/log.hh"

namespace msgsim
{

TraceSession *TraceSession::current_ = nullptr;

TraceSession::TraceSession() : TraceSession(Config()) {}

TraceSession::TraceSession(const Config &cfg) : cfg_(cfg)
{
    if (cfg_.capacity == 0)
        cfg_.capacity = 1;
    ring_.reserve(cfg_.capacity);
}

TraceSession::~TraceSession()
{
    detach();
}

void
TraceSession::attach()
{
    if (current_ != nullptr && current_ != this)
        msgsim_warn("replacing an attached TraceSession");
    current_ = this;
}

void
TraceSession::detach()
{
    if (current_ == this)
        current_ = nullptr;
}

Tick
TraceSession::now() const
{
    return clock_ ? clock_->now() : 0;
}

void
TraceSession::push(const Record &rec)
{
    if (ring_.size() < cfg_.capacity) {
        ring_.push_back(rec);
    } else {
        ring_[head_] = rec;
        head_ = (head_ + 1) % cfg_.capacity;
        wrapped_ = true;
        ++dropped_;
    }
    ++observed_;
}

void
TraceSession::beginSpan(NodeId node, const char *cat, const char *name)
{
    open_[node].push_back(OpenSpan{now(), cat, name});
    ++spanCounts_[std::string(cat) + "/" + name];
    if (spanObserver_)
        spanObserver_->onBeginSpan(node, cat, name);
}

void
TraceSession::endSpan(NodeId node)
{
    auto it = open_.find(node);
    if (it == open_.end() || it->second.empty()) {
        ++unmatchedEnds_;
        return;
    }
    const OpenSpan span = it->second.back();
    it->second.pop_back();

    Record rec;
    rec.kind = Kind::Span;
    rec.start = span.start;
    rec.end = now();
    rec.node = node;
    rec.cat = span.cat;
    rec.name = span.name;
    push(rec);
    if (spanObserver_)
        spanObserver_->onEndSpan(node, span.cat, span.name);
}

void
TraceSession::instant(NodeId node, const char *cat, const char *name,
                      double value)
{
    instantAt(now(), node, cat, name, value);
}

void
TraceSession::instantAt(Tick when, NodeId node, const char *cat,
                        const char *name, double value)
{
    Record rec;
    rec.kind = Kind::Instant;
    rec.start = when;
    rec.end = when;
    rec.node = node;
    rec.cat = cat;
    rec.name = name;
    rec.value = value;
    push(rec);
}

void
TraceSession::counterSample(NodeId node, const char *name, double value)
{
    counterSampleAt(now(), node, name, value);
}

void
TraceSession::counterSampleAt(Tick when, NodeId node, const char *name,
                              double value)
{
    Record rec;
    rec.kind = Kind::Counter;
    rec.start = when;
    rec.end = rec.start;
    rec.node = node;
    rec.cat = "counter";
    rec.name = name;
    rec.value = value;
    push(rec);
}

void
TraceSession::flowAt(Tick when, NodeId node, const char *cat,
                     const char *name, std::uint64_t id,
                     FlowPhase phase)
{
    Record rec;
    rec.kind = Kind::Flow;
    rec.start = when;
    rec.end = when;
    rec.node = node;
    rec.cat = cat;
    rec.name = name;
    rec.flowId = id;
    rec.flowPhase = phase;
    push(rec);
}

Tick
TraceSession::oldestRetainedTick() const
{
    if (ring_.empty())
        return 0;
    return wrapped_ ? ring_[head_].start : ring_.front().start;
}

std::size_t
TraceSession::openSpans() const
{
    std::size_t n = 0;
    for (const auto &[node, stack] : open_)
        n += stack.size();
    return n;
}

std::vector<TraceSession::Record>
TraceSession::snapshot() const
{
    std::vector<Record> out;
    out.reserve(ring_.size());
    if (!wrapped_) {
        out = ring_;
    } else {
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(head_ + i) % cfg_.capacity]);
    }
    return out;
}

void
TraceSession::clear()
{
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    open_.clear();
}

namespace
{

/** JSON string escaping for names that may carry punctuation. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double compactly; integral values print as integers. */
std::string
jsonNumber(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
TraceSession::chromeTraceJson()
{
    // Flush spans still open (e.g. a run cut short) so they appear.
    for (auto &[node, stack] : open_) {
        while (!stack.empty())
            endSpan(node);
    }

    const auto records = snapshot();

    std::set<NodeId> nodes;
    for (const auto &rec : records)
        if (rec.node != invalidNode)
            nodes.insert(rec.node);

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"msgsim\"}}";
    for (NodeId n : nodes) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":" << n << ",\"args\":{\"name\":\"node "
           << n << "\"}}";
    }

    for (const auto &rec : records) {
        const std::uint64_t tid =
            rec.node == invalidNode ? 0 : rec.node;
        sep();
        switch (rec.kind) {
          case Kind::Span:
            os << "{\"name\":\"" << jsonEscape(rec.name)
               << "\",\"cat\":\"" << jsonEscape(rec.cat)
               << "\",\"ph\":\"X\",\"ts\":" << rec.start
               << ",\"dur\":" << (rec.end - rec.start)
               << ",\"pid\":0,\"tid\":" << tid << "}";
            break;
          case Kind::Instant:
            os << "{\"name\":\"" << jsonEscape(rec.name)
               << "\",\"cat\":\"" << jsonEscape(rec.cat)
               << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << rec.start
               << ",\"pid\":0,\"tid\":" << tid
               << ",\"args\":{\"v\":" << jsonNumber(rec.value)
               << "}}";
            break;
          case Kind::Counter: {
            // Per-node counters get distinct timeline names so
            // chrome://tracing does not merge them across nodes.
            std::string name = rec.name;
            if (rec.node != invalidNode)
                name = "node" + std::to_string(rec.node) + "/" + name;
            os << "{\"name\":\"" << jsonEscape(name)
               << "\",\"ph\":\"C\",\"ts\":" << rec.start
               << ",\"pid\":0,\"tid\":" << tid
               << ",\"args\":{\"value\":" << jsonNumber(rec.value)
               << "}}";
            break;
          }
          case Kind::Flow: {
            const char *ph =
                rec.flowPhase == FlowPhase::Start ? "s"
                : rec.flowPhase == FlowPhase::Step ? "t"
                                                   : "f";
            os << "{\"name\":\"" << jsonEscape(rec.name)
               << "\",\"cat\":\"" << jsonEscape(rec.cat)
               << "\",\"ph\":\"" << ph << "\",\"ts\":" << rec.start
               << ",\"pid\":0,\"tid\":" << tid
               << ",\"id\":" << rec.flowId;
            if (rec.flowPhase == FlowPhase::End)
                os << ",\"bp\":\"e\"";
            os << "}";
            break;
          }
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"tool\":\"msgsim\",\"clock\":\"sim ticks (exported as "
          "microseconds)\"}}\n";
    return os.str();
}

bool
TraceSession::writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << chromeTraceJson();
    return static_cast<bool>(out);
}

} // namespace msgsim

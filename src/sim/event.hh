/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders closures by (tick, insertion sequence);
 * ties break FIFO so the simulation is deterministic.  The Simulator
 * owns the queue and the global clock and provides run-to-completion
 * and run-until-predicate drivers.
 */

#ifndef MSGSIM_SIM_EVENT_HH
#define MSGSIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include <string>

#include "core/types.hh"
#include "sim/log.hh"

namespace msgsim
{

class MetricsRegistry;

/**
 * Time-ordered queue of scheduled actions.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action at absolute time @p when. */
    void
    schedule(Tick when, Action action)
    {
        heap_.push(Entry{when, nextSeq_++, std::move(action)});
    }

    /** Events scheduled over the queue's lifetime. */
    std::uint64_t scheduled() const { return nextSeq_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; queue must be non-empty. */
    Tick
    nextTick() const
    {
        if (heap_.empty())
            msgsim_panic("nextTick() on empty event queue");
        return heap_.top().when;
    }

    /**
     * Pop and return the earliest action; queue must be non-empty.
     * The action's scheduled time is written to @p when.
     */
    Action
    pop(Tick &when)
    {
        if (heap_.empty())
            msgsim_panic("pop() on empty event queue");
        // top() is const&; move out via const_cast, safe because we
        // pop immediately afterwards.
        Entry &top = const_cast<Entry &>(heap_.top());
        when = top.when;
        Action action = std::move(top.action);
        heap_.pop();
        return action;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Action action;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t nextSeq_ = 0;
};

/**
 * The simulation driver: a clock plus an event queue.
 */
class Simulator
{
  public:
    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Schedule an action @p delay ticks from now. */
    void
    schedule(Tick delay, EventQueue::Action action)
    {
        queue_.schedule(now_ + delay, std::move(action));
    }

    /** Schedule an action at absolute time @p when (>= now). */
    void
    scheduleAt(Tick when, EventQueue::Action action)
    {
        if (when < now_)
            msgsim_panic("scheduleAt() in the past: ", when, " < ", now_);
        queue_.schedule(when, std::move(action));
    }

    /** True when no events are pending. */
    bool idle() const { return queue_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Execute events in order until the queue drains.  Returns the
     * number of events executed.  @p maxEvents bounds runaway
     * simulations (0 means unlimited).
     */
    std::uint64_t run(std::uint64_t maxEvents = 0);

    /**
     * Execute events until @p done() returns true (checked after each
     * event) or the queue drains.  Returns true if @p done fired.
     */
    bool runUntil(const std::function<bool()> &done,
                  std::uint64_t maxEvents = 0);

    /** Advance the clock with no event execution (test helper). */
    void
    advanceTo(Tick when)
    {
        if (when < now_)
            msgsim_panic("advanceTo() in the past");
        now_ = when;
    }

    // ------------------------------------------------------------
    // Observability.  Raw counters are always maintained (a handful
    // of integer ops per event); richer hooks fire only when a
    // TraceSession is attached and bound to this simulator's clock.
    // None of this touches instruction accounting.
    // ------------------------------------------------------------

    /** Events dispatched over the simulator's lifetime. */
    std::uint64_t eventsDispatched() const { return eventsDispatched_; }

    /** Events scheduled over the simulator's lifetime. */
    std::uint64_t eventsScheduled() const { return queue_.scheduled(); }

    /** Clock advances (dispatches whose tick moved time forward). */
    std::uint64_t tickAdvances() const { return tickAdvances_; }

    /** High-water mark of the pending-event queue depth. */
    std::size_t maxQueueDepth() const { return maxQueueDepth_; }

    /**
     * Snapshot the event-loop counters into @p reg under
     * "<prefix>.events_dispatched" etc.
     */
    void publishMetrics(MetricsRegistry &reg,
                        const std::string &prefix = "sim") const;

  private:
    bool step();

    Tick now_ = 0;
    EventQueue queue_;
    std::uint64_t eventsDispatched_ = 0;
    std::uint64_t tickAdvances_ = 0;
    std::size_t maxQueueDepth_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_SIM_EVENT_HH

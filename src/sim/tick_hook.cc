#include "sim/tick_hook.hh"

#include "sim/log.hh"

namespace msgsim
{

thread_local TickHooks *TickHooks::current_ = nullptr;

TickHooks::~TickHooks()
{
    detachHooks();
}

void
TickHooks::attachHooks()
{
    if (current_ != nullptr && current_ != this)
        msgsim_fatal("another TickHooks observer is already attached "
                     "on this thread");
    current_ = this;
}

void
TickHooks::detachHooks()
{
    if (current_ == this)
        current_ = nullptr;
}

} // namespace msgsim

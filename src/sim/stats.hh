/**
 * @file
 * Lightweight statistics collectors for simulation experiments:
 * named counters, running scalar statistics, and fixed-bin
 * histograms.
 */

#ifndef MSGSIM_SIM_STATS_HH
#define MSGSIM_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace msgsim
{

/**
 * Running mean / variance / extrema over a stream of samples
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double sum() const { return sum_; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    clear()
    {
        *this = RunningStat();
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram with uniform bins over [lo, hi); out-of-range samples
 * land in saturating edge bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
    }

    /** Record one sample. */
    void
    sample(double x)
    {
        stat_.sample(x);
        std::size_t bin;
        if (x < lo_) {
            bin = 0;
        } else if (x >= hi_) {
            bin = counts_.size() - 1;
        } else {
            const double frac = (x - lo_) / (hi_ - lo_);
            bin = std::min(counts_.size() - 1,
                           static_cast<std::size_t>(
                               frac * static_cast<double>(counts_.size())));
        }
        ++counts_[bin];
    }

    const std::vector<std::uint64_t> &bins() const { return counts_; }
    const RunningStat &stat() const { return stat_; }
    double binLow(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                         static_cast<double>(counts_.size());
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    RunningStat stat_;
};

} // namespace msgsim

#endif // MSGSIM_SIM_STATS_HH

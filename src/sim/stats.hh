/**
 * @file
 * Lightweight statistics collectors for simulation experiments:
 * named counters, running scalar statistics, and fixed-bin
 * histograms.
 */

#ifndef MSGSIM_SIM_STATS_HH
#define MSGSIM_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace msgsim
{

/**
 * Running mean / variance / extrema over a stream of samples
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double sum() const { return sum_; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    clear()
    {
        *this = RunningStat();
    }

    /**
     * Fold another collector into this one (Chan et al. parallel
     * Welford merge).  count/sum/min/max combine exactly; mean and
     * variance combine up to floating-point rounding.
     */
    void
    absorb(const RunningStat &other)
    {
        if (other.n_ == 0)
            return;
        if (n_ == 0) {
            *this = other;
            return;
        }
        const double na = static_cast<double>(n_);
        const double nb = static_cast<double>(other.n_);
        const double delta = other.mean_ - mean_;
        mean_ += delta * nb / (na + nb);
        m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
        n_ += other.n_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram with uniform bins over [lo, hi); out-of-range samples
 * land in saturating edge bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins ? bins : 1, 0)
    {
    }

    /** Record one sample. */
    void
    sample(double x)
    {
        stat_.sample(x);
        std::size_t bin;
        if (x < lo_) {
            bin = 0;
        } else if (x >= hi_) {
            bin = counts_.size() - 1;
        } else {
            const double frac = (x - lo_) / (hi_ - lo_);
            bin = std::min(counts_.size() - 1,
                           static_cast<std::size_t>(
                               frac * static_cast<double>(counts_.size())));
        }
        ++counts_[bin];
    }

    const std::vector<std::uint64_t> &bins() const { return counts_; }
    const RunningStat &stat() const { return stat_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** True when @p other has the same [lo, hi) range and bin count. */
    bool
    sameShape(const Histogram &other) const
    {
        return lo_ == other.lo_ && hi_ == other.hi_ &&
               counts_.size() == other.counts_.size();
    }

    /**
     * Fold @p other into this histogram (bin-wise count addition plus
     * the combined running statistics).  Both histograms must have
     * the same shape; merging is associative and commutative on the
     * bin counts, min/max, count and sum (mean/percentiles derived
     * from them are therefore order-independent too).
     */
    void
    merge(const Histogram &other)
    {
        if (!sameShape(other))
            msgsim_panic("Histogram::merge shape mismatch");
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        stat_.absorb(other.stat_);
    }
    double binLow(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                         static_cast<double>(counts_.size());
    }

    /**
     * Estimate the @p p-th percentile (p in [0, 100]) by linear
     * interpolation within the containing bin.  The estimate is
     * clamped to the observed [min, max]; returns 0 with no samples.
     */
    double
    percentile(double p) const
    {
        const std::uint64_t total = stat_.count();
        if (total == 0)
            return 0.0;
        p = std::min(100.0, std::max(0.0, p));
        const double target = p / 100.0 * static_cast<double>(total);
        const double width =
            (hi_ - lo_) / static_cast<double>(counts_.size());
        double cum = 0.0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            const double c = static_cast<double>(counts_[i]);
            if (cum + c >= target && c > 0.0) {
                const double frac = (target - cum) / c;
                const double est =
                    binLow(i) + width * std::min(1.0, frac);
                return std::min(stat_.max(), std::max(stat_.min(), est));
            }
            cum += c;
        }
        return stat_.max();
    }

    /**
     * One-line ASCII rendering of the bin shape (one character per
     * bin, scaled to the fullest bin), for quick bench printouts.
     */
    std::string
    renderAscii() const
    {
        static const char levels[] = " .:-=+*#%@";
        std::uint64_t peak = 0;
        for (std::uint64_t c : counts_)
            peak = std::max(peak, c);
        std::string out = "[";
        for (std::uint64_t c : counts_) {
            std::size_t lvl = 0;
            if (peak > 0 && c > 0)
                lvl = 1 + static_cast<std::size_t>(
                              (c * 8 + peak - 1) / peak);
            out += levels[std::min<std::size_t>(lvl, 9)];
        }
        out += "]";
        return out;
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    RunningStat stat_;
};

/**
 * Time-windowed fixed-bin histograms: samples are tagged with a
 * timestamp and land in the histogram of window `t / windowTicks`,
 * all windows sharing one fixed [lo, hi) x bins shape so any subset
 * can be merge()d into an aggregate (per-window percentiles and the
 * overall distribution from one pass over the data).
 */
class WindowedHistogram
{
  public:
    WindowedHistogram(std::uint64_t windowTicks, double lo, double hi,
                      std::size_t bins)
        : windowTicks_(windowTicks ? windowTicks : 1), lo_(lo),
          hi_(hi), bins_(bins ? bins : 1), total_(lo, hi, bins)
    {
    }

    /** Record @p x at time @p t. */
    void
    sample(std::uint64_t t, double x)
    {
        const std::size_t w =
            static_cast<std::size_t>(t / windowTicks_);
        while (windows_.size() <= w)
            windows_.emplace_back(lo_, hi_, bins_);
        windows_[w].sample(x);
        total_.sample(x);
    }

    std::uint64_t windowTicks() const { return windowTicks_; }

    /** Number of windows spanned so far (trailing empties included). */
    std::size_t windowCount() const { return windows_.size(); }

    /** The histogram of window @p w (must be < windowCount()). */
    const Histogram &window(std::size_t w) const { return windows_[w]; }

    /** The all-windows aggregate. */
    const Histogram &total() const { return total_; }

    /** Merge of windows [first, first+count); empty-shaped if none. */
    Histogram
    mergeRange(std::size_t first, std::size_t count) const
    {
        Histogram out(lo_, hi_, bins_);
        for (std::size_t w = first;
             w < windows_.size() && w < first + count; ++w)
            out.merge(windows_[w]);
        return out;
    }

  private:
    std::uint64_t windowTicks_;
    double lo_;
    double hi_;
    std::size_t bins_;
    std::vector<Histogram> windows_;
    Histogram total_;
};

} // namespace msgsim

#endif // MSGSIM_SIM_STATS_HH

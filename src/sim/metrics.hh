/**
 * @file
 * Unified metrics registry.
 *
 * A MetricsRegistry gathers the repo's ad-hoc statistics primitives
 * (named counters, RunningStat, Histogram) behind named, labelled
 * metrics with a text and a JSON dump.  Components expose
 * publishMetrics(registry) hooks that snapshot their internal
 * counters into the registry; benches and examples dump it with
 * --metrics-out.
 *
 * Naming convention: dotted lowercase paths ("sim.events_dispatched",
 * "ni.recv_refusals"), with labels for dimensions ("node" = "3").
 * The canonical flattened key is "name{k=v,k2=v2}" with labels in
 * insertion order.
 */

#ifndef MSGSIM_SIM_METRICS_HH
#define MSGSIM_SIM_METRICS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace msgsim
{

/**
 * A process-wide (or locally owned) collection of named metrics.
 */
class MetricsRegistry
{
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /** What one registered metric holds. */
    enum class MetricKind : std::uint8_t
    {
        Counter,   ///< monotonically increasing integer
        Gauge,     ///< last-write-wins scalar
        Stat,      ///< RunningStat over samples
        Histogram, ///< fixed-bin histogram over samples
    };

    // ------------------------------------------------------------
    // Registration / lookup (create-on-first-use).  References stay
    // valid for the registry's lifetime.
    // ------------------------------------------------------------

    /** A counter cell; increment it directly. */
    std::uint64_t &counter(const std::string &name,
                           const Labels &labels = {});

    /** A gauge cell; assign it directly. */
    double &gauge(const std::string &name, const Labels &labels = {});

    /** A running-statistics collector. */
    RunningStat &stat(const std::string &name,
                      const Labels &labels = {});

    /**
     * A histogram with uniform bins over [lo, hi); the shape
     * arguments apply only on first use.
     */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t bins, const Labels &labels = {});

    /** True when a metric with this name/labels exists. */
    bool has(const std::string &name, const Labels &labels = {}) const;

    /** Number of registered metrics. */
    std::size_t size() const { return metrics_.size(); }

    /** The canonical flattened key ("name{k=v}"). */
    static std::string flatKey(const std::string &name,
                               const Labels &labels);

    // ------------------------------------------------------------
    // Dumps.
    // ------------------------------------------------------------

    /** One line per metric, sorted by key. */
    std::string dumpText() const;

    /** A JSON object {"metrics": [...]}; keys sorted. */
    std::string dumpJson() const;

    /** Drop every metric. */
    void clear() { metrics_.clear(); }

    /** The process-wide registry. */
    static MetricsRegistry &global();

  private:
    struct Metric
    {
        MetricKind kind = MetricKind::Counter;
        std::string name;
        Labels labels;
        std::uint64_t counter = 0;
        double gauge = 0.0;
        RunningStat stat;
        std::optional<Histogram> hist;
    };

    Metric &fetch(MetricKind kind, const std::string &name,
                  const Labels &labels);

    std::map<std::string, Metric> metrics_;
};

} // namespace msgsim

#endif // MSGSIM_SIM_METRICS_HH

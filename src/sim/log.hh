/**
 * @file
 * Logging and error-reporting helpers (gem5-style semantics).
 *
 * panic()  — an internal invariant was violated: a msgsim bug.  Aborts.
 * fatal()  — the user asked for something unsupportable (bad
 *            configuration).  Exits with status 1.
 * warn()   — something questionable happened; execution continues.
 * inform() — status output for the user.
 */

#ifndef MSGSIM_SIM_LOG_HH
#define MSGSIM_SIM_LOG_HH

#include <sstream>
#include <string>

namespace msgsim
{

namespace log_detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Test hook: when true, panic/fatal throw instead of terminating. */
extern bool throwOnError;

/** Exception thrown by panic/fatal when throwOnError is set. */
struct SimError
{
    std::string message;
    bool isPanic;
};

} // namespace log_detail

/** Report an internal bug and abort (or throw under test). */
#define msgsim_panic(...)                                                  \
    ::msgsim::log_detail::panicImpl(                                       \
        __FILE__, __LINE__, ::msgsim::log_detail::concat(__VA_ARGS__))

/** Report an unsupportable user request and exit (or throw under test). */
#define msgsim_fatal(...)                                                  \
    ::msgsim::log_detail::fatalImpl(                                       \
        __FILE__, __LINE__, ::msgsim::log_detail::concat(__VA_ARGS__))

/** Report a suspicious condition and continue. */
#define msgsim_warn(...)                                                   \
    ::msgsim::log_detail::warnImpl(::msgsim::log_detail::concat(__VA_ARGS__))

/** Report normal status. */
#define msgsim_inform(...)                                                 \
    ::msgsim::log_detail::informImpl(                                      \
        ::msgsim::log_detail::concat(__VA_ARGS__))

} // namespace msgsim

#endif // MSGSIM_SIM_LOG_HH

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulation (path randomization,
 * fault injection, workload generators) draws from a seeded Rng so
 * experiments are exactly reproducible.  The generator is
 * xoshiro256** seeded through SplitMix64, the standard pairing
 * recommended by its authors.
 */

#ifndef MSGSIM_SIM_RNG_HH
#define MSGSIM_SIM_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace msgsim
{

/** SplitMix64 stepper, used for seeding and as a cheap hash. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Seeded xoshiro256** generator with convenience distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x1994'0414ULL) { reseed(seed); }

    /** Re-initialize the state from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &w : state_)
            w = splitMix64(sm);
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0 (Lemire reduction). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace msgsim

#endif // MSGSIM_SIM_RNG_HH

#include "sim/event.hh"

#include "hostprof/hostprof.hh"
#include "sim/metrics.hh"
#include "sim/tick_hook.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    // Host self-profiling phases: the heap pop and the handler run
    // get their own scopes, so sim.step's *self* cost is exactly the
    // dispatch bookkeeping between them.  One thread-local pointer
    // test each when no profiler is attached.
    hostprof::HostScope stepScope(hostprof::Site::SimStep);
    Tick when = 0;
    EventQueue::Action action;
    {
        hostprof::HostScope popScope(hostprof::Site::SimHeapPop);
        action = queue_.pop(when);
    }
    if (when != now_) {
        ++tickAdvances_;
        // Clock-advance observation point: state at tick now_ is
        // final, the event scheduled for `when` has not run yet.
        // One thread-local pointer test when nothing is attached;
        // the hook never schedules events or touches Accounting.
        if (TickHooks *th = TickHooks::current())
            th->onTickAdvance(*this, now_, when);
    }
    now_ = when;
    ++eventsDispatched_;
    const std::size_t depth = queue_.size();
    if (depth > maxQueueDepth_)
        maxQueueDepth_ = depth;
    if (TraceSession *ts = TraceSession::current()) {
        if (ts->clockIs(this))
            ts->counterSample("sim.queue_depth",
                              static_cast<double>(depth));
    }
    {
        hostprof::HostScope runScope(hostprof::Site::SimHandler);
        action();
    }
    return true;
}

void
Simulator::publishMetrics(MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.counter(prefix + ".events_dispatched") = eventsDispatched_;
    reg.counter(prefix + ".events_scheduled") = eventsScheduled();
    reg.counter(prefix + ".tick_advances") = tickAdvances_;
    reg.gauge(prefix + ".max_queue_depth") =
        static_cast<double>(maxQueueDepth_);
    reg.gauge(prefix + ".now") = static_cast<double>(now_);
}

std::uint64_t
Simulator::run(std::uint64_t maxEvents)
{
    std::uint64_t executed = 0;
    while (step()) {
        ++executed;
        if (maxEvents && executed >= maxEvents)
            break;
    }
    return executed;
}

bool
Simulator::runUntil(const std::function<bool()> &done,
                    std::uint64_t maxEvents)
{
    std::uint64_t executed = 0;
    if (done())
        return true;
    while (step()) {
        ++executed;
        if (done())
            return true;
        if (maxEvents && executed >= maxEvents)
            break;
    }
    return done();
}

} // namespace msgsim

#include "sim/event.hh"

namespace msgsim
{

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    Tick when = 0;
    auto action = queue_.pop(when);
    now_ = when;
    action();
    return true;
}

std::uint64_t
Simulator::run(std::uint64_t maxEvents)
{
    std::uint64_t executed = 0;
    while (step()) {
        ++executed;
        if (maxEvents && executed >= maxEvents)
            break;
    }
    return executed;
}

bool
Simulator::runUntil(const std::function<bool()> &done,
                    std::uint64_t maxEvents)
{
    std::uint64_t executed = 0;
    if (done())
        return true;
    while (step()) {
        ++executed;
        if (done())
            return true;
        if (maxEvents && executed >= maxEvents)
            break;
    }
    return done();
}

} // namespace msgsim

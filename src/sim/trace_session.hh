/**
 * @file
 * Cross-layer span tracing.
 *
 * A TraceSession records begin/end *spans* keyed by (node, category,
 * phase), *instant* events, and *counter* samples into a bounded
 * ring, on the simulation clock.  The retained timeline exports as
 * Chrome trace-event JSON (loadable in Perfetto or chrome://tracing):
 * every node becomes a thread track, spans become "X" complete
 * events, hardware packet events bridged from a PacketTracer appear
 * as instants on the same clock.
 *
 * Instrumentation sites throughout the stack (event loop, NI, CMAM
 * send/poll paths, the protocol engines) consult the process-wide
 * TraceSession::current() pointer: when no session is attached the
 * hook is a single pointer test, and no hook ever touches an
 * Accounting object — tracing can never perturb instruction counts.
 */

#ifndef MSGSIM_SIM_TRACE_SESSION_HH
#define MSGSIM_SIM_TRACE_SESSION_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hh"

namespace msgsim
{

class Simulator;

/**
 * One recording session: a bounded ring of timeline records plus the
 * per-(category/phase) span counters.
 */
class TraceSession
{
  public:
    struct Config
    {
        /// Ring capacity in records; the oldest records are evicted
        /// when full (counters keep accumulating).
        std::size_t capacity = 1u << 16;
    };

    /** Timeline record kinds. */
    enum class Kind : std::uint8_t
    {
        Span,    ///< a completed begin/end region on one node
        Instant, ///< a point event on one node
        Counter, ///< a sampled numeric value
        Flow,    ///< a flow-arrow point (Chrome "s"/"t"/"f" phases)
    };

    /** Position of a Flow record within its arrow chain. */
    enum class FlowPhase : std::uint8_t
    {
        Start, ///< ph:"s" — first point of the chain
        Step,  ///< ph:"t" — intermediate point
        End,   ///< ph:"f" — last point (binding point "e")
    };

    /** One retained timeline record. */
    struct Record
    {
        Kind kind = Kind::Instant;
        Tick start = 0;        ///< begin tick (== end for instants)
        Tick end = 0;          ///< end tick (spans only)
        NodeId node = invalidNode;
        const char *cat = ""; ///< category (protocol / layer name)
        const char *name = ""; ///< phase / event / counter name
        double value = 0.0;    ///< instant arg or counter sample
        std::uint64_t flowId = 0; ///< flow-arrow chain id (Flow only)
        FlowPhase flowPhase = FlowPhase::Start; ///< Flow only
    };

    /**
     * Observer of span open/close, for cost profilers that snapshot
     * external state around spans.  Fires synchronously from
     * beginSpan/endSpan; implementations must not touch Accounting
     * charge paths (reads are fine) and must not re-enter the
     * session.
     */
    class SpanObserver
    {
      public:
        virtual ~SpanObserver() = default;
        virtual void onBeginSpan(NodeId node, const char *cat,
                                 const char *name) = 0;
        virtual void onEndSpan(NodeId node, const char *cat,
                               const char *name) = 0;
    };

    TraceSession();
    explicit TraceSession(const Config &cfg);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    // ------------------------------------------------------------
    // Process-wide attachment (the null-check fast path).
    // ------------------------------------------------------------

    /** Make this session the process-wide recording target. */
    void attach();

    /** Stop being the process-wide target (no-op if not attached). */
    void detach();

    /** The attached session, or nullptr (the hooks' fast path). */
    static TraceSession *current() { return current_; }

    // ------------------------------------------------------------
    // Clock binding.
    // ------------------------------------------------------------

    /** Timestamps come from @p sim (rebind when switching stacks). */
    void bindClock(const Simulator *sim) { clock_ = sim; }

    /** True when the session's clock is @p sim. */
    bool clockIs(const Simulator *sim) const { return clock_ == sim; }

    /** Current session time (0 with no clock bound). */
    Tick now() const;

    // ------------------------------------------------------------
    // Recording.  @p cat and @p name must be string literals (or
    // otherwise outlive the session) — records store the pointers.
    // ------------------------------------------------------------

    /** Open a span on @p node; spans nest per node (LIFO). */
    void beginSpan(NodeId node, const char *cat, const char *name);

    /** Close the innermost open span on @p node. */
    void endSpan(NodeId node);

    /** Record a point event. */
    void instant(NodeId node, const char *cat, const char *name,
                 double value = 0.0);

    /** Record a point event with an explicit timestamp. */
    void instantAt(Tick when, NodeId node, const char *cat,
                   const char *name, double value = 0.0);

    /** Sample a counter attributed to one node's track. */
    void counterSample(NodeId node, const char *name, double value);

    /**
     * Sample a counter with an explicit timestamp (used when merging
     * externally sampled series — e.g. the telemetry engine's tracks
     * — onto this timeline after the fact).
     */
    void counterSampleAt(Tick when, NodeId node, const char *name,
                         double value);

    /** Sample a global (machine-wide) counter. */
    void
    counterSample(const char *name, double value)
    {
        counterSample(invalidNode, name, value);
    }

    /**
     * Record one point of a flow arrow (Chrome flow events): all
     * points sharing @p id form one chain; Perfetto draws arrows
     * between consecutive points across node tracks.  Emitted with an
     * explicit timestamp because flows are typically derived at
     * export time from earlier lifecycle edges.
     */
    void flowAt(Tick when, NodeId node, const char *cat,
                const char *name, std::uint64_t id, FlowPhase phase);

    /** Install / clear (nullptr) the span observer. */
    void setSpanObserver(SpanObserver *obs) { spanObserver_ = obs; }

    // ------------------------------------------------------------
    // Inspection.
    // ------------------------------------------------------------

    /** Records observed (including evicted ones). */
    std::uint64_t observed() const { return observed_; }

    /** Records evicted from the ring. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Begin tick of the oldest record still retained (0 with an
     * empty ring).  Together with dropped(), this makes a truncated
     * trace detectable: everything before this tick may be missing.
     */
    Tick oldestRetainedTick() const;

    /** Spans currently open across all nodes. */
    std::size_t openSpans() const;

    /** endSpan() calls with no matching beginSpan(). */
    std::uint64_t unmatchedEnds() const { return unmatchedEnds_; }

    /** Times each (cat/name) span was opened ("phase counters"). */
    const std::map<std::string, std::uint64_t> &
    spanCounts() const
    {
        return spanCounts_;
    }

    /** Retained records, oldest first. */
    std::vector<Record> snapshot() const;

    /** Drop retained records and open spans (counters persist). */
    void clear();

    // ------------------------------------------------------------
    // Export.
    // ------------------------------------------------------------

    /**
     * Close any still-open spans (at the current clock) and render
     * the retained timeline as Chrome trace-event JSON.
     */
    std::string chromeTraceJson();

    /** chromeTraceJson() to a file; false on I/O failure. */
    bool writeChromeTrace(const std::string &path);

  private:
    struct OpenSpan
    {
        Tick start;
        const char *cat;
        const char *name;
    };

    void push(const Record &rec);

    static TraceSession *current_;

    Config cfg_;
    const Simulator *clock_ = nullptr;

    std::vector<Record> ring_;
    std::size_t head_ = 0; ///< next write slot once wrapped
    bool wrapped_ = false;
    std::uint64_t observed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t unmatchedEnds_ = 0;

    std::map<NodeId, std::vector<OpenSpan>> open_;
    std::map<std::string, std::uint64_t> spanCounts_;

    SpanObserver *spanObserver_ = nullptr;
};

/**
 * RAII span: opens on construction and closes on destruction when a
 * session is attached; otherwise a no-op (one pointer test).
 */
class ScopedSpan
{
  public:
    ScopedSpan(NodeId node, const char *cat, const char *name)
    {
        if (TraceSession *s = TraceSession::current()) {
            s->beginSpan(node, cat, name);
            session_ = s;
            node_ = node;
        }
    }

    ~ScopedSpan()
    {
        if (session_)
            session_->endSpan(node_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceSession *session_ = nullptr;
    NodeId node_ = invalidNode;
};

} // namespace msgsim

#endif // MSGSIM_SIM_TRACE_SESSION_HH

/**
 * @file
 * Command-line wiring for the observability layer.
 *
 * Benches and examples accept
 *
 *     --trace-out=<file>     write a Chrome trace-event JSON timeline
 *     --metrics-out=<file>   write the metrics registry as JSON
 *
 * parseArgs() strips those flags from argv (leaving positional
 * arguments untouched) and Scope turns them into an attached
 * TraceSession plus an end-of-run dump:
 *
 *     int main(int argc, char **argv) {
 *         auto obs = msgsim::obs::parseArgs(argc, argv);
 *         msgsim::obs::Scope scope(obs);
 *         ...
 *         scope.bindClock(stack.sim());       // timestamps
 *         ...
 *         scope.collect(stack.sim(), "sim");  // event-loop metrics
 *     }   // <- files written here
 */

#ifndef MSGSIM_SIM_OBS_CLI_HH
#define MSGSIM_SIM_OBS_CLI_HH

#include <memory>
#include <string>

#include "sim/metrics.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

class Simulator;

namespace obs
{

/** Parsed observability options. */
struct Options
{
    std::string traceOut;   ///< --trace-out=<file> (empty = off)
    std::string metricsOut; ///< --metrics-out=<file> (empty = off)

    bool
    wanted() const
    {
        return !traceOut.empty() || !metricsOut.empty();
    }
};

/**
 * Extract --trace-out= / --metrics-out= from argv, compacting the
 * remaining arguments (argc is updated in place).
 */
Options parseArgs(int &argc, char **argv);

/**
 * RAII wiring: owns the TraceSession (attached for the scope's
 * lifetime when tracing was requested) and writes the requested
 * output files on destruction.
 */
class Scope
{
  public:
    explicit Scope(const Options &opts);
    ~Scope();

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    /** True when a trace session is attached. */
    bool tracing() const { return session_ != nullptr; }

    /** The owned session (nullptr when tracing is off). */
    TraceSession *session() { return session_.get(); }

    /** The registry the metrics dump will serialize. */
    MetricsRegistry &metrics() { return MetricsRegistry::global(); }

    /** Bind the trace clock to @p sim (rebind when switching stacks). */
    void bindClock(const Simulator &sim);

    /** Snapshot @p sim's event-loop counters into the registry. */
    void collect(const Simulator &sim,
                 const std::string &prefix = "sim");

  private:
    Options opts_;
    std::unique_ptr<TraceSession> session_;
};

} // namespace obs
} // namespace msgsim

#endif // MSGSIM_SIM_OBS_CLI_HH

/**
 * @file
 * Stack builder for the high-level-features messaging layer: a CR
 * substrate machine with one HlLayer per node, plus calibration-mode
 * drivers for the finite and indefinite protocols of paper Section 4.
 */

#ifndef MSGSIM_HLAM_HL_STACK_HH
#define MSGSIM_HLAM_HL_STACK_HH

#include <memory>
#include <vector>

#include "crnet/cr_network.hh"
#include "hlam/hl_layer.hh"
#include "machine/machine.hh"
#include "protocols/result.hh"

namespace msgsim
{

/** Configuration of the high-level stack. */
struct HlStackConfig
{
    std::uint32_t nodes = 4;
    int dataWords = 4;
    std::size_t memWords = 1u << 20;
    std::size_t recvCapacity = static_cast<std::size_t>(-1);
    int maxTransfers = 64;
    FaultInjector::Config faults; ///< corrected in hardware by CR
    bool rejectWhenFull = false;  ///< install the CR acceptance check
    Tick injectGap = 0;           ///< link bandwidth: source spacing
    Tick deliverGap = 0;          ///< link bandwidth: dest spacing
};

/**
 * CR machine + per-node HlLayer.
 */
class HlStack
{
  public:
    explicit HlStack(const HlStackConfig &cfg);

    Machine &machine() { return *machine_; }
    Simulator &sim() { return machine_->sim(); }
    int dataWords() const { return cfg_.dataWords; }
    Node &node(NodeId id) { return machine_->node(id); }
    HlLayer &hl(NodeId id);
    void settle() { machine_->settle(); }

    /**
     * Next transfer id.  Ids live in the 8-bit header field and are
     * recycled within it; the counter is per-stack so concurrent
     * stacks (the lab's parallel sweeps) never share mutable state.
     */
    Word allocTid();

  private:
    HlStackConfig cfg_;
    std::unique_ptr<Machine> machine_;
    std::vector<std::unique_ptr<HlLayer>> layers_;
    Word nextTid_ = 1;
};

/** Parameters of a high-level finite-sequence run. */
struct HlXferParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::uint32_t words = 16;
    std::uint64_t fillSeed = 0x11d0'beefULL;
    bool eventMode = false;
};

/** Run a finite-sequence transfer on the high-level stack. */
RunResult runHlFinite(HlStack &stack, const HlXferParams &params);

/** Parameters of a high-level indefinite-sequence run. */
struct HlStreamParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::uint32_t words = 16;
    std::uint64_t fillSeed = 0x57'12ea'3ULL;
    bool eventMode = false;
};

/** Run an indefinite-sequence stream on the high-level stack. */
RunResult runHlStream(HlStack &stack, const HlStreamParams &params);

} // namespace msgsim

#endif // MSGSIM_HLAM_HL_STACK_HH

#include "hlam/hl_stack.hh"

#include "sim/log.hh"
#include "sim/rng.hh"

namespace msgsim
{

HlStack::HlStack(const HlStackConfig &cfg) : cfg_(cfg)
{
    Machine::Config mc;
    mc.nodes = cfg_.nodes;
    mc.dataWords = cfg_.dataWords;
    mc.memWords = cfg_.memWords;
    mc.recvCapacity = cfg_.recvCapacity;

    CrNetwork::Config nc;
    nc.nodes = cfg_.nodes;
    nc.faults = cfg_.faults;
    nc.injectGap = cfg_.injectGap;
    nc.deliverGap = cfg_.deliverGap;
    machine_ = std::make_unique<Machine>(
        mc, [nc](Simulator &sim) {
            return std::make_unique<CrNetwork>(sim, nc);
        });

    HlLayer::Config lc;
    lc.maxTransfers = cfg_.maxTransfers;
    layers_.reserve(cfg_.nodes);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        layers_.push_back(
            std::make_unique<HlLayer>(machine_->node(i), lc));
        if (cfg_.rejectWhenFull) {
            // CR acceptance check: a header packet for a transfer
            // that cannot get a table slot is rejected in hardware
            // and retransmitted later — no software handshake needed.
            HlLayer *layer = layers_.back().get();
            machine_->node(i).ni().setAcceptFn(
                [layer](const Packet &pkt) {
                    if (pkt.tag != HwTag::XferData)
                        return true;
                    if (hdr::fieldB(pkt.header) == 0)
                        return true; // not a header packet
                    return layer->hasTransferSlot();
                });
        }
    }
}

HlLayer &
HlStack::hl(NodeId id)
{
    if (id >= layers_.size())
        msgsim_panic("hl: node id ", id, " out of range");
    return *layers_[id];
}

Word
HlStack::allocTid()
{
    const Word tid = nextTid_;
    nextTid_ = nextTid_ >= 200 ? 1 : nextTid_ + 1;
    return tid;
}

RunResult
runHlFinite(HlStack &stack, const HlXferParams &params)
{
    RunResult res;
    const int n = stack.dataWords();
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);

    const Word tid = stack.allocTid();
    const Addr src_buf = src.mem().alloc(params.words);
    const Addr dst_buf = dst.mem().alloc(params.words);

    std::uint64_t sm = params.fillSeed;
    for (std::uint32_t i = 0; i < params.words; ++i)
        src.mem().write(src_buf + i, static_cast<Word>(splitMix64(sm)));

    bool done = false;
    stack.hl(params.dst).postTransfer(tid, dst_buf,
                                      [&done](Word) { done = true; });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    if (!params.eventMode) {
        {
            FeatureScope fs(src.acct(), Feature::BaseCost);
            stack.hl(params.src).xferSend(params.dst, tid, src_buf,
                                          params.words);
        }
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.hl(params.dst).poll();
        }
    } else {
        dst.ni().setArrivalHook([&stack, id = params.dst] {
            stack.sim().schedule(1, [&stack, id] {
                Node &nd = stack.node(id);
                FeatureScope fs(nd.acct(), Feature::BaseCost);
                stack.hl(id).poll();
            });
        });
        {
            FeatureScope fs(src.acct(), Feature::BaseCost);
            stack.hl(params.src).xferSend(params.dst, tid, src_buf,
                                          params.words);
        }
        stack.sim().runUntil([&done] { return done; }, 50'000'000);
        stack.settle();
        dst.ni().setArrivalHook(nullptr);
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = stack.sim().now() - t0;
    res.packets = params.words / static_cast<std::uint32_t>(n);

    res.dataOk = done;
    for (std::uint32_t i = 0; res.dataOk && i < params.words; ++i)
        if (dst.mem().read(dst_buf + i) != src.mem().read(src_buf + i))
            res.dataOk = false;
    return res;
}

RunResult
runHlStream(HlStack &stack, const HlStreamParams &params)
{
    RunResult res;
    const int n = stack.dataWords();
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);
    const std::uint32_t packets =
        params.words / static_cast<std::uint32_t>(n);

    std::vector<std::vector<Word>> data(packets);
    std::uint64_t sm = params.fillSeed;
    for (auto &pkt : data) {
        pkt.resize(static_cast<std::size_t>(n));
        for (auto &w : pkt)
            w = static_cast<Word>(splitMix64(sm));
    }

    std::vector<Word> received;
    stack.hl(params.dst).setStreamCb(
        [&received](Word, NodeId, const std::vector<Word> &words) {
            for (Word w : words)
                received.push_back(w);
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    const Word chan = 7;
    if (!params.eventMode) {
        {
            FeatureScope fs(src.acct(), Feature::BaseCost);
            for (const auto &pkt : data)
                stack.hl(params.src).streamSend(params.dst, chan, pkt);
        }
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.hl(params.dst).poll();
        }
    } else {
        dst.ni().setArrivalHook([&stack, id = params.dst] {
            stack.sim().schedule(1, [&stack, id] {
                Node &nd = stack.node(id);
                FeatureScope fs(nd.acct(), Feature::BaseCost);
                stack.hl(id).poll();
            });
        });
        {
            FeatureScope fs(src.acct(), Feature::BaseCost);
            for (const auto &pkt : data)
                stack.hl(params.src).streamSend(params.dst, chan, pkt);
        }
        stack.sim().runUntil(
            [&received, &params] {
                return received.size() == params.words;
            },
            50'000'000);
        stack.settle();
        dst.ni().setArrivalHook(nullptr);
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = stack.sim().now() - t0;
    res.packets = packets;

    // Integrity: exact content in exact transmission order (the
    // network provides the ordering; the test proves it).
    res.dataOk = received.size() == params.words;
    if (res.dataOk) {
        std::size_t k = 0;
        for (const auto &pkt : data)
            for (Word w : pkt)
                if (received[k++] != w)
                    res.dataOk = false;
    }
    return res;
}

} // namespace msgsim

#include "hlam/hl_layer.hh"

#include "cmam/send_path.hh"
#include "core/row.hh"
#include "hostprof/hostprof.hh"
#include "net/lineage_hook.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

HlLayer::HlLayer(Node &node, const Config &cfg) : node_(node), cfg_(cfg)
{
    // Boot-time setup (uncharged): NI base pointer word and the
    // transfer-record table.
    niBaseAddr_ = node_.mem().alloc(1);
    node_.mem().write(niBaseAddr_, 0x001ba5e0u);
    tableBase_ = node_.mem().alloc(
        static_cast<std::size_t>(cfg_.maxTransfers) * 4);
}

void
HlLayer::postTransfer(Word tid, Addr buf, CompletionFn done)
{
    if (tid > hdr::maxFieldA)
        msgsim_fatal("transfer id ", tid, " exceeds the header field");
    if (transfers_.count(tid))
        msgsim_fatal("transfer ", tid, " already posted");
    Transfer t;
    t.buf = buf;
    t.done = std::move(done);
    transfers_[tid] = std::move(t);
}

void
HlLayer::xferSend(NodeId dst, Word tid, Addr srcBuf, std::uint32_t words)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();
    ScopedSpan span(node_.id(), "hl", "xfer_send");
    hostprof::HostScope hps(hostprof::Site::HlSend);

    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("hl xfer of ", words,
                     " words: not a multiple of packet size ", n);
    if (words > hdr::maxFieldB)
        msgsim_fatal("hl xfer size exceeds header field");
    if (tid > hdr::maxFieldA)
        msgsim_fatal("transfer id ", tid, " exceeds the header field");

    // Fixed entry (2 reg + 1 mem), as in the CMAM xfer loop.
    p.regOps(2);
    (void)p.loadWord(niBaseAddr_);

    std::uint32_t offset = 0;
    bool first = true;
    while (offset < words) {
        // The first packet is the header packet: its header word
        // carries the transfer size so the destination can size and
        // bind a buffer.  NO in-order charges anywhere: transmission
        // order is delivery order.
        const Word header = hdr::pack(tid, first ? words : 0);
        first = false;

        for (int attempt = 0;; ++attempt) {
            if (attempt > 1000)
                msgsim_panic("hl xfer send retry livelock");
            {
                RowScope r(a, CostRow::NiSetup);
                p.regOps(4);
                ni.writeSendCtl(a, dst, HwTag::XferData, header);
            }
            {
                RowScope r(a, CostRow::CheckStatus);
                (void)ni.readStatus(a);
                p.regOps(2);
            }
            for (int i = 0; i < n; i += 2) {
                const auto [w0, w1] = p.loadDouble(
                    srcBuf + offset + static_cast<Addr>(i));
                RowScope r(a, CostRow::WriteNi);
                ni.writeSendDouble(a, w0, w1);
            }
            Word status;
            {
                RowScope r(a, CostRow::CheckStatus);
                status = ni.readStatus(a);
                p.regOps(3);
            }
            {
                RowScope r(a, CostRow::ControlFlow);
                p.branches(3);
            }
            if (status & ni_status::sendOk)
                break;
        }
        p.regOps(3); // loop induction
        offset += static_cast<std::uint32_t>(n);
    }
}

void
HlLayer::streamSend(NodeId dst, Word chan, const std::vector<Word> &data)
{
    ScopedSpan span(node_.id(), "hl", "stream_send");
    hostprof::HostScope hps(hostprof::Site::HlSend);
    singlePacketSend(node_, niBaseAddr_, HwTag::StreamData, dst,
                     hdr::pack(chan, 0), data, dataWords());
}

int
HlLayer::poll()
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    ScopedSpan span(node_.id(), "hl", "poll");
    hostprof::HostScope hps(hostprof::Site::HlPoll);

    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(3);
    }
    dispatchOps_ += 3;
    int handled = 0;
    bool first = true;
    for (;;) {
        Word status;
        {
            RowScope r(a, CostRow::CheckStatus);
            status = ni.readStatus(a);
            p.regOps(first ? 9 : 1);
            dispatchOps_ += first ? 10 : 2; // status read + decode
            first = false;
        }
        if (!(status & ni_status::recvReady))
            break;
        const Packet *head = ni.hwPeekRecv();
        if (head == nullptr)
            msgsim_panic("recvReady set with empty FIFO");
        const auto tag = static_cast<HwTag>(
            (status >> ni_status::tagShift) & ni_status::tagMask);
        // Lineage handler context, as in Cmam::drainLoop.
        LineageHooks *lh = LineageHooks::current();
        if (lh)
            lh->handlerBegin(node_.id(), *head, ni.sim().now());
        switch (tag) {
          case HwTag::XferData:
            handleXferData();
            break;
          case HwTag::StreamData:
            handleStreamData(head->src);
            break;
          default:
            msgsim_panic("hl layer: unexpected tag ",
                         static_cast<int>(tag));
        }
        if (lh)
            lh->handlerEnd(node_.id(), ni.sim().now());
        ++handled;
        {
            RowScope r(a, CostRow::ControlFlow);
            p.branches(2);
        }
        dispatchOps_ += 2;
    }
    return handled;
}

void
HlLayer::handleXferData()
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();

    Word header;
    {
        RowScope r(a, CostRow::ReadNi);
        header = ni.readRecvHeader(a);
    }
    p.regOps(3); // tag-vector dispatch
    dispatchOps_ += 3;
    const Word tid = hdr::fieldA(header);
    auto it = transfers_.find(tid);
    if (it == transfers_.end())
        msgsim_panic("hl xfer data for unposted transfer ", tid);
    Transfer &t = it->second;

    if (!t.started) {
        // Header packet: bind the posted buffer.  This is the entire
        // buffer-management cost of the protocol (9 reg + 4 mem):
        // store the buffer pointer and expected count into a table
        // record associated with the incoming message.
        FeatureScope bm(a, Feature::BufferMgmt);
        const std::uint32_t total_words = hdr::fieldB(header);
        if (total_words == 0 ||
            total_words % static_cast<std::uint32_t>(n) != 0)
            msgsim_panic("hl header packet with bad size ",
                         total_words);
        p.regOps(5); // record index, size arithmetic
        t.rec = tableBase_ +
                static_cast<Addr>(nextRec_ % cfg_.maxTransfers) * 4;
        nextRec_++;
        p.storeWord(t.rec + 0, t.buf);                        // mem 1
        p.storeWord(t.rec + 1, total_words /
                                   static_cast<Word>(n));     // mem 2
        p.storeWord(t.rec + 2, 1);                            // mem 3
        p.storeWord(t.rec + 3, tid);                          // mem 4
        p.regOps(4); // flag packing, branch
        t.started = true;
        t.writePtr = t.buf;
        t.remainingPackets = total_words / static_cast<Word>(n);
        ++active_;
    }

    // Data placement with a running write pointer: in-order delivery
    // is hardware's problem, so no offsets, no sequence numbers.
    p.regOps(1); // effective address (pointer already in a register)
    for (int i = 0; i < n; i += 2) {
        std::pair<Word, Word> words;
        {
            RowScope r(a, CostRow::ReadNi);
            words = ni.readRecvDouble(a);
        }
        p.storeDouble(t.writePtr + static_cast<Addr>(i), words.first,
                      words.second);
    }
    p.regOps(2); // write-pointer advance, read-loop induction
    t.writePtr += static_cast<Addr>(n);
    p.regOps(2); // remaining decrement + last-packet branch
    --t.remainingPackets;

    if (t.remainingPackets == 0) {
        // Specialized last-packet handler (2 reg + 3 mem): reload the
        // record and run the completion continuation.
        p.regOps(2);
        (void)p.loadWord(t.rec + 0);
        (void)p.loadWord(t.rec + 1);
        (void)p.loadWord(t.rec + 3);
        --active_;
        auto done = std::move(t.done);
        const Word id = tid;
        transfers_.erase(it);
        if (done)
            done(id);
    }
}

void
HlLayer::handleStreamData(NodeId src)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();

    Word header;
    {
        RowScope r(a, CostRow::ReadNi);
        header = ni.readRecvHeader(a);
    }
    std::vector<Word> data(static_cast<std::size_t>(n));
    {
        RowScope r(a, CostRow::ReadNi);
        for (int i = 0; i < n; i += 2) {
            const auto [w0, w1] = ni.readRecvDouble(a);
            data[static_cast<std::size_t>(i)] = w0;
            data[static_cast<std::size_t>(i + 1)] = w1;
        }
    }
    p.regOps(3); // dispatch
    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(4); // user handler linkage
    }
    dispatchOps_ += 7;
    if (!streamCb_)
        msgsim_panic("hl stream data with no callback installed");
    streamCb_(hdr::fieldA(header), src, data);
}

} // namespace msgsim

/**
 * @file
 * The messaging layer for networks with high-level services
 * (paper Section 4), designed for a Compressionless-Routing-style
 * substrate that provides in-order delivery, acceptance-independent
 * deadlock freedom, and packet-level fault tolerance in hardware.
 *
 * Consequences the paper measures, reproduced here:
 *  - finite-sequence transfers need no preallocation handshake
 *    (the NI can reject a header packet; the hardware retransmits),
 *    no placement offsets (delivery order is transmission order, so
 *    a running write pointer suffices) and no end-to-end ack
 *    (packets are reliable) — only the base data movement plus a
 *    negligible buffer-table insert (9 reg + 4 mem) remains;
 *  - indefinite-sequence streams are *free* beyond repeated
 *    single-packet sends: no sequence numbers, no reorder buffers,
 *    no source buffering, no acks;
 *  - single-packet delivery costs exactly what it costs on CMAM
 *    (the NI is identical) but now meets all user requirements.
 */

#ifndef MSGSIM_HLAM_HL_LAYER_HH
#define MSGSIM_HLAM_HL_LAYER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "machine/node.hh"
#include "net/packet.hh"

namespace msgsim
{

/**
 * Per-node high-level-features messaging layer.
 */
class HlLayer
{
  public:
    /** Completion callback of a posted finite transfer. */
    using CompletionFn = std::function<void(Word tid)>;

    /** Stream delivery callback (packets arrive in order). */
    using StreamCb =
        std::function<void(Word chan, NodeId src,
                           const std::vector<Word> &data)>;

    struct Config
    {
        int maxTransfers = 64; ///< live finite-transfer table size
    };

    explicit HlLayer(Node &node) : HlLayer(node, Config()) {}
    HlLayer(Node &node, const Config &cfg);

    HlLayer(const HlLayer &) = delete;
    HlLayer &operator=(const HlLayer &) = delete;

    Node &node() { return node_; }
    int dataWords() const { return node_.ni().dataWords(); }

    // ------------------------------------------------------------
    // Finite-sequence transfer.
    // ------------------------------------------------------------

    /**
     * Application-level posting of a receive buffer for transfer
     * @p tid (uncharged: this models the receiver application owning
     * a buffer, not protocol work).
     */
    void postTransfer(Word tid, Addr buf, CompletionFn done);

    /**
     * Source side: stream @p words words from @p srcBuf to @p dst as
     * transfer @p tid.  The first packet's header carries the total
     * size (the "header packet"); no offsets, no handshake, no
     * source copy.  Base cost only: 3 + p*(15 reg + n/2 mem +
     * (n/2+3) dev).
     */
    void xferSend(NodeId dst, Word tid, Addr srcBuf,
                  std::uint32_t words);

    /** Live finite transfers (drives the CR acceptance check). */
    int activeTransfers() const { return active_; }

    /** True when the transfer table can accept another header. */
    bool hasTransferSlot() const { return active_ < cfg_.maxTransfers; }

    // ------------------------------------------------------------
    // Indefinite-sequence stream.
    // ------------------------------------------------------------

    /**
     * Send one stream packet: exactly a single-packet send (20 at
     * n = 4).  Nothing else — ordering and reliability are hardware.
     */
    void streamSend(NodeId dst, Word chan,
                    const std::vector<Word> &data);

    /** Install the stream delivery callback. */
    void setStreamCb(StreamCb cb) { streamCb_ = std::move(cb); }

    // ------------------------------------------------------------
    // Receive.
    // ------------------------------------------------------------

    /** Drain the NI, dispatching by tag.  Returns packets handled. */
    int poll();

    /**
     * Instructions spent on host handler dispatch (poll linkage,
     * status polling, tag decode, handler linkage) — the plain
     * diagnostic mirror Cmam::dispatchOps() keeps; see there.
     */
    std::uint64_t dispatchOps() const { return dispatchOps_; }

  private:
    struct Transfer
    {
        Addr buf = 0;          ///< posted receive buffer
        CompletionFn done;
        bool started = false;  ///< header packet seen
        Addr writePtr = 0;     ///< running placement pointer
        std::uint32_t remainingPackets = 0;
        Addr rec = 0;          ///< modeled table record
    };

    void handleXferData();
    void handleStreamData(NodeId src);

    Node &node_;
    Config cfg_;
    Addr niBaseAddr_;
    Addr tableBase_; ///< modeled transfer-record table (4 words each)
    int nextRec_ = 0;
    int active_ = 0;
    std::uint64_t dispatchOps_ = 0;
    std::map<Word, Transfer> transfers_;
    StreamCb streamCb_;
};

} // namespace msgsim

#endif // MSGSIM_HLAM_HL_LAYER_HH

#include "check/replay.hh"

namespace msgsim::check
{

namespace
{

Json
scenarioToJson(const ScenarioConfig &sc)
{
    Json j = Json::object();
    j.set("protocol", sc.protocol);
    j.set("substrate", toString(sc.substrate));
    j.set("nodes", static_cast<std::int64_t>(sc.nodes));
    j.set("packets", static_cast<std::int64_t>(sc.packets));
    j.set("group_ack", sc.groupAck);
    j.set("faults", sc.faults);
    j.set("fault_kinds",
          static_cast<std::int64_t>(sc.effectiveFaultKinds()));
    j.set("bug_ack_before_insert", sc.bugAckBeforeInsert);
    if (sc.protocol.rfind("wire_", 0) == 0) {
        j.set("streams", static_cast<std::int64_t>(sc.streams));
        j.set("window", sc.window);
        j.set("wire_corrupt_every",
              static_cast<std::int64_t>(sc.wireCorruptEvery));
        j.set("bug_wire_reset_deliver", sc.bugWireResetDeliver);
    }
    return j;
}

bool
scenarioFromJson(const Json &j, ScenarioConfig &sc,
                 std::string &error)
{
    const Json *p = j.find("protocol");
    if (!p || p->kind() != Json::Kind::String) {
        error = "scenario.protocol missing";
        return false;
    }
    sc.protocol = p->asString();
    if (const Json *s = j.find("substrate")) {
        if (s->asString() == "cr")
            sc.substrate = Substrate::Cr;
        else if (s->asString() == "cm5")
            sc.substrate = Substrate::Cm5;
        else if (s->asString() == "rdma")
            sc.substrate = Substrate::Rdma;
        else if (s->asString() == "nicam")
            sc.substrate = Substrate::Nicam;
        else {
            error = "unknown substrate '" + s->asString() + "'";
            return false;
        }
    }
    if (const Json *v = j.find("nodes"))
        sc.nodes = static_cast<std::uint32_t>(v->asInt());
    if (const Json *v = j.find("packets"))
        sc.packets = static_cast<std::uint32_t>(v->asInt());
    if (const Json *v = j.find("group_ack"))
        sc.groupAck = static_cast<int>(v->asInt());
    if (const Json *v = j.find("faults"))
        sc.faults = static_cast<int>(v->asInt());
    if (const Json *v = j.find("fault_kinds"))
        sc.faultKinds = static_cast<unsigned>(v->asInt());
    if (const Json *v = j.find("bug_ack_before_insert"))
        sc.bugAckBeforeInsert = v->asBool();
    // Wire-layer fields: optional, so pre-wire counterexample files
    // keep parsing with the defaults.
    if (const Json *v = j.find("streams"))
        sc.streams = static_cast<std::uint32_t>(v->asInt());
    if (const Json *v = j.find("window"))
        sc.window = static_cast<int>(v->asInt());
    if (const Json *v = j.find("wire_corrupt_every"))
        sc.wireCorruptEvery = static_cast<std::uint32_t>(v->asInt());
    if (const Json *v = j.find("bug_wire_reset_deliver"))
        sc.bugWireResetDeliver = v->asBool();
    return true;
}

} // namespace

Json
scheduleToJson(const std::vector<Choice> &schedule)
{
    Json arr = Json::array();
    for (const Choice &c : schedule) {
        Json e = Json::object();
        e.set("kind", toString(c.kind));
        e.set("packet", static_cast<std::int64_t>(c.packetId));
        arr.push(std::move(e));
    }
    return arr;
}

std::string
counterexampleToJson(const Counterexample &ce)
{
    Json j = Json::object();
    j.set("scenario", scenarioToJson(ce.scenario));
    j.set("invariant", ce.invariant);
    j.set("detail", ce.detail);
    j.set("schedule", scheduleToJson(ce.schedule));
    return j.dump(2) + "\n";
}

bool
counterexampleFromJson(const std::string &text, Counterexample &out,
                       std::string &error)
{
    Json j;
    if (!Json::parse(text, j, &error))
        return false;
    const Json *sc = j.find("scenario");
    if (!sc) {
        error = "counterexample lacks a scenario object";
        return false;
    }
    if (!scenarioFromJson(*sc, out.scenario, error))
        return false;
    if (const Json *v = j.find("invariant"))
        out.invariant = v->asString();
    if (const Json *v = j.find("detail"))
        out.detail = v->asString();
    out.schedule.clear();
    if (const Json *arr = j.find("schedule")) {
        for (std::size_t i = 0; i < arr->size(); ++i) {
            const Json &e = arr->at(i);
            Choice c;
            const Json *kind = e.find("kind");
            if (!kind ||
                !choiceKindFromString(kind->asString(), c.kind)) {
                error = "bad choice kind in schedule";
                return false;
            }
            if (const Json *p = e.find("packet"))
                c.packetId =
                    static_cast<std::uint64_t>(p->asInt());
            out.schedule.push_back(c);
        }
    }
    return true;
}

std::string
reportToJson(const CheckReport &rep)
{
    Json j = Json::object();
    j.set("scenario", scenarioToJson(rep.scenario));

    Json lim = Json::object();
    lim.set("depth", rep.limits.depth);
    lim.set("budget", static_cast<std::int64_t>(rep.limits.budget));
    lim.set("max_steps",
            static_cast<std::int64_t>(rep.limits.maxSteps));
    lim.set("walks", rep.limits.walks);
    lim.set("seed", static_cast<std::int64_t>(rep.limits.seed));
    j.set("limits", std::move(lim));

    j.set("schedules_run",
          static_cast<std::int64_t>(rep.schedulesRun));
    j.set("dfs_schedules",
          static_cast<std::int64_t>(rep.dfsSchedules));
    j.set("walk_schedules",
          static_cast<std::int64_t>(rep.walkSchedules));
    j.set("steps_total", static_cast<std::int64_t>(rep.stepsTotal));
    j.set("max_choice_points",
          static_cast<std::int64_t>(rep.maxChoicePoints));
    j.set("exhausted", rep.exhausted);
    j.set("violations", static_cast<std::int64_t>(rep.violations));
    j.set("verdict", rep.violations ? "violation" : "ok");
    if (rep.violations) {
        Json ce = Json::object();
        ce.set("invariant", rep.counterexample.invariant);
        ce.set("detail", rep.counterexample.detail);
        ce.set("steps",
               static_cast<std::int64_t>(rep.counterexample.steps));
        ce.set("schedule",
               scheduleToJson(rep.counterexample.schedule));
        j.set("counterexample", std::move(ce));
    }
    return j.dump(2) + "\n";
}

} // namespace msgsim::check

/**
 * @file
 * msgsim-check: the schedule-space model-checker CLI.
 *
 *   msgsim-check --protocol=stream --depth=8 --faults=1
 *   msgsim-check --protocol=single_packet --substrate=cr --packets=4
 *   msgsim-check --protocol=stream --bug --ce-out=bug.json
 *   msgsim-check --replay=bug.json
 *
 * Exit status: 0 = no violation (or a --replay that reproduced its
 * recorded violation), 1 = violation found (or a --replay that did
 * not reproduce), 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "check/explorer.hh"
#include "check/replay.hh"
#include "check/shrink.hh"
#include "prof/lineage.hh"
#include "sim/obs_cli.hh"

namespace
{

using namespace msgsim;
using namespace msgsim::check;

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: msgsim-check [options]\n"
        "\n"
        "scenario:\n"
        "  --protocol=P       single_packet | incast | finite_xfer |\n"
        "                     stream | socket | wire_window |\n"
        "                     wire_reset | wire_attach (default stream)\n"
        "  --substrate=S      cm5 | cr | rdma | nicam (default cm5)\n"
        "  --nodes=N          nodes in the machine (default 2)\n"
        "  --packets=N        messages / data packets sent (default 3)\n"
        "  --group-ack=G      stream/socket ack grouping (default 1)\n"
        "  --faults=N         fault decisions per schedule (default 1)\n"
        "  --fault-kinds=M    bitmask 1=drop 2=corrupt 4=duplicate\n"
        "                     (default: the protocol's safe set)\n"
        "  --bug              re-introduce the ack-before-insert\n"
        "                     stream bug (the checker should catch it)\n"
        "  --streams=N        wire_window: multiplexed streams\n"
        "                     (default 2)\n"
        "  --window=W         wire_*: per-stream sliding window\n"
        "                     (default 2)\n"
        "  --wire-corrupt-every=N\n"
        "                     wire_*: flip the CRC of every Nth DATA\n"
        "                     frame at the wire layer (default off)\n"
        "  --bug-wire-reset   seed the wire reset-delivery bug (the\n"
        "                     checker should catch it)\n"
        "\n"
        "exploration:\n"
        "  --depth=D          DFS branching choice points (default 12)\n"
        "  --budget=N         max schedules executed (default 20000)\n"
        "  --max-steps=N      per-schedule step bound (default 800)\n"
        "  --walks=N          seeded random walks after DFS (default 0)\n"
        "  --seed=N           walk seed (default 1)\n"
        "\n"
        "artifacts:\n"
        "  --json-out=FILE    write the exploration report (JSON)\n"
        "  --ce-out=FILE      write the shrunk counterexample (JSON)\n"
        "  --replay=FILE      re-execute a counterexample file instead\n"
        "                     of exploring; exit 0 iff it reproduces\n"
        "  --quiet            suppress the stdout summary\n"
        "\n"
        "observability:\n"
        "  --trace-out=FILE   Chrome trace-event timeline; with\n"
        "                     --replay, the counterexample's packets\n"
        "                     carry lineage flow arrows\n"
        "  --metrics-out=FILE metrics registry dump\n",
        out);
}

struct CliOptions
{
    ScenarioConfig scenario;
    ExploreLimits limits;
    std::string jsonOut;
    std::string ceOut;
    std::string replayFile;
    bool quiet = false;
};

bool
parseCli(int argc, char **argv, CliOptions &cli)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        auto intOf = [&](const char *prefix) {
            return std::atoll(valueOf(prefix).c_str());
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg.rfind("--protocol=", 0) == 0) {
            cli.scenario.protocol = valueOf("--protocol=");
        } else if (arg.rfind("--substrate=", 0) == 0) {
            const std::string s = valueOf("--substrate=");
            if (s == "cm5")
                cli.scenario.substrate = Substrate::Cm5;
            else if (s == "cr")
                cli.scenario.substrate = Substrate::Cr;
            else if (s == "rdma")
                cli.scenario.substrate = Substrate::Rdma;
            else if (s == "nicam")
                cli.scenario.substrate = Substrate::Nicam;
            else {
                std::fprintf(stderr,
                             "error: unknown substrate '%s'\n",
                             s.c_str());
                return false;
            }
        } else if (arg.rfind("--nodes=", 0) == 0) {
            cli.scenario.nodes =
                static_cast<std::uint32_t>(intOf("--nodes="));
        } else if (arg.rfind("--packets=", 0) == 0) {
            cli.scenario.packets =
                static_cast<std::uint32_t>(intOf("--packets="));
        } else if (arg.rfind("--group-ack=", 0) == 0) {
            cli.scenario.groupAck =
                static_cast<int>(intOf("--group-ack="));
        } else if (arg.rfind("--faults=", 0) == 0) {
            cli.scenario.faults =
                static_cast<int>(intOf("--faults="));
        } else if (arg.rfind("--fault-kinds=", 0) == 0) {
            cli.scenario.faultKinds =
                static_cast<unsigned>(intOf("--fault-kinds="));
        } else if (arg == "--bug") {
            cli.scenario.bugAckBeforeInsert = true;
        } else if (arg.rfind("--streams=", 0) == 0) {
            cli.scenario.streams =
                static_cast<std::uint32_t>(intOf("--streams="));
        } else if (arg.rfind("--window=", 0) == 0) {
            cli.scenario.window =
                static_cast<int>(intOf("--window="));
        } else if (arg.rfind("--wire-corrupt-every=", 0) == 0) {
            cli.scenario.wireCorruptEvery =
                static_cast<std::uint32_t>(
                    intOf("--wire-corrupt-every="));
        } else if (arg == "--bug-wire-reset") {
            cli.scenario.bugWireResetDeliver = true;
        } else if (arg.rfind("--depth=", 0) == 0) {
            cli.limits.depth = static_cast<int>(intOf("--depth="));
        } else if (arg.rfind("--budget=", 0) == 0) {
            cli.limits.budget =
                static_cast<std::uint64_t>(intOf("--budget="));
        } else if (arg.rfind("--max-steps=", 0) == 0) {
            cli.limits.maxSteps =
                static_cast<std::uint64_t>(intOf("--max-steps="));
        } else if (arg.rfind("--walks=", 0) == 0) {
            cli.limits.walks = static_cast<int>(intOf("--walks="));
        } else if (arg.rfind("--seed=", 0) == 0) {
            cli.limits.seed =
                static_cast<std::uint64_t>(intOf("--seed="));
        } else if (arg.rfind("--json-out=", 0) == 0) {
            cli.jsonOut = valueOf("--json-out=");
        } else if (arg.rfind("--ce-out=", 0) == 0) {
            cli.ceOut = valueOf("--ce-out=");
        } else if (arg.rfind("--replay=", 0) == 0) {
            cli.replayFile = valueOf("--replay=");
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return false;
        }
    }
    if (cli.scenario.protocol != "single_packet" &&
        cli.scenario.protocol != "incast" &&
        cli.scenario.protocol != "finite_xfer" &&
        cli.scenario.protocol != "stream" &&
        cli.scenario.protocol != "socket" &&
        cli.scenario.protocol != "wire_window" &&
        cli.scenario.protocol != "wire_reset" &&
        cli.scenario.protocol != "wire_attach") {
        std::fprintf(stderr, "error: unknown protocol '%s'\n",
                     cli.scenario.protocol.c_str());
        return false;
    }
    if (cli.scenario.nodes < 2 || cli.scenario.nodes > 8) {
        std::fprintf(stderr, "error: --nodes must be in [2, 8]\n");
        return false;
    }
    if (cli.scenario.packets < 1 || cli.scenario.packets > 16) {
        std::fprintf(stderr, "error: --packets must be in [1, 16]\n");
        return false;
    }
    if (cli.scenario.streams < 1 || cli.scenario.streams > 4) {
        std::fprintf(stderr, "error: --streams must be in [1, 4]\n");
        return false;
    }
    if (cli.scenario.window < 1 || cli.scenario.window > 8) {
        std::fprintf(stderr, "error: --window must be in [1, 8]\n");
        return false;
    }
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    os << text;
    return true;
}

int
runReplay(const CliOptions &cli, obs::Scope &scope)
{
    std::ifstream is(cli.replayFile, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "error: cannot read '%s'\n",
                     cli.replayFile.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    Counterexample ce;
    std::string error;
    if (!counterexampleFromJson(buf.str(), ce, error)) {
        std::fprintf(stderr, "error: %s: %s\n",
                     cli.replayFile.c_str(), error.c_str());
        return 2;
    }

    // When the replay is traced, record packet lineage too: the
    // exported timeline then draws the counterexample's causal
    // send -> deliver -> handler arrows.
    std::unique_ptr<prof::LineageSession> lineage;
    if (scope.tracing())
        lineage = std::make_unique<prof::LineageSession>();

    Explorer explorer(ce.scenario, cli.limits);
    const ScheduleResult res = explorer.replay(ce.schedule);
    const bool reproduced =
        res.violated && res.invariant == ce.invariant;

    if (lineage && scope.session() != nullptr)
        lineage->exportTo(*scope.session());
    if (!cli.quiet) {
        if (reproduced)
            std::printf("replay %s: reproduced '%s' (%s)\n",
                        cli.replayFile.c_str(),
                        res.invariant.c_str(), res.detail.c_str());
        else if (res.violated)
            std::printf("replay %s: violated '%s' instead of "
                        "recorded '%s'\n",
                        cli.replayFile.c_str(),
                        res.invariant.c_str(), ce.invariant.c_str());
        else
            std::printf("replay %s: recorded violation '%s' did NOT "
                        "reproduce\n",
                        cli.replayFile.c_str(), ce.invariant.c_str());
    }
    return reproduced ? 0 : 1;
}

int
runExplore(const CliOptions &cli)
{
    Explorer explorer(cli.scenario, cli.limits);
    CheckReport rep = explorer.run();

    if (rep.violations) {
        // Minimize before anyone has to read the schedule.
        Shrinker shrinker(explorer);
        const ShrinkResult shrunk =
            shrinker.shrink(rep.counterexample);
        rep.counterexample = shrunk.result;
        // result.schedule holds every decision the replay took
        // (forced + defaults); the counterexample wants only the
        // forced choices ddmin kept.
        rep.counterexample.schedule = shrunk.schedule;

        if (!cli.ceOut.empty()) {
            Counterexample ce;
            ce.scenario = cli.scenario;
            ce.invariant = rep.counterexample.invariant;
            ce.detail = rep.counterexample.detail;
            ce.schedule = rep.counterexample.schedule;
            if (!writeFile(cli.ceOut, counterexampleToJson(ce)))
                return 2;
        }
    }

    if (!cli.jsonOut.empty() &&
        !writeFile(cli.jsonOut, reportToJson(rep)))
        return 2;

    if (!cli.quiet) {
        std::printf(
            "check %s/%s: %llu schedule(s) (%llu dfs, %llu walks), "
            "%llu step(s), %s\n",
            cli.scenario.protocol.c_str(),
            toString(cli.scenario.substrate),
            static_cast<unsigned long long>(rep.schedulesRun),
            static_cast<unsigned long long>(rep.dfsSchedules),
            static_cast<unsigned long long>(rep.walkSchedules),
            static_cast<unsigned long long>(rep.stepsTotal),
            rep.exhausted ? "exhaustive within depth"
                          : "budget-bounded");
        if (rep.violations) {
            std::printf("VIOLATION: %s — %s\n",
                        rep.counterexample.invariant.c_str(),
                        rep.counterexample.detail.c_str());
            std::printf("  minimized schedule (%zu choice(s)):\n",
                        rep.counterexample.schedule.size());
            for (const Choice &c : rep.counterexample.schedule)
                std::printf("    %-9s packet %llu\n",
                            toString(c.kind),
                            static_cast<unsigned long long>(
                                c.packetId));
        } else {
            std::printf("no invariant violations\n");
        }
    }
    return rep.violations ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto obsOpts = obs::parseArgs(argc, argv);
    obs::Scope scope(obsOpts);

    CliOptions cli;
    if (!parseCli(argc, argv, cli))
        return 2;

    if (!cli.replayFile.empty())
        return runReplay(cli, scope);
    return runExplore(cli);
}

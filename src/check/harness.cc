#include "check/harness.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "protocols/finite_xfer.hh"
#include "protocols/socket.hh"
#include "protocols/stream.hh"
#include "sim/log.hh"
#include "wire/mux.hh"

namespace msgsim::check
{

ScenarioHarness::ScenarioHarness(const ScenarioConfig &cfg)
    : cfg_(cfg)
{
    StackConfig sc;
    sc.substrate = cfg.substrate;
    sc.nodes = cfg.nodes < 2 ? 2 : cfg.nodes;
    stack_ = std::make_unique<Stack>(sc);
    controller_ =
        std::make_unique<ScheduleController>(stack_->network());
}

void
ScenarioHarness::progress()
{
    // Handled packets may send (acks, replies) — those injections
    // are captured by the controller, so this loop reaches a
    // fixpoint once every already-delivered packet is consumed.
    for (int round = 0; round < 256; ++round) {
        stack_->settle();
        bool any = false;
        for (NodeId id = 0; id < stack_->machine().nodeCount();
             ++id) {
            Node &nd = stack_->node(id);
            if (!nd.ni().hwRecvPending())
                continue;
            any = true;
            FeatureScope fs(nd.acct(), Feature::BaseCost);
            stack_->cmam(id).poll();
        }
        if (!any) {
            stack_->settle();
            return;
        }
    }
    msgsim_panic("scenario progress loop failed to reach fixpoint");
}

namespace
{

// ----------------------------------------------------------------
// Protocol 1: single-packet active messages.  No software recovery
// exists, so the specification is fault-aware: every message is
// delivered exactly once, minus the ones the schedule explicitly
// destroyed (dropped or corrupted), in order on an in-order
// substrate.
// ----------------------------------------------------------------
class SinglePacketScenario : public ScenarioHarness
{
  public:
    explicit SinglePacketScenario(const ScenarioConfig &cfg)
        : ScenarioHarness(cfg)
    {
        for (NodeId id = 0; id < stack_->machine().nodeCount(); ++id)
            handler_ = stack_->cmam(id).registerHandler(
                [this](NodeId, const std::vector<Word> &args) {
                    delivered_.push_back(args.empty() ? 0 : args[0]);
                });
        controller_->setDecisionHook(
            [this](const Choice &c, const Packet &pkt) {
                if (pkt.tag != HwTag::UserAm || pkt.data.empty())
                    return;
                if (c.kind == ChoiceKind::Drop ||
                    c.kind == ChoiceKind::Corrupt)
                    --expected_[pkt.data[0]];
                else if (c.kind == ChoiceKind::Duplicate)
                    ++expected_[pkt.data[0]];
            });
    }

    void
    start() override
    {
        Node &src = stack_->node(0);
        for (std::uint32_t i = 0; i < cfg_.packets; ++i) {
            const Word value = 0xc0de0000u + i;
            sent_.push_back(value);
            expected_[value] = 1;
            FeatureScope fs(src.acct(), Feature::BaseCost);
            stack_->cmam(0).am4(1, handler_, {value, i, 0, 0});
        }
    }

    bool
    done() const override
    {
        std::uint64_t want = 0;
        for (const auto &[value, count] : expected_)
            if (count > 0)
                want += static_cast<std::uint64_t>(count);
        return delivered_.size() == want;
    }

    std::string
    protocolInvariant() const override
    {
        std::map<Word, int> seen;
        for (Word v : delivered_)
            ++seen[v];
        for (const auto &[value, count] : seen) {
            auto it = expected_.find(value);
            const int want = it == expected_.end()
                                 ? 0
                                 : std::max(0, it->second);
            if (count > want) {
                std::ostringstream os;
                os << "value " << std::hex << value << std::dec
                   << " delivered " << count << "x, expected "
                   << want;
                return os.str();
            }
        }
        if (stack_->network().features().inOrderDelivery &&
            !std::is_sorted(delivered_.begin(), delivered_.end())) {
            return "in-order substrate delivered messages out of "
                   "order";
        }
        return "";
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = protocolInvariant();
        if (!step.empty())
            return step;
        if (!done()) {
            std::ostringstream os;
            os << "only " << delivered_.size() << " of the surviving "
               << "messages were delivered";
            return os.str();
        }
        return "";
    }

  private:
    int handler_ = 0;
    std::vector<Word> sent_;
    std::vector<Word> delivered_;
    std::map<Word, int> expected_; ///< per-value surviving copies
};

// ----------------------------------------------------------------
// Incast: every non-zero node fires `packets` active messages at
// node 0 — the datacenter fan-in storm as a checked scenario.  Like
// single_packet the specification is fault-aware (exactly-once
// among the surviving copies), plus per-source monotonic delivery
// on an in-order substrate: fan-in may interleave sources freely,
// but no fabric may reorder any one of them.
// ----------------------------------------------------------------
class IncastScenario : public ScenarioHarness
{
  public:
    explicit IncastScenario(const ScenarioConfig &cfg)
        : ScenarioHarness(cfg)
    {
        for (NodeId id = 0; id < stack_->machine().nodeCount(); ++id)
            handler_ = stack_->cmam(id).registerHandler(
                [this](NodeId src, const std::vector<Word> &args) {
                    delivered_.emplace_back(
                        src, args.empty() ? 0 : args[0]);
                });
        controller_->setDecisionHook(
            [this](const Choice &c, const Packet &pkt) {
                if (pkt.tag != HwTag::UserAm || pkt.data.empty())
                    return;
                if (c.kind == ChoiceKind::Drop ||
                    c.kind == ChoiceKind::Corrupt)
                    --expected_[pkt.data[0]];
                else if (c.kind == ChoiceKind::Duplicate)
                    ++expected_[pkt.data[0]];
            });
    }

    void
    start() override
    {
        const std::uint32_t n = stack_->machine().nodeCount();
        for (std::uint32_t i = 0; i < cfg_.packets; ++i) {
            for (NodeId src = 1; src < n; ++src) {
                const Word value =
                    (static_cast<Word>(src) << 16) | i;
                expected_[value] = 1;
                Node &nd = stack_->node(src);
                FeatureScope fs(nd.acct(), Feature::BaseCost);
                stack_->cmam(src).am4(0, handler_, {value, i, 0, 0});
            }
        }
    }

    bool
    done() const override
    {
        std::uint64_t want = 0;
        for (const auto &[value, count] : expected_)
            if (count > 0)
                want += static_cast<std::uint64_t>(count);
        return delivered_.size() == want;
    }

    std::string
    protocolInvariant() const override
    {
        std::map<Word, int> seen;
        for (const auto &[src, v] : delivered_)
            ++seen[v];
        for (const auto &[value, count] : seen) {
            auto it = expected_.find(value);
            const int want = it == expected_.end()
                                 ? 0
                                 : std::max(0, it->second);
            if (count > want) {
                std::ostringstream os;
                os << "value " << std::hex << value << std::dec
                   << " delivered " << count << "x, expected "
                   << want;
                return os.str();
            }
        }
        if (stack_->network().features().inOrderDelivery) {
            std::map<NodeId, Word> last;
            for (const auto &[src, v] : delivered_) {
                auto it = last.find(src);
                if (it != last.end() && v < it->second) {
                    std::ostringstream os;
                    os << "in-order substrate reordered source "
                       << src << "'s fan-in stream";
                    return os.str();
                }
                last[src] = std::max(
                    it == last.end() ? v : it->second, v);
            }
        }
        return "";
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = protocolInvariant();
        if (!step.empty())
            return step;
        if (!done()) {
            std::ostringstream os;
            os << "only " << delivered_.size()
               << " of the surviving fan-in messages were delivered";
            return os.str();
        }
        return "";
    }

  private:
    int handler_ = 0;
    /// (source, value) in delivery order at the sink.
    std::vector<std::pair<NodeId, Word>> delivered_;
    std::map<Word, int> expected_; ///< per-value surviving copies
};

// ----------------------------------------------------------------
// Protocol 2: the finite-sequence transfer, with explicit restart
// recovery as the kick.
// ----------------------------------------------------------------
class FiniteXferScenario : public ScenarioHarness
{
  public:
    explicit FiniteXferScenario(const ScenarioConfig &cfg)
        : ScenarioHarness(cfg)
    {
        xfer_ = std::make_unique<FiniteXfer>(*stack_);
    }

    void
    start() override
    {
        FiniteXferParams p;
        p.src = 0;
        p.dst = 1;
        p.words = cfg_.packets * static_cast<std::uint32_t>(
                                     stack_->dataWords());
        tid_ = xfer_->beginTransfer(p);
    }

    bool
    kick() override
    {
        return xfer_->restartTransfer(tid_, maxRestarts_);
    }

    bool done() const override { return xfer_->transferComplete(tid_); }

    std::string
    protocolInvariant() const override
    {
        if (xfer_->activeDstSegments() > 1)
            return "more than one destination segment live for a "
                   "single transfer";
        return "";
    }

    std::string
    protocolFinal() const override
    {
        if (!xfer_->transferComplete(tid_))
            return "transfer never completed";
        if (!xfer_->transferDataOk(tid_))
            return "transfer completed with corrupt destination data";
        if (xfer_->activeDstSegments() != 0)
            return "destination segment leaked after completion";
        return "";
    }

  private:
    static constexpr int maxRestarts_ = 8;
    std::unique_ptr<FiniteXfer> xfer_;
    Word tid_ = 0;
};

// ----------------------------------------------------------------
// Protocol 3: the indefinite-sequence stream on a persistent
// channel.  Exactly-once in-order delivery must hold under drops,
// corruption, AND duplication; the kick is the timeout model
// (flush partial group acks, retransmit unacked).
// ----------------------------------------------------------------
class StreamScenario : public ScenarioHarness
{
  public:
    explicit StreamScenario(const ScenarioConfig &cfg)
        : ScenarioHarness(cfg)
    {
        proto_ = std::make_unique<StreamProtocol>(*stack_);
        proto_->setBugAckBeforeInsert(cfg.bugAckBeforeInsert);
        chan_ = proto_->openPersistent(
            0, 1, cfg.groupAck, /*ringPackets=*/cfg.packets,
            [this](std::uint32_t seq, const std::vector<Word> &w) {
                deliveredSeqs_.push_back(seq);
                deliveredFirstWords_.push_back(w.empty() ? 0 : w[0]);
            });
    }

    void
    start() override
    {
        const int n = stack_->dataWords();
        std::vector<Word> words;
        words.reserve(cfg_.packets * static_cast<std::uint32_t>(n));
        for (std::uint32_t i = 0; i < cfg_.packets; ++i)
            for (int j = 0; j < n; ++j)
                words.push_back(value(i, j));
        // The ring has as many slots as packets, so this never
        // blocks on the (gated, schedule-driven) progress loop.
        proto_->sendOn(chan_, words);
    }

    bool
    kick() override
    {
        const auto acksBefore = proto_->totals().acksSent;
        proto_->flushGroupAcks(chan_);
        bool acted = proto_->totals().acksSent != acksBefore;
        if (proto_->channelUnacked(chan_) > 0) {
            proto_->retransmitUnacked(chan_);
            acted = true;
        }
        return acted;
    }

    bool
    done() const override
    {
        return proto_->channelDelivered(chan_) == cfg_.packets &&
               proto_->channelUnacked(chan_) == 0;
    }

    std::string
    protocolInvariant() const override
    {
        if (proto_->channelDelivered(chan_) > cfg_.packets)
            return "more packets delivered than were sent";
        for (std::size_t i = 0; i < deliveredSeqs_.size(); ++i) {
            if (deliveredSeqs_[i] != i)
                return "delivery sequence broke in-order "
                       "exactly-once contract";
            if (deliveredFirstWords_[i] !=
                value(static_cast<std::uint32_t>(i), 0))
                return "delivered payload does not match what was "
                       "sent";
        }
        if (proto_->channelPending(chan_) >
            proto_->channelArenaSlots(chan_))
            return "reorder buffer exceeded its arena";
        if (proto_->channelUnacked(chan_) >
            proto_->channelRetxSlots(chan_))
            return "retransmission ring exceeded its capacity";
        return "";
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = protocolInvariant();
        if (!step.empty())
            return step;
        if (proto_->channelDelivered(chan_) != cfg_.packets) {
            std::ostringstream os;
            os << "stream delivered "
               << proto_->channelDelivered(chan_) << " of "
               << cfg_.packets << " packets";
            return os.str();
        }
        if (proto_->channelUnacked(chan_) != 0)
            return "sender retains unacknowledged packets at "
                   "quiescence";
        if (proto_->channelPending(chan_) != 0)
            return "reorder buffer not empty at quiescence";
        return "";
    }

  protected:
    static Word
    value(std::uint32_t pkt, int word)
    {
        return 0xab000000u + pkt * 64u +
               static_cast<std::uint32_t>(word);
    }

    std::unique_ptr<StreamProtocol> proto_;
    Word chan_ = 0;
    std::vector<std::uint32_t> deliveredSeqs_;
    std::vector<Word> deliveredFirstWords_;
};

// ----------------------------------------------------------------
// Protocol 4: the socket API over the stream engine, including the
// explicit close()/drain() teardown once the schedule completes.
// ----------------------------------------------------------------
class SocketScenario : public ScenarioHarness
{
  public:
    explicit SocketScenario(const ScenarioConfig &cfg)
        : ScenarioHarness(cfg)
    {
        proto_ = std::make_unique<StreamProtocol>(*stack_);
        proto_->setBugAckBeforeInsert(cfg.bugAckBeforeInsert);
        StreamSocket::Options opts;
        opts.groupAck = cfg.groupAck;
        opts.ringPackets = cfg.packets;
        socket_ = std::make_unique<StreamSocket>(
            *proto_, 0, 1,
            [this](const std::vector<Word> &w) {
                deliveredFirstWords_.push_back(w.empty() ? 0 : w[0]);
            },
            opts);
    }

    void
    start() override
    {
        const int n = stack_->dataWords();
        std::vector<Word> words;
        words.reserve(cfg_.packets * static_cast<std::uint32_t>(n));
        for (std::uint32_t i = 0; i < cfg_.packets; ++i)
            for (int j = 0; j < n; ++j)
                words.push_back(value(i, j));
        socket_->write(words);
    }

    bool
    kick() override
    {
        if (!socket_->isOpen())
            return false;
        const auto acksBefore = proto_->totals().acksSent;
        proto_->flushGroupAcks(socket_->channel());
        bool acted = proto_->totals().acksSent != acksBefore;
        if (socket_->unacked() > 0) {
            proto_->retransmitUnacked(socket_->channel());
            acted = true;
        }
        return acted;
    }

    bool
    done() const override
    {
        return deliveredFirstWords_.size() == cfg_.packets &&
               socket_->unacked() == 0;
    }

    void
    finish() override
    {
        // Everything is delivered and acked; teardown must be clean
        // and instantaneous.
        socket_->close();
    }

    std::string
    protocolInvariant() const override
    {
        if (deliveredFirstWords_.size() > cfg_.packets)
            return "more packets delivered than were written";
        for (std::size_t i = 0; i < deliveredFirstWords_.size(); ++i)
            if (deliveredFirstWords_[i] !=
                value(static_cast<std::uint32_t>(i), 0))
                return "socket delivered data out of order or "
                       "corrupted";
        return "";
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = protocolInvariant();
        if (!step.empty())
            return step;
        if (deliveredFirstWords_.size() != cfg_.packets) {
            std::ostringstream os;
            os << "socket delivered " << deliveredFirstWords_.size()
               << " of " << cfg_.packets << " packets";
            return os.str();
        }
        if (socket_->isOpen())
            return "socket still open after teardown";
        return "";
    }

  private:
    static Word
    value(std::uint32_t pkt, int word)
    {
        return 0xcd000000u + pkt * 64u +
               static_cast<std::uint32_t>(word);
    }

    std::unique_ptr<StreamProtocol> proto_;
    std::unique_ptr<StreamSocket> socket_;
    std::vector<Word> deliveredFirstWords_;
};

// ----------------------------------------------------------------
// Protocols 5-7: the wire layer's StreamMux — framed multi-stream
// transport with per-stream sliding-window flow control, riding a
// reliable channel pair.  Shared base: the mux, the per-stream
// delivery journal, and the wire safety contract (in-order
// exactly-once per stream, intact payloads, window bound, and no
// delivery on a reset stream).
// ----------------------------------------------------------------
class WireScenarioBase : public ScenarioHarness
{
  protected:
    explicit WireScenarioBase(const ScenarioConfig &cfg)
        : ScenarioHarness(cfg)
    {
        proto_ = std::make_unique<StreamProtocol>(*stack_);
        wire::MuxOptions mo;
        mo.groupAck = cfg.groupAck;
        // Under the schedule gate nothing is delivered until the
        // explorer says so, so a full retransmit ring would spin
        // forever inside sendOn.  Size the rings for the whole
        // scenario: every frame ever sent (including the wire-level
        // kick resends) fits without blocking.
        mo.ringPackets = 512;
        mo.window = static_cast<std::uint8_t>(
            cfg.window < 1 ? 1 : cfg.window);
        mo.ackEvery = 1;
        mux_ = std::make_unique<wire::StreamMux>(
            *stack_, *proto_, 0, 1, mo,
            [this](std::uint16_t sid, std::uint32_t seq,
                   const std::vector<Word> &payload) {
                onDeliver(sid, seq, payload);
            });
        mux_->setCorruptEveryN(cfg.wireCorruptEvery);
        mux_->setBugResetDeliver(cfg.bugWireResetDeliver);
    }

    virtual void
    onDeliver(std::uint16_t sid, std::uint32_t seq,
              const std::vector<Word> &payload)
    {
        seqs_[sid].push_back(seq);
        firstWords_[sid].push_back(payload.empty() ? 0 : payload[0]);
    }

    static Word
    value(std::uint16_t sid, std::uint32_t frame, int word)
    {
        return 0xef000000u + (static_cast<Word>(sid) << 16) +
               frame * 8u + static_cast<Word>(word);
    }

    std::vector<Word>
    payloadFor(std::uint16_t sid, std::uint32_t frame) const
    {
        return {value(sid, frame, 0), value(sid, frame, 1)};
    }

    /** The wire layer's core safety contract, checked per step. */
    std::string
    wireSafety() const
    {
        for (const auto &[sid, seqs] : seqs_) {
            const auto &words = firstWords_.at(sid);
            for (std::size_t i = 0; i < seqs.size(); ++i) {
                if (seqs[i] != i) {
                    std::ostringstream os;
                    os << "stream " << sid
                       << " broke in-order exactly-once delivery "
                          "at frame "
                       << i;
                    return os.str();
                }
                if (words[i] !=
                    value(sid, static_cast<std::uint32_t>(i), 0)) {
                    std::ostringstream os;
                    os << "stream " << sid
                       << " delivered a corrupted payload at frame "
                       << i;
                    return os.str();
                }
            }
        }
        for (const std::uint16_t sid : sids_) {
            if (mux_->unacked(sid) >
                static_cast<std::size_t>(cfg_.window)) {
                std::ostringstream os;
                os << "stream " << sid
                   << " exceeded its sliding window: "
                   << mux_->unacked(sid) << " unacked frames";
                return os.str();
            }
        }
        if (mux_->stats().deliveredAfterReset != 0)
            return "data delivered on a reset stream";
        return "";
    }

  public:
    bool kick() override { return mux_->kick(); }

  protected:
    std::unique_ptr<StreamProtocol> proto_;
    std::unique_ptr<wire::StreamMux> mux_;
    std::vector<std::uint16_t> sids_;
    /// Per-stream delivery journal at the receiver.
    std::map<std::uint16_t, std::vector<std::uint32_t>> seqs_;
    std::map<std::uint16_t, std::vector<Word>> firstWords_;
};

// The window-stall/refill race: several streams round-robin more
// frames than the window admits, so sends defer to the backlog and
// only cumulative acks (which the schedule orders freely) pump them
// out.  With --wire-corrupt-every the CRC-reject resend path joins
// the exploration.
class WireWindowScenario : public WireScenarioBase
{
  public:
    explicit WireWindowScenario(const ScenarioConfig &cfg)
        : WireScenarioBase(cfg)
    {
    }

    void
    start() override
    {
        const std::uint32_t n = cfg_.streams < 1 ? 1 : cfg_.streams;
        for (std::uint32_t s = 0; s < n; ++s)
            sids_.push_back(mux_->openStream());
        for (std::uint32_t i = 0; i < cfg_.packets; ++i)
            for (const std::uint16_t sid : sids_)
                mux_->send(sid, payloadFor(sid, i));
        for (const std::uint16_t sid : sids_)
            mux_->closeStream(sid);
    }

    bool
    done() const override
    {
        for (const std::uint16_t sid : sids_) {
            if (mux_->sendState(sid) != wire::SendState::Detached)
                return false;
            if (mux_->deliveredOn(sid) != cfg_.packets)
                return false;
        }
        return mux_->quiescent();
    }

    std::string
    protocolInvariant() const override
    {
        return wireSafety();
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = wireSafety();
        if (!step.empty())
            return step;
        for (const std::uint16_t sid : sids_) {
            if (mux_->deliveredOn(sid) != cfg_.packets) {
                std::ostringstream os;
                os << "stream " << sid << " delivered "
                   << mux_->deliveredOn(sid) << " of "
                   << cfg_.packets << " frames";
                return os.str();
            }
            if (mux_->sendState(sid) != wire::SendState::Detached ||
                mux_->recvState(sid) != wire::RecvState::Detached) {
                std::ostringstream os;
                os << "stream " << sid << " ended "
                   << toString(mux_->sendState(sid)) << "/"
                   << toString(mux_->recvState(sid))
                   << ", expected detached/detached";
                return os.str();
            }
        }
        if (!mux_->quiescent())
            return "wire layer not quiescent at end of schedule";
        return "";
    }
};

// The reset-vs-inflight-data race: the receiver aborts the stream
// from inside the first delivery, with the rest of the window still
// in the network.  The contract says every later DATA frame is
// discarded; the seeded bug (--bug-wire-reset) keeps delivering and
// the checker must catch it.
class WireResetScenario : public WireScenarioBase
{
  public:
    explicit WireResetScenario(const ScenarioConfig &cfg)
        : WireScenarioBase(cfg)
    {
    }

    void
    start() override
    {
        sid_ = mux_->openStream();
        sids_.push_back(sid_);
        for (std::uint32_t i = 0; i < cfg_.packets; ++i)
            mux_->send(sid_, payloadFor(sid_, i));
        // No close: the receiver aborts mid-stream instead.
    }

    bool
    done() const override
    {
        return resetIssued_ &&
               mux_->sendState(sid_) == wire::SendState::Reset &&
               mux_->quiescent();
    }

    std::string
    protocolInvariant() const override
    {
        return wireSafety();
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = wireSafety();
        if (!step.empty())
            return step;
        if (mux_->deliveredOn(sid_) != 1) {
            std::ostringstream os;
            os << "reset stream delivered "
               << mux_->deliveredOn(sid_)
               << " frames, expected exactly the pre-reset one";
            return os.str();
        }
        if (mux_->recvState(sid_) != wire::RecvState::Reset)
            return "receiver side not in reset state at end";
        if (!mux_->quiescent())
            return "wire layer not quiescent after reset settled";
        return "";
    }

  protected:
    void
    onDeliver(std::uint16_t sid, std::uint32_t seq,
              const std::vector<Word> &payload) override
    {
        WireScenarioBase::onDeliver(sid, seq, payload);
        if (!resetIssued_) {
            resetIssued_ = true;
            mux_->resetStream(sid);
        }
    }

  private:
    std::uint16_t sid_ = 0;
    bool resetIssued_ = false;
};

// The attach-while-detaching race: stream A is closed with frames
// still unacked (DETACH deferred in state Closing), then stream B
// attaches and pushes data through the same channel while A is
// still tearing down.  Per-stream in-order exactly-once must hold
// for both, and both must end fully detached.
class WireAttachScenario : public WireScenarioBase
{
  public:
    explicit WireAttachScenario(const ScenarioConfig &cfg)
        : WireScenarioBase(cfg)
    {
    }

    void
    start() override
    {
        const std::uint16_t a = mux_->openStream();
        sids_.push_back(a);
        for (std::uint32_t i = 0; i < cfg_.packets; ++i)
            mux_->send(a, payloadFor(a, i));
        mux_->closeStream(a); // Closing: frames still unacked
        const std::uint16_t b = mux_->openStream();
        sids_.push_back(b);
        for (std::uint32_t i = 0; i < cfg_.packets; ++i)
            mux_->send(b, payloadFor(b, i));
        mux_->closeStream(b);
    }

    bool
    done() const override
    {
        for (const std::uint16_t sid : sids_) {
            if (mux_->sendState(sid) != wire::SendState::Detached)
                return false;
            if (mux_->deliveredOn(sid) != cfg_.packets)
                return false;
        }
        return mux_->quiescent();
    }

    std::string
    protocolInvariant() const override
    {
        return wireSafety();
    }

    std::string
    protocolFinal() const override
    {
        const std::string step = wireSafety();
        if (!step.empty())
            return step;
        for (const std::uint16_t sid : sids_) {
            if (mux_->deliveredOn(sid) != cfg_.packets ||
                mux_->sendState(sid) != wire::SendState::Detached ||
                mux_->recvState(sid) != wire::RecvState::Detached) {
                std::ostringstream os;
                os << "stream " << sid << " ended "
                   << toString(mux_->sendState(sid)) << "/"
                   << toString(mux_->recvState(sid)) << " with "
                   << mux_->deliveredOn(sid) << " of "
                   << cfg_.packets << " frames";
                return os.str();
            }
        }
        if (!mux_->quiescent())
            return "wire layer not quiescent at end of schedule";
        return "";
    }
};

} // namespace

std::unique_ptr<ScenarioHarness>
ScenarioHarness::make(const ScenarioConfig &cfg)
{
    if (cfg.protocol == "single_packet")
        return std::make_unique<SinglePacketScenario>(cfg);
    if (cfg.protocol == "incast")
        return std::make_unique<IncastScenario>(cfg);
    if (cfg.protocol == "finite_xfer")
        return std::make_unique<FiniteXferScenario>(cfg);
    if (cfg.protocol == "stream")
        return std::make_unique<StreamScenario>(cfg);
    if (cfg.protocol == "socket")
        return std::make_unique<SocketScenario>(cfg);
    if (cfg.protocol == "wire_window")
        return std::make_unique<WireWindowScenario>(cfg);
    if (cfg.protocol == "wire_reset")
        return std::make_unique<WireResetScenario>(cfg);
    if (cfg.protocol == "wire_attach")
        return std::make_unique<WireAttachScenario>(cfg);
    msgsim_fatal("unknown checker protocol '", cfg.protocol,
                 "' (single_packet | incast | finite_xfer | stream | "
                 "socket | wire_window | wire_reset | wire_attach)");
    return nullptr;
}

} // namespace msgsim::check

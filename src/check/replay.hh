/**
 * @file
 * Counterexample and report serialization.
 *
 * A counterexample file is a complete, self-contained reproduction
 * recipe: the scenario (protocol, substrate, sizes, fault budget,
 * bug knobs) plus the minimized choice sequence and the invariant it
 * violates.  `msgsim-check --replay=<file>` re-executes it and exits
 * 0 exactly when the recorded violation reproduces — which is how
 * committed counterexamples serve as regression tests.
 */

#ifndef MSGSIM_CHECK_REPLAY_HH
#define MSGSIM_CHECK_REPLAY_HH

#include <string>
#include <vector>

#include "check/schedule.hh"
#include "core/json.hh"

namespace msgsim::check
{

/** A parsed (or to-be-written) counterexample file. */
struct Counterexample
{
    ScenarioConfig scenario;
    std::string invariant; ///< violated invariant's name
    std::string detail;    ///< human-readable description
    std::vector<Choice> schedule;
};

/** Serialize a counterexample (pretty, deterministic). */
std::string counterexampleToJson(const Counterexample &ce);

/**
 * Parse a counterexample file's text.  Returns false and fills
 * @p error on malformed input.
 */
bool counterexampleFromJson(const std::string &text,
                            Counterexample &out, std::string &error);

/** The whole exploration report as deterministic JSON. */
std::string reportToJson(const CheckReport &rep);

/** The schedule array (shared by report and counterexample). */
Json scheduleToJson(const std::vector<Choice> &schedule);

} // namespace msgsim::check

#endif // MSGSIM_CHECK_REPLAY_HH

/**
 * @file
 * Scenario harnesses: one closed protocol world per run.
 *
 * A harness owns a fresh Stack with a ScheduleController gating its
 * network, issues a fixed workload, and exposes the probes the
 * invariant suite and the explorer need: progress (poll everything
 * to fixpoint), kick (explicit timeout-style recovery when the
 * schedule starved the protocol), done, and the protocol-specific
 * safety/final checks.
 *
 * Everything is deterministic: no timers are armed, no RNG draws
 * happen during execution, so a schedule (choice sequence) fully
 * determines the run — the property exploration and replay rest on.
 */

#ifndef MSGSIM_CHECK_HARNESS_HH
#define MSGSIM_CHECK_HARNESS_HH

#include <memory>
#include <string>

#include "check/controller.hh"
#include "check/schedule.hh"

namespace msgsim::check
{

class ScenarioHarness
{
  public:
    virtual ~ScenarioHarness() = default;

    /** Build the harness for @p cfg; fatal on unknown protocol. */
    static std::unique_ptr<ScenarioHarness>
    make(const ScenarioConfig &cfg);

    ScheduleController &controller() { return *controller_; }
    const ScheduleController &controller() const
    {
        return *controller_;
    }
    Stack &stack() { return *stack_; }
    const ScenarioConfig &config() const { return cfg_; }

    /** Issue the scenario's sends (non-blocking under the gate). */
    virtual void start() = 0;

    /**
     * Drive every node's poll loop (and the simulator) to fixpoint:
     * all packets already delivered to NIs are handled, and any
     * sends they trigger are captured by the controller.
     */
    void progress();

    /**
     * Explicit timeout-model recovery, invoked by the explorer when
     * the protocol is quiescent but incomplete (e.g. flush partial
     * group acks, retransmit unacked packets, restart a transfer).
     * Returns true when it issued any recovery action.
     */
    virtual bool kick() { return false; }

    /** The workload's completion claim. */
    virtual bool done() const = 0;

    /**
     * Called once by the explorer when the run is done and the
     * network quiescent, before the final checks — the place for
     * teardown that must itself be verified (socket close).
     */
    virtual void finish() {}

    /** Per-step protocol safety check; empty string = holds. */
    virtual std::string protocolInvariant() const { return ""; }

    /** End-state protocol check; empty string = holds. */
    virtual std::string protocolFinal() const = 0;

  protected:
    explicit ScenarioHarness(const ScenarioConfig &cfg);

    ScenarioConfig cfg_;
    std::unique_ptr<Stack> stack_;
    std::unique_ptr<ScheduleController> controller_;
};

} // namespace msgsim::check

#endif // MSGSIM_CHECK_HARNESS_HH

#include "check/explorer.hh"

#include <algorithm>
#include <deque>

#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/trace_session.hh"

namespace msgsim::check
{

ScheduleResult
Explorer::executeOne(const Decider &decide,
                     std::vector<std::size_t> *sizesOut) const
{
    ScheduleResult res;
    // Protocol-layer panics under hostile schedules are findings,
    // not process aborts.
    const bool savedThrow = log_detail::throwOnError;
    log_detail::throwOnError = true;
    try {
        auto h = ScenarioHarness::make(cfg_);
        // Each schedule gets a fresh machine: retarget the attached
        // session's clock so a traced replay (--replay --trace-out)
        // timestamps on the harness simulator.
        if (TraceSession *ts = TraceSession::current())
            ts->bindClock(&h->stack().sim());
        InvariantSuite inv;
        const unsigned kinds = cfg_.effectiveFaultKinds();
        int faultsLeft = cfg_.faults;
        int kicks = 0;

        h->start();
        h->progress();
        for (;;) {
            const auto enabled =
                h->controller().enabled(faultsLeft, kinds);
            if (enabled.empty()) {
                if (h->done()) {
                    h->finish();
                    h->progress();
                    const Violation v = inv.checkFinal(*h);
                    if (!v.holds()) {
                        res.violated = true;
                        res.invariant = v.name;
                        res.detail = v.detail;
                    }
                    break;
                }
                // Quiescent but incomplete: the protocol's explicit
                // timeout recovery is the only way forward.
                if (++kicks > 64) {
                    res.violated = true;
                    res.invariant = "livelock";
                    res.detail = "recovery keeps acting without the "
                                 "run ever completing";
                    break;
                }
                if (!h->kick()) {
                    res.violated = true;
                    res.invariant = "stalled";
                    res.detail =
                        "quiescent but incomplete, and recovery "
                        "has nothing left to resend";
                    break;
                }
                h->progress();
                continue;
            }
            if (res.steps >= lim_.maxSteps) {
                res.violated = true;
                res.invariant = "step-budget";
                res.detail =
                    "schedule exceeded the per-run step bound";
                break;
            }
            if (sizesOut &&
                res.steps < static_cast<std::uint64_t>(lim_.depth))
                sizesOut->push_back(enabled.size());
            const std::size_t idx =
                decide(static_cast<std::size_t>(res.steps),
                       enabled) %
                enabled.size();
            const Choice choice = enabled[idx];
            h->controller().apply(choice);
            if (choice.isFault())
                --faultsLeft;
            res.schedule.push_back(choice);
            ++res.steps;
            h->progress();
            const Violation v = inv.checkStep(*h);
            if (!v.holds()) {
                res.violated = true;
                res.invariant = v.name;
                res.detail = v.detail;
                break;
            }
        }
    } catch (const log_detail::SimError &err) {
        res.violated = true;
        res.invariant = err.isPanic ? "panic" : "fatal";
        res.detail = err.message;
    }
    // The harness (and its simulator) is gone: drop the clock.
    if (TraceSession *ts = TraceSession::current())
        ts->bindClock(nullptr);
    log_detail::throwOnError = savedThrow;
    return res;
}

CheckReport
Explorer::run()
{
    CheckReport rep;
    rep.scenario = cfg_;
    rep.limits = lim_;

    auto account = [&rep](const ScheduleResult &res) {
        ++rep.schedulesRun;
        rep.stepsTotal += res.steps;
        rep.maxChoicePoints =
            std::max(rep.maxChoicePoints, res.steps);
        if (res.violated) {
            ++rep.violations;
            if (rep.counterexample.schedule.empty() &&
                !rep.counterexample.violated)
                rep.counterexample = res;
        }
        return res.violated;
    };

    // ---- Bounded-exhaustive DFS over the first `depth` choice
    // points, odometer-style: each run follows `path`, then the
    // default policy; the recorded enabled-set sizes tell the
    // odometer where the next sibling is.
    std::vector<std::size_t> path;
    for (;;) {
        if (rep.schedulesRun >= lim_.budget)
            break;
        std::vector<std::size_t> sizes;
        const ScheduleResult res = executeOne(
            [&path](std::size_t step,
                    const std::vector<Choice> &) {
                return step < path.size() ? path[step] : 0;
            },
            &sizes);
        ++rep.dfsSchedules;
        if (account(res))
            return rep;

        std::vector<std::size_t> full = path;
        if (full.size() > sizes.size())
            full.resize(sizes.size());
        full.resize(sizes.size(), 0);
        auto i = static_cast<std::ptrdiff_t>(full.size()) - 1;
        while (i >= 0 &&
               full[static_cast<std::size_t>(i)] + 1 >=
                   sizes[static_cast<std::size_t>(i)])
            --i;
        if (i < 0) {
            rep.exhausted = true;
            break;
        }
        ++full[static_cast<std::size_t>(i)];
        full.resize(static_cast<std::size_t>(i) + 1);
        path = std::move(full);
    }

    // ---- Seeded random walks: sample schedules past the DFS
    // horizon (deep interleavings, late faults).
    for (int w = 0; w < lim_.walks; ++w) {
        if (rep.schedulesRun >= lim_.budget)
            break;
        std::uint64_t sm = lim_.seed + 0x9e3779b97f4a7c15ULL *
                                           (static_cast<std::uint64_t>(w) + 1);
        Rng rng(splitMix64(sm));
        const ScheduleResult res = executeOne(
            [&rng](std::size_t, const std::vector<Choice> &en) {
                return static_cast<std::size_t>(
                    rng.below(en.size()));
            },
            nullptr);
        ++rep.walkSchedules;
        if (account(res))
            return rep;
    }
    return rep;
}

ScheduleResult
Explorer::replay(const std::vector<Choice> &schedule) const
{
    std::deque<Choice> pending(schedule.begin(), schedule.end());
    return executeOne(
        [&pending](std::size_t, const std::vector<Choice> &en)
            -> std::size_t {
            while (!pending.empty()) {
                const Choice c = pending.front();
                pending.pop_front();
                const auto it =
                    std::find(en.begin(), en.end(), c);
                if (it != en.end())
                    return static_cast<std::size_t>(
                        it - en.begin());
                // Stale entry (its packet no longer exists in this
                // shrunken execution): skip it.
            }
            return 0; // recording exhausted: default policy
        },
        nullptr);
}

} // namespace msgsim::check

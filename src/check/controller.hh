/**
 * @file
 * The delivery-schedule controller: a ScheduleGate that holds every
 * injected packet in a visible in-flight set and executes explicit
 * Choice decisions against it.
 *
 * Substrate semantics are respected through NetFeatures:
 *  - an in-order substrate (CR) only exposes each flow's *oldest*
 *    packet for delivery — younger packets are not schedulable until
 *    the flow head goes;
 *  - a reliable substrate (CR) exposes no fault choices at all
 *    (hardware retransmission absorbs them; see CrNetwork).
 */

#ifndef MSGSIM_CHECK_CONTROLLER_HH
#define MSGSIM_CHECK_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "check/schedule.hh"
#include "net/network.hh"

namespace msgsim::check
{

/** One captured packet awaiting a scheduling decision. */
struct InFlight
{
    std::uint64_t id = 0; ///< controller-assigned, capture order
    Packet pkt;
};

class ScheduleController : public ScheduleGate
{
  public:
    /** Called just before a choice executes, with the packet. */
    using DecisionHook =
        std::function<void(const Choice &, const Packet &)>;

    /** Attaches itself to @p net; detaches on destruction. */
    explicit ScheduleController(Network &net);
    ~ScheduleController() override;

    void capture(Packet &&pkt) override;

    /**
     * The schedulable decisions right now, in canonical order: for
     * each eligible packet by ascending id, Deliver first, then the
     * fault kinds admitted by @p faultsLeft and @p kindMask.
     */
    std::vector<Choice> enabled(int faultsLeft,
                                unsigned kindMask) const;

    /**
     * Execute one decision.  Returns false when the named packet is
     * no longer in flight (stale choice during replay).
     */
    bool apply(const Choice &choice);

    void setDecisionHook(DecisionHook fn) { hook_ = std::move(fn); }

    std::size_t inFlight() const { return flight_.size(); }
    const std::vector<InFlight> &packets() const { return flight_; }
    std::uint64_t captured() const { return nextId_; }
    Network &network() { return net_; }

  private:
    /** In-order substrates: is this packet its flow's oldest? */
    bool flowHead(const InFlight &f) const;

    Network &net_;
    NetFeatures features_;
    std::vector<InFlight> flight_;
    std::uint64_t nextId_ = 0;
    DecisionHook hook_;
};

} // namespace msgsim::check

#endif // MSGSIM_CHECK_CONTROLLER_HH

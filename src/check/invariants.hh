/**
 * @file
 * The invariant suite: what must hold along every schedule.
 *
 * Structural invariants are protocol-independent and read the same
 * counters normal runs publish (NetStats), so a violation here means
 * either a checker bug or a genuine accounting leak:
 *
 *  - packet conservation: injected + duplicated ==
 *    delivered + dropped + in-flight;
 *  - post-progress drain: after the harness polls to fixpoint, no
 *    NI may still hold undispatched packets.
 *
 * Protocol invariants (exactly-once in-order delivery, bounded
 * reorder/retransmission buffers, segment hygiene, clean teardown)
 * live in the scenario harnesses; the suite just sequences them.
 */

#ifndef MSGSIM_CHECK_INVARIANTS_HH
#define MSGSIM_CHECK_INVARIANTS_HH

#include <string>

#include "check/harness.hh"

namespace msgsim::check
{

/** One detected violation; empty name = everything holds. */
struct Violation
{
    std::string name;   ///< machine-readable invariant id
    std::string detail; ///< human-readable specifics

    bool holds() const { return name.empty(); }
};

class InvariantSuite
{
  public:
    /** Checks run after every scheduling step (safety). */
    Violation checkStep(ScenarioHarness &h) const;

    /**
     * Checks run once the schedule is complete: quiescence (nothing
     * in flight, nothing pending) plus the harness's end-state
     * contract.
     */
    Violation checkFinal(ScenarioHarness &h) const;

  private:
    Violation structural(ScenarioHarness &h) const;
};

} // namespace msgsim::check

#endif // MSGSIM_CHECK_INVARIANTS_HH

/**
 * @file
 * Schedule-space exploration by stateless re-execution.
 *
 * Every explored schedule runs in a *fresh* harness (stack, gate,
 * protocol state): the checker never snapshots simulator state, it
 * replays decision prefixes.  A schedule is identified by the
 * indices it picks out of each step's enabled set; the DFS
 * enumerates those index vectors odometer-style up to a branching
 * depth, with index 0 ("deliver the oldest eligible packet") as the
 * default policy past the branching horizon.  Seeded random walks
 * sample deeper schedules the bounded DFS cannot reach.
 *
 * Determinism: execution involves no wall-clock, no global RNG, and
 * no threads, so the same (scenario, limits) always produce the
 * byte-identical report — the lab's golden gate relies on this.
 */

#ifndef MSGSIM_CHECK_EXPLORER_HH
#define MSGSIM_CHECK_EXPLORER_HH

#include <functional>
#include <vector>

#include "check/invariants.hh"
#include "check/schedule.hh"

namespace msgsim::check
{

class Explorer
{
  public:
    Explorer(const ScenarioConfig &cfg, const ExploreLimits &lim)
        : cfg_(cfg), lim_(lim)
    {
    }

    /** Bounded-exhaustive DFS, then random walks; stops at the
     *  first violation (its counterexample is in the report). */
    CheckReport run();

    /**
     * Re-execute a recorded schedule, tolerantly: recorded choices
     * that are not currently enabled are skipped, and once the
     * recording is exhausted the default policy finishes the run.
     * The tolerance is what makes delta-debugged sub-schedules
     * executable.
     */
    ScheduleResult replay(const std::vector<Choice> &schedule) const;

  private:
    /** Picks the index of the next choice from the enabled set. */
    using Decider = std::function<std::size_t(
        std::size_t step, const std::vector<Choice> &enabled)>;

    /**
     * Run one schedule to termination under @p decide.  When
     * @p sizesOut is given, records the enabled-set size at each of
     * the first `depth` choice points (the DFS branching record).
     */
    ScheduleResult executeOne(const Decider &decide,
                              std::vector<std::size_t> *sizesOut) const;

    ScenarioConfig cfg_;
    ExploreLimits lim_;
};

} // namespace msgsim::check

#endif // MSGSIM_CHECK_EXPLORER_HH

/**
 * @file
 * Core vocabulary of the schedule-space model checker.
 *
 * The checker replaces every source of nondeterminism in a protocol
 * run — delivery order, latency, and faults — with an explicit
 * sequence of *choices*: at each step, which in-flight packet is
 * delivered, dropped, corrupted-in-flight, or duplicated.  A whole
 * run is then a finite choice sequence (a *schedule*), and the
 * checker's job is to enumerate schedules and test protocol
 * invariants along each one.
 */

#ifndef MSGSIM_CHECK_SCHEDULE_HH
#define MSGSIM_CHECK_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "protocols/stack.hh"

namespace msgsim::check
{

/** What the scheduler does to one in-flight packet. */
enum class ChoiceKind : std::uint8_t
{
    Deliver,   ///< hand the packet to its destination NI
    Drop,      ///< lose it silently (fault)
    Corrupt,   ///< flip a bit, then deliver (the NI's CRC discards)
    Duplicate, ///< clone it; both copies stay schedulable
};

/** Printable name of a choice kind. */
const char *toString(ChoiceKind k);

/** Parse "deliver"/"drop"/"corrupt"/"duplicate"; false on junk. */
bool choiceKindFromString(const std::string &s, ChoiceKind &out);

/** Fault-kind selection bitmask (ScenarioConfig::faultKinds). */
enum : unsigned
{
    kFaultDrop = 1u << 0,
    kFaultCorrupt = 1u << 1,
    kFaultDuplicate = 1u << 2,
};

/**
 * One scheduling decision.  Packet ids are assigned by the
 * controller in capture order; execution is deterministic given the
 * choice sequence, so ids are stable across re-execution — which is
 * what makes recorded schedules replayable.
 */
struct Choice
{
    ChoiceKind kind = ChoiceKind::Deliver;
    std::uint64_t packetId = 0;

    bool
    operator==(const Choice &o) const
    {
        return kind == o.kind && packetId == o.packetId;
    }

    bool isFault() const { return kind != ChoiceKind::Deliver; }
};

/** The closed little world one schedule runs in. */
struct ScenarioConfig
{
    std::string protocol = "stream"; ///< single_packet | finite_xfer
                                     ///< | stream | socket | wire_*
    Substrate substrate = Substrate::Cm5;
    std::uint32_t nodes = 2;
    std::uint32_t packets = 3; ///< messages / data packets to send
    int groupAck = 1;          ///< stream/socket: ack every G packets
    int faults = 1;            ///< fault decisions allowed per schedule
    /// Which fault kinds the scheduler may pick (kFault* mask).
    /// 0 = the protocol's default set: protocols with duplicate
    /// suppression get all three, the others drop + corrupt.
    unsigned faultKinds = 0;
    /// Deliberately re-introduce the ack-before-insert stream bug
    /// (StreamProtocol::setBugAckBeforeInsert) so the checker has
    /// something to catch.
    bool bugAckBeforeInsert = false;
    /// wire_window: logical streams multiplexed over the channel.
    std::uint32_t streams = 2;
    /// wire_*: per-stream sliding window (max unacked DATA frames).
    int window = 2;
    /// wire_*: flip the CRC of every Nth first-transmission DATA
    /// frame (0 = off) — drives the wire CRC-reject/resend path
    /// under the schedule explorer.
    std::uint32_t wireCorruptEvery = 0;
    /// Seeded wire bug (StreamMux::setBugResetDeliver): the receiver
    /// keeps delivering in-flight DATA on a stream it already reset.
    bool bugWireResetDeliver = false;

    /** The effective fault-kind mask (resolves the 0 default). */
    unsigned effectiveFaultKinds() const;
};

/** Exploration budgets. */
struct ExploreLimits
{
    int depth = 12;               ///< branching choice points (DFS)
    std::uint64_t budget = 20000; ///< max schedules executed
    std::uint64_t maxSteps = 800; ///< per-schedule step bound
    int walks = 0;                ///< seeded random walks
    std::uint64_t seed = 1;       ///< walk seed
};

/** What happened along one executed schedule. */
struct ScheduleResult
{
    bool violated = false;
    std::string invariant; ///< short machine-readable violation name
    std::string detail;    ///< human-readable specifics
    std::vector<Choice> schedule; ///< every decision actually taken
    std::uint64_t steps = 0;      ///< choice points executed
};

/** Aggregate outcome of one exploration. */
struct CheckReport
{
    ScenarioConfig scenario;
    ExploreLimits limits;
    std::uint64_t schedulesRun = 0;
    std::uint64_t dfsSchedules = 0;
    std::uint64_t walkSchedules = 0;
    std::uint64_t stepsTotal = 0;
    std::uint64_t maxChoicePoints = 0; ///< longest schedule seen
    bool exhausted = false; ///< DFS enumerated the whole tree
    std::uint64_t violations = 0;
    ScheduleResult counterexample; ///< first violation (when any)
};

} // namespace msgsim::check

#endif // MSGSIM_CHECK_SCHEDULE_HH

#include "check/shrink.hh"

#include <algorithm>

namespace msgsim::check
{

ShrinkResult
Shrinker::shrink(const ScheduleResult &failing) const
{
    ShrinkResult out;
    out.schedule = failing.schedule;
    out.result = failing;

    const std::string &want = failing.invariant;
    auto stillFails = [&](const std::vector<Choice> &cand,
                          ScheduleResult &resOut) {
        resOut = explorer_.replay(cand);
        return resOut.violated && resOut.invariant == want;
    };

    // Classic ddmin: try dropping ever-smaller chunks until no
    // single removable element remains.
    std::size_t granularity = 2;
    while (out.schedule.size() >= 2 && out.attempts < budget_) {
        const std::size_t n =
            std::min(granularity, out.schedule.size());
        const std::size_t chunk =
            (out.schedule.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0;
             start < out.schedule.size() && out.attempts < budget_;
             start += chunk) {
            std::vector<Choice> cand;
            cand.reserve(out.schedule.size());
            for (std::size_t i = 0; i < out.schedule.size(); ++i)
                if (i < start || i >= start + chunk)
                    cand.push_back(out.schedule[i]);
            if (cand.empty())
                continue;
            ++out.attempts;
            ScheduleResult res;
            if (stillFails(cand, res)) {
                out.schedule = std::move(cand);
                out.result = std::move(res);
                reduced = true;
                break;
            }
        }
        if (reduced) {
            granularity = 2;
            continue;
        }
        if (n >= out.schedule.size())
            break; // single-element granularity, nothing removable
        granularity = std::min(granularity * 2, out.schedule.size());
    }

    // Even a single forced choice might be noise (the violation may
    // reproduce under the pure default policy).
    if (out.schedule.size() == 1 && out.attempts < budget_) {
        ++out.attempts;
        ScheduleResult res;
        if (stillFails({}, res)) {
            out.schedule.clear();
            out.result = std::move(res);
        }
    }
    return out;
}

} // namespace msgsim::check

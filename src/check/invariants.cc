#include "check/invariants.hh"

#include <sstream>

namespace msgsim::check
{

Violation
InvariantSuite::structural(ScenarioHarness &h) const
{
    const NetStats &st = h.stack().network().stats();
    const std::uint64_t inFlight = h.controller().inFlight();
    if (st.injected + st.duplicated !=
        st.delivered + st.dropped + inFlight) {
        std::ostringstream os;
        os << "injected " << st.injected << " + duplicated "
           << st.duplicated << " != delivered " << st.delivered
           << " + dropped " << st.dropped << " + in-flight "
           << inFlight;
        return {"packet-conservation", os.str()};
    }
    for (NodeId id = 0; id < h.stack().machine().nodeCount(); ++id) {
        if (h.stack().node(id).ni().hwRecvPending()) {
            std::ostringstream os;
            os << "node " << id
               << " still holds undispatched packets after "
                  "progress";
            return {"post-progress-drain", os.str()};
        }
    }
    return {};
}

Violation
InvariantSuite::checkStep(ScenarioHarness &h) const
{
    Violation v = structural(h);
    if (!v.holds())
        return v;
    const std::string p = h.protocolInvariant();
    if (!p.empty())
        return {"protocol-safety", p};
    return {};
}

Violation
InvariantSuite::checkFinal(ScenarioHarness &h) const
{
    Violation v = structural(h);
    if (!v.holds())
        return v;
    if (h.controller().inFlight() != 0) {
        std::ostringstream os;
        os << h.controller().inFlight()
           << " packets still in flight at end of schedule";
        return {"quiescence", os.str()};
    }
    const std::string p = h.protocolFinal();
    if (!p.empty())
        return {"protocol-final", p};
    return {};
}

} // namespace msgsim::check

#include "check/controller.hh"

#include <algorithm>

#include "sim/log.hh"

namespace msgsim::check
{

const char *
toString(ChoiceKind k)
{
    switch (k) {
      case ChoiceKind::Deliver:   return "deliver";
      case ChoiceKind::Drop:      return "drop";
      case ChoiceKind::Corrupt:   return "corrupt";
      case ChoiceKind::Duplicate: return "duplicate";
      default:                    return "?";
    }
}

bool
choiceKindFromString(const std::string &s, ChoiceKind &out)
{
    if (s == "deliver") { out = ChoiceKind::Deliver; return true; }
    if (s == "drop") { out = ChoiceKind::Drop; return true; }
    if (s == "corrupt") { out = ChoiceKind::Corrupt; return true; }
    if (s == "duplicate") { out = ChoiceKind::Duplicate; return true; }
    return false;
}

unsigned
ScenarioConfig::effectiveFaultKinds() const
{
    if (faultKinds != 0)
        return faultKinds;
    // Protocols with duplicate suppression can absorb ghost copies;
    // the others (single-packet has no sequencing at all, and the
    // finite transfer counts packets, so a ghost double-decrements
    // its completion countdown) are *specified* for drop/corrupt
    // faults only.
    if (protocol == "stream" || protocol == "socket" ||
        protocol.rfind("wire_", 0) == 0)
        return kFaultDrop | kFaultCorrupt | kFaultDuplicate;
    return kFaultDrop | kFaultCorrupt;
}

ScheduleController::ScheduleController(Network &net)
    : net_(net), features_(net.features())
{
    if (net_.scheduleGate() != nullptr)
        msgsim_panic("network already has a schedule gate");
    net_.setScheduleGate(this);
}

ScheduleController::~ScheduleController()
{
    if (net_.scheduleGate() == this)
        net_.setScheduleGate(nullptr);
}

void
ScheduleController::capture(Packet &&pkt)
{
    InFlight f;
    f.id = nextId_++;
    f.pkt = std::move(pkt);
    flight_.push_back(std::move(f));
}

bool
ScheduleController::flowHead(const InFlight &f) const
{
    for (const auto &other : flight_) {
        if (other.id >= f.id)
            continue;
        if (other.pkt.src == f.pkt.src &&
            other.pkt.dst == f.pkt.dst &&
            other.pkt.vnet == f.pkt.vnet)
            return false;
    }
    return true;
}

std::vector<Choice>
ScheduleController::enabled(int faultsLeft, unsigned kindMask) const
{
    std::vector<Choice> out;
    const bool faultable =
        !features_.reliableDelivery && faultsLeft > 0;
    for (const auto &f : flight_) {
        if (features_.inOrderDelivery && !flowHead(f))
            continue;
        out.push_back({ChoiceKind::Deliver, f.id});
        if (!faultable)
            continue;
        if (kindMask & kFaultDrop)
            out.push_back({ChoiceKind::Drop, f.id});
        if (kindMask & kFaultCorrupt)
            out.push_back({ChoiceKind::Corrupt, f.id});
        if (kindMask & kFaultDuplicate)
            out.push_back({ChoiceKind::Duplicate, f.id});
    }
    return out;
}

bool
ScheduleController::apply(const Choice &choice)
{
    auto it = std::find_if(flight_.begin(), flight_.end(),
                           [&](const InFlight &f) {
                               return f.id == choice.packetId;
                           });
    if (it == flight_.end())
        return false;
    if (hook_)
        hook_(choice, it->pkt);

    switch (choice.kind) {
      case ChoiceKind::Deliver: {
        Packet pkt = std::move(it->pkt);
        flight_.erase(it);
        if (!net_.gateDeliver(std::move(pkt)))
            msgsim_panic("schedule gate: sink refused a delivery "
                         "(bounded receive capacity under a gate "
                         "is not modeled)");
        break;
      }
      case ChoiceKind::Drop:
        net_.gateDrop(it->pkt);
        flight_.erase(it);
        break;
      case ChoiceKind::Corrupt: {
        // Corrupt-and-deliver as one action: the packet still
        // traverses the network; the destination NI's CRC check is
        // what actually discards it.
        net_.gateCorrupt(it->pkt);
        Packet pkt = std::move(it->pkt);
        flight_.erase(it);
        if (!net_.gateDeliver(std::move(pkt)))
            msgsim_panic("schedule gate: sink refused a corrupted "
                         "delivery");
        break;
      }
      case ChoiceKind::Duplicate: {
        net_.gateDuplicate(it->pkt);
        InFlight clone;
        clone.id = nextId_++;
        clone.pkt = it->pkt;
        flight_.push_back(std::move(clone));
        break;
      }
    }
    return true;
}

} // namespace msgsim::check

/**
 * @file
 * Counterexample minimization by delta debugging.
 *
 * A violating schedule straight out of the explorer usually mixes
 * load-bearing decisions with noise (deliveries the default policy
 * would have made anyway).  The shrinker ddmin-reduces the choice
 * sequence against the predicate "tolerant replay still violates
 * the same invariant", yielding the small schedules humans can
 * actually read — typically one or two decisive reorderings or
 * faults.
 */

#ifndef MSGSIM_CHECK_SHRINK_HH
#define MSGSIM_CHECK_SHRINK_HH

#include "check/explorer.hh"
#include "check/schedule.hh"

namespace msgsim::check
{

struct ShrinkResult
{
    std::vector<Choice> schedule; ///< minimized forced choices
    ScheduleResult result;        ///< outcome of replaying them
    std::uint64_t attempts = 0;   ///< replays spent shrinking
};

class Shrinker
{
  public:
    explicit Shrinker(const Explorer &explorer,
                      std::uint64_t budget = 2000)
        : explorer_(explorer), budget_(budget)
    {
    }

    /** Minimize @p failing (must be a violated ScheduleResult). */
    ShrinkResult shrink(const ScheduleResult &failing) const;

  private:
    const Explorer &explorer_;
    std::uint64_t budget_;
};

} // namespace msgsim::check

#endif // MSGSIM_CHECK_SHRINK_HH

#include "nicam/nicam_network.hh"

#include "hostprof/hostprof.hh"
#include "net/lineage_hook.hh"
#include "sim/log.hh"

namespace msgsim
{

NicamNetwork::NicamNetwork(Simulator &sim, const Config &cfg)
    : Network(sim), cfg_(cfg), tree_(cfg.nodes, cfg.arity),
      faults_(cfg.faults), rng_(cfg.seed)
{
    if (!cfg_.orderFactory)
        cfg_.orderFactory = fifoOrderFactory();
    if (cfg_.maxOffloadEntries < 1)
        msgsim_fatal("nicam handler table needs at least one entry");
}

bool
NicamNetwork::offloadHandler(NodeId dst, HwTag tag, Word selector,
                             OffloadFn fn)
{
    auto &table = tables_[dst];
    const TableKey key{static_cast<int>(tag), selector};
    if (!table.count(key) &&
        static_cast<int>(table.size()) >= cfg_.maxOffloadEntries)
        return false; // table full: the host must dispatch this one
    table[key] = OffloadEntry{std::move(fn), 0};
    return true;
}

void
NicamNetwork::removeOffload(NodeId dst, HwTag tag, Word selector)
{
    auto it = tables_.find(dst);
    if (it == tables_.end())
        return;
    it->second.erase(TableKey{static_cast<int>(tag), selector});
}

std::uint64_t
NicamNetwork::offloadHits(NodeId dst, HwTag tag, Word selector) const
{
    auto it = tables_.find(dst);
    if (it == tables_.end())
        return 0;
    auto jt =
        it->second.find(TableKey{static_cast<int>(tag), selector});
    return jt == it->second.end() ? 0 : jt->second.hits;
}

int
NicamNetwork::offloadEntries(NodeId dst) const
{
    auto it = tables_.find(dst);
    return it == tables_.end() ? 0
                               : static_cast<int>(it->second.size());
}

OrderPolicy &
NicamNetwork::policyFor(const FlowKey &flow)
{
    auto it = policies_.find(flow);
    if (it == policies_.end())
        it = policies_.emplace(flow, cfg_.orderFactory()).first;
    return *it->second;
}

bool
NicamNetwork::injectImpl(Packet &&pkt)
{
    if (cfg_.injectBusyRate > 0.0 && rng_.chance(cfg_.injectBusyRate))
        return false; // send_ok will read 0; software retries the push

    switch (faults_.apply(pkt)) {
      case FaultAction::Drop:
        ++stats_.dropped;
        noteAbsorbed(pkt.dst);
        trace(TraceEvent::Drop, pkt);
        return true; // accepted by the network, silently lost inside
      case FaultAction::Corrupt:
        ++stats_.corrupted;
        trace(TraceEvent::Corrupt, pkt);
        break; // travels on; CRC is checked at the edge (NIC or NI)
      case FaultAction::Duplicate:
        ++stats_.duplicated;
        trace(TraceEvent::Duplicate, pkt);
        routeToEdge(Packet(pkt));
        break;
      case FaultAction::None:
        break;
    }

    routeToEdge(std::move(pkt));
    return true;
}

void
NicamNetwork::routeToEdge(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::NicamRoute);
    Tick latency = cfg_.baseLatency +
                   cfg_.hopLatency * tree_.hops(pkt.src, pkt.dst);
    if (cfg_.maxJitter > 0)
        latency += rng_.below(cfg_.maxJitter + 1);

    Tick departure = sim_.now();
    if (cfg_.injectGap > 0) {
        auto it = lastDeparture_.find(pkt.src);
        if (it != lastDeparture_.end())
            departure = std::max(departure,
                                 it->second + cfg_.injectGap);
        lastDeparture_[pkt.src] = departure;
    }
    Tick arrival = departure + latency;
    if (cfg_.deliverGap > 0) {
        auto it = lastArrival_.find(pkt.dst);
        if (it != lastArrival_.end())
            arrival = std::max(arrival, it->second + cfg_.deliverGap);
        lastArrival_[pkt.dst] = arrival;
    }

    auto carried = std::make_shared<Packet>(std::move(pkt));
    sim_.scheduleAt(arrival, [this, carried]() mutable {
        arriveAtEdge(std::move(*carried));
    });
}

void
NicamNetwork::arriveAtEdge(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::NicamDeliver);
    auto &policy =
        policyFor({pkt.src, pkt.dst, static_cast<int>(pkt.vnet)});
    std::vector<Packet> release;
    policy.arrive(std::move(pkt), release);
    for (auto &p : release)
        tryDeliver(std::move(p));
}

void
NicamNetwork::tryDeliver(Packet &&pkt)
{
    // Retry closures re-enter here outside arriveAtEdge, so the
    // delivery scope opens here too (same-site nesting is fine).
    hostprof::HostScope hs(hostprof::Site::NicamDeliver);

    // NIC handler-table lookup (hardware match-action; uncharged).
    auto nt = tables_.find(pkt.dst);
    if (nt != tables_.end() && !nt->second.empty()) {
        const TableKey key{static_cast<int>(pkt.tag),
                           hdr::fieldA(pkt.header)};
        auto entry = nt->second.find(key);
        if (entry != nt->second.end()) {
            // NIC CRC check: detection as on the NI, but the discard
            // happens before the handler fires.
            if (!pkt.checksumOk()) {
                ++offloadCrcDrops_;
                noteAbsorbed(pkt.dst);
                return; // consumed and dropped, as the NI would
            }
            ++stats_.delivered;
            noteDelivered(pkt.dst);
            trace(TraceEvent::Deliver, pkt);
            ++offloadHits_;
            ++entry->second.hits;
            LineageHooks *lh = LineageHooks::current();
            if (lh)
                lh->handlerBegin(pkt.dst, pkt, sim_.now());
            entry->second.fn(pkt);
            if (lh)
                lh->handlerEnd(pkt.dst, sim_.now());
            return;
        }
        ++offloadMisses_; // non-empty table, no match: host fallback
    }

    if (presentToSink(std::move(pkt)))
        return;
    // Sink full: the packet occupies network buffers and is offered
    // again later — backpressure.
    ++stats_.deliveryRetries;
    auto carried = std::make_shared<Packet>(std::move(pkt));
    sim_.schedule(cfg_.retryDelay, [this, carried]() mutable {
        tryDeliver(std::move(*carried));
    });
}

void
NicamNetwork::flushHeldPackets()
{
    for (auto &[flow, policy] : policies_) {
        std::vector<Packet> release;
        policy->flush(release);
        for (auto &p : release)
            tryDeliver(std::move(p));
    }
}

} // namespace msgsim

/**
 * @file
 * NIC-offloaded active-message substrate.
 *
 * The fabric is the CM-5's (out of order, finite-buffered,
 * detection-only) — what changes is the *destination edge*: the NIC
 * carries a bounded handler table, and a packet whose (tag, selector)
 * matches an entry is dispatched on the NIC itself (the
 * network-accelerated active-message model of arXiv 2509.07431).
 * A matched packet never enters the receive FIFO and never costs the
 * host a single instruction; the host's poll/decode/linkage bill —
 * the paper's per-message dispatch overhead — vanishes.
 *
 * The table is small, like real offload engines.  A packet that
 * misses falls back to the normal NI path and pays full host
 * dispatch, so the offload boundary is measurable: per-entry hit
 * counters, a miss counter, and the host layer's dispatchOps()
 * quantify exactly what moved into hardware.
 */

#ifndef MSGSIM_NICAM_NICAM_NETWORK_HH
#define MSGSIM_NICAM_NICAM_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "net/fault.hh"
#include "net/network.hh"
#include "net/order.hh"
#include "net/topology.hh"
#include "sim/rng.hh"

namespace msgsim
{

/**
 * CM-5-style fabric with an on-NIC handler table at each edge.
 */
class NicamNetwork : public Network
{
  public:
    struct Config
    {
        std::uint32_t nodes = 4;     ///< leaf node count
        std::uint32_t arity = 4;     ///< fat-tree arity
        Tick baseLatency = 10;       ///< fixed injection-to-edge time
        Tick hopLatency = 2;         ///< per switch-to-switch hop
        Tick maxJitter = 0;          ///< random extra latency (OOO source)
        Tick retryDelay = 8;         ///< redelivery period when sink full
        Tick injectGap = 0;          ///< link bandwidth: source spacing
        Tick deliverGap = 0;         ///< link bandwidth: dest spacing
        double injectBusyRate = 0.0; ///< P(injection port busy) per try
        std::uint64_t seed = 0xc0ffeeULL;
        int maxOffloadEntries = 8;   ///< on-NIC handler-table size
        FaultInjector::Config faults;
        OrderPolicyFactory orderFactory; ///< default: FIFO
    };

    /**
     * An offloaded handler: runs "on the NIC" when its entry matches,
     * so it must never charge host Accounting.
     */
    using OffloadFn = std::function<void(const Packet &)>;

    NicamNetwork(Simulator &sim, const Config &cfg);

    NetFeatures
    features() const override
    {
        NetFeatures f; // fabric properties are the CM-5's
        f.offloadDispatch = true;
        return f;
    }

    void flushHeldPackets() override;

    const FatTree &topology() const { return tree_; }
    FaultInjector &faults() { return faults_; }

    /**
     * Install an on-NIC handler at @p dst for packets whose hardware
     * tag is @p tag and whose header field A equals @p selector.
     * Returns false when the node's table is full (the caller must
     * dispatch on the host instead).  Uncharged: programming the
     * table is control-plane work.
     */
    bool offloadHandler(NodeId dst, HwTag tag, Word selector,
                        OffloadFn fn);

    /** Remove an entry (uncharged).  No-op when absent. */
    void removeOffload(NodeId dst, HwTag tag, Word selector);

    /** Packets dispatched by the NIC table across all nodes. */
    std::uint64_t offloadHits() const { return offloadHits_; }
    /** Hits of one specific entry (0 when absent). */
    std::uint64_t offloadHits(NodeId dst, HwTag tag,
                              Word selector) const;
    /** Packets that missed a non-empty table (host fallback). */
    std::uint64_t offloadMisses() const { return offloadMisses_; }
    /** Corrupt packets the NIC's CRC check discarded at the table. */
    std::uint64_t offloadCrcDrops() const { return offloadCrcDrops_; }
    /** Live table entries at @p dst. */
    int offloadEntries(NodeId dst) const;

  protected:
    bool injectImpl(Packet &&pkt) override;

  private:
    using FlowKey = std::tuple<NodeId, NodeId, int>;
    using TableKey = std::pair<int, Word>; ///< (tag, selector)

    struct OffloadEntry
    {
        OffloadFn fn;
        std::uint64_t hits = 0;
    };

    OrderPolicy &policyFor(const FlowKey &flow);
    void routeToEdge(Packet &&pkt);
    void arriveAtEdge(Packet &&pkt);

    /** NIC-table lookup, then the normal sink path on a miss. */
    void tryDeliver(Packet &&pkt);

    Config cfg_;
    FatTree tree_;
    FaultInjector faults_;
    Rng rng_;
    std::map<FlowKey, std::unique_ptr<OrderPolicy>> policies_;
    std::map<NodeId, std::map<TableKey, OffloadEntry>> tables_;
    std::map<NodeId, Tick> lastDeparture_; ///< injection serialization
    std::map<NodeId, Tick> lastArrival_;   ///< delivery serialization
    std::uint64_t offloadHits_ = 0;
    std::uint64_t offloadMisses_ = 0;
    std::uint64_t offloadCrcDrops_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_NICAM_NICAM_NETWORK_HH

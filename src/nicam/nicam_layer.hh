/**
 * @file
 * Host-side messaging layer for the NIC-offloaded AM substrate.
 *
 * The send path is the CM-5 NI path, unchanged — offload buys the
 * *receiver* out of its work.  Handlers installed in the NIC's table
 * run on packet arrival without host involvement; the host's
 * per-message bill collapses to a completion-flag probe.  What
 * remains charged on the host:
 *
 *  - sends (identical single-packet injection sequence);
 *  - sequence/offset stamping at the source (the fabric is still
 *    out of order; ordering metadata is the source's job, charged
 *    under the in-order feature);
 *  - posting receive state the NIC places into (buffer management);
 *  - completion probes and stream harvesting (reads of host memory
 *    the NIC has already filled, charged as base cost);
 *  - full dispatch for handlers that missed the bounded table —
 *    poll() is the fallback path and its dispatchOps() counter
 *    quantifies exactly what offload would have saved.
 */

#ifndef MSGSIM_NICAM_NICAM_LAYER_HH
#define MSGSIM_NICAM_NICAM_LAYER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "machine/node.hh"
#include "net/packet.hh"
#include "nicam/nicam_network.hh"

namespace msgsim
{

/**
 * Per-node host layer over NicamNetwork.
 */
class NicamLayer
{
  public:
    /** An active-message handler (host- or NIC-resident). */
    using AmFn = std::function<void(NodeId src, Word header,
                                    const std::vector<Word> &args)>;

    NicamLayer(Node &node, NicamNetwork &net);

    NicamLayer(const NicamLayer &) = delete;
    NicamLayer &operator=(const NicamLayer &) = delete;

    Node &node() { return node_; }
    int dataWords() const { return node_.ni().dataWords(); }

    // ------------------------------------------------------------
    // Send side (charged; the NI injection path).
    // ------------------------------------------------------------

    /** One active message: the Table 1 source sequence. */
    void amSend(NodeId dst, Word handler,
                const std::vector<Word> &args);

    /**
     * Stream @p words words to the posted transfer @p sid.  Each
     * packet carries its placement offset (the fabric reorders;
     * the NIC places by offset) — stamped at 2 reg per packet under
     * the in-order feature.
     */
    void xferSend(NodeId dst, Word sid, Addr srcBuf,
                  std::uint32_t words);

    /**
     * One stream packet on @p chan, carrying a source-stamped
     * sequence number (2 reg, in-order feature) the NIC's reorder
     * stage consumes.
     */
    void streamSend(NodeId dst, Word chan,
                    const std::vector<Word> &data);

    // ------------------------------------------------------------
    // NIC programming (uncharged control plane) and NIC-side state.
    // ------------------------------------------------------------

    /**
     * Install @p fn for AM handler id @p handler.  True: the entry
     * fits the NIC table and the handler runs on the NIC (uncharged).
     * False: the table is full; the handler is kept host-side and
     * poll() dispatches it at full cost.
     */
    bool installAmHandler(Word handler, AmFn fn);

    /**
     * NIC-side reply injection, for handlers running on the NIC
     * (uncharged — the host never sees the message).
     */
    void nicInject(NodeId dst, Word handler,
                   const std::vector<Word> &args);

    /**
     * Post receive state for transfer @p sid: the NIC will place
     * arriving fragments into [buf, buf+words) by header offset and
     * raise the done flag after the last word.  The descriptor write
     * is host work, charged under buffer management.  Returns false
     * when the NIC table is full (transfer cannot be offloaded).
     */
    bool postXfer(Word sid, Addr buf, std::uint32_t words);

    /**
     * Open stream @p chan: the NIC reorders by sequence number into
     * the @p slots-packet ring at @p ring and bumps a producer count
     * in host memory.  Uncharged setup.  False when the table is
     * full.
     */
    bool openStream(Word chan, Addr ring, std::uint32_t slots);

    // ------------------------------------------------------------
    // Host-side completion probes (charged).
    // ------------------------------------------------------------

    /** Probe a completion flag the NIC raises: 2 reg + 1 mem. */
    bool probeFlag(Addr flag);

    /** True when transfer @p sid has fully landed. */
    bool xferDone(Word sid);

    /** The done-flag word of transfer @p sid (for event loops). */
    Addr xferFlagAddr(Word sid) const;

    /**
     * Consume newly landed stream packets of @p chan into @p out.
     * Returns packets harvested.  Count probe plus n/2 double reads
     * per packet — the host's whole per-packet stream cost.
     */
    std::uint32_t streamHarvest(Word chan, std::vector<Word> &out);

    /** Host-fallback dispatch of packets that missed the NIC table. */
    int poll();

    // ------------------------------------------------------------
    // Diagnostics (plain counters, never charged).
    // ------------------------------------------------------------

    /** Handlers dispatched on the host via poll(). */
    std::uint64_t hostDispatches() const { return hostDispatches_; }

    /**
     * Instructions spent on host handler dispatch, as
     * Cmam::dispatchOps() counts them.  Stays ~zero while the NIC
     * table holds all handlers — the offload differential.
     */
    std::uint64_t dispatchOps() const { return dispatchOps_; }

  private:
    struct XferState // NIC-side placement engine state
    {
        Addr buf = 0;
        std::uint32_t words = 0;
        std::uint32_t received = 0;
        Addr flag = 0;
    };

    struct StreamState // NIC-side reorder engine state
    {
        Addr ring = 0;
        std::uint32_t slots = 0;
        Addr countAddr = 0;
        std::uint32_t expect = 0;   ///< next sequence to release
        std::uint32_t produced = 0; ///< packets placed in the ring
        std::uint32_t consumed = 0; ///< host-side harvest cursor
        std::map<std::uint32_t, std::vector<Word>> pending;
    };

    void nicXferArrive(Word sid, const Packet &pkt);
    void nicStreamArrive(Word chan, const Packet &pkt);

    Node &node_;
    NicamNetwork &net_;
    Addr niBaseAddr_ = 0;
    Addr flagTable_ = 0; ///< per-sid xfer done flags (64 words)
    std::map<Word, XferState> xfers_;
    std::map<Word, StreamState> streams_;
    std::map<Word, AmFn> hostHandlers_; ///< table-overflow fallback
    std::map<std::pair<NodeId, Word>, std::uint32_t> streamSeq_;
    std::uint64_t hostDispatches_ = 0;
    std::uint64_t dispatchOps_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_NICAM_NICAM_LAYER_HH

#include "nicam/nicam_layer.hh"

#include "cmam/send_path.hh"
#include "core/row.hh"
#include "hostprof/hostprof.hh"
#include "net/lineage_hook.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

namespace
{
constexpr Word kMaxXferIds = 64;
} // namespace

NicamLayer::NicamLayer(Node &node, NicamNetwork &net)
    : node_(node), net_(net)
{
    // Boot-time setup (uncharged): NI base pointer word and the
    // xfer completion-flag table the NIC raises flags in.
    niBaseAddr_ = node_.mem().alloc(1);
    node_.mem().write(niBaseAddr_, 0x001ba5e0u);
    flagTable_ = node_.mem().alloc(kMaxXferIds);
}

// ----------------------------------------------------------------
// Send side.
// ----------------------------------------------------------------

void
NicamLayer::amSend(NodeId dst, Word handler,
                   const std::vector<Word> &args)
{
    if (handler > hdr::maxFieldA)
        msgsim_fatal("handler id ", handler,
                     " exceeds the header field");
    ScopedSpan span(node_.id(), "nicam", "am_send");
    hostprof::HostScope hps(hostprof::Site::NicamSend);
    singlePacketSend(node_, niBaseAddr_, HwTag::UserAm, dst,
                     hdr::pack(handler, 0), args, dataWords());
}

void
NicamLayer::xferSend(NodeId dst, Word sid, Addr srcBuf,
                     std::uint32_t words)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    const int n = dataWords();
    ScopedSpan span(node_.id(), "nicam", "xfer_send");
    hostprof::HostScope hps(hostprof::Site::NicamSend);

    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("nicam xfer of ", words,
                     " words: not a multiple of packet size ", n);
    if (words > hdr::maxFieldB)
        msgsim_fatal("nicam xfer size exceeds header field");
    if (sid > hdr::maxFieldA)
        msgsim_fatal("transfer id ", sid, " exceeds the header field");

    // Fixed entry (2 reg + 1 mem), as in the CMAM xfer loop.
    p.regOps(2);
    (void)p.loadWord(niBaseAddr_);

    std::uint32_t offset = 0;
    while (offset < words) {
        {
            // The fabric reorders: every packet must carry its
            // placement offset for the NIC's offload engine.
            FeatureScope ord(a, Feature::InOrderDelivery);
            p.regOps(2); // offset field insert + advance
        }
        const Word header = hdr::pack(sid, offset);

        for (int attempt = 0;; ++attempt) {
            if (attempt > 1000)
                msgsim_panic("nicam xfer send retry livelock");
            {
                RowScope r(a, CostRow::NiSetup);
                p.regOps(4);
                ni.writeSendCtl(a, dst, HwTag::XferData, header);
            }
            {
                RowScope r(a, CostRow::CheckStatus);
                (void)ni.readStatus(a);
                p.regOps(2);
            }
            for (int i = 0; i < n; i += 2) {
                const auto [w0, w1] = p.loadDouble(
                    srcBuf + offset + static_cast<Addr>(i));
                RowScope r(a, CostRow::WriteNi);
                ni.writeSendDouble(a, w0, w1);
            }
            Word status;
            {
                RowScope r(a, CostRow::CheckStatus);
                status = ni.readStatus(a);
                p.regOps(3);
            }
            {
                RowScope r(a, CostRow::ControlFlow);
                p.branches(3);
            }
            if (status & ni_status::sendOk)
                break;
        }
        p.regOps(3); // loop induction
        offset += static_cast<std::uint32_t>(n);
    }
}

void
NicamLayer::streamSend(NodeId dst, Word chan,
                       const std::vector<Word> &data)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "nicam", "stream_send");
    hostprof::HostScope hps(hostprof::Site::NicamSend);
    if (chan > hdr::maxFieldA)
        msgsim_fatal("channel id ", chan, " exceeds the header field");

    std::uint32_t &seq = streamSeq_[{dst, chan}];
    {
        // Source-stamped sequence number: the NIC reorder stage
        // needs it because the fabric does not keep order.
        FeatureScope ord(a, Feature::InOrderDelivery);
        p.regOps(2); // sequence load-increment + field insert
    }
    singlePacketSend(node_, niBaseAddr_, HwTag::StreamData, dst,
                     hdr::pack(chan, seq), data, dataWords());
    ++seq;
}

// ----------------------------------------------------------------
// NIC programming.
// ----------------------------------------------------------------

bool
NicamLayer::installAmHandler(Word handler, AmFn fn)
{
    if (handler > hdr::maxFieldA)
        msgsim_fatal("handler id ", handler,
                     " exceeds the header field");
    const bool offloaded = net_.offloadHandler(
        node_.id(), HwTag::UserAm, handler,
        [fn](const Packet &pkt) {
            fn(pkt.src, pkt.header, pkt.data);
        });
    if (!offloaded)
        hostHandlers_[handler] = std::move(fn);
    return offloaded;
}

void
NicamLayer::nicInject(NodeId dst, Word handler,
                      const std::vector<Word> &args)
{
    // NIC-side send: no host instructions, but the packet is a real
    // packet with lineage.
    const int n = dataWords();
    std::vector<Word> payload = args;
    if (static_cast<int>(payload.size()) > n)
        msgsim_panic("nic reply of ", payload.size(),
                     " words exceeds the packet size ", n);
    payload.resize(static_cast<std::size_t>(n), 0);
    Packet pkt(node_.id(), dst, HwTag::UserAm,
               hdr::pack(handler, 0), std::move(payload));
    if (LineageHooks *lh = LineageHooks::current())
        lh->packetBorn(pkt, node_.id(), net_.sim().now());
    net_.inject(std::move(pkt));
}

bool
NicamLayer::postXfer(Word sid, Addr buf, std::uint32_t words)
{
    if (sid >= kMaxXferIds)
        msgsim_fatal("transfer id ", sid, " exceeds the flag table");
    if (xfers_.count(sid))
        msgsim_fatal("transfer ", sid, " already posted");
    const int n = dataWords();
    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("nicam xfer of ", words,
                     " words: not a multiple of packet size ", n);

    const bool offloaded = net_.offloadHandler(
        node_.id(), HwTag::XferData, sid,
        [this, sid](const Packet &pkt) { nicXferArrive(sid, pkt); });
    if (!offloaded)
        return false;

    // The descriptor the NIC places against is host work: write the
    // buffer pointer and size, clear the flag.  This is the entire
    // buffer-management cost of the offloaded transfer.
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    hostprof::HostScope hps(hostprof::Site::NicamSend);
    {
        FeatureScope bm(a, Feature::BufferMgmt);
        p.regOps(4); // descriptor index, size arithmetic
        const Addr flag = flagTable_ + sid;
        p.storeWord(flag, 0);
        p.storeDouble(flag, buf, words); // modeled descriptor pair
    }

    XferState st;
    st.buf = buf;
    st.words = words;
    st.flag = flagTable_ + sid;
    node_.mem().write(st.flag, 0);
    xfers_[sid] = st;
    return true;
}

void
NicamLayer::nicXferArrive(Word sid, const Packet &pkt)
{
    auto it = xfers_.find(sid);
    if (it == xfers_.end())
        msgsim_panic("nicam xfer data for unposted transfer ", sid);
    XferState &st = it->second;
    const std::uint32_t offset = hdr::fieldB(pkt.header);
    if (offset >= st.words)
        msgsim_panic("nicam xfer offset ", offset,
                     " beyond the posted buffer");
    // On-NIC placement by offset (uncharged DMA).
    Memory &mem = node_.mem();
    const auto n = static_cast<std::uint32_t>(pkt.data.size());
    for (std::uint32_t i = 0; i < n && offset + i < st.words; ++i)
        mem.write(st.buf + offset + i,
                  pkt.data[static_cast<std::size_t>(i)]);
    st.received += n;
    if (st.received >= st.words)
        mem.write(st.flag, 1); // completion flag, raised by the NIC
}

bool
NicamLayer::openStream(Word chan, Addr ring, std::uint32_t slots)
{
    if (streams_.count(chan))
        msgsim_fatal("stream ", chan, " already open");
    if (slots == 0)
        msgsim_fatal("stream ring needs at least one slot");
    const bool offloaded = net_.offloadHandler(
        node_.id(), HwTag::StreamData, chan,
        [this, chan](const Packet &pkt) {
            nicStreamArrive(chan, pkt);
        });
    if (!offloaded)
        return false;
    StreamState st;
    st.ring = ring;
    st.slots = slots;
    st.countAddr = node_.mem().alloc(1);
    node_.mem().write(st.countAddr, 0);
    streams_[chan] = st;
    return true;
}

void
NicamLayer::nicStreamArrive(Word chan, const Packet &pkt)
{
    auto it = streams_.find(chan);
    if (it == streams_.end())
        msgsim_panic("nicam stream data for unopened channel ", chan);
    StreamState &st = it->second;
    const std::uint32_t seq = hdr::fieldB(pkt.header);
    if (seq < st.expect)
        return; // stale duplicate; the NIC's reorder stage drops it
    st.pending[seq] = pkt.data;
    // Release in sequence order into the host-visible ring.
    Memory &mem = node_.mem();
    const auto n = static_cast<std::uint32_t>(dataWords());
    while (true) {
        auto pit = st.pending.find(st.expect);
        if (pit == st.pending.end())
            break;
        if (st.produced - st.consumed >= st.slots)
            msgsim_panic("nicam stream ring overrun on channel ",
                         chan, ": host not harvesting");
        const Addr slot = st.ring + (st.produced % st.slots) * n;
        for (std::uint32_t i = 0;
             i < n && i < pit->second.size(); ++i)
            mem.write(slot + i,
                      pit->second[static_cast<std::size_t>(i)]);
        st.pending.erase(pit);
        ++st.produced;
        ++st.expect;
        mem.write(st.countAddr, st.produced);
    }
}

// ----------------------------------------------------------------
// Host-side probes.
// ----------------------------------------------------------------

bool
NicamLayer::probeFlag(Addr flag)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    hostprof::HostScope hps(hostprof::Site::NicamSend);
    RowScope r(a, CostRow::CheckStatus);
    p.regOps(2);
    return p.loadWord(flag) != 0;
}

bool
NicamLayer::xferDone(Word sid)
{
    const Addr flag = xferFlagAddr(sid);
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(2);
    }
    return probeFlag(flag);
}

Addr
NicamLayer::xferFlagAddr(Word sid) const
{
    if (sid >= kMaxXferIds)
        msgsim_panic("transfer id ", sid, " exceeds the flag table");
    return flagTable_ + sid;
}

std::uint32_t
NicamLayer::streamHarvest(Word chan, std::vector<Word> &out)
{
    auto it = streams_.find(chan);
    if (it == streams_.end())
        msgsim_panic("harvest of unopened channel ", chan);
    StreamState &st = it->second;
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "nicam", "stream_harvest");
    hostprof::HostScope hps(hostprof::Site::NicamSend);

    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(2);
    }
    std::uint32_t produced;
    {
        RowScope r(a, CostRow::CheckStatus);
        p.regOps(2);
        produced = p.loadWord(st.countAddr);
    }
    const auto n = static_cast<std::uint32_t>(dataWords());
    std::uint32_t harvested = 0;
    while (st.consumed < produced) {
        const Addr slot = st.ring + (st.consumed % st.slots) * n;
        for (std::uint32_t i = 0; i < n; i += 2) {
            const auto [w0, w1] = p.loadDouble(slot + i);
            out.push_back(w0);
            out.push_back(w1);
        }
        p.regOps(2); // cursor advance, loop branch
        ++st.consumed;
        ++harvested;
    }
    return harvested;
}

int
NicamLayer::poll()
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    NetIface &ni = node_.ni();
    ScopedSpan span(node_.id(), "nicam", "poll");
    hostprof::HostScope hps(hostprof::Site::NicamSend);

    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(3);
    }
    dispatchOps_ += 3;
    int handled = 0;
    bool first = true;
    for (;;) {
        Word status;
        {
            RowScope r(a, CostRow::CheckStatus);
            status = ni.readStatus(a);
            p.regOps(first ? 9 : 1);
            dispatchOps_ += first ? 10 : 2; // status read + decode
            first = false;
        }
        if (!(status & ni_status::recvReady))
            break;
        const Packet *head = ni.hwPeekRecv();
        if (head == nullptr)
            msgsim_panic("recvReady set with empty FIFO");
        const auto tag = static_cast<HwTag>(
            (status >> ni_status::tagShift) & ni_status::tagMask);
        if (tag != HwTag::UserAm)
            msgsim_panic("nicam host fallback: unexpected tag ",
                         static_cast<int>(tag));
        LineageHooks *lh = LineageHooks::current();
        if (lh)
            lh->handlerBegin(node_.id(), *head, ni.sim().now());
        Word header;
        {
            RowScope r(a, CostRow::ReadNi);
            header = ni.readRecvHeader(a);
        }
        p.regOps(3); // tag-vector dispatch
        dispatchOps_ += 3;
        const Word hid = hdr::fieldA(header);
        auto fit = hostHandlers_.find(hid);
        if (fit == hostHandlers_.end())
            msgsim_panic("nicam host fallback: no handler ", hid);
        NodeId src;
        {
            RowScope r(a, CostRow::ReadNi);
            src = static_cast<NodeId>(ni.readRecvSource(a));
        }
        const auto words = head->data.size();
        std::vector<Word> args;
        args.reserve(words);
        {
            RowScope r(a, CostRow::ReadNi);
            for (std::size_t i = 0; i < words; i += 2) {
                const auto [w0, w1] = ni.readRecvDouble(a);
                args.push_back(w0);
                args.push_back(w1);
            }
        }
        {
            RowScope r(a, CostRow::CallReturn);
            p.callRet(4); // user-handler linkage
        }
        dispatchOps_ += 4;
        ++hostDispatches_;
        fit->second(src, header, args);
        if (lh)
            lh->handlerEnd(node_.id(), ni.sim().now());
        ++handled;
        {
            RowScope r(a, CostRow::ControlFlow);
            p.branches(2);
        }
        dispatchOps_ += 2;
    }
    return handled;
}

} // namespace msgsim

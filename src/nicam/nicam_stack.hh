/**
 * @file
 * Stack builder for the NIC-offloaded AM substrate: a NicamNetwork
 * machine with one NicamLayer per node, plus drivers for the paper's
 * four protocols with receive-side work offloaded to the NIC.
 */

#ifndef MSGSIM_NICAM_NICAM_STACK_HH
#define MSGSIM_NICAM_NICAM_STACK_HH

#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "nicam/nicam_layer.hh"
#include "nicam/nicam_network.hh"
#include "protocols/result.hh"

namespace msgsim
{

/** Configuration of the nicam stack. */
struct NicamStackConfig
{
    std::uint32_t nodes = 4;
    int dataWords = 4;
    std::size_t memWords = 1u << 20;
    int maxOffloadEntries = 8;
    FaultInjector::Config faults;
    Tick injectGap = 0; ///< link bandwidth: source spacing
    Tick deliverGap = 0; ///< link bandwidth: dest spacing
};

/**
 * Nicam machine + per-node host layer.
 */
class NicamStack
{
  public:
    explicit NicamStack(const NicamStackConfig &cfg);

    Machine &machine() { return *machine_; }
    Simulator &sim() { return machine_->sim(); }
    int dataWords() const { return cfg_.dataWords; }
    Node &node(NodeId id) { return machine_->node(id); }
    NicamLayer &layer(NodeId id);
    NicamNetwork &net();
    void settle() { machine_->settle(); }

  private:
    NicamStackConfig cfg_;
    std::unique_ptr<Machine> machine_;
    std::vector<std::unique_ptr<NicamLayer>> layers_;
};

/** Parameters shared by the nicam protocol drivers. */
struct NicamRunParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::uint32_t words = 16;          ///< finite/stream payload
    std::uint64_t fillSeed = 0x0ff'10adULL;
    bool eventMode = false;
};

/** Protocol 1: one AM dispatched on the destination NIC. */
RunResult runNicamSingle(NicamStack &stack,
                         const NicamRunParams &params);

/** Protocol 2: request + reply, both handled entirely on-NIC. */
RunResult runNicamAm4(NicamStack &stack, const NicamRunParams &params);

/** Protocol 3: finite transfer placed by the NIC offload engine. */
RunResult runNicamFinite(NicamStack &stack,
                         const NicamRunParams &params);

/** Protocol 4: stream reordered on-NIC, harvested from a host ring. */
RunResult runNicamStream(NicamStack &stack,
                         const NicamRunParams &params);

} // namespace msgsim

#endif // MSGSIM_NICAM_NICAM_STACK_HH

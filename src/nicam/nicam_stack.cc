#include "nicam/nicam_stack.hh"

#include <memory>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace msgsim
{

NicamStack::NicamStack(const NicamStackConfig &cfg) : cfg_(cfg)
{
    Machine::Config mc;
    mc.nodes = cfg_.nodes;
    mc.dataWords = cfg_.dataWords;
    mc.memWords = cfg_.memWords;

    NicamNetwork::Config nc;
    nc.nodes = cfg_.nodes;
    nc.maxOffloadEntries = cfg_.maxOffloadEntries;
    nc.faults = cfg_.faults;
    nc.injectGap = cfg_.injectGap;
    nc.deliverGap = cfg_.deliverGap;
    machine_ = std::make_unique<Machine>(
        mc, [nc](Simulator &sim) {
            return std::make_unique<NicamNetwork>(sim, nc);
        });

    layers_.reserve(cfg_.nodes);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i)
        layers_.push_back(std::make_unique<NicamLayer>(
            machine_->node(i), net()));
}

NicamLayer &
NicamStack::layer(NodeId id)
{
    if (id >= layers_.size())
        msgsim_panic("nicam: node id ", id, " out of range");
    return *layers_[id];
}

NicamNetwork &
NicamStack::net()
{
    return static_cast<NicamNetwork &>(machine_->network());
}

namespace
{

void
fill(Node &node, Addr buf, std::uint32_t words, std::uint64_t seed)
{
    for (std::uint32_t i = 0; i < words; ++i)
        node.mem().write(buf + i, static_cast<Word>(splitMix64(seed)));
}

/** Event-mode probe loop: check a completion flag every @p gap. */
void
scheduleProbeLoop(NicamStack &stack, NodeId id, Addr flag,
                  std::shared_ptr<bool> stop, Tick gap)
{
    stack.sim().schedule(gap, [&stack, id, flag, stop, gap] {
        if (*stop)
            return;
        Node &nd = stack.node(id);
        FeatureScope fs(nd.acct(), Feature::BaseCost);
        if (stack.layer(id).probeFlag(flag)) {
            *stop = true;
            return;
        }
        scheduleProbeLoop(stack, id, flag, stop, gap);
    });
}

} // namespace

RunResult
runNicamSingle(NicamStack &stack, const NicamRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);

    const Addr dst_buf = dst.mem().alloc(n);
    const Addr flag = dst.mem().alloc(1);
    std::vector<Word> payload(n);
    std::uint64_t sm = params.fillSeed;
    for (auto &w : payload)
        w = static_cast<Word>(splitMix64(sm));

    // NIC-resident handler: place the args, raise the flag.  No host
    // instructions at the destination until the completion probe.
    const Word h = 5;
    const bool offloaded = stack.layer(params.dst).installAmHandler(
        h, [&dst, dst_buf, flag](NodeId, Word,
                                 const std::vector<Word> &args) {
            for (std::size_t i = 0; i < args.size(); ++i)
                dst.mem().write(dst_buf + static_cast<Addr>(i),
                                args[i]);
            dst.mem().write(flag, 1);
        });
    if (!offloaded)
        msgsim_panic("nicam single: handler table full");

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const std::uint64_t dd0 =
        stack.layer(params.dst).dispatchOps();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.layer(params.src).amSend(params.dst, h, payload);
    }
    bool done = false;
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            done = stack.layer(params.dst).probeFlag(flag);
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        scheduleProbeLoop(stack, params.dst, flag, stopFlag, 8);
        stack.sim().runUntil([&stopFlag] { return *stopFlag; },
                             50'000'000);
        stack.settle();
        done = dst.mem().read(flag) != 0;
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.dispatchOps =
        stack.layer(params.dst).dispatchOps() - dd0;
    res.elapsed = stack.sim().now() - t0;
    res.packets = 1;
    res.dataOk = done;
    for (std::uint32_t i = 0; res.dataOk && i < n; ++i)
        if (dst.mem().read(dst_buf + i) != payload[i])
            res.dataOk = false;
    return res;
}

RunResult
runNicamAm4(NicamStack &stack, const NicamRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);

    const Addr rep_buf = src.mem().alloc(n);
    const Addr flag = src.mem().alloc(1);
    std::vector<Word> args(n);
    std::uint64_t sm = params.fillSeed;
    for (auto &w : args)
        w = static_cast<Word>(splitMix64(sm));

    // Request handler runs on the destination NIC and injects the
    // reply from there: the destination host never executes one
    // instruction for this round trip.
    const Word hReq = 5, hRep = 6;
    NicamLayer &dstLayer = stack.layer(params.dst);
    bool ok = dstLayer.installAmHandler(
        hReq, [&stack, &dstLayer, hRep,
               srcId = params.src](NodeId, Word,
                                   const std::vector<Word> &a) {
            std::vector<Word> reply(a.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                reply[i] = a[i] + 1;
            dstLayer.nicInject(srcId, hRep, reply);
            (void)stack;
        });
    ok = ok && stack.layer(params.src).installAmHandler(
                   hRep, [&src, rep_buf, flag](
                             NodeId, Word,
                             const std::vector<Word> &a) {
                       for (std::size_t i = 0; i < a.size(); ++i)
                           src.mem().write(
                               rep_buf + static_cast<Addr>(i), a[i]);
                       src.mem().write(flag, 1);
                   });
    if (!ok)
        msgsim_panic("nicam am4: handler table full");

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const std::uint64_t dd0 =
        stack.layer(params.dst).dispatchOps();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.layer(params.src).amSend(params.dst, hReq, args);
    }
    bool done = false;
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(src.acct(), Feature::BaseCost);
            done = stack.layer(params.src).probeFlag(flag);
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        scheduleProbeLoop(stack, params.src, flag, stopFlag, 8);
        stack.sim().runUntil([&stopFlag] { return *stopFlag; },
                             50'000'000);
        stack.settle();
        done = src.mem().read(flag) != 0;
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.dispatchOps =
        stack.layer(params.dst).dispatchOps() - dd0;
    res.elapsed = stack.sim().now() - t0;
    res.packets = 2;
    res.dataOk = done;
    for (std::uint32_t i = 0; res.dataOk && i < n; ++i)
        if (src.mem().read(rep_buf + i) != args[i] + 1)
            res.dataOk = false;
    return res;
}

RunResult
runNicamFinite(NicamStack &stack, const NicamRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);
    if (params.words == 0 || params.words % n != 0)
        msgsim_fatal("nicam finite transfer of ", params.words,
                     " words: not a multiple of packet size ", n);

    const Word sid = 3;
    const Addr src_buf = src.mem().alloc(params.words);
    const Addr dst_buf = dst.mem().alloc(params.words);
    fill(src, src_buf, params.words, params.fillSeed);

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const std::uint64_t dd0 =
        stack.layer(params.dst).dispatchOps();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(dst.acct(), Feature::BaseCost);
        if (!stack.layer(params.dst).postXfer(sid, dst_buf,
                                              params.words))
            msgsim_panic("nicam finite: offload table full");
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.layer(params.src).xferSend(params.dst, sid, src_buf,
                                         params.words);
    }
    bool done = false;
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            done = stack.layer(params.dst).xferDone(sid);
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        scheduleProbeLoop(stack, params.dst,
                          stack.layer(params.dst).xferFlagAddr(sid),
                          stopFlag, 8);
        stack.sim().runUntil([&stopFlag] { return *stopFlag; },
                             50'000'000);
        stack.settle();
        done = dst.mem().read(
                   stack.layer(params.dst).xferFlagAddr(sid)) != 0;
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.dispatchOps =
        stack.layer(params.dst).dispatchOps() - dd0;
    res.elapsed = stack.sim().now() - t0;
    res.packets = params.words / n;
    res.dataOk = done;
    for (std::uint32_t i = 0; res.dataOk && i < params.words; ++i)
        if (dst.mem().read(dst_buf + i) != src.mem().read(src_buf + i))
            res.dataOk = false;
    return res;
}

RunResult
runNicamStream(NicamStack &stack, const NicamRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);
    if (params.words == 0 || params.words % n != 0)
        msgsim_fatal("nicam stream of ", params.words,
                     " words: not a multiple of packet size ", n);
    const std::uint32_t messages = params.words / n;

    const Word chan = 7;
    const Addr src_buf = src.mem().alloc(params.words);
    const Addr ring = dst.mem().alloc(params.words);
    fill(src, src_buf, params.words, params.fillSeed);
    if (!stack.layer(params.dst).openStream(chan, ring, messages))
        msgsim_panic("nicam stream: offload table full");

    std::vector<Word> received;

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const std::uint64_t dd0 =
        stack.layer(params.dst).dispatchOps();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        for (std::uint32_t m = 0; m < messages; ++m) {
            std::vector<Word> pkt(n);
            for (std::uint32_t i = 0; i < n; ++i)
                pkt[i] = src.mem().read(src_buf + m * n + i);
            stack.layer(params.src).streamSend(params.dst, chan, pkt);
        }
    }
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.layer(params.dst).streamHarvest(chan, received);
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        // Harvest from the simulated clock until all messages landed.
        std::function<void()> loop = [&stack, &received, &loop,
                                      stopFlag, chan,
                                      id = params.dst, messages] {
            if (*stopFlag)
                return;
            Node &nd = stack.node(id);
            FeatureScope fs(nd.acct(), Feature::BaseCost);
            stack.layer(id).streamHarvest(chan, received);
            if (received.size() >=
                static_cast<std::size_t>(messages) *
                    static_cast<std::size_t>(stack.dataWords())) {
                *stopFlag = true;
                return;
            }
            stack.sim().schedule(8, loop);
        };
        stack.sim().schedule(8, loop);
        stack.sim().runUntil([&stopFlag] { return *stopFlag; },
                             50'000'000);
        stack.settle();
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.dispatchOps =
        stack.layer(params.dst).dispatchOps() - dd0;
    res.elapsed = stack.sim().now() - t0;
    res.packets = messages;
    res.dataOk = received.size() == params.words;
    for (std::uint32_t i = 0; res.dataOk && i < params.words; ++i)
        if (received[i] != src.mem().read(src_buf + i))
            res.dataOk = false;
    return res;
}

} // namespace msgsim

#include "coll/collectives.hh"

#include <algorithm>

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim
{

namespace
{

/** Pack (kind, seq) into the first payload word. */
Word
packMeta(Word kind, Word seq, Word round)
{
    return (kind << 24) | ((round & 0xffu) << 16) | (seq & 0xffffu);
}

Word metaKind(Word w) { return w >> 24; }
Word metaRound(Word w) { return (w >> 16) & 0xffu; }
Word metaSeq(Word w) { return w & 0xffffu; }

} // namespace

Collectives::Collectives(Stack &stack) : stack_(stack)
{
    const std::uint32_t n = nodes();
    handlerIds_.resize(n);
    for (NodeId id = 0; id < n; ++id)
        handlerIds_[id] = stack_.cmam(id).registerHandler(
            [this, id](NodeId src, const std::vector<Word> &args) {
                onMessage(id, src, args);
            });
}

std::uint32_t
Collectives::rounds() const
{
    std::uint32_t r = 0;
    while ((1u << r) < nodes())
        ++r;
    return r;
}

void
Collectives::amSend(NodeId self, NodeId dst, Kind kind, Word a, Word b)
{
    hostprof::HostScope hs(hostprof::Site::CollSend);
    Node &node = stack_.node(self);
    FeatureScope fs(node.acct(), Feature::BaseCost);
    stack_.cmam(self).am4(
        dst, handlerIds_[dst],
        {packMeta(static_cast<Word>(kind), seq_, a), b});
    ++messages_;
}

void
Collectives::onMessage(NodeId self, NodeId src,
                       const std::vector<Word> &args)
{
    Node &node = stack_.node(self);
    Processor &p = node.proc();
    const Word meta = args.at(0);
    // Handler prologue: unpack kind/seq/round, staleness check.
    p.regOps(4);
    if (metaSeq(meta) != (seq_ & 0xffffu))
        return; // straggler from a previous collective

    switch (static_cast<Kind>(metaKind(meta))) {
      case Kind::BarrierToken: {
        const std::uint32_t round = metaRound(meta);
        gotToken_[self][round] = true;
        p.regOps(2); // token bookkeeping
        barrierAdvance(self);
        break;
      }
      case Kind::BcastValue: {
        if (!hasValue_[self]) {
            hasValue_[self] = true;
            bcastValue_[self] = args.at(1);
            p.regOps(2); // store value, mark
            bcastForward(self, metaRound(meta));
        }
        break;
      }
      case Kind::GatherValue:
      case Kind::AllToAllValue: {
        // args.at(1) = value; sender identity from the AM itself.
        p.regOps(2); // table index + store
        exchange_[self][src] = args.at(1);
        ++exchangeGot_[self];
        break;
      }
      case Kind::ReduceContrib: {
        // Combine the contribution into the local accumulator.
        p.regOps(2);
        combineInto(accum_[self], args.at(1));
        ++contribGot_[self];
        reduceTrySend(self);
        break;
      }
      case Kind::RingAcc: {
        // Combine the running total; forward unless we are the root.
        p.regOps(2);
        combineInto(accum_[self], args.at(1));
        ringGot_[self] = true;
        if (self != reduceRoot_)
            amSend(self, static_cast<NodeId>((self + 1) % nodes()),
                   Kind::RingAcc, 0, accum_[self]);
        break;
      }
      case Kind::RingFwd: {
        // Store the value; forward unless the next hop is the root.
        if (!hasValue_[self]) {
            hasValue_[self] = true;
            bcastValue_[self] = args.at(1);
            p.regOps(2);
            const NodeId next =
                static_cast<NodeId>((self + 1) % nodes());
            if (next != bcastRoot_)
                amSend(self, next, Kind::RingFwd, 0,
                       bcastValue_[self]);
        }
        break;
      }
      case Kind::RdExchange: {
        // Stash the round-tagged partial; advance as far as possible.
        p.regOps(2);
        const std::uint32_t round = metaRound(meta);
        rdGot_[self][round] = args.at(1);
        rdHave_[self][round] = true;
        rdAdvance(self);
        break;
      }
      default:
        msgsim_panic("collectives: bad message kind from node ", src);
    }
}

void
Collectives::combineInto(Word &acc, Word v) const
{
    switch (reduceOp_) {
      case ReduceOp::Sum:
        acc += v;
        break;
      case ReduceOp::Max:
        acc = std::max(acc, v);
        break;
      case ReduceOp::Min:
        acc = std::min(acc, v);
        break;
      case ReduceOp::BitOr:
        acc |= v;
        break;
    }
}

bool
Collectives::progress(const std::function<bool()> &done)
{
    hostprof::HostScope hs(hostprof::Site::CollProgress);
    for (int round = 0; round < 256; ++round) {
        if (done())
            return true;
        stack_.settle();
        bool any = false;
        for (NodeId id = 0; id < nodes(); ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            any = true;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
            ++polls_;
        }
        if (!any && done())
            return true;
        if (!any)
            return done();
    }
    return done();
}

std::uint64_t
Collectives::totalInstructions()
{
    std::uint64_t sum = 0;
    for (NodeId id = 0; id < nodes(); ++id)
        sum += stack_.node(id).acct().counter().paperTotal();
    return sum;
}

// ------------------------------------------------------------------
// Barrier (dissemination).
// ------------------------------------------------------------------

void
Collectives::barrierAdvance(NodeId self)
{
    const std::uint32_t r = rounds();
    while (waitRound_[self] < r && gotToken_[self][waitRound_[self]]) {
        ++waitRound_[self];
        if (waitRound_[self] < r) {
            const NodeId peer = static_cast<NodeId>(
                (self + (1u << waitRound_[self])) % nodes());
            amSend(self, peer, Kind::BarrierToken, waitRound_[self],
                   0);
        }
    }
    if (waitRound_[self] >= r)
        barrierDone_[self] = true;
}

Collectives::CollResult
Collectives::barrier()
{
    CollResult res;
    const std::uint32_t n = nodes();
    const std::uint32_t r = rounds();
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    gotToken_.assign(n, std::vector<bool>(std::max(r, 1u), false));
    waitRound_.assign(n, 0);
    barrierDone_.assign(n, r == 0);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    if (r > 0)
        for (NodeId id = 0; id < n; ++id)
            amSend(id, static_cast<NodeId>((id + 1) % n),
                   Kind::BarrierToken, 0, 0);
    res.ok = progress([this] {
        for (bool d : barrierDone_)
            if (!d)
                return false;
        return true;
    });
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

// ------------------------------------------------------------------
// Broadcast (binomial tree).
// ------------------------------------------------------------------

void
Collectives::bcastForward(NodeId self, std::uint32_t from_round)
{
    const std::uint32_t n = nodes();
    const std::uint32_t rel = (self + n - bcastRoot_) % n;
    for (std::uint32_t k = from_round; k < rounds(); ++k) {
        const std::uint32_t peer_rel = rel + (1u << k);
        if (rel < (1u << k) && peer_rel < n) {
            const NodeId peer =
                static_cast<NodeId>((bcastRoot_ + peer_rel) % n);
            amSend(self, peer, Kind::BcastValue, k + 1,
                   bcastValue_[self]);
        }
    }
}

Collectives::CollResult
Collectives::broadcast(NodeId root, Word value, std::vector<Word> &out,
                       Algo algo)
{
    // Recursive doubling's dissemination IS the binomial tree.
    if (algo == Algo::Ring)
        return ringBroadcast(root, value, out);
    CollResult res;
    const std::uint32_t n = nodes();
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    bcastRoot_ = root;
    hasValue_.assign(n, false);
    bcastValue_.assign(n, 0);
    hasValue_[root] = true;
    bcastValue_[root] = value;

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    bcastForward(root, 0);
    res.ok = progress([this] {
        for (bool h : hasValue_)
            if (!h)
                return false;
        return true;
    });
    out = bcastValue_;
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

// ------------------------------------------------------------------
// Reduce (binomial combining tree).
// ------------------------------------------------------------------

void
Collectives::reduceTrySend(NodeId self)
{
    if (contribSent_[self])
        return;
    if (contribGot_[self] < contribWant_[self])
        return;
    const std::uint32_t n = nodes();
    const std::uint32_t rel = (self + n - reduceRoot_) % n;
    if (rel == 0)
        return; // the root only collects
    // Parent: clear the lowest set bit of the relative rank.
    const std::uint32_t lsb = rel & (~rel + 1);
    const NodeId parent =
        static_cast<NodeId>((reduceRoot_ + (rel - lsb)) % n);
    contribSent_[self] = true;
    amSend(self, parent, Kind::ReduceContrib, 0, accum_[self]);
}

Collectives::CollResult
Collectives::reduce(ReduceOp op, const std::vector<Word> &in,
                    Word &out, NodeId root, Algo algo)
{
    // Recursive doubling's combining tree IS the binomial tree.
    if (algo == Algo::Ring)
        return ringReduce(op, in, out, root);
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("reduce: need one contribution per node (", n,
                     "), got ", in.size());
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    reduceOp_ = op;
    reduceRoot_ = root;
    accum_ = in;
    contribWant_.assign(n, 0);
    contribGot_.assign(n, 0);
    contribSent_.assign(n, false);

    // Node at relative rank r expects one contribution per child
    // r + 2^j for j < lsb-index(r) (all j for the root).
    for (NodeId id = 0; id < n; ++id) {
        const std::uint32_t rel = (id + n - root) % n;
        std::uint32_t want = 0;
        for (std::uint32_t j = 0; j < rounds(); ++j) {
            if (rel != 0 && (rel & (1u << j)))
                break; // j reached the lsb of rel
            if (rel + (1u << j) < n)
                ++want;
        }
        contribWant_[id] = want;
    }

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId id = 0; id < n; ++id)
        reduceTrySend(id); // leaves fire immediately
    const NodeId rootId = root;
    res.ok = progress([this, rootId] {
        return contribGot_[rootId] >= contribWant_[rootId];
    });
    out = accum_[root];
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::gather(const std::vector<Word> &in, std::vector<Word> &out,
                    NodeId root)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("gather: need one contribution per node");
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    exchange_.assign(n, std::vector<Word>(n, 0));
    exchangeGot_.assign(n, 0);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId id = 0; id < n; ++id) {
        if (id == root)
            continue;
        amSend(id, root, Kind::GatherValue, 0, in[id]);
    }
    const NodeId rootId = root;
    const std::uint32_t want = n - 1;
    res.ok = progress([this, rootId, want] {
        return exchangeGot_[rootId] >= want;
    });
    out = exchange_[root];
    out[root] = in[root];
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::allToAll(const std::vector<std::vector<Word>> &in,
                      std::vector<std::vector<Word>> &out)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("allToAll: need one row per node");
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    exchange_.assign(n, std::vector<Word>(n, 0));
    exchangeGot_.assign(n, 0);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId i = 0; i < n; ++i) {
        if (in[i].size() != n)
            msgsim_fatal("allToAll: row ", i, " has ", in[i].size(),
                         " entries, want ", n);
        for (NodeId j = 0; j < n; ++j) {
            if (i == j) {
                exchange_[i][i] = in[i][i];
                continue;
            }
            amSend(i, j, Kind::AllToAllValue, 0, in[i][j]);
        }
    }
    const std::uint32_t want = n - 1;
    res.ok = progress([this, want] {
        for (auto got : exchangeGot_)
            if (got < want)
                return false;
        return true;
    });
    out = exchange_;
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::allReduce(ReduceOp op, const std::vector<Word> &in,
                       std::vector<Word> &out, Algo algo)
{
    if (algo == Algo::RecursiveDoubling)
        return rdAllReduce(op, in, out);
    Word total = 0;
    CollResult r1 = reduce(op, in, total, 0, algo);
    CollResult r2 = broadcast(0, total, out, algo);
    CollResult res;
    res.ok = r1.ok && r2.ok;
    res.messages = r1.messages + r2.messages;
    res.instructions = r1.instructions + r2.instructions;
    res.polls = r1.polls + r2.polls;
    res.elapsed = r1.elapsed + r2.elapsed;
    return res;
}

// ------------------------------------------------------------------
// Ring chains: serial accumulate toward the root, serial forward
// around the ring.  N-1 messages each; fully latency-bound — the
// classic bandwidth-optimal ring in its one-word degenerate form.
// ------------------------------------------------------------------

Collectives::CollResult
Collectives::ringReduce(ReduceOp op, const std::vector<Word> &in,
                        Word &out, NodeId root)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("ringReduce: need one contribution per node (",
                     n, "), got ", in.size());
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    reduceOp_ = op;
    reduceRoot_ = root;
    accum_ = in;
    ringGot_.assign(n, false);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    if (n > 1) {
        // The chain starts one past the root and accumulates around
        // the ring; the last hop lands on the root.
        const NodeId first = static_cast<NodeId>((root + 1) % n);
        amSend(first, static_cast<NodeId>((first + 1) % n),
               Kind::RingAcc, 0, accum_[first]);
    } else {
        ringGot_[root] = true;
    }
    const NodeId rootId = root;
    res.ok = progress([this, rootId] { return ringGot_[rootId]; });
    out = accum_[root];
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::ringBroadcast(NodeId root, Word value,
                           std::vector<Word> &out)
{
    CollResult res;
    const std::uint32_t n = nodes();
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    bcastRoot_ = root;
    hasValue_.assign(n, false);
    bcastValue_.assign(n, 0);
    hasValue_[root] = true;
    bcastValue_[root] = value;

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    if (n > 1)
        amSend(root, static_cast<NodeId>((root + 1) % n),
               Kind::RingFwd, 0, value);
    res.ok = progress([this] {
        for (bool h : hasValue_)
            if (!h)
                return false;
        return true;
    });
    out = bcastValue_;
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

// ------------------------------------------------------------------
// Recursive-doubling allreduce: the butterfly.  Round k pairs node i
// with i ^ 2^k; both exchange partials and combine, so after log2 N
// rounds every node holds the total.  A node may receive a peer's
// round-k partial before finishing round k-1 — arrivals stash by
// round and rdAdvance() consumes them in order.
// ------------------------------------------------------------------

void
Collectives::rdAdvance(NodeId self)
{
    const std::uint32_t r = rounds();
    while (rdRound_[self] < r && rdHave_[self][rdRound_[self]]) {
        combineInto(rdVal_[self], rdGot_[self][rdRound_[self]]);
        ++rdRound_[self];
        if (rdRound_[self] < r) {
            const NodeId peer = static_cast<NodeId>(
                self ^ (1u << rdRound_[self]));
            amSend(self, peer, Kind::RdExchange, rdRound_[self],
                   rdVal_[self]);
        }
    }
}

Collectives::CollResult
Collectives::rdAllReduce(ReduceOp op, const std::vector<Word> &in,
                         std::vector<Word> &out)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if ((n & (n - 1)) != 0)
        msgsim_fatal("recursive-doubling allreduce needs a "
                     "power-of-two node count, got ", n);
    if (in.size() != n)
        msgsim_fatal("rdAllReduce: need one contribution per node (",
                     n, "), got ", in.size());
    ++seq_;
    messages_ = 0;
    polls_ = 0;
    reduceOp_ = op;
    const std::uint32_t r = rounds();
    rdRound_.assign(n, 0);
    rdVal_ = in;
    rdGot_.assign(n, std::vector<Word>(std::max(r, 1u), 0));
    rdHave_.assign(n, std::vector<bool>(std::max(r, 1u), false));

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId id = 0; id < n && r > 0; ++id)
        amSend(id, static_cast<NodeId>(id ^ 1u), Kind::RdExchange, 0,
               rdVal_[id]);
    res.ok = progress([this, r] {
        for (auto round : rdRound_)
            if (round < r)
                return false;
        return true;
    });
    out = rdVal_;
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.polls = polls_;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

const char *
toString(Collectives::Algo a)
{
    switch (a) {
      case Collectives::Algo::Tree:              return "tree";
      case Collectives::Algo::Ring:              return "ring";
      case Collectives::Algo::RecursiveDoubling: return "rd";
      default:                                   return "?";
    }
}

bool
algoFromString(const std::string &name, Collectives::Algo &out)
{
    if (name == "tree")
        out = Collectives::Algo::Tree;
    else if (name == "ring")
        out = Collectives::Algo::Ring;
    else if (name == "rd" || name == "recursive-doubling")
        out = Collectives::Algo::RecursiveDoubling;
    else
        return false;
    return true;
}

} // namespace msgsim

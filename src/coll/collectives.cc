#include "coll/collectives.hh"

#include <algorithm>

#include "sim/log.hh"

namespace msgsim
{

namespace
{

/** Pack (kind, seq) into the first payload word. */
Word
packMeta(Word kind, Word seq, Word round)
{
    return (kind << 24) | ((round & 0xffu) << 16) | (seq & 0xffffu);
}

Word metaKind(Word w) { return w >> 24; }
Word metaRound(Word w) { return (w >> 16) & 0xffu; }
Word metaSeq(Word w) { return w & 0xffffu; }

} // namespace

Collectives::Collectives(Stack &stack) : stack_(stack)
{
    const std::uint32_t n = nodes();
    handlerIds_.resize(n);
    for (NodeId id = 0; id < n; ++id)
        handlerIds_[id] = stack_.cmam(id).registerHandler(
            [this, id](NodeId src, const std::vector<Word> &args) {
                onMessage(id, src, args);
            });
}

std::uint32_t
Collectives::rounds() const
{
    std::uint32_t r = 0;
    while ((1u << r) < nodes())
        ++r;
    return r;
}

void
Collectives::amSend(NodeId self, NodeId dst, Kind kind, Word a, Word b)
{
    Node &node = stack_.node(self);
    FeatureScope fs(node.acct(), Feature::BaseCost);
    stack_.cmam(self).am4(
        dst, handlerIds_[dst],
        {packMeta(static_cast<Word>(kind), seq_, a), b});
    ++messages_;
}

void
Collectives::onMessage(NodeId self, NodeId src,
                       const std::vector<Word> &args)
{
    Node &node = stack_.node(self);
    Processor &p = node.proc();
    const Word meta = args.at(0);
    // Handler prologue: unpack kind/seq/round, staleness check.
    p.regOps(4);
    if (metaSeq(meta) != (seq_ & 0xffffu))
        return; // straggler from a previous collective

    switch (static_cast<Kind>(metaKind(meta))) {
      case Kind::BarrierToken: {
        const std::uint32_t round = metaRound(meta);
        gotToken_[self][round] = true;
        p.regOps(2); // token bookkeeping
        barrierAdvance(self);
        break;
      }
      case Kind::BcastValue: {
        if (!hasValue_[self]) {
            hasValue_[self] = true;
            bcastValue_[self] = args.at(1);
            p.regOps(2); // store value, mark
            bcastForward(self, metaRound(meta));
        }
        break;
      }
      case Kind::GatherValue:
      case Kind::AllToAllValue: {
        // args.at(1) = value; sender identity from the AM itself.
        p.regOps(2); // table index + store
        exchange_[self][src] = args.at(1);
        ++exchangeGot_[self];
        break;
      }
      case Kind::ReduceContrib: {
        // Combine the contribution into the local accumulator.
        p.regOps(2);
        const Word v = args.at(1);
        switch (reduceOp_) {
          case ReduceOp::Sum:
            accum_[self] += v;
            break;
          case ReduceOp::Max:
            accum_[self] = std::max(accum_[self], v);
            break;
          case ReduceOp::Min:
            accum_[self] = std::min(accum_[self], v);
            break;
          case ReduceOp::BitOr:
            accum_[self] |= v;
            break;
        }
        ++contribGot_[self];
        reduceTrySend(self);
        break;
      }
      default:
        msgsim_panic("collectives: bad message kind from node ", src);
    }
}

bool
Collectives::progress(const std::function<bool()> &done)
{
    for (int round = 0; round < 256; ++round) {
        if (done())
            return true;
        stack_.settle();
        bool any = false;
        for (NodeId id = 0; id < nodes(); ++id) {
            Node &node = stack_.node(id);
            if (!node.ni().hwRecvPending())
                continue;
            any = true;
            FeatureScope fs(node.acct(), Feature::BaseCost);
            stack_.cmam(id).poll();
        }
        if (!any && done())
            return true;
        if (!any)
            return done();
    }
    return done();
}

std::uint64_t
Collectives::totalInstructions()
{
    std::uint64_t sum = 0;
    for (NodeId id = 0; id < nodes(); ++id)
        sum += stack_.node(id).acct().counter().paperTotal();
    return sum;
}

// ------------------------------------------------------------------
// Barrier (dissemination).
// ------------------------------------------------------------------

void
Collectives::barrierAdvance(NodeId self)
{
    const std::uint32_t r = rounds();
    while (waitRound_[self] < r && gotToken_[self][waitRound_[self]]) {
        ++waitRound_[self];
        if (waitRound_[self] < r) {
            const NodeId peer = static_cast<NodeId>(
                (self + (1u << waitRound_[self])) % nodes());
            amSend(self, peer, Kind::BarrierToken, waitRound_[self],
                   0);
        }
    }
    if (waitRound_[self] >= r)
        barrierDone_[self] = true;
}

Collectives::CollResult
Collectives::barrier()
{
    CollResult res;
    const std::uint32_t n = nodes();
    const std::uint32_t r = rounds();
    ++seq_;
    messages_ = 0;
    gotToken_.assign(n, std::vector<bool>(std::max(r, 1u), false));
    waitRound_.assign(n, 0);
    barrierDone_.assign(n, r == 0);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    if (r > 0)
        for (NodeId id = 0; id < n; ++id)
            amSend(id, static_cast<NodeId>((id + 1) % n),
                   Kind::BarrierToken, 0, 0);
    res.ok = progress([this] {
        for (bool d : barrierDone_)
            if (!d)
                return false;
        return true;
    });
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

// ------------------------------------------------------------------
// Broadcast (binomial tree).
// ------------------------------------------------------------------

void
Collectives::bcastForward(NodeId self, std::uint32_t from_round)
{
    const std::uint32_t n = nodes();
    const std::uint32_t rel = (self + n - bcastRoot_) % n;
    for (std::uint32_t k = from_round; k < rounds(); ++k) {
        const std::uint32_t peer_rel = rel + (1u << k);
        if (rel < (1u << k) && peer_rel < n) {
            const NodeId peer =
                static_cast<NodeId>((bcastRoot_ + peer_rel) % n);
            amSend(self, peer, Kind::BcastValue, k + 1,
                   bcastValue_[self]);
        }
    }
}

Collectives::CollResult
Collectives::broadcast(NodeId root, Word value, std::vector<Word> &out)
{
    CollResult res;
    const std::uint32_t n = nodes();
    ++seq_;
    messages_ = 0;
    bcastRoot_ = root;
    hasValue_.assign(n, false);
    bcastValue_.assign(n, 0);
    hasValue_[root] = true;
    bcastValue_[root] = value;

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    bcastForward(root, 0);
    res.ok = progress([this] {
        for (bool h : hasValue_)
            if (!h)
                return false;
        return true;
    });
    out = bcastValue_;
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

// ------------------------------------------------------------------
// Reduce (binomial combining tree).
// ------------------------------------------------------------------

void
Collectives::reduceTrySend(NodeId self)
{
    if (contribSent_[self])
        return;
    if (contribGot_[self] < contribWant_[self])
        return;
    const std::uint32_t n = nodes();
    const std::uint32_t rel = (self + n - reduceRoot_) % n;
    if (rel == 0)
        return; // the root only collects
    // Parent: clear the lowest set bit of the relative rank.
    const std::uint32_t lsb = rel & (~rel + 1);
    const NodeId parent =
        static_cast<NodeId>((reduceRoot_ + (rel - lsb)) % n);
    contribSent_[self] = true;
    amSend(self, parent, Kind::ReduceContrib, 0, accum_[self]);
}

Collectives::CollResult
Collectives::reduce(ReduceOp op, const std::vector<Word> &in,
                    Word &out, NodeId root)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("reduce: need one contribution per node (", n,
                     "), got ", in.size());
    ++seq_;
    messages_ = 0;
    reduceOp_ = op;
    reduceRoot_ = root;
    accum_ = in;
    contribWant_.assign(n, 0);
    contribGot_.assign(n, 0);
    contribSent_.assign(n, false);

    // Node at relative rank r expects one contribution per child
    // r + 2^j for j < lsb-index(r) (all j for the root).
    for (NodeId id = 0; id < n; ++id) {
        const std::uint32_t rel = (id + n - root) % n;
        std::uint32_t want = 0;
        for (std::uint32_t j = 0; j < rounds(); ++j) {
            if (rel != 0 && (rel & (1u << j)))
                break; // j reached the lsb of rel
            if (rel + (1u << j) < n)
                ++want;
        }
        contribWant_[id] = want;
    }

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId id = 0; id < n; ++id)
        reduceTrySend(id); // leaves fire immediately
    const NodeId rootId = root;
    res.ok = progress([this, rootId] {
        return contribGot_[rootId] >= contribWant_[rootId];
    });
    out = accum_[root];
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::gather(const std::vector<Word> &in, std::vector<Word> &out,
                    NodeId root)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("gather: need one contribution per node");
    ++seq_;
    messages_ = 0;
    exchange_.assign(n, std::vector<Word>(n, 0));
    exchangeGot_.assign(n, 0);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId id = 0; id < n; ++id) {
        if (id == root)
            continue;
        amSend(id, root, Kind::GatherValue, 0, in[id]);
    }
    const NodeId rootId = root;
    const std::uint32_t want = n - 1;
    res.ok = progress([this, rootId, want] {
        return exchangeGot_[rootId] >= want;
    });
    out = exchange_[root];
    out[root] = in[root];
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::allToAll(const std::vector<std::vector<Word>> &in,
                      std::vector<std::vector<Word>> &out)
{
    CollResult res;
    const std::uint32_t n = nodes();
    if (in.size() != n)
        msgsim_fatal("allToAll: need one row per node");
    ++seq_;
    messages_ = 0;
    exchange_.assign(n, std::vector<Word>(n, 0));
    exchangeGot_.assign(n, 0);

    const std::uint64_t instr0 = totalInstructions();
    const Tick t0 = stack_.sim().now();
    for (NodeId i = 0; i < n; ++i) {
        if (in[i].size() != n)
            msgsim_fatal("allToAll: row ", i, " has ", in[i].size(),
                         " entries, want ", n);
        for (NodeId j = 0; j < n; ++j) {
            if (i == j) {
                exchange_[i][i] = in[i][i];
                continue;
            }
            amSend(i, j, Kind::AllToAllValue, 0, in[i][j]);
        }
    }
    const std::uint32_t want = n - 1;
    res.ok = progress([this, want] {
        for (auto got : exchangeGot_)
            if (got < want)
                return false;
        return true;
    });
    out = exchange_;
    res.messages = messages_;
    res.instructions = totalInstructions() - instr0;
    res.elapsed = stack_.sim().now() - t0;
    return res;
}

Collectives::CollResult
Collectives::allReduce(ReduceOp op, const std::vector<Word> &in,
                       std::vector<Word> &out)
{
    Word total = 0;
    CollResult r1 = reduce(op, in, total, 0);
    CollResult r2 = broadcast(0, total, out);
    CollResult res;
    res.ok = r1.ok && r2.ok;
    res.messages = r1.messages + r2.messages;
    res.instructions = r1.instructions + r2.instructions;
    res.elapsed = r1.elapsed + r2.elapsed;
    return res;
}

} // namespace msgsim

/**
 * @file
 * Collective operations over active messages — the "collection of
 * computing nodes working in concert" workload of the paper's
 * introduction, built directly on the CMAM single-packet primitive.
 *
 * All algorithms are handler-driven (each arriving active message
 * decides locally what to forward), so they exercise the messaging
 * layer exactly the way fine-grain parallel programs do:
 *
 *  - barrier()    — dissemination barrier, ceil(log2 N) rounds, one
 *                   token message per node per round;
 *  - broadcast()  — binomial tree from the root;
 *  - reduce()     — binomial combining tree to the root;
 *  - allReduce()  — reduce to node 0, then broadcast.
 *
 * Each operation reports the number of messages, the aggregate
 * instruction bill across all nodes, and the simulated time.
 */

#ifndef MSGSIM_COLL_COLLECTIVES_HH
#define MSGSIM_COLL_COLLECTIVES_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "protocols/stack.hh"

namespace msgsim
{

/**
 * Collective-operation engine bound to one stack.
 */
class Collectives
{
  public:
    /** Combining operator for reductions. */
    enum class ReduceOp : std::uint8_t
    {
        Sum,
        Max,
        Min,
        BitOr,
    };

    /** Outcome of one collective operation. */
    struct CollResult
    {
        bool ok = false;
        std::uint64_t messages = 0;   ///< active messages sent
        std::uint64_t instructions = 0; ///< aggregate across nodes
        Tick elapsed = 0;
    };

    explicit Collectives(Stack &stack);

    Collectives(const Collectives &) = delete;
    Collectives &operator=(const Collectives &) = delete;

    /** Dissemination barrier across all nodes. */
    CollResult barrier();

    /**
     * Broadcast @p value from @p root; on completion @p out[i] holds
     * the value on node i.
     */
    CollResult broadcast(NodeId root, Word value,
                         std::vector<Word> &out);

    /**
     * Reduce @p in (one contribution per node) with @p op to
     * @p root; @p out receives the result.
     */
    CollResult reduce(ReduceOp op, const std::vector<Word> &in,
                      Word &out, NodeId root = 0);

    /** Reduce to node 0 then broadcast: every node gets the result. */
    CollResult allReduce(ReduceOp op, const std::vector<Word> &in,
                         std::vector<Word> &out);

    /**
     * Gather one word per node to @p root: @p out[i] is node i's
     * contribution.  Flat gather over the combining-tree transport
     * (each contribution rides its own message, tagged by rank).
     */
    CollResult gather(const std::vector<Word> &in,
                      std::vector<Word> &out, NodeId root = 0);

    /**
     * All-to-all personalized exchange: @p in[i][j] is the word node
     * i sends node j; on completion @p out[i][j] holds what node i
     * received from node j.  N*(N-1) messages — the heaviest
     * single-packet workload a machine sustains.
     */
    CollResult allToAll(const std::vector<std::vector<Word>> &in,
                        std::vector<std::vector<Word>> &out);

  private:
    /** Handler-message kinds (packed into the payload). */
    enum class Kind : Word
    {
        BarrierToken = 1,
        BcastValue = 2,
        ReduceContrib = 3,
        GatherValue = 4,
        AllToAllValue = 5,
    };

    std::uint32_t nodes() const { return stack_.machine().nodeCount(); }
    std::uint32_t rounds() const; ///< ceil(log2 N)

    void onMessage(NodeId self, NodeId src,
                   const std::vector<Word> &args);
    void amSend(NodeId self, NodeId dst, Kind kind, Word a, Word b);

    void barrierAdvance(NodeId self);
    void bcastForward(NodeId self, std::uint32_t from_round);
    void reduceTrySend(NodeId self);

    /** Run the progress loop until @p done (or round budget). */
    bool progress(const std::function<bool()> &done);

    /** Aggregate instruction total across every node. */
    std::uint64_t totalInstructions();

    Stack &stack_;
    std::vector<int> handlerIds_;

    // Per-operation state (one collective at a time; a sequence
    // number guards against stragglers).
    Word seq_ = 0;
    std::uint64_t messages_ = 0;

    // Barrier state.
    std::vector<std::vector<bool>> gotToken_; ///< [node][round]
    std::vector<std::uint32_t> waitRound_;
    std::vector<bool> barrierDone_;

    // Broadcast state.
    NodeId bcastRoot_ = 0;
    std::vector<bool> hasValue_;
    std::vector<Word> bcastValue_;

    // Reduce state.
    ReduceOp reduceOp_ = ReduceOp::Sum;
    NodeId reduceRoot_ = 0;
    std::vector<Word> accum_;
    std::vector<std::uint32_t> contribWant_;
    std::vector<std::uint32_t> contribGot_;
    std::vector<bool> contribSent_;

    // Gather / all-to-all state: [receiver][sender] -> value.
    std::vector<std::vector<Word>> exchange_;
    std::vector<std::uint32_t> exchangeGot_;
};

} // namespace msgsim

#endif // MSGSIM_COLL_COLLECTIVES_HH

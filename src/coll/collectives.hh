/**
 * @file
 * Collective operations over active messages — the "collection of
 * computing nodes working in concert" workload of the paper's
 * introduction, built directly on the CMAM single-packet primitive.
 *
 * All algorithms are handler-driven (each arriving active message
 * decides locally what to forward), so they exercise the messaging
 * layer exactly the way fine-grain parallel programs do:
 *
 *  - barrier()    — dissemination barrier, ceil(log2 N) rounds, one
 *                   token message per node per round;
 *  - broadcast()  — binomial tree from the root;
 *  - reduce()     — binomial combining tree to the root;
 *  - allReduce()  — reduce to node 0, then broadcast.
 *
 * broadcast/reduce/allReduce take an algorithm selector: the binomial
 * Tree default, a serial Ring (accumulate chain + forward chain,
 * 2(N-1) messages for allreduce), and RecursiveDoubling (butterfly
 * exchange, N log2 N messages, power-of-two node counts only).  For
 * broadcast and reduce alone, recursive doubling's dissemination is
 * the binomial tree, so those selections degenerate to Tree.
 *
 * Each operation reports the number of messages, the aggregate
 * instruction bill across all nodes, the poll entries the progress
 * loop spent, and the simulated time.
 */

#ifndef MSGSIM_COLL_COLLECTIVES_HH
#define MSGSIM_COLL_COLLECTIVES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "protocols/stack.hh"

namespace msgsim
{

/**
 * Collective-operation engine bound to one stack.
 */
class Collectives
{
  public:
    /** Combining operator for reductions. */
    enum class ReduceOp : std::uint8_t
    {
        Sum,
        Max,
        Min,
        BitOr,
    };

    /** Algorithm selector for broadcast / reduce / allReduce. */
    enum class Algo : std::uint8_t
    {
        Tree,              ///< binomial tree (the default)
        Ring,              ///< serial chain(s) around the ring
        RecursiveDoubling, ///< butterfly exchange (pow2 nodes only)
    };

    /** Outcome of one collective operation. */
    struct CollResult
    {
        bool ok = false;
        std::uint64_t messages = 0;   ///< active messages sent
        std::uint64_t instructions = 0; ///< aggregate across nodes
        std::uint64_t polls = 0;      ///< cmam poll entries spent
        Tick elapsed = 0;
    };

    explicit Collectives(Stack &stack);

    Collectives(const Collectives &) = delete;
    Collectives &operator=(const Collectives &) = delete;

    /** Dissemination barrier across all nodes. */
    CollResult barrier();

    /**
     * Broadcast @p value from @p root; on completion @p out[i] holds
     * the value on node i.  RecursiveDoubling degenerates to Tree
     * (binomial dissemination IS the recursive-doubling broadcast).
     */
    CollResult broadcast(NodeId root, Word value,
                         std::vector<Word> &out,
                         Algo algo = Algo::Tree);

    /**
     * Reduce @p in (one contribution per node) with @p op to
     * @p root; @p out receives the result.  RecursiveDoubling
     * degenerates to Tree.
     */
    CollResult reduce(ReduceOp op, const std::vector<Word> &in,
                      Word &out, NodeId root = 0,
                      Algo algo = Algo::Tree);

    /**
     * Every node gets the combined result.  Tree: reduce to node 0
     * then broadcast, 2(N-1) messages.  Ring: accumulate chain plus
     * forward chain, 2(N-1) messages, fully serial.
     * RecursiveDoubling: butterfly, N log2 N messages in log2 N
     * rounds; fatal unless N is a power of two.
     */
    CollResult allReduce(ReduceOp op, const std::vector<Word> &in,
                         std::vector<Word> &out,
                         Algo algo = Algo::Tree);

    /**
     * Gather one word per node to @p root: @p out[i] is node i's
     * contribution.  Flat gather over the combining-tree transport
     * (each contribution rides its own message, tagged by rank).
     */
    CollResult gather(const std::vector<Word> &in,
                      std::vector<Word> &out, NodeId root = 0);

    /**
     * All-to-all personalized exchange: @p in[i][j] is the word node
     * i sends node j; on completion @p out[i][j] holds what node i
     * received from node j.  N*(N-1) messages — the heaviest
     * single-packet workload a machine sustains.
     */
    CollResult allToAll(const std::vector<std::vector<Word>> &in,
                        std::vector<std::vector<Word>> &out);

  private:
    /** Handler-message kinds (packed into the payload). */
    enum class Kind : Word
    {
        BarrierToken = 1,
        BcastValue = 2,
        ReduceContrib = 3,
        GatherValue = 4,
        AllToAllValue = 5,
        RingAcc = 6,    ///< ring reduce: running total, combine+forward
        RingFwd = 7,    ///< ring broadcast: store+forward
        RdExchange = 8, ///< recursive doubling: round-tagged exchange
    };

    std::uint32_t nodes() const { return stack_.machine().nodeCount(); }
    std::uint32_t rounds() const; ///< ceil(log2 N)

    void onMessage(NodeId self, NodeId src,
                   const std::vector<Word> &args);
    void amSend(NodeId self, NodeId dst, Kind kind, Word a, Word b);

    void barrierAdvance(NodeId self);
    void bcastForward(NodeId self, std::uint32_t from_round);
    void reduceTrySend(NodeId self);
    void combineInto(Word &acc, Word v) const;
    void rdAdvance(NodeId self);
    CollResult ringReduce(ReduceOp op, const std::vector<Word> &in,
                          Word &out, NodeId root);
    CollResult ringBroadcast(NodeId root, Word value,
                             std::vector<Word> &out);
    CollResult rdAllReduce(ReduceOp op, const std::vector<Word> &in,
                           std::vector<Word> &out);

    /** Run the progress loop until @p done (or round budget). */
    bool progress(const std::function<bool()> &done);

    /** Aggregate instruction total across every node. */
    std::uint64_t totalInstructions();

    Stack &stack_;
    std::vector<int> handlerIds_;

    // Per-operation state (one collective at a time; a sequence
    // number guards against stragglers).
    Word seq_ = 0;
    std::uint64_t messages_ = 0;
    std::uint64_t polls_ = 0;

    // Barrier state.
    std::vector<std::vector<bool>> gotToken_; ///< [node][round]
    std::vector<std::uint32_t> waitRound_;
    std::vector<bool> barrierDone_;

    // Broadcast state.
    NodeId bcastRoot_ = 0;
    std::vector<bool> hasValue_;
    std::vector<Word> bcastValue_;

    // Reduce state.
    ReduceOp reduceOp_ = ReduceOp::Sum;
    NodeId reduceRoot_ = 0;
    std::vector<Word> accum_;
    std::vector<std::uint32_t> contribWant_;
    std::vector<std::uint32_t> contribGot_;
    std::vector<bool> contribSent_;

    // Gather / all-to-all state: [receiver][sender] -> value.
    std::vector<std::vector<Word>> exchange_;
    std::vector<std::uint32_t> exchangeGot_;

    // Ring chains: per-node "chain token seen" flag.
    std::vector<bool> ringGot_;

    // Recursive doubling: per-node round cursor, partial value, and
    // the round-tagged stash of early arrivals.
    std::vector<std::uint32_t> rdRound_;
    std::vector<Word> rdVal_;
    std::vector<std::vector<Word>> rdGot_;  ///< [node][round]
    std::vector<std::vector<bool>> rdHave_; ///< [node][round]
};

/** Printable name of an algorithm ("tree" / "ring" / "rd"). */
const char *toString(Collectives::Algo a);

/** Parse "tree" / "ring" / "rd"; false = unknown. */
bool algoFromString(const std::string &name, Collectives::Algo &out);

} // namespace msgsim

#endif // MSGSIM_COLL_COLLECTIVES_HH

/**
 * @file
 * RDMA/verbs-style network substrate.
 *
 * Models the fabric half of a modern verbs NIC (the layered cost
 * breakdown of "Breaking Band", arXiv 2002.02563): a lossless,
 * credit-flow-controlled switched fabric over which each queue pair
 * sees reliable, strictly in-order delivery:
 *
 *  1. *Per-QP in-order transmission* — packets of a (src, dst, vnet)
 *     flow arrive in injection order; a stalled packet (receiver not
 *     ready) blocks its flow, younger packets queue behind it.
 *  2. *Link-level reliability* — injected faults are absorbed by
 *     link-level retry (PFC + CRC retransmission) and never become
 *     visible to the endpoints; the payload arrives intact exactly
 *     once.
 *  3. *Receiver-not-ready backpressure* — the destination NIC may
 *     refuse a packet (no posted receive, completion queue full);
 *     the fabric holds the flow and retries later (the RNR NAK
 *     cycle), so deadlock freedom never depends on acceptance.
 *
 * What is genuinely new versus CrNetwork is declared in features():
 * zero-copy delivery into registered regions and host-polled
 * completion queues — capabilities the RdmaNic host layer exploits
 * and the differential profiler measures as the completion-poll and
 * registration feature columns.
 */

#ifndef MSGSIM_RDMANET_RDMA_NETWORK_HH
#define MSGSIM_RDMANET_RDMA_NETWORK_HH

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <utility>

#include "net/fault.hh"
#include "net/network.hh"
#include "net/topology.hh"

namespace msgsim
{

/**
 * Reliable, per-QP-in-order, acceptance-independent RDMA fabric.
 */
class RdmaNetwork : public Network
{
  public:
    struct Config
    {
        std::uint32_t nodes = 4;   ///< endpoint count
        std::uint32_t arity = 4;   ///< fat-tree arity
        Tick baseLatency = 10;     ///< fixed injection-to-edge time
        Tick hopLatency = 2;       ///< per switch-to-switch hop
        Tick linkRetryDelay = 6;   ///< link-level CRC retransmission
        Tick rnrRetryDelay = 12;   ///< receiver-not-ready retry period
        Tick injectGap = 0;        ///< link-bandwidth: per-source spacing
        Tick deliverGap = 0;       ///< link-bandwidth: per-dest spacing
        FaultInjector::Config faults; ///< absorbed by link-level retry
    };

    RdmaNetwork(Simulator &sim, const Config &cfg);

    NetFeatures
    features() const override
    {
        NetFeatures f;
        f.inOrderDelivery = true;
        f.reliableDelivery = true;
        f.acceptanceIndependent = true;
        f.zeroCopy = true;
        f.completionQueue = true;
        return f;
    }

    const FatTree &topology() const { return tree_; }
    FaultInjector &faults() { return faults_; }

  protected:
    bool injectImpl(Packet &&pkt) override;

  private:
    using FlowKey = std::tuple<NodeId, NodeId, int>;

    struct FlowState
    {
        std::deque<Packet> queue; ///< arrived, not yet accepted
        bool drainScheduled = false;
    };

    /** Enqueue an arrived packet and try to drain its flow. */
    void arrive(FlowKey flow, Packet &&pkt);

    /** Deliver queued packets of @p flow in order until one stalls. */
    void drain(FlowKey flow);

    Config cfg_;
    FatTree tree_;
    FaultInjector faults_;
    std::map<FlowKey, FlowState> flows_;
    std::map<FlowKey, Tick> lastArrival_;
    std::map<NodeId, Tick> lastDeparture_; ///< injection serialization
    std::map<NodeId, Tick> lastAtDest_;    ///< delivery serialization
};

} // namespace msgsim

#endif // MSGSIM_RDMANET_RDMA_NETWORK_HH

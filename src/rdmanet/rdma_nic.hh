/**
 * @file
 * The verbs-style host interface of the RDMA substrate.
 *
 * Where the CM-5 NI is a pair of memory-mapped FIFOs the processor
 * feeds one word at a time, a verbs NIC moves the data itself.  The
 * host's instruction bill changes shape accordingly (Breaking Band,
 * arXiv 2002.02563):
 *
 *  - *send*: build a four-word work-queue entry in host memory and
 *    ring a doorbell (one device store).  The NIC then DMA-reads the
 *    payload from the registered source region — the per-word
 *    device stores of the CM-5 path vanish;
 *  - *receive*: the NIC DMA-writes payloads straight into the posted,
 *    registered buffer (zero copy) and reports through a completion
 *    queue in host memory.  The host's receive cost is the CQ poll —
 *    charged under the new Feature::CompletionPoll column;
 *  - *registration*: before the NIC may touch a region the host must
 *    pin and translate it.  First touch is expensive, a hit in the
 *    MR cache is cheap — charged under Feature::Registration.
 *
 * The paper's 1994 overheads (buffering, in-order, fault tolerance)
 * are absorbed by the fabric (RdmaNetwork); the two new columns are
 * what today's stacks pay instead.
 */

#ifndef MSGSIM_RDMANET_RDMA_NIC_HH
#define MSGSIM_RDMANET_RDMA_NIC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "machine/node.hh"
#include "net/network.hh"
#include "net/packet.hh"

namespace msgsim
{

/**
 * Per-node verbs interface: queue pairs, doorbells, completion queue,
 * memory-registration cache.  Replaces the node's NI as the network
 * delivery sink.
 */
class RdmaNic
{
  public:
    struct Config
    {
        int mtuWords = 4;       ///< fabric packet payload (matches NI)
        int mrCacheSlots = 4;   ///< registration-cache entries
        std::size_t cqCapacity = 64; ///< completion-queue entries
        std::uint32_t pageWords = 256; ///< translation granularity
    };

    /** One harvested completion-queue entry. */
    struct Completion
    {
        enum class Kind : std::uint8_t { Send, Recv };
        Kind kind = Kind::Send;
        Word qp = 0;
        NodeId peer = invalidNode;
        std::uint32_t words = 0;
        Word userTag = 0;
    };

    /** Invoked from pollCq() for each harvested completion. */
    using CompletionFn = std::function<void(const Completion &)>;

    RdmaNic(Node &node, Network &net, const Config &cfg);

    RdmaNic(const RdmaNic &) = delete;
    RdmaNic &operator=(const RdmaNic &) = delete;

    Node &node() { return node_; }

    /** Install the completion callback (application level). */
    void setCompletionFn(CompletionFn fn) { completionFn_ = std::move(fn); }

    // ------------------------------------------------------------
    // Control plane (uncharged, like connection management).
    // ------------------------------------------------------------

    /** Bind queue pair @p qp to @p peer (done by RdmaStack). */
    void bindQp(Word qp, NodeId peer);

    // ------------------------------------------------------------
    // Verbs (charged host operations).
    // ------------------------------------------------------------

    /**
     * Register [addr, addr+words) with the NIC.  Charged under
     * Feature::Registration: a cache hit costs a probe (4 reg +
     * 1 mem), a miss pays pinning, per-page translation stores and
     * the device writes that program the NIC's MR table.  Returns
     * true on a cache hit.
     */
    bool regMr(Addr addr, std::uint32_t words);

    /**
     * Post a receive buffer on @p qp: recv WQE build + doorbell.
     * The buffer must be registered.  Charged as base cost.
     */
    void postRecv(Word qp, Addr buf, std::uint32_t words, Word userTag);

    /**
     * Post a send of @p words words at @p laddr on @p qp: lkey check,
     * send WQE build, doorbell.  The NIC fragments and injects the
     * message itself (zero copy).  Returns false when the completion
     * queue has no free slot for the send completion — the host must
     * poll the CQ first (doorbell backpressure).
     */
    bool postSend(Word qp, Addr laddr, std::uint32_t words,
                  Word userTag);

    /**
     * Harvest up to @p max completions (-1 = all).  Charged under
     * Feature::CompletionPoll: producer-index probes, CQE reads from
     * host memory, callback linkage.  Returns completions harvested.
     */
    int pollCq(int max = -1);

    // ------------------------------------------------------------
    // Hardware side (uncharged): the network delivery sink.
    // ------------------------------------------------------------

    /** Fragment arrival from the fabric; false = receiver not ready. */
    bool nicDeliver(Packet &&pkt);

    // ------------------------------------------------------------
    // Accounting (diagnostics; never charged).
    // ------------------------------------------------------------

    std::uint64_t mrCacheHits() const { return mrCacheHits_; }
    std::uint64_t mrCacheMisses() const { return mrCacheMisses_; }
    std::uint64_t cqesHarvested() const { return cqesHarvested_; }
    /// Deliveries refused because the CQ had no free slot.
    std::uint64_t cqOverflowStalls() const { return cqOverflowStalls_; }
    /// Deliveries refused because no receive was posted (RNR).
    std::uint64_t rnrNoRecv() const { return rnrNoRecv_; }
    /// postSend() calls refused for want of a CQ slot.
    std::uint64_t sendStalls() const { return sendStalls_; }
    std::size_t cqDepth() const { return cq_.size(); }

    /** Receive WQEs posted but not yet consumed, across all QPs. */
    std::size_t
    postedRecvCount() const
    {
        std::size_t n = 0;
        for (const auto &[qp, q] : postedRecvs_)
            n += q.size();
        return n;
    }

    /** Send WQEs ever posted (doorbells rung). */
    std::uint64_t sendsPosted() const { return sendRingIdx_; }

    /** The NIC's configuration (CQ capacity etc.). */
    const Config &config() const { return cfg_; }

  private:
    struct QpState
    {
        NodeId peer = invalidNode;
        // Receive-side reassembly of the in-flight message.
        Addr buf = 0;
        std::uint32_t offset = 0;
        std::uint32_t remaining = 0;
        Word userTag = 0;
    };

    struct PostedRecv
    {
        Addr buf = 0;
        std::uint32_t words = 0;
        Word userTag = 0;
    };

    struct MrRegion
    {
        Addr addr = 0;
        std::uint32_t words = 0;
    };

    bool isRegistered(Addr addr, std::uint32_t words) const;
    bool cacheCovers(Addr addr, std::uint32_t words) const;
    void pushCqe(const Completion &c);

    Node &node_;
    Network &net_;
    Config cfg_;
    CompletionFn completionFn_;

    std::map<Word, QpState> qps_;
    std::map<Word, std::deque<PostedRecv>> postedRecvs_;
    std::deque<Completion> cq_;

    // Modeled host-memory structures (allocated at boot, uncharged).
    Addr sendRingBase_ = 0; ///< send WQE ring
    Addr recvRingBase_ = 0; ///< recv WQE ring
    Addr cqRingBase_ = 0;   ///< CQE ring (NIC DMA-writes, host reads)
    Addr cqIndexAddr_ = 0;  ///< producer/consumer index pair
    Addr mrTableBase_ = 0;  ///< per-slot translation entries
    std::uint64_t sendRingIdx_ = 0;
    std::uint64_t recvRingIdx_ = 0;
    std::uint64_t cqProducer_ = 0;
    std::uint64_t cqConsumer_ = 0;

    std::vector<MrRegion> mrCache_;    ///< bounded (FIFO eviction)
    std::vector<MrRegion> registered_; ///< all regions ever pinned
    std::uint64_t mrCacheNext_ = 0;

    std::uint64_t mrCacheHits_ = 0;
    std::uint64_t mrCacheMisses_ = 0;
    std::uint64_t cqesHarvested_ = 0;
    std::uint64_t cqOverflowStalls_ = 0;
    std::uint64_t rnrNoRecv_ = 0;
    std::uint64_t sendStalls_ = 0;
};

} // namespace msgsim

#endif // MSGSIM_RDMANET_RDMA_NIC_HH

#include "rdmanet/rdma_nic.hh"

#include <algorithm>

#include "core/row.hh"
#include "hostprof/hostprof.hh"
#include "net/lineage_hook.hh"
#include "sim/log.hh"
#include "sim/trace_session.hh"

namespace msgsim
{

namespace
{
/// Translation-table words reserved per MR-cache slot: enough for a
/// 16-page region at the default page size.
constexpr std::uint32_t kSlotEntries = 16;
} // namespace

RdmaNic::RdmaNic(Node &node, Network &net, const Config &cfg)
    : node_(node), net_(net), cfg_(cfg)
{
    if (cfg_.mtuWords < 2 || cfg_.mtuWords % 2 != 0)
        msgsim_fatal("rdma mtu of ", cfg_.mtuWords,
                     " words: must be even and >= 2");
    if (cfg_.mrCacheSlots < 1)
        msgsim_fatal("rdma MR cache needs at least one slot");
    if (cfg_.cqCapacity < 2)
        msgsim_fatal("rdma CQ needs at least two entries");

    // Boot-time allocation of the modeled host rings (uncharged,
    // like driver initialization).
    Memory &mem = node_.mem();
    sendRingBase_ = mem.alloc(64 * 4);
    recvRingBase_ = mem.alloc(64 * 4);
    cqRingBase_ = mem.alloc(cfg_.cqCapacity * 4);
    cqIndexAddr_ = mem.alloc(2);
    mrTableBase_ = mem.alloc(
        static_cast<std::size_t>(cfg_.mrCacheSlots) * kSlotEntries);
    mrCache_.resize(static_cast<std::size_t>(cfg_.mrCacheSlots));

    // The NIC is the delivery sink: zero-copy DMA placement replaces
    // the NI receive FIFO entirely.
    net_.attach(node_.id(), [this](Packet &&pkt) {
        return nicDeliver(std::move(pkt));
    });
}

void
RdmaNic::bindQp(Word qp, NodeId peer)
{
    if (qp > hdr::maxFieldA)
        msgsim_fatal("qp id ", qp, " exceeds the header field");
    if (qps_.count(qp))
        msgsim_fatal("qp ", qp, " already bound on node ", node_.id());
    QpState st;
    st.peer = peer;
    qps_[qp] = st;
    postedRecvs_[qp];
}

bool
RdmaNic::cacheCovers(Addr addr, std::uint32_t words) const
{
    for (const MrRegion &r : mrCache_)
        if (r.words != 0 && addr >= r.addr &&
            addr + words <= r.addr + r.words)
            return true;
    return false;
}

bool
RdmaNic::isRegistered(Addr addr, std::uint32_t words) const
{
    for (const MrRegion &r : registered_)
        if (addr >= r.addr && addr + words <= r.addr + r.words)
            return true;
    return false;
}

bool
RdmaNic::regMr(Addr addr, std::uint32_t words)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "rdma", "reg_mr");
    hostprof::HostScope hps(hostprof::Site::RdmaPost);
    FeatureScope reg(a, Feature::Registration);

    if (words == 0)
        msgsim_fatal("empty memory registration");

    // Cache probe: hash the address, load the slot tag, compare.
    const std::uint64_t slot =
        (addr / cfg_.pageWords) %
        static_cast<std::uint64_t>(cfg_.mrCacheSlots);
    {
        RowScope r(a, CostRow::CheckStatus);
        p.regOps(4);
        (void)p.loadWord(mrTableBase_ + slot * kSlotEntries);
    }
    if (cacheCovers(addr, words)) {
        ++mrCacheHits_;
        return true;
    }
    ++mrCacheMisses_;

    // Miss: pin pages, build translation entries, program the NIC.
    const std::uint32_t pages =
        (words + cfg_.pageWords - 1) / cfg_.pageWords;
    if (pages > kSlotEntries)
        msgsim_fatal("MR of ", words,
                     " words exceeds the modeled translation table");
    {
        RowScope r(a, CostRow::Other);
        p.regOps(12); // length/permission checks, pin bookkeeping
        const Addr entries =
            mrTableBase_ +
            (mrCacheNext_ % static_cast<std::uint64_t>(
                                cfg_.mrCacheSlots)) *
                kSlotEntries;
        for (std::uint32_t pg = 0; pg < pages; ++pg) {
            p.regOps(2); // page-frame lookup
            p.storeWord(entries + pg,
                        (addr / cfg_.pageWords + pg) | 0x1u);
        }
    }
    {
        // Program the NIC's MR table: base/key write plus enable.
        RowScope r(a, CostRow::NiSetup);
        p.regOps(2);
        a.charge(OpClass::DevStore, 2);
    }

    MrRegion region{addr, words};
    mrCache_[static_cast<std::size_t>(
        mrCacheNext_ % static_cast<std::uint64_t>(cfg_.mrCacheSlots))] =
        region;
    ++mrCacheNext_;
    registered_.push_back(region);
    return false;
}

void
RdmaNic::postRecv(Word qp, Addr buf, std::uint32_t words, Word userTag)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "rdma", "post_recv");
    hostprof::HostScope hps(hostprof::Site::RdmaPost);

    if (!qps_.count(qp))
        msgsim_fatal("postRecv on unbound qp ", qp);
    if (!isRegistered(buf, words))
        msgsim_fatal("postRecv into unregistered region at ", buf);

    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(2); // ibv_post_recv linkage
    }
    {
        // Build the four-word recv WQE in the host ring.
        RowScope r(a, CostRow::NiSetup);
        p.regOps(3);
        const Addr wqe = recvRingBase_ + (recvRingIdx_ % 64) * 4;
        ++recvRingIdx_;
        p.storeDouble(wqe, buf, words);
        p.storeDouble(wqe + 2, userTag, qp);
    }
    {
        // Ring the recv doorbell.
        RowScope r(a, CostRow::WriteNi);
        a.charge(OpClass::DevStore);
    }
    postedRecvs_[qp].push_back(PostedRecv{buf, words, userTag});
}

bool
RdmaNic::postSend(Word qp, Addr laddr, std::uint32_t words, Word userTag)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "rdma", "post_send");
    hostprof::HostScope hps(hostprof::Site::RdmaPost);

    auto it = qps_.find(qp);
    if (it == qps_.end())
        msgsim_fatal("postSend on unbound qp ", qp);
    const int n = cfg_.mtuWords;
    if (words == 0 || words % static_cast<std::uint32_t>(n) != 0)
        msgsim_fatal("rdma send of ", words,
                     " words: not a multiple of the mtu ", n);
    if (words > hdr::maxFieldB)
        msgsim_fatal("rdma send size exceeds the header field");

    // A send needs a free CQ slot for its completion; refusing the
    // doorbell here is the backpressure a full CQ exerts.
    {
        RowScope r(a, CostRow::CheckStatus);
        p.regOps(2);
        (void)p.loadWord(cqIndexAddr_); // consumer-index reload
    }
    if (cq_.size() >= cfg_.cqCapacity) {
        ++sendStalls_;
        return false;
    }

    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(2); // ibv_post_send linkage
    }
    {
        // lkey validation of the source region.
        FeatureScope regf(a, Feature::Registration);
        RowScope r(a, CostRow::CheckStatus);
        p.regOps(2);
        (void)p.loadWord(mrTableBase_);
        if (!isRegistered(laddr, words))
            msgsim_fatal("postSend from unregistered region at ",
                         laddr);
    }
    {
        // Build the four-word send WQE.
        RowScope r(a, CostRow::NiSetup);
        p.regOps(6);
        const Addr wqe = sendRingBase_ + (sendRingIdx_ % 64) * 4;
        ++sendRingIdx_;
        p.storeDouble(wqe, laddr, words);
        p.storeDouble(wqe + 2, userTag, qp);
    }
    {
        // One doorbell, regardless of message size: the per-word
        // device stores of the NI path are gone.
        RowScope r(a, CostRow::WriteNi);
        a.charge(OpClass::DevStore);
    }

    // ---- NIC engine (uncharged): DMA-read the payload, fragment,
    // inject.  The first fragment's header carries the total size.
    Memory &mem = node_.mem();
    bool first = true;
    for (std::uint32_t off = 0; off < words;
         off += static_cast<std::uint32_t>(n)) {
        std::vector<Word> payload(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            payload[static_cast<std::size_t>(i)] =
                mem.read(laddr + off + static_cast<Addr>(i));
        Packet pkt(node_.id(), it->second.peer, HwTag::XferData,
                   hdr::pack(qp, first ? words : 0),
                   std::move(payload));
        first = false;
        if (LineageHooks *lh = LineageHooks::current())
            lh->packetBorn(pkt, node_.id(), net_.sim().now());
        net_.inject(std::move(pkt));
    }
    pushCqe(Completion{Completion::Kind::Send, qp, it->second.peer,
                       words, userTag});
    return true;
}

void
RdmaNic::pushCqe(const Completion &c)
{
    // NIC-side DMA write of the CQE into host memory (uncharged).
    Memory &mem = node_.mem();
    const Addr cqe =
        cqRingBase_ + (cqProducer_ % cfg_.cqCapacity) * 4;
    mem.write(cqe + 0, static_cast<Word>(c.kind));
    mem.write(cqe + 1, c.qp);
    mem.write(cqe + 2, c.words);
    mem.write(cqe + 3, c.userTag);
    mem.write(cqIndexAddr_, static_cast<Word>(++cqProducer_));
    cq_.push_back(c);
}

int
RdmaNic::pollCq(int max)
{
    Processor &p = node_.proc();
    Accounting &a = p.acct();
    ScopedSpan span(node_.id(), "rdma", "poll_cq");
    hostprof::HostScope hps(hostprof::Site::RdmaPoll);
    FeatureScope cpf(a, Feature::CompletionPoll);

    {
        RowScope r(a, CostRow::CallReturn);
        p.callRet(2); // ibv_poll_cq linkage
    }
    int harvested = 0;
    for (;;) {
        {
            // Producer-index probe: has the NIC written anything?
            RowScope r(a, CostRow::CheckStatus);
            (void)p.loadWord(cqIndexAddr_);
            p.regOps(2);
        }
        if (cq_.empty() || harvested == max) {
            RowScope r(a, CostRow::ControlFlow);
            p.branches(1);
            break;
        }
        Completion c = cq_.front();
        cq_.pop_front();
        {
            // Read the four-word CQE from host memory and decode.
            const Addr cqe =
                cqRingBase_ + (cqConsumer_ % cfg_.cqCapacity) * 4;
            ++cqConsumer_;
            (void)p.loadDouble(cqe);
            (void)p.loadDouble(cqe + 2);
            p.regOps(4); // opcode/status/qp decode
            p.storeWord(cqIndexAddr_ + 1,
                        static_cast<Word>(cqConsumer_));
        }
        {
            RowScope r(a, CostRow::CallReturn);
            p.callRet(4); // completion-callback linkage
        }
        ++harvested;
        ++cqesHarvested_;
        if (completionFn_)
            completionFn_(c);
    }
    return harvested;
}

bool
RdmaNic::nicDeliver(Packet &&pkt)
{
    // Hardware-side placement: never charges the host.
    if (pkt.tag != HwTag::XferData)
        msgsim_panic("rdma nic: unexpected tag ",
                     static_cast<int>(pkt.tag));
    if (!pkt.checksumOk())
        msgsim_panic("rdma nic: corrupt packet past a reliable fabric");

    const Word qpId = hdr::fieldA(pkt.header);
    auto it = qps_.find(qpId);
    if (it == qps_.end())
        msgsim_panic("rdma nic: packet for unbound qp ", qpId);
    QpState &qp = it->second;

    if (qp.remaining == 0) {
        // First fragment of a message: match the head posted receive.
        const std::uint32_t total = hdr::fieldB(pkt.header);
        if (total == 0)
            msgsim_panic("rdma nic: data fragment with no message "
                         "in progress on qp ",
                         qpId);
        auto &recvs = postedRecvs_[qpId];
        if (recvs.empty()) {
            // Receiver not ready: the fabric will retry (RNR NAK).
            ++rnrNoRecv_;
            return false;
        }
        const PostedRecv &match = recvs.front();
        if (match.words < total)
            msgsim_panic("rdma nic: posted receive of ", match.words,
                         " words too small for ", total);
        if (!isRegistered(match.buf, total))
            msgsim_panic("rdma nic: receive into unregistered "
                         "region at ",
                         match.buf);
        qp.buf = match.buf;
        qp.offset = 0;
        qp.remaining = total;
        qp.userTag = match.userTag;
    }

    const bool last =
        pkt.data.size() >= static_cast<std::size_t>(qp.remaining);
    if (last && cq_.size() >= cfg_.cqCapacity) {
        // No room to report the receive completion: refuse the last
        // fragment until the host polls (CQ-overflow backpressure).
        ++cqOverflowStalls_;
        if (qp.offset == 0) {
            // Single-fragment message: leave the match untouched so
            // the retry re-runs the whole first-fragment path.
            qp.remaining = 0;
        }
        return false;
    }

    // Zero-copy DMA placement into the registered buffer.
    Memory &mem = node_.mem();
    const std::uint32_t n = std::min(
        static_cast<std::uint32_t>(pkt.data.size()), qp.remaining);
    for (std::uint32_t i = 0; i < n; ++i)
        mem.write(qp.buf + qp.offset + i,
                  pkt.data[static_cast<std::size_t>(i)]);
    qp.offset += n;
    qp.remaining -= n;

    if (qp.remaining == 0) {
        postedRecvs_[qpId].pop_front();
        pushCqe(Completion{Completion::Kind::Recv, qpId, pkt.src,
                           qp.offset, qp.userTag});
    }
    return true;
}

} // namespace msgsim

#include "rdmanet/rdma_stack.hh"

#include <functional>
#include <memory>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace msgsim
{

RdmaStack::RdmaStack(const RdmaStackConfig &cfg) : cfg_(cfg)
{
    Machine::Config mc;
    mc.nodes = cfg_.nodes;
    mc.dataWords = cfg_.dataWords;
    mc.memWords = cfg_.memWords;

    RdmaNetwork::Config nc;
    nc.nodes = cfg_.nodes;
    nc.faults = cfg_.faults;
    nc.injectGap = cfg_.injectGap;
    nc.deliverGap = cfg_.deliverGap;
    machine_ = std::make_unique<Machine>(
        mc, [nc](Simulator &sim) {
            return std::make_unique<RdmaNetwork>(sim, nc);
        });

    RdmaNic::Config rc;
    rc.mtuWords = cfg_.dataWords;
    rc.mrCacheSlots = cfg_.mrCacheSlots;
    rc.cqCapacity = cfg_.cqCapacity;
    nics_.reserve(cfg_.nodes);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i)
        nics_.push_back(std::make_unique<RdmaNic>(
            machine_->node(i), machine_->network(), rc));
}

RdmaNic &
RdmaStack::nic(NodeId id)
{
    if (id >= nics_.size())
        msgsim_panic("rdma: node id ", id, " out of range");
    return *nics_[id];
}

RdmaNetwork &
RdmaStack::net()
{
    return static_cast<RdmaNetwork &>(machine_->network());
}

Word
RdmaStack::connectQp(NodeId a, NodeId b)
{
    const Word qp = nextQp_;
    nextQp_ = nextQp_ >= 200 ? 1 : nextQp_ + 1;
    nic(a).bindQp(qp, b);
    nic(b).bindQp(qp, a);
    return qp;
}

namespace
{

/**
 * Event-mode receive: poll the CQ from the simulated clock every
 * @p gap ticks until @p stop is set.  Models the progress thread a
 * verbs application runs instead of an arrival interrupt.
 */
void
schedulePollLoop(RdmaStack &stack, NodeId id,
                 std::shared_ptr<bool> stop, Tick gap)
{
    stack.sim().schedule(gap, [&stack, id, stop, gap] {
        if (*stop)
            return;
        Node &nd = stack.node(id);
        FeatureScope fs(nd.acct(), Feature::BaseCost);
        stack.nic(id).pollCq();
        schedulePollLoop(stack, id, stop, gap);
    });
}

void
fill(Node &node, Addr buf, std::uint32_t words, std::uint64_t seed)
{
    for (std::uint32_t i = 0; i < words; ++i)
        node.mem().write(buf + i, static_cast<Word>(splitMix64(seed)));
}

bool
sameWords(Node &a, Addr abuf, Node &b, Addr bbuf, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        if (a.mem().read(abuf + i) != b.mem().read(bbuf + i))
            return false;
    return true;
}

} // namespace

RunResult
runRdmaSingle(RdmaStack &stack, const RdmaRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);

    const Word qp = stack.connectQp(params.src, params.dst);
    const Addr src_buf = src.mem().alloc(n);
    const Addr dst_buf = dst.mem().alloc(n);
    fill(src, src_buf, n, params.fillSeed);

    int recvDone = 0;
    stack.nic(params.dst).setCompletionFn(
        [&recvDone](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++recvDone;
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(dst.acct(), Feature::BaseCost);
        stack.nic(params.dst).regMr(dst_buf, n);
        stack.nic(params.dst).postRecv(qp, dst_buf, n, 1);
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).regMr(src_buf, n);
        stack.nic(params.src).postSend(qp, src_buf, n, 1);
    }
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.nic(params.dst).pollCq();
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        schedulePollLoop(stack, params.dst, stopFlag, 8);
        stack.sim().runUntil([&recvDone] { return recvDone > 0; },
                             50'000'000);
        *stopFlag = true;
        stack.settle();
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).pollCq(); // harvest the send completion
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = stack.sim().now() - t0;
    res.packets = 1;
    res.dataOk = recvDone == 1 &&
                 sameWords(src, src_buf, dst, dst_buf, n);
    stack.nic(params.dst).setCompletionFn(nullptr);
    return res;
}

RunResult
runRdmaAm4(RdmaStack &stack, const RdmaRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);

    const Word qp = stack.connectQp(params.src, params.dst);
    const Addr arg_buf = src.mem().alloc(n);  // request payload
    const Addr rep_buf = src.mem().alloc(n);  // reply lands here
    const Addr req_buf = dst.mem().alloc(n);  // request lands here
    const Addr hrep_buf = dst.mem().alloc(n); // handler's reply source
    fill(src, arg_buf, n, params.fillSeed);

    // The destination's completion handler: consume the request,
    // build the reply (args + 1) and send it back on the same QP.
    int served = 0;
    stack.nic(params.dst).setCompletionFn(
        [&](const RdmaNic::Completion &c) {
            if (c.kind != RdmaNic::Completion::Kind::Recv)
                return;
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            Processor &p = dst.proc();
            for (std::uint32_t i = 0; i < n; ++i) {
                const Word w = p.loadWord(req_buf + i);
                p.regOps(1);
                p.storeWord(hrep_buf + i, w + 1);
            }
            stack.nic(params.dst).regMr(hrep_buf, n);
            stack.nic(params.dst).postSend(qp, hrep_buf, n, 2);
            ++served;
        });
    int replied = 0;
    stack.nic(params.src).setCompletionFn(
        [&replied](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++replied;
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    {
        FeatureScope fs(dst.acct(), Feature::BaseCost);
        stack.nic(params.dst).regMr(req_buf, n);
        stack.nic(params.dst).postRecv(qp, req_buf, n, 1);
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).regMr(rep_buf, n);
        stack.nic(params.src).postRecv(qp, rep_buf, n, 2);
        stack.nic(params.src).regMr(arg_buf, n);
        stack.nic(params.src).postSend(qp, arg_buf, n, 1);
    }
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.nic(params.dst).pollCq(); // request in, reply out
        }
        stack.settle();
        {
            FeatureScope fs(src.acct(), Feature::BaseCost);
            stack.nic(params.src).pollCq(); // reply + send completion
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        schedulePollLoop(stack, params.dst, stopFlag, 8);
        schedulePollLoop(stack, params.src, stopFlag, 8);
        stack.sim().runUntil([&replied] { return replied > 0; },
                             50'000'000);
        *stopFlag = true;
        stack.settle();
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = stack.sim().now() - t0;
    res.packets = 2;
    res.dataOk = served == 1 && replied == 1;
    for (std::uint32_t i = 0; res.dataOk && i < n; ++i)
        if (src.mem().read(rep_buf + i) !=
            src.mem().read(arg_buf + i) + 1)
            res.dataOk = false;
    stack.nic(params.src).setCompletionFn(nullptr);
    stack.nic(params.dst).setCompletionFn(nullptr);
    return res;
}

RunResult
runRdmaFinite(RdmaStack &stack, const RdmaRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);
    if (params.words == 0 || params.words % n != 0)
        msgsim_fatal("rdma finite transfer of ", params.words,
                     " words: not a multiple of the mtu ", n);

    const Word qp = stack.connectQp(params.src, params.dst);
    const Addr src_buf = src.mem().alloc(params.words);
    const Addr dst_buf = dst.mem().alloc(params.words);
    fill(src, src_buf, params.words, params.fillSeed);

    int recvDone = 0;
    stack.nic(params.dst).setCompletionFn(
        [&recvDone](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++recvDone;
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    {
        // One registration, one receive, regardless of size: this is
        // why the per-packet software vanishes.
        FeatureScope fs(dst.acct(), Feature::BaseCost);
        stack.nic(params.dst).regMr(dst_buf, params.words);
        stack.nic(params.dst).postRecv(qp, dst_buf, params.words, 1);
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).regMr(src_buf, params.words);
        stack.nic(params.src).postSend(qp, src_buf, params.words, 1);
    }
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.nic(params.dst).pollCq();
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        schedulePollLoop(stack, params.dst, stopFlag, 8);
        stack.sim().runUntil([&recvDone] { return recvDone > 0; },
                             50'000'000);
        *stopFlag = true;
        stack.settle();
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).pollCq();
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = stack.sim().now() - t0;
    res.packets = params.words / n;
    res.dataOk = recvDone == 1 &&
                 sameWords(src, src_buf, dst, dst_buf, params.words);
    stack.nic(params.dst).setCompletionFn(nullptr);
    return res;
}

RunResult
runRdmaStream(RdmaStack &stack, const RdmaRunParams &params)
{
    RunResult res;
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    Node &src = stack.node(params.src);
    Node &dst = stack.node(params.dst);
    if (params.words == 0 || params.words % n != 0)
        msgsim_fatal("rdma stream of ", params.words,
                     " words: not a multiple of the mtu ", n);
    const std::uint32_t messages = params.words / n;

    const Word qp = stack.connectQp(params.src, params.dst);
    const Addr src_buf = src.mem().alloc(params.words);
    const Addr dst_buf = dst.mem().alloc(params.words);
    fill(src, src_buf, params.words, params.fillSeed);

    std::uint32_t recvDone = 0;
    stack.nic(params.dst).setCompletionFn(
        [&recvDone](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++recvDone;
        });

    const InstrCounter src_before = src.acct().counter();
    const InstrCounter dst_before = dst.acct().counter();
    const Tick t0 = stack.sim().now();

    {
        // One registration covers the whole stream; each message
        // still needs its posted receive (the verbs per-message tax).
        FeatureScope fs(dst.acct(), Feature::BaseCost);
        stack.nic(params.dst).regMr(dst_buf, params.words);
        for (std::uint32_t m = 0; m < messages; ++m)
            stack.nic(params.dst).postRecv(
                qp, dst_buf + m * n, n, m);
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).regMr(src_buf, params.words);
        for (std::uint32_t m = 0; m < messages; ++m) {
            int attempts = 0;
            while (!stack.nic(params.src).postSend(
                qp, src_buf + m * n, n, m)) {
                // Send CQ full: harvest completions and retry.
                if (++attempts > 1000)
                    msgsim_panic("rdma stream send livelock");
                stack.nic(params.src).pollCq();
            }
        }
    }
    if (!params.eventMode) {
        stack.settle();
        {
            FeatureScope fs(dst.acct(), Feature::BaseCost);
            stack.nic(params.dst).pollCq();
        }
    } else {
        auto stopFlag = std::make_shared<bool>(false);
        schedulePollLoop(stack, params.dst, stopFlag, 8);
        stack.sim().runUntil(
            [&recvDone, messages] { return recvDone == messages; },
            50'000'000);
        *stopFlag = true;
        stack.settle();
    }
    {
        FeatureScope fs(src.acct(), Feature::BaseCost);
        stack.nic(params.src).pollCq();
    }

    res.counts.src = src.acct().counter().diff(src_before);
    res.counts.dst = dst.acct().counter().diff(dst_before);
    res.elapsed = stack.sim().now() - t0;
    res.packets = messages;
    res.dataOk = recvDone == messages &&
                 sameWords(src, src_buf, dst, dst_buf, params.words);
    stack.nic(params.dst).setCompletionFn(nullptr);
    return res;
}

} // namespace msgsim

#include "rdmanet/rdma_network.hh"

#include <memory>

#include "hostprof/hostprof.hh"
#include "sim/log.hh"

namespace msgsim
{

RdmaNetwork::RdmaNetwork(Simulator &sim, const Config &cfg)
    : Network(sim), cfg_(cfg), tree_(cfg.nodes, cfg.arity),
      faults_(cfg.faults)
{
}

bool
RdmaNetwork::injectImpl(Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::RdmaRoute);
    Tick latency = cfg_.baseLatency +
                   cfg_.hopLatency * tree_.hops(pkt.src, pkt.dst);

    // Link-level reliability: probe the injector on a copy; every hit
    // models a CRC-failed (or PFC-paused) link transfer retried by
    // the adjacent switches.  The payload that finally crosses is
    // intact, exactly once.
    for (;;) {
        Packet probe = pkt;
        if (faults_.apply(probe) == FaultAction::None)
            break;
        ++stats_.hwRetries;
        trace(TraceEvent::HwRetry, pkt);
        latency += cfg_.linkRetryDelay;
    }

    // Link-bandwidth serialization at both endpoints.
    Tick departure = sim_.now();
    if (cfg_.injectGap > 0) {
        auto it = lastDeparture_.find(pkt.src);
        if (it != lastDeparture_.end())
            departure = std::max(departure,
                                 it->second + cfg_.injectGap);
        lastDeparture_[pkt.src] = departure;
    }
    // Per-QP ordering: a packet never arrives before its flow
    // predecessor.
    const FlowKey flow{pkt.src, pkt.dst,
                       static_cast<int>(pkt.vnet)};
    Tick arrival =
        std::max(departure + latency,
                 lastArrival_.count(flow) ? lastArrival_[flow] + 1 : 0);
    if (cfg_.deliverGap > 0) {
        auto it = lastAtDest_.find(pkt.dst);
        if (it != lastAtDest_.end())
            arrival = std::max(arrival, it->second + cfg_.deliverGap);
        lastAtDest_[pkt.dst] = arrival;
    }
    lastArrival_[flow] = arrival;

    auto carried = std::make_shared<Packet>(std::move(pkt));
    sim_.scheduleAt(arrival, [this, flow, carried]() mutable {
        arrive(flow, std::move(*carried));
    });
    return true;
}

void
RdmaNetwork::arrive(FlowKey flow, Packet &&pkt)
{
    hostprof::HostScope hs(hostprof::Site::RdmaDeliver);
    flows_[flow].queue.push_back(std::move(pkt));
    drain(flow);
}

void
RdmaNetwork::drain(FlowKey flow)
{
    // RNR-retry closures re-enter here outside arrive().
    hostprof::HostScope hs(hostprof::Site::RdmaDeliver);
    auto &state = flows_[flow];
    state.drainScheduled = false;
    while (!state.queue.empty()) {
        if (!presentToSink(Packet(state.queue.front()))) {
            // Receiver not ready (no posted receive / CQ full): the
            // fabric NAKs and retries later; younger packets wait
            // behind, so per-QP order is preserved.
            ++stats_.deliveryRetries;
            if (!state.drainScheduled) {
                state.drainScheduled = true;
                sim_.schedule(cfg_.rnrRetryDelay,
                              [this, flow] { drain(flow); });
            }
            return;
        }
        state.queue.pop_front();
    }
}

} // namespace msgsim

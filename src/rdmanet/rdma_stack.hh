/**
 * @file
 * Stack builder for the RDMA substrate: an RdmaNetwork machine with
 * one verbs RdmaNic per node, plus drivers for the paper's four
 * protocols re-expressed in verbs.
 *
 * The interesting comparison is the shape shift: the 1994 overheads
 * (buffering, in-order, fault tolerance) are zero by construction,
 * while two columns that do not exist on the CM-5 appear — memory
 * registration and completion-queue polling.
 */

#ifndef MSGSIM_RDMANET_RDMA_STACK_HH
#define MSGSIM_RDMANET_RDMA_STACK_HH

#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "protocols/result.hh"
#include "rdmanet/rdma_network.hh"
#include "rdmanet/rdma_nic.hh"

namespace msgsim
{

/** Configuration of the RDMA stack. */
struct RdmaStackConfig
{
    std::uint32_t nodes = 4;
    int dataWords = 4;
    std::size_t memWords = 1u << 20;
    int mrCacheSlots = 4;
    std::size_t cqCapacity = 64;
    FaultInjector::Config faults; ///< absorbed by link-level retry
    Tick injectGap = 0;           ///< link bandwidth: source spacing
    Tick deliverGap = 0;          ///< link bandwidth: dest spacing
};

/**
 * RDMA machine + per-node verbs NIC.
 */
class RdmaStack
{
  public:
    explicit RdmaStack(const RdmaStackConfig &cfg);

    Machine &machine() { return *machine_; }
    Simulator &sim() { return machine_->sim(); }
    int dataWords() const { return cfg_.dataWords; }
    Node &node(NodeId id) { return machine_->node(id); }
    RdmaNic &nic(NodeId id);
    RdmaNetwork &net();
    void settle() { machine_->settle(); }

    /**
     * Connect a queue pair between @p a and @p b (uncharged control
     * plane, like RDMA connection management).  Returns the qp id,
     * valid at both ends.
     */
    Word connectQp(NodeId a, NodeId b);

  private:
    RdmaStackConfig cfg_;
    std::unique_ptr<Machine> machine_;
    std::vector<std::unique_ptr<RdmaNic>> nics_;
    Word nextQp_ = 1;
};

/** Parameters of a verbs run (all four protocols share them). */
struct RdmaRunParams
{
    NodeId src = 0;
    NodeId dst = 1;
    std::uint32_t words = 16;          ///< finite/stream payload
    std::uint64_t fillSeed = 0x2d'a0'11ULL;
    bool eventMode = false; ///< poll from the simulated clock instead
};

/** Protocol 1: one message of n words over a connected QP. */
RunResult runRdmaSingle(RdmaStack &stack, const RdmaRunParams &params);

/** Protocol 2: request + reply round trip (verbs send/send). */
RunResult runRdmaAm4(RdmaStack &stack, const RdmaRunParams &params);

/** Protocol 3: finite transfer — one multi-fragment message. */
RunResult runRdmaFinite(RdmaStack &stack, const RdmaRunParams &params);

/** Protocol 4: indefinite stream — a message per packet. */
RunResult runRdmaStream(RdmaStack &stack, const RdmaRunParams &params);

} // namespace msgsim

#endif // MSGSIM_RDMANET_RDMA_STACK_HH
